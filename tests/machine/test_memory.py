"""Unit tests for the abstract address space."""

import pytest

from repro.machine.memory import AddressSpace, MemRegion


def test_regions_do_not_overlap():
    space = AddressSpace()
    a = space.alloc("dom:node", 10)
    b = space.alloc("css:rule", 5)
    assert a.base + a.size <= b.base
    assert set(a.all_cells()).isdisjoint(b.all_cells())


def test_null_page_is_never_allocated():
    space = AddressSpace()
    region = space.alloc("x", 1)
    assert region.cell(0) >= 0x1000


def test_cell_bounds_checked():
    space = AddressSpace()
    region = space.alloc("x", 3)
    assert region.cell(2) == region.base + 2
    with pytest.raises(IndexError):
        region.cell(3)
    with pytest.raises(IndexError):
        region.cell(-1)


def test_cells_slice():
    space = AddressSpace()
    region = space.alloc("x", 8)
    assert region.cells(2, 3) == (region.base + 2, region.base + 3, region.base + 4)
    assert region.cells() == region.all_cells()
    with pytest.raises(IndexError):
        region.cells(6, 3)


def test_alloc_rejects_nonpositive_size():
    space = AddressSpace()
    with pytest.raises(ValueError):
        space.alloc("bad", 0)
    with pytest.raises(ValueError):
        space.alloc("bad", -4)


def test_find_region_binary_search():
    space = AddressSpace()
    regions = [space.alloc(f"r{i}", 7) for i in range(20)]
    for region in regions:
        assert space.find_region(region.cell(3)) is region
    with pytest.raises(KeyError):
        space.find_region(regions[-1].base + regions[-1].size)


def test_contains():
    space = AddressSpace()
    region = space.alloc("x", 4)
    assert region.contains(region.base)
    assert region.contains(region.base + 3)
    assert not region.contains(region.base + 4)


def test_usage_by_prefix():
    space = AddressSpace()
    space.alloc("dom:a", 3)
    space.alloc("dom:b", 4)
    space.alloc("css:x", 5)
    usage = space.usage_by_prefix()
    assert usage["dom"] == 7
    assert usage["css"] == 5


def test_total_allocated():
    space = AddressSpace()
    space.alloc("a", 3)
    space.alloc("b", 9)
    assert space.total_allocated() == 12


def test_alloc_cell_is_single_cell():
    space = AddressSpace()
    addr = space.alloc_cell("lonely")
    region = space.find_region(addr)
    assert region.size == 1
    assert region.name == "lonely"


def test_region_repr_mentions_name():
    region = MemRegion("dom:node", 0x2000, 4)
    assert "dom:node" in repr(region)
