"""Unit tests for the virtual clock and busy accounting."""

import pytest

from repro.machine.clock import VirtualClock


def test_tick_advances_time():
    clock = VirtualClock(instr_cost_us=0.5)
    clock.tick(tid=1, instructions=10)
    assert clock.now_us == pytest.approx(5.0)


def test_idle_advances_without_busy():
    clock = VirtualClock(instr_cost_us=1.0, bucket_us=100)
    clock.idle(250)
    series = clock.utilization_series(tid=1)
    assert all(util == 0.0 for _, util in series)
    assert clock.now_us == 250


def test_idle_rejects_negative():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.idle(-1)


def test_constructor_validation():
    with pytest.raises(ValueError):
        VirtualClock(instr_cost_us=0)
    with pytest.raises(ValueError):
        VirtualClock(bucket_us=0)


def test_utilization_full_bucket():
    clock = VirtualClock(instr_cost_us=1.0, bucket_us=100)
    clock.tick(tid=7, instructions=100)  # exactly one full bucket
    series = clock.utilization_series(tid=7)
    assert series[0][1] == pytest.approx(1.0)


def test_burst_splits_across_buckets():
    clock = VirtualClock(instr_cost_us=1.0, bucket_us=100)
    clock.idle(50)
    clock.tick(tid=3, instructions=100)  # 50us in bucket 0, 50us in bucket 1
    series = clock.utilization_series(tid=3)
    assert series[0][1] == pytest.approx(0.5)
    assert series[1][1] == pytest.approx(0.5)


def test_threads_accounted_separately():
    clock = VirtualClock(instr_cost_us=1.0, bucket_us=100)
    clock.tick(tid=1, instructions=30)
    clock.tick(tid=2, instructions=20)
    assert clock.busy_time_us(1) == pytest.approx(30)
    assert clock.busy_time_us(2) == pytest.approx(20)
    # Sequential execution: thread 2's work lands after thread 1's.
    series2 = clock.utilization_series(tid=2)
    assert series2[0][1] == pytest.approx(0.2)


def test_series_x_axis_in_seconds():
    clock = VirtualClock(instr_cost_us=1.0, bucket_us=1_000_000)
    clock.idle(2_500_000)
    series = clock.utilization_series(tid=1)
    assert [x for x, _ in series] == pytest.approx([0.0, 1.0, 2.0])
