"""Unit tests for the tracer (pc stability, frames, syscalls, markers)."""

import pytest

from repro.machine import FLAGS, Tracer
from repro.machine.registers import (
    RAX,
    RCX,
    RDI,
    RSI,
    R11,
    SYSCALL_ARG_REGISTERS,
)
from repro.machine.tracer import LOAD_COMPLETE_MARKER, TILE_MARKER
from repro.trace.records import InstrKind


def make_tracer():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "base::threading::ThreadMain")
    return tracer


def test_same_site_same_pc():
    tracer = make_tracer()
    with tracer.function("blink::html::Parse"):
        i1 = tracer.op("step", reads=(0x1000,), writes=(0x2000,))
        i2 = tracer.op("step", reads=(0x1001,), writes=(0x2001,))
    recs = tracer.store.records()
    assert recs[i1].pc == recs[i2].pc


def test_different_sites_different_pcs():
    tracer = make_tracer()
    with tracer.function("f"):
        i1 = tracer.op("a")
        i2 = tracer.op("b")
    recs = tracer.store.records()
    assert recs[i1].pc != recs[i2].pc


def test_same_label_different_functions_different_pcs():
    tracer = make_tracer()
    with tracer.function("f"):
        i1 = tracer.op("x")
    with tracer.function("g"):
        i2 = tracer.op("x")
    recs = tracer.store.records()
    assert recs[i1].pc != recs[i2].pc
    assert recs[i1].fn != recs[i2].fn


def test_call_ret_bracketing():
    tracer = make_tracer()
    with tracer.function("outer"):
        with tracer.function("inner"):
            tracer.op("w")
    kinds = [r.kind for r in tracer.store.forward()]
    assert kinds == [
        InstrKind.CALL,  # root -> outer
        InstrKind.CALL,  # outer -> inner
        InstrKind.OP,
        InstrKind.RET,  # inner
        InstrKind.RET,  # outer
    ]
    recs = tracer.store.records()
    # CALL records belong to the caller; RET records to the callee.
    assert tracer.symbols.name(recs[1].fn) == "outer"
    assert tracer.symbols.name(recs[3].fn) == "inner"


def test_ret_from_root_raises():
    tracer = make_tracer()
    with pytest.raises(RuntimeError):
        tracer.ret()


def test_compare_and_branch_flags_dataflow():
    tracer = make_tracer()
    with tracer.function("f"):
        tracer.compare_and_branch("cond", reads=(0x1234,))
    cmp_rec, br_rec = tracer.store.records()[-3:-1]
    assert cmp_rec.kind == InstrKind.CMP
    assert cmp_rec.mem_read == (0x1234,)
    assert FLAGS in cmp_rec.regs_written
    assert br_rec.kind == InstrKind.BRANCH
    assert FLAGS in br_rec.regs_read


def test_syscall_abi_registers():
    tracer = make_tracer()
    with tracer.function("net::Socket::Send"):
        idx = tracer.syscall("sendto", reads=(0x9000, 0x9001))
    rec = tracer.store.records()[idx]
    assert rec.kind == InstrKind.SYSCALL
    assert rec.regs_read == SYSCALL_ARG_REGISTERS[:6]
    assert set(rec.regs_written) == {RAX, RCX, R11}
    assert rec.mem_read == (0x9000, 0x9001)


def test_recvfrom_writes_buffer():
    tracer = make_tracer()
    with tracer.function("net::Socket::Recv"):
        idx = tracer.syscall("recvfrom", writes=(0xA000,))
    rec = tracer.store.records()[idx]
    assert rec.mem_written == (0xA000,)


def test_tile_marker_side_channel():
    tracer = make_tracer()
    with tracer.function("cc::RasterBufferProvider::PlaybackToMemory"):
        idx = tracer.marker(TILE_MARKER, cells=(0x5000, 0x5001))
    meta = tracer.store.metadata
    assert meta.tile_buffers == [(idx, (0x5000, 0x5001))]
    assert tracer.store.records()[idx].marker == TILE_MARKER


def test_load_complete_marker():
    tracer = make_tracer()
    with tracer.function("f"):
        idx = tracer.marker(LOAD_COMPLETE_MARKER)
    assert tracer.store.metadata.load_complete_index == idx


def test_thread_switch_and_metadata():
    tracer = make_tracer()
    tracer.spawn_thread(2, "Compositor", "base::threading::ThreadMain")
    tracer.switch(2)
    with tracer.function("cc::Scheduler::Run"):
        idx = tracer.op("w")
    assert tracer.store.records()[idx].tid == 2
    assert tracer.store.metadata.thread_names == {
        1: "CrRendererMain",
        2: "Compositor",
    }
    assert tracer.store.metadata.main_thread_id() == 1


def test_spawn_duplicate_thread_rejected():
    tracer = make_tracer()
    with pytest.raises(ValueError):
        tracer.spawn_thread(1, "again", "root")


def test_switch_unknown_thread_rejected():
    tracer = make_tracer()
    with pytest.raises(KeyError):
        tracer.switch(99)


def test_clock_ticks_per_record():
    tracer = make_tracer()
    with tracer.function("f"):
        tracer.op("a")
        tracer.op("b")
    # CALL + 2 OPs + RET = 4 instructions.
    assert tracer.clock.now_us == pytest.approx(4 * tracer.clock.instr_cost_us)


def test_pc_of_lookup():
    tracer = make_tracer()
    with tracer.function("f"):
        idx = tracer.op("here")
    rec = tracer.store.records()[idx]
    assert tracer.pc_of("f", "here") == rec.pc
    assert tracer.pc_of("f", "nowhere") is None
    assert tracer.pc_of("nofn", "here") is None


def test_syscall_models_consistent():
    from repro.machine.syscalls import BY_NAME, BY_NUMBER, OUTPUT_SYSCALL_NUMBERS, model_for

    assert BY_NAME["sendto"].number == 44
    assert BY_NAME["recvfrom"].writes_user_memory
    assert BY_NAME["sendto"].is_output
    assert not BY_NAME["recvfrom"].is_output
    assert BY_NAME["futex"].reads_user_memory and BY_NAME["futex"].writes_user_memory
    for number in OUTPUT_SYSCALL_NUMBERS:
        assert BY_NUMBER[number].is_output
    assert model_for("write").nargs == 3
    with pytest.raises(KeyError):
        model_for("not_a_syscall")


def test_unknown_syscall_name_rejected_by_tracer():
    tracer = make_tracer()
    with tracer.function("f"):
        with pytest.raises(KeyError):
            tracer.syscall("bogus_syscall")


def test_function_context_manager_pops_on_exception():
    tracer = make_tracer()
    with pytest.raises(ValueError):
        with tracer.function("f"):
            raise ValueError("boom")
    # The frame was popped: current function is the thread root again.
    assert tracer.symbols.name(tracer.current_function()) == "base::threading::ThreadMain"
