"""Golden regression tests for the reproduced paper numbers.

``goldens/paper_numbers.json`` freezes the Table I / Table II / Figure 2
headline fractions as currently measured.  A slicer or engine refactor
that silently shifts any of them fails here; an *intentional* change is
recorded by regenerating the golden::

    PYTHONPATH=src python -m repro.harness.goldens tests/harness/goldens/paper_numbers.json
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.goldens import collect_paper_numbers

GOLDEN_PATH = Path(__file__).parent / "goldens" / "paper_numbers.json"
TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def measured():
    return collect_paper_numbers()


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _assert_matches(measured, golden, path=""):
    assert type(measured) is type(golden) or (
        isinstance(measured, (int, float)) and isinstance(golden, (int, float))
    ), f"{path}: type changed from {type(golden).__name__} to {type(measured).__name__}"
    if isinstance(golden, dict):
        assert set(measured) == set(golden), (
            f"{path}: keys changed: measured has "
            f"{sorted(set(measured) ^ set(golden))} differing"
        )
        for key in golden:
            _assert_matches(measured[key], golden[key], f"{path}/{key}")
    elif isinstance(golden, list):
        assert len(measured) == len(golden), f"{path}: length changed"
        for i, (m, g) in enumerate(zip(measured, golden)):
            _assert_matches(m, g, f"{path}[{i}]")
    elif isinstance(golden, float):
        assert measured == pytest.approx(golden, abs=TOLERANCE), (
            f"{path}: measured {measured!r} != golden {golden!r}"
        )
    else:
        assert measured == golden, f"{path}: measured {measured!r} != golden {golden!r}"


def test_golden_file_checked_in():
    assert GOLDEN_PATH.exists(), (
        "goldens/paper_numbers.json is missing; regenerate it with "
        "`python -m repro.harness.goldens`"
    )


def test_table2_fractions_match_golden(measured, golden):
    _assert_matches(measured["table2"], golden["table2"], "table2")


def test_table1_fractions_match_golden(measured, golden):
    _assert_matches(measured["table1"], golden["table1"], "table1")


def test_figure2_numbers_match_golden(measured, golden):
    _assert_matches(measured["figure2"], golden["figure2"], "figure2")


def test_golden_covers_all_table2_benchmarks(golden):
    from repro.harness import paper

    assert set(golden["table2"]) == set(paper.TABLE2)
