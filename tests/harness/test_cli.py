"""Tests for the harness CLI entry point."""

import pytest

from repro.harness.__main__ import _TARGETS, main


def test_usage_on_no_args(capsys):
    assert main([]) == 2
    assert "Usage" in capsys.readouterr().out


def test_usage_on_unknown_target(capsys):
    assert main(["nope"]) == 2


def test_targets_cover_every_artifact():
    assert set(_TARGETS) == {
        "table1", "table2", "fig2", "fig4", "fig5", "bing-partial", "static",
        "tsan", "all",
    }


@pytest.mark.slow
def test_bing_partial_target_runs(capsys):
    # The cheapest full-pipeline target (one benchmark, cached thereafter).
    assert main(["bing-partial"]) == 0
    out = capsys.readouterr().out
    assert "partial-slice" in out
