"""Tests for the harness CLI entry point."""

import pytest

from repro.harness.__main__ import _TARGETS, main


def test_usage_on_no_args(capsys):
    assert main([]) == 2
    assert "Usage" in capsys.readouterr().out


def test_usage_on_unknown_target(capsys):
    assert main(["nope"]) == 2


def test_targets_cover_every_artifact():
    assert set(_TARGETS) == {
        "table1", "table2", "fig2", "fig4", "fig5", "bing-partial", "static",
        "tsan", "frames", "all",
    }


def test_unknown_workload_name_exits_nonzero(capsys):
    assert main(["frames", "no_such_workload"]) == 2
    err = capsys.readouterr().err
    assert "no_such_workload" in err
    assert "available" in err


def test_extra_args_rejected_for_table_targets(capsys):
    assert main(["table2", "amazon_desktop"]) == 2


def test_frames_target_runs(capsys):
    assert main(["frames", "ticker"]) == 0
    out = capsys.readouterr().out
    assert "Cross-frame redundancy" in out
    assert "steady-state" in out


def test_trace_collect_unknown_workload_exits_nonzero(tmp_path, capsys):
    from repro.trace.__main__ import main as trace_main

    assert trace_main(["collect", "no_such_workload", str(tmp_path / "x.ucwa")]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


@pytest.mark.slow
def test_bing_partial_target_runs(capsys):
    # The cheapest full-pipeline target (one benchmark, cached thereafter).
    assert main(["bing-partial"]) == 0
    out = capsys.readouterr().out
    assert "partial-slice" in out
