"""Tests for the harness CLI entry point."""

import pytest

from repro.harness.__main__ import _TARGETS, main


def test_usage_on_no_args(capsys):
    assert main([]) == 2
    assert "Usage" in capsys.readouterr().out


def test_usage_on_unknown_target(capsys):
    assert main(["nope"]) == 2


def test_targets_cover_every_artifact():
    assert set(_TARGETS) == {
        "table1", "table2", "fig2", "fig4", "fig5", "bing-partial", "static",
        "tsan", "frames", "service", "optimize", "all",
    }


@pytest.mark.parametrize("target", _TARGETS)
def test_unknown_workload_name_exits_2_on_every_subcommand(target, capsys):
    """The exit code and message are uniform across all subcommands."""
    assert main([target, "no_such_workload"]) == 2
    err = capsys.readouterr().err
    assert "unknown workload(s): no_such_workload" in err
    assert "available" in err


def test_extra_args_rejected_for_table_targets(capsys):
    assert main(["table2", "amazon_desktop"]) == 2
    err = capsys.readouterr().err
    assert "takes no workload arguments" in err


def test_service_rejects_unknown_options(capsys):
    assert main(["service", "--banana=1"]) == 2
    assert "unknown option(s): banana" in capsys.readouterr().err
    assert main(["service", "--rounds=zero"]) == 2
    assert "--rounds expects a positive integer" in capsys.readouterr().err
    assert main(["frames", "--golden=x"]) == 2
    assert "unknown option(s): golden" in capsys.readouterr().err
    assert main(["frames", "--engine=turbo"]) == 2
    assert "--engine expects one of" in capsys.readouterr().err
    assert main(["table2", "--engine=sequential"]) == 2
    assert "takes no options" in capsys.readouterr().err


def test_service_target_smoke(capsys):
    """The service smoke target end-to-end on one real workload."""
    assert main(["service", "wiki_article"]) == 0
    out = capsys.readouterr().out
    assert "Profiling-service smoke" in out
    assert "cache-memory" in out
    assert "hit rate 100%" in out


def test_frames_target_runs(capsys):
    assert main(["frames", "ticker"]) == 0
    out = capsys.readouterr().out
    assert "Cross-frame redundancy" in out
    assert "steady-state" in out


def test_frames_target_incremental_engine_same_report(capsys):
    assert main(["frames", "ticker"]) == 0
    sequential = capsys.readouterr().out
    assert main(["frames", "ticker", "--engine=incremental"]) == 0
    incremental = capsys.readouterr().out
    assert incremental == sequential


@pytest.mark.parametrize("command", ["run", "plan"])
def test_optimize_cli_unknown_workload_exits_2(command, capsys):
    """repro.optimize subcommands share the uniform exit-2 contract."""
    from repro.optimize.__main__ import main as optimize_main

    assert optimize_main([command, "no_such_workload"]) == 2
    err = capsys.readouterr().err
    assert "unknown workload(s): no_such_workload" in err
    assert "available" in err


def test_optimize_cli_usage_on_bad_args(capsys):
    from repro.optimize.__main__ import main as optimize_main

    assert optimize_main([]) == 2
    assert "Usage" in capsys.readouterr().out
    assert optimize_main(["run"]) == 2
    assert optimize_main(["nope", "wiki_article"]) == 2


def test_optimize_plan_json_is_machine_readable(capsys):
    import json

    from repro.optimize.__main__ import main as optimize_main

    assert optimize_main(["plan", "--json", "wiki_article"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [p["benchmark"] for p in payload] == ["wiki_article"]
    plan = payload[0]
    assert set(plan) == {"benchmark", "applied", "refused", "summary"}
    for rewrite in plan["applied"] + plan["refused"]:
        assert set(rewrite) == {
            "pass", "script", "target", "span", "category", "obligation",
            "evidence",
        }
    # The refusal list is the diffable artifact: sorted deterministically.
    keys = [(r["pass"], r["script"], tuple(r["span"])) for r in plan["refused"]]
    assert keys == sorted(keys)
    assert plan["summary"]["applied"] == len(plan["applied"])
    assert plan["summary"]["refused"] == len(plan["refused"])


def test_optimize_run_rejects_json(capsys):
    from repro.optimize.__main__ import main as optimize_main

    assert optimize_main(["run", "--json", "wiki_article"]) == 2


@pytest.mark.parametrize("command", ["report", "analyze", "callgraph"])
def test_jsstatic_cli_unknown_workload_exits_2(command, capsys):
    """repro.jsstatic subcommands share the uniform exit-2 contract."""
    from repro.jsstatic.__main__ import main as jsstatic_main

    assert jsstatic_main([command, "no_such_workload"]) == 2
    err = capsys.readouterr().err
    assert "unknown workload(s): no_such_workload" in err
    assert "available" in err


def test_jsstatic_callgraph_dumps_edges_with_provenance(capsys):
    from repro.jsstatic.__main__ import main as jsstatic_main

    assert jsstatic_main(["callgraph", "wiki_article"]) == 0
    out = capsys.readouterr().out
    assert "callgraph wiki_article" in out
    assert "--" in out and "-->" in out
    assert "call sites:" in out
    assert "resolved" in out


def test_jsstatic_callgraph_json_shape(capsys):
    import json

    from repro.jsstatic.__main__ import main as jsstatic_main

    assert jsstatic_main(["callgraph", "--json", "wiki_article"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [p["benchmark"] for p in payload] == ["wiki_article"]
    graph = payload[0]
    assert graph["valueflow"]["ok"] is True
    assert graph["liveness"] == "value-flow resolved"
    kinds = {e["kind"] for e in graph["edges"]}
    assert "vflow" in kinds
    for edge in graph["edges"]:
        assert {"region", "kind", "target"} <= set(edge)
        if edge["kind"] == "vflow":
            assert edge["provenance"]
    for site in graph["call_sites"]:
        assert site["status"] in ("resolved", "fallback")
        assert {"script", "region", "span", "callee", "kind", "targets",
                "chains"} <= set(site)


def test_trace_collect_unknown_workload_exits_nonzero(tmp_path, capsys):
    from repro.trace.__main__ import main as trace_main

    assert trace_main(["collect", "no_such_workload", str(tmp_path / "x.ucwa")]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


@pytest.mark.slow
def test_bing_partial_target_runs(capsys):
    # The cheapest full-pipeline target (one benchmark, cached thereafter).
    assert main(["bing-partial"]) == 0
    out = capsys.readouterr().out
    assert "partial-slice" in out
