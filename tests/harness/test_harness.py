"""Integration tests for the experiment harness (one shared benchmark run)."""

import pytest

from repro.browser.context import MAIN_THREAD
from repro.harness import paper
from repro.harness.experiments import run_benchmark
from repro.harness.reporting import (
    bing_partial_report,
    figure2_report,
    figure5_report,
    table2_report,
)
from repro.workloads import benchmark
from repro.workloads.amazon import amazon_desktop


@pytest.fixture(scope="module")
def small_run():
    """A fast benchmark run shared by this module's tests."""
    bench = amazon_desktop()
    bench.config.load_animation_ticks = 10  # keep the unit test quick
    return run_benchmark(bench)


def test_experiment_result_fields(small_run):
    assert small_run.name == "amazon_desktop"
    assert len(small_run.store) > 10_000
    assert 0.0 < small_run.pixel.fraction() < 1.0
    assert small_run.stats.total == len(small_run.store)


def test_experiment_coverage_accessors(small_run):
    assert small_run.code_total_bytes() > 0
    assert 0.0 < small_run.code_unused_fraction() < 1.0
    assert small_run.css_used_bytes() <= small_run.css_total_bytes()


def test_utilization_accessor(small_run):
    series = small_run.utilization(MAIN_THREAD)
    assert series
    assert any(v > 0 for _, v in series)


def test_thread_roles_present(small_run):
    names = {t.name for t in small_run.stats.threads}
    assert "CrRendererMain" in names
    assert "Compositor" in names
    assert "ChromeIOThread" in names
    assert any(n.startswith("CompositorTileWorker") for n in names)
    assert any(n.startswith("ThreadPoolForegroundWorker") for n in names)


def test_paper_reference_tables_complete():
    assert set(paper.TABLE2) == {
        "amazon_desktop", "amazon_mobile", "google_maps", "bing"
    }
    for column in paper.TABLE2.values():
        assert 0 < column.all_slice < 1
        assert column.rasterizer_slices
    assert paper.TABLE2_AVERAGE_SLICE == pytest.approx(0.45)
    assert len(paper.TABLE1) == 6


def test_reports_render(small_run):
    results = {name: small_run for name in paper.TABLE2}
    table2 = table2_report(results)
    assert "Table II" in table2 and "Rasterizer" in table2
    fig5 = figure5_report(results)
    assert "Figure 5" in fig5
    fig2 = figure2_report(small_run)
    assert "Figure 2" in fig2


def test_bing_partial_report_on_trace_with_marker(small_run):
    report = bing_partial_report(small_run)
    assert "load-only slice" in report


def test_run_engine_executes_actions():
    bench = benchmark("bing")
    bench.actions = bench.actions[:2]
    bench.late_scripts = {}
    bench.config.load_animation_ticks = 5
    bench.config.action_animation_ticks = 2
    result = run_benchmark(bench)
    # The menu opened: the panel's display flipped at least once.
    panel = result.engine.document.get_element_by_id("menu-panel")
    assert panel is not None
    assert result.stats.total > 10_000
