"""Unit tests for the mini-JavaScript engine."""

import pytest

from repro.browser.context import EngineContext
from repro.browser.html import parse_html
from repro.browser.js import (
    BrowserHooks,
    Interpreter,
    JSArray,
    JSObject,
    JSParseError,
    JSRuntime,
    parse_js,
    tokenize_js,
)


def make_ctx():
    ctx = EngineContext()
    ctx.spawn_threads()
    return ctx


def run_js(source, html="<body><div id='a'>x</div></body>"):
    ctx = make_ctx()
    region = ctx.alloc_bytes("html", len(html))
    parser = parse_html(ctx, html, region)
    interp = Interpreter(ctx)
    runtime = JSRuntime(interp, parser.document)
    js_region = ctx.alloc_bytes("js", len(source))
    script = interp.execute_script(source, "test.js", js_region)
    return ctx, interp, runtime, script


def global_value(interp, name):
    return interp.global_env.get(name)


# -- lexer/parser ---------------------------------------------------------- #


def test_tokenize_js_basics():
    tokens = tokenize_js("var x = 1 + 2; // comment\n'str'")
    kinds = [t.kind for t in tokens]
    assert kinds[:3] == ["keyword", "ident", "punct"]
    assert tokens[-2].kind == "string"
    assert tokens[-1].kind == "eof"


def test_parse_js_program():
    program = parse_js("function f(a, b) { return a + b; } var y = f(1, 2);")
    assert len(program.body) == 2


def test_parse_js_error():
    with pytest.raises(JSParseError):
        parse_js("var = ;")


# -- evaluation -------------------------------------------------------------- #


def test_arithmetic_and_vars():
    _, interp, _, _ = run_js("var x = 2 * (3 + 4); var y = x % 5;")
    assert global_value(interp, "x") == 14.0
    assert global_value(interp, "y") == 4.0


def test_string_concat_and_methods():
    _, interp, _, _ = run_js(
        "var s = 'ab' + 'cd'; var up = s.toUpperCase();"
        " var i = s.indexOf('cd'); var len = s.length;"
    )
    assert global_value(interp, "s") == "abcd"
    assert global_value(interp, "up") == "ABCD"
    assert global_value(interp, "i") == 2.0
    assert global_value(interp, "len") == 4.0


def test_functions_closures_recursion():
    _, interp, _, _ = run_js(
        """
        function makeCounter() {
            var n = 0;
            return function() { n = n + 1; return n; };
        }
        var c = makeCounter();
        c(); c();
        var result = c();
        function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        var f = fib(10);
        """
    )
    assert global_value(interp, "result") == 3.0
    assert global_value(interp, "f") == 55.0


def test_control_flow():
    _, interp, _, _ = run_js(
        """
        var total = 0;
        for (var i = 0; i < 10; i++) {
            if (i % 2 === 0) continue;
            total += i;
        }
        var j = 0;
        while (true) { j++; if (j >= 5) break; }
        """
    )
    assert global_value(interp, "total") == 25.0
    assert global_value(interp, "j") == 5.0


def test_objects_and_arrays():
    _, interp, _, _ = run_js(
        """
        var obj = { a: 1, b: { c: 2 } };
        obj.d = obj.a + obj.b.c;
        var arr = [1, 2, 3];
        arr.push(4);
        var sum = 0;
        arr.forEach(function(v) { sum += v; });
        var doubled = arr.map(function(v) { return v * 2; });
        var odds = arr.filter(function(v) { return v % 2 === 1; });
        """
    )
    obj = global_value(interp, "obj")
    assert isinstance(obj, JSObject)
    assert obj.get("d") == 3.0
    assert global_value(interp, "sum") == 10.0
    assert global_value(interp, "doubled").elements == [2.0, 4.0, 6.0, 8.0]
    assert global_value(interp, "odds").elements == [1.0, 3.0]


def test_ternary_logical_typeof():
    _, interp, _, _ = run_js(
        """
        var a = 1 > 0 ? 'yes' : 'no';
        var b = null || 'fallback';
        var c = 'x' && 'y';
        var t = typeof 42;
        """
    )
    assert global_value(interp, "a") == "yes"
    assert global_value(interp, "b") == "fallback"
    assert global_value(interp, "c") == "y"
    assert global_value(interp, "t") == "number"


def test_new_and_this():
    _, interp, _, _ = run_js(
        """
        function Point(x, y) { this.x = x; this.y = y; }
        var p = new Point(3, 4);
        var mag = Math.sqrt(p.x * p.x + p.y * p.y);
        """
    )
    assert global_value(interp, "mag") == 5.0


def test_math_and_seeded_random():
    ctx1, interp1, _, _ = run_js("var r = Math.random() + Math.random();")
    ctx2, interp2, _, _ = run_js("var r = Math.random() + Math.random();")
    # Deterministic: the same seed produces the same sequence.
    assert global_value(interp1, "r") == global_value(interp2, "r")
    _, interp, _, _ = run_js("var f = Math.floor(3.7); var m = Math.max(1, 9, 4);")
    assert global_value(interp, "f") == 3.0
    assert global_value(interp, "m") == 9.0


# -- DOM bindings ------------------------------------------------------------ #


def test_get_element_by_id_and_set_attribute():
    ctx, interp, runtime, _ = run_js(
        "var el = document.getElementById('a');"
        " el.setAttribute('data-x', '42');"
        " var back = el.getAttribute('data-x');"
    )
    assert global_value(interp, "back") == "42"
    element = runtime.document.get_element_by_id("a")
    assert element.get_attribute("data-x") == "42"


def test_create_and_append_element():
    ctx, interp, runtime, _ = run_js(
        """
        var parent = document.getElementById('a');
        var child = document.createElement('span');
        child.setAttribute('id', 'new');
        parent.appendChild(child);
        """
    )
    assert runtime.document.get_element_by_id("new") is not None


def test_text_content_setter_mutates_dom():
    ctx, interp, runtime, _ = run_js(
        "document.getElementById('a').textContent = 'replaced';"
    )
    element = runtime.document.get_element_by_id("a")
    assert element.text_content() == "replaced"


def test_style_proxy_sets_inline_style():
    ctx, interp, runtime, _ = run_js(
        "document.getElementById('a').style.backgroundColor = 'red';"
    )
    element = runtime.document.get_element_by_id("a")
    assert "background-color:red" in element.get_attribute("style")


def test_event_listener_registration_and_dispatch():
    ctx, interp, runtime, _ = run_js(
        """
        var hits = 0;
        document.getElementById('a').addEventListener('click', function(e) {
            hits = hits + 1;
        });
        """
    )
    element = runtime.document.get_element_by_id("a")
    assert runtime.has_listener(element, "click")
    ran = runtime.dispatch_event(element, "click")
    assert ran == 1
    assert global_value(interp, "hits") == 1.0


def test_set_timeout_goes_through_hooks():
    scheduled = []

    class Hooks(BrowserHooks):
        def schedule_timeout(self, callback, delay_ms):
            scheduled.append(delay_ms)

    ctx = make_ctx()
    html = "<body></body>"
    region = ctx.alloc_bytes("html", len(html))
    parser = parse_html(ctx, html, region)
    interp = Interpreter(ctx)
    JSRuntime(interp, parser.document, hooks=Hooks())
    js = "setTimeout(function() { var x = 1; }, 250);"
    interp.execute_script(js, "t.js", ctx.alloc_bytes("js", len(js)))
    assert scheduled == [250.0]


def test_query_selector_all():
    ctx, interp, runtime, _ = run_js(
        "var n = document.querySelectorAll('div').length;",
        html="<body><div>1</div><div>2</div><span>s</span></body>",
    )
    assert global_value(interp, "n") == 2.0


# -- coverage ------------------------------------------------------------------ #


def test_coverage_unused_function_bytes():
    source = (
        "function used() { return 1; }\n"
        "function unusedButLong() { var a = 0; a += 1; a += 2; a += 3; return a; }\n"
        "used();\n"
    )
    _, interp, _, script = run_js(source)
    assert script.top_level_executed
    assert 0 < script.used_bytes() < script.total_bytes
    unused = script.unused_bytes()
    assert unused >= len("{ var a = 0; a += 1; a += 2; a += 3; return a; }") - 2


def test_coverage_all_used_when_everything_runs():
    source = "function f() { return 2; }\nvar x = f();"
    _, interp, _, script = run_js(source)
    assert script.unused_bytes() == 0


def test_lazy_compilation_on_first_call():
    source = "function f() { return 1; }\nf(); f(); f();"
    ctx, interp, _, _ = run_js(source)
    names = [name for _, name in ctx.tracer.symbols]
    assert "v8::Compiler::CompileFunction" in names
    from repro.trace.records import InstrKind

    compile_calls = sum(
        1
        for r in ctx.tracer.store.forward()
        if r.kind == InstrKind.CALL
        and r.pc
        == ctx.tracer.pc_of("v8::Script::Run", "call:v8::Compiler::CompileFunction")
    )
    # One eager top-level compile plus exactly one lazy compile for f,
    # despite three calls to f.
    assert compile_calls == 2


def test_js_records_are_v8_namespaced():
    ctx, interp, _, _ = run_js("var x = 1 + 2;")
    from repro.profiler.categorize import categorize_symbol

    js_records = [
        r
        for r in ctx.tracer.store.forward()
        if categorize_symbol(ctx.tracer.symbols.name(r.fn)) == "JavaScript"
    ]
    assert js_records, "expected JavaScript-category records in the trace"


# -- extended language features ---------------------------------------------- #


def test_do_while():
    _, interp, _, _ = run_js("var n = 0; do { n++; } while (n < 3);")
    assert global_value(interp, "n") == 3.0


def test_do_while_runs_at_least_once():
    _, interp, _, _ = run_js("var n = 0; do { n++; } while (false);")
    assert global_value(interp, "n") == 1.0


def test_for_in_over_object():
    _, interp, _, _ = run_js(
        """
        var obj = { a: 1, b: 2, c: 3 };
        var keys = [];
        var total = 0;
        for (var k in obj) { keys.push(k); total += obj[k]; }
        var joined = keys.join('');
        """
    )
    assert global_value(interp, "joined") == "abc"
    assert global_value(interp, "total") == 6.0


def test_for_in_over_array_indices():
    _, interp, _, _ = run_js(
        "var a = [10, 20, 30]; var s = 0; for (var i in a) { s += a[i]; }"
    )
    assert global_value(interp, "s") == 60.0


def test_switch_with_fallthrough_and_default():
    _, interp, _, _ = run_js(
        """
        function classify(x) {
            var out = '';
            switch (x) {
                case 1: out += 'one ';
                case 2: out += 'two'; break;
                case 3: out += 'three'; break;
                default: out = 'other';
            }
            return out;
        }
        var a = classify(1);
        var b = classify(2);
        var c = classify(3);
        var d = classify(9);
        """
    )
    assert global_value(interp, "a") == "one two"
    assert global_value(interp, "b") == "two"
    assert global_value(interp, "c") == "three"
    assert global_value(interp, "d") == "other"


def test_json_stringify():
    _, interp, _, _ = run_js(
        "var s = JSON.stringify({ a: 1, b: 'x', c: [true, null] });"
    )
    assert global_value(interp, "s") == '{"a":1,"b":"x","c":[true,null]}'


def test_object_keys():
    _, interp, _, _ = run_js(
        "var ks = Object.keys({ x: 1, y: 2 }).join(',');"
    )
    assert global_value(interp, "ks") == "x,y"


def test_array_concat_and_reduce():
    _, interp, _, _ = run_js(
        """
        var merged = [1, 2].concat([3, 4], 5);
        var sum = merged.reduce(function(acc, v) { return acc + v; }, 0);
        var noInit = [2, 3, 4].reduce(function(acc, v) { return acc * v; });
        """
    )
    assert global_value(interp, "merged").elements == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert global_value(interp, "sum") == 15.0
    assert global_value(interp, "noInit") == 24.0


def test_keywords_not_usable_as_identifiers():
    with pytest.raises(JSParseError):
        parse_js("var switch = 1;")


def test_try_catch_finally():
    _, interp, _, _ = run_js(
        """
        var log = [];
        function risky(n) { if (n > 2) { throw 'big:' + n; } return n * 10; }
        var out = 0;
        try { out = risky(1); log.push('ok'); }
        catch (e) { log.push(e); }
        finally { log.push('f1'); }
        try { out = risky(5); } catch (e) { log.push(e); } finally { log.push('f2'); }
        var joined = log.join('|');
        """
    )
    assert global_value(interp, "joined") == "ok|f1|big:5|f2"
    assert global_value(interp, "out") == 10.0


def test_throw_propagates_through_frames():
    _, interp, _, _ = run_js(
        """
        function deep() { throw 'boom'; }
        function mid() { deep(); return 'unreached'; }
        var got = '';
        try { mid(); } catch (e) { got = e; }
        """
    )
    assert global_value(interp, "got") == "boom"


def test_try_finally_without_catch_reraises():
    _, interp, _, _ = run_js(
        """
        var order = [];
        function f() {
            try { throw 'x'; } finally { order.push('inner-finally'); }
        }
        try { f(); } catch (e) { order.push('outer:' + e); }
        var seq = order.join(',');
        """
    )
    assert global_value(interp, "seq") == "inner-finally,outer:x"
