"""Unit tests for paint (layers, display lists) and the compositor."""

import pytest

from repro.browser import BrowserEngine, EngineConfig, PageSpec
from repro.browser.compositor.tiles import BLOCKS_PER_SIDE
from repro.browser.layout.geometry import Rect


def load(html, css="", viewport=(640, 480), **config):
    engine = BrowserEngine(
        EngineConfig(viewport_width=viewport[0], viewport_height=viewport[1], **config)
    )
    engine.load_page(
        PageSpec(url="t", html=html, stylesheets={"c.css": css} if css else {})
    )
    return engine


BASE_CSS = "body { margin: 0; background-color: #ffffff; }"


def test_root_layer_always_exists():
    engine = load("<body><div style='height:10px'>x</div></body>", BASE_CSS)
    assert engine.paint_layers
    assert engine.paint_layers[0].is_root() or any(
        layer.is_root() for layer in engine.paint_layers
    )


def test_fixed_position_promotes_layer():
    engine = load(
        "<body><div id='f' style='position:fixed;top:0px;left:0px;width:100px;"
        "height:50px;background-color:#333333'>.</div></body>",
        BASE_CSS,
    )
    owners = [l.owner.element_id for l in engine.paint_layers if l.owner is not None]
    assert "f" in owners
    fixed_layer = next(l for l in engine.paint_layers if l.owner and l.owner.element_id == "f")
    assert fixed_layer.fixed


def test_z_index_promotes_positioned_element():
    engine = load(
        "<body><div id='z' style='position:absolute;z-index:3;width:100px;"
        "height:100px;background-color:#222222'>.</div></body>",
        BASE_CSS,
    )
    owners = [l.owner.element_id for l in engine.paint_layers if l.owner is not None]
    assert "z" in owners


def test_opacity_promotes_layer_and_not_opaque():
    engine = load(
        "<body><div id='o' style='opacity:0.5;width:100px;height:100px;"
        "background-color:#222222'>.</div></body>",
        BASE_CSS,
    )
    layer = next(l for l in engine.paint_layers if l.owner and l.owner.element_id == "o")
    assert not l_opaque(layer)


def l_opaque(layer):
    return layer.opaque


def test_display_items_recorded_for_backgrounds_and_text():
    engine = load(
        "<body><div style='background-color:#ff0000;height:40px'>hello</div></body>",
        BASE_CSS,
    )
    kinds = {item.kind for layer in engine.paint_layers for item in layer.items}
    assert "background" in kinds
    assert "text" in kinds


def test_image_items_reference_decoded_bitmap():
    engine = BrowserEngine(EngineConfig(viewport_width=640, viewport_height=480))
    engine.load_page(
        PageSpec(
            url="t",
            html="<body><img src='a.png' width='100' height='100'></body>",
            images={"a.png": 5000},
        )
    )
    items = [
        item
        for layer in engine.paint_layers
        for item in layer.items
        if item.kind == "image"
    ]
    assert items
    assert items[0].source_cells, "image item must reference decoded bitmap cells"


def test_tiles_cover_layer_bounds():
    engine = load("<body><div style='height:1000px'>x</div></body>", BASE_CSS)
    root = engine.compositor.layers[0]
    assert root.tile_count() >= 4
    bounds = root.paint.bounds
    for tile in root.tiles.values():
        assert tile.rect.intersects(bounds)


def test_pixel_blocks_per_tile():
    engine = load("<body><div style='height:10px'>x</div></body>", BASE_CSS)
    tile = next(iter(engine.compositor.layers[0].tiles.values()))
    assert len(tile.pixel_cells()) == BLOCKS_PER_SIDE * BLOCKS_PER_SIDE


def test_visible_tiles_marked_at_load():
    engine = load("<body><div style='height:100px;background-color:#000000'>x</div></body>", BASE_CSS)
    marked = [
        t
        for layer in engine.compositor.layers
        for t in layer.tiles.values()
        if t.marked
    ]
    assert marked, "visible tiles must carry the pixel criteria marker"
    assert engine.trace_store().metadata.tile_buffers


def test_occluded_layer_rastered_but_never_marked():
    # Two stacked opaque layers: the lower one is pure backing-store waste.
    engine = load(
        "<body style='margin:0'>"
        "<div id='top' style='position:absolute;top:0px;left:0px;width:640px;"
        "height:480px;z-index:5;background-color:#111111'>front</div>"
        "<div id='under' style='position:absolute;top:0px;left:0px;width:640px;"
        "height:480px;z-index:1;background-color:#222222'>back</div>"
        "</body>",
        BASE_CSS,
    )
    comp = engine.compositor
    under_layer = next(
        l for l in comp.layers if l.paint.owner is not None and l.paint.owner.element_id == "under"
    )
    top_layer = next(
        l for l in comp.layers if l.paint.owner is not None and l.paint.owner.element_id == "top"
    )
    assert any(t.rastered for t in under_layer.tiles.values())
    assert not any(t.marked for t in under_layer.tiles.values())
    assert any(t.marked for t in top_layer.tiles.values())


def test_scroll_exposes_new_tiles():
    engine = load(
        "<body style='margin:0'><div style='height:3000px;"
        "background-color:#dddddd'>tall</div></body>",
        BASE_CSS,
        viewport=(640, 480),
    )
    comp = engine.compositor
    marked_before = sum(
        1 for l in comp.layers for t in l.tiles.values() if t.marked
    )
    comp.scroll_by(960)
    # Re-raster + draw after the scroll (as the engine's fast path does).
    tasks = comp.prepare_raster_tasks()
    for task in tasks:
        engine.ctx.tracer.switch(engine.ctx.raster_thread_ids()[0])
        comp.raster_tile(task)
    engine.ctx.tracer.switch(2)
    comp.draw_frame()
    marked_after = sum(1 for l in comp.layers for t in l.tiles.values() if t.marked)
    assert marked_after > marked_before


def test_low_res_tasks_created_when_enabled():
    engine = load(
        "<body><div style='height:600px;background-color:#cccccc'>x</div></body>",
        BASE_CSS,
        raster_low_res=True,
    )
    comp = engine.compositor
    for layer in comp.layers:
        for tile in layer.tiles.values():
            tile.dirty = True
    tasks = comp.prepare_raster_tasks()
    assert any(task.low_res for task in tasks)
    assert all(not task.presented for task in tasks if task.low_res)


def test_invalidate_dirties_intersecting_tiles():
    engine = load("<body><div style='height:600px'>x</div></body>", BASE_CSS)
    comp = engine.compositor
    for layer in comp.layers:
        for tile in layer.tiles.values():
            tile.dirty = False
    count = comp.invalidate(Rect(0, 0, 100, 100))
    assert count >= 1
    dirty = [t for l in comp.layers for t in l.tiles.values() if t.dirty]
    assert dirty


def test_commit_copies_items_to_cc_side():
    engine = load(
        "<body><div style='background-color:#123456;height:50px'>x</div></body>",
        BASE_CSS,
    )
    root = engine.compositor.layers[0]
    assert len(root.cc_items) == len(root.paint.items)
    for item, cc_cell in root.cc_items:
        assert cc_cell > 0


def test_frame_count_increments_on_draw():
    engine = load("<body><div style='height:10px'>x</div></body>", BASE_CSS)
    before = engine.compositor.frame_count
    engine.ctx.tracer.switch(2)
    engine.compositor.draw_frame()
    assert engine.compositor.frame_count == before + 1
