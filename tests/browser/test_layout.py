"""Unit tests for the layout engine."""

import pytest

from repro.browser.context import EngineConfig, EngineContext
from repro.browser.css.cssom import CSSOM
from repro.browser.css.parser import parse_css
from repro.browser.html import parse_html
from repro.browser.layout.engine import LayoutEngine
from repro.browser.layout.geometry import Rect
from repro.browser.style.resolver import StyleResolver


def layout_page(html, css="", viewport=(800, 600)):
    ctx = EngineContext(EngineConfig(viewport_width=viewport[0], viewport_height=viewport[1]))
    ctx.spawn_threads()
    region = ctx.alloc_bytes("html", len(html))
    parser = parse_html(ctx, html, region)
    cssom = CSSOM()
    if css:
        css_region = ctx.alloc_bytes("css", len(css))
        cssom.add_sheet(parse_css(ctx, "test.css", css, css_region))
    resolver = StyleResolver(ctx, cssom)
    resolver.resolve_document(parser.document)
    engine = LayoutEngine(ctx, resolver)
    tree = engine.layout_document(parser.document)
    return ctx, parser.document, tree


def box_of(doc, tree, ident):
    return tree.box_for(doc.get_element_by_id(ident))


def test_blocks_stack_vertically():
    _, doc, tree = layout_page(
        "<body><div id='a' style='height:100px'>x</div>"
        "<div id='b' style='height:50px'>y</div></body>"
    )
    a, b = box_of(doc, tree, "a"), box_of(doc, tree, "b")
    assert a.rect.h == 100
    assert b.rect.y >= a.rect.bottom


def test_explicit_and_percentage_width():
    _, doc, tree = layout_page(
        "<body style='margin:0;padding:0'>"
        "<div id='a' style='width:300px;height:10px'>.</div>"
        "<div id='b' style='width:50%;height:10px'>.</div></body>"
    )
    assert box_of(doc, tree, "a").rect.w == 300
    b = box_of(doc, tree, "b")
    assert b.rect.w == pytest.approx(b.parent.rect.w / 2, rel=0.1)


def test_auto_width_fills_container():
    _, doc, tree = layout_page(
        "<body style='margin:0'><div id='a' style='height:10px'>.</div></body>"
    )
    a = box_of(doc, tree, "a")
    assert a.rect.w > 700  # body content width minus UA margins


def test_margins_offset_position():
    _, doc, tree = layout_page(
        "<body style='margin:0;padding:0'>"
        "<div id='a' style='margin:20px;height:30px;width:100px'>.</div></body>"
    )
    a = box_of(doc, tree, "a")
    assert a.rect.x == pytest.approx(20)
    assert a.rect.y == pytest.approx(20)


def test_display_none_produces_no_box():
    _, doc, tree = layout_page(
        "<body><div id='a' style='display:none'>hidden</div>"
        "<div id='b' style='height:10px'>.</div></body>"
    )
    assert box_of(doc, tree, "a") is None
    assert box_of(doc, tree, "b") is not None


def test_head_content_not_laid_out():
    _, doc, tree = layout_page(
        "<head><title>T</title></head><body><div id='a'>x</div></body>"
    )
    title = doc.get_elements_by_tag("title")[0]
    assert tree.box_for(title) is None


def test_inline_block_wraps_into_rows():
    cards = "".join(
        f"<div class='c' id='c{i}'>x</div>" for i in range(5)
    )
    _, doc, tree = layout_page(
        f"<body style='margin:0;padding:0'>{cards}</body>",
        css=".c { display: inline-block; width: 300px; height: 100px; margin: 0; }",
        viewport=(700, 600),
    )
    # 700px fits two 300px cards per row -> rows of 2, 2, 1.
    c0, c1, c2 = (box_of(doc, tree, f"c{i}") for i in range(3))
    assert c0.rect.y == c1.rect.y
    assert c1.rect.x > c0.rect.x
    assert c2.rect.y > c0.rect.y  # wrapped


def test_fixed_position_against_viewport():
    _, doc, tree = layout_page(
        "<body><div id='f' style='position:fixed;top:10px;left:20px;"
        "width:50px;height:50px'>.</div></body>"
    )
    f = box_of(doc, tree, "f")
    assert (f.rect.x, f.rect.y) == (20, 10)


def test_absolute_position_out_of_flow():
    _, doc, tree = layout_page(
        "<body style='margin:0'><div id='a' style='position:absolute;top:100px;"
        "left:0px;width:10px;height:10px'>.</div>"
        "<div id='b' style='height:30px'>.</div></body>"
    )
    b = box_of(doc, tree, "b")
    # The absolute box does not push the in-flow sibling down.
    assert b.rect.y < 100


def test_text_height_grows_with_content():
    short = "<body style='margin:0'><div id='a'>word</div></body>"
    long_text = "<body style='margin:0'><div id='a'>" + ("word " * 200) + "</div></body>"
    _, doc1, tree1 = layout_page(short)
    _, doc2, tree2 = layout_page(long_text)
    assert box_of(doc2, tree2, "a").rect.h > box_of(doc1, tree1, "a").rect.h


def test_replaced_elements_use_attributes():
    _, doc, tree = layout_page(
        "<body><img id='i' src='x.png' width='123' height='45'></body>"
    )
    i = box_of(doc, tree, "i")
    assert (i.rect.w, i.rect.h) == (123, 45)


def test_document_height_covers_content():
    _, doc, tree = layout_page(
        "<body style='margin:0'><div style='height:2000px'>.</div></body>"
    )
    assert tree.document_height() >= 2000


def test_layout_emits_geometry_records():
    ctx, doc, tree = layout_page("<body><div id='a'>x</div></body>")
    names = [name for _, name in ctx.tracer.symbols]
    assert "blink::layout::LayoutView::UpdateLayout" in names


def test_rect_helpers():
    a = Rect(0, 0, 10, 10)
    b = Rect(5, 5, 10, 10)
    assert a.intersects(b)
    assert a.intersection(b) == Rect(5, 5, 5, 5)
    assert a.union(b) == Rect(0, 0, 15, 15)
    assert not a.contains_rect(b)
    assert Rect(0, 0, 20, 20).contains_rect(b)
    assert a.translate(1, 2) == Rect(1, 2, 10, 10)
    assert Rect(0, 0, 0, 5).is_empty()
    assert a.contains_point(9.5, 9.5)
    assert not a.contains_point(10, 10)


def test_flex_row_wraps_children():
    cards = "".join(f"<div class='c' id='f{i}'>x</div>" for i in range(5))
    _, doc, tree = layout_page(
        f"<body style='margin:0;padding:0'><div id='flex' style='display:flex'>{cards}</div></body>",
        css=".c { width: 300px; height: 100px; margin: 0; }",
        viewport=(700, 600),
    )
    f0, f1, f2 = (box_of(doc, tree, f"f{i}") for i in range(3))
    assert f0.rect.y == f1.rect.y
    assert f1.rect.x > f0.rect.x
    assert f2.rect.y > f0.rect.y  # wrapped to the second row
    flex = box_of(doc, tree, "flex")
    assert flex.rect.h >= 300  # three rows of 100px


def test_font_metrics_proportional():
    from repro.browser.layout.fonts import char_advance, line_count, measure_text

    assert measure_text("iiii", 16) < measure_text("mmmm", 16)
    assert char_advance("m", 16) > char_advance("i", 16)
    assert measure_text("", 16) == 0.0
    assert line_count("", 16, 100) == 0
    assert line_count("word", 16, 1000) == 1
    # A long text wraps into more lines in a narrower container.
    text = "the quick brown fox jumps over the lazy dog " * 5
    assert line_count(text, 16, 200) > line_count(text, 16, 600)


def test_narrow_text_wraps_more_than_wide():
    text = "word " * 60
    _, doc1, tree1 = layout_page(
        f"<body style='margin:0'><div id='a' style='width:150px'>{text}</div></body>"
    )
    _, doc2, tree2 = layout_page(
        f"<body style='margin:0'><div id='a' style='width:600px'>{text}</div></body>"
    )
    assert box_of(doc1, tree1, "a").rect.h > box_of(doc2, tree2, "a").rect.h
