"""Unit tests for the scheduler, network stack, and IPC channel."""

import pytest

from repro.browser.context import EngineConfig, EngineContext, IO_THREAD, MAIN_THREAD
from repro.browser.ipc.channel import IPCChannel
from repro.browser.net.loader import NetworkStack, Resource
from repro.browser.scheduler.loop import Scheduler
from repro.trace.records import InstrKind


def make_ctx():
    ctx = EngineContext()
    ctx.spawn_threads()
    return ctx


# -- scheduler ------------------------------------------------------------ #


def test_tasks_run_in_post_order_per_thread():
    ctx = make_ctx()
    sched = Scheduler(ctx)
    order = []
    sched.post(MAIN_THREAD, "a", lambda: order.append("a"))
    sched.post(MAIN_THREAD, "b", lambda: order.append("b"))
    sched.run_until_idle()
    assert order == ["a", "b"]


def test_round_robin_across_threads():
    ctx = make_ctx()
    sched = Scheduler(ctx)
    order = []
    sched.post(2, "comp", lambda: order.append("comp"))
    sched.post(MAIN_THREAD, "main", lambda: order.append("main"))
    sched.run_until_idle()
    # Sorted-tid round robin: main (tid 1) before compositor (tid 2).
    assert order == ["main", "comp"]


def test_tasks_can_post_more_tasks():
    ctx = make_ctx()
    sched = Scheduler(ctx)
    order = []

    def first():
        order.append(1)
        sched.post(MAIN_THREAD, "second", lambda: order.append(2))

    sched.post(MAIN_THREAD, "first", first)
    sched.run_until_idle()
    assert order == [1, 2]


def test_delayed_task_waits_for_clock():
    ctx = make_ctx()
    sched = Scheduler(ctx)
    fired = []
    sched.post_delayed(MAIN_THREAD, "later", lambda: fired.append(ctx.clock.now_us), 100.0)
    start = ctx.clock.now_us
    sched.run_until_idle()
    assert fired and fired[0] >= start + 100_000


def test_cross_thread_post_emits_futex_wake():
    ctx = make_ctx()
    sched = Scheduler(ctx)
    ctx.tracer.switch(MAIN_THREAD)
    sched.post(IO_THREAD, "x", lambda: None)
    futexes = [
        r for r in ctx.tracer.store.forward() if r.kind == InstrKind.SYSCALL and r.syscall == 202
    ]
    assert futexes, "cross-thread wake must issue a futex"


def test_scheduler_executes_on_target_thread():
    ctx = make_ctx()
    sched = Scheduler(ctx)
    seen = []
    sched.post(IO_THREAD, "x", lambda: seen.append(ctx.tracer.current_tid))
    sched.run_until_idle()
    assert seen == [IO_THREAD]


def test_promote_delayed_preserves_post_order_per_tid():
    # Equal ready times must not reorder: the seq counter breaks ties in
    # post order when _promote_delayed sorts the delayed heap.
    ctx = make_ctx()
    sched = Scheduler(ctx)
    order = []
    for tag in ("a", "b", "c"):
        sched.post_delayed(MAIN_THREAD, tag, lambda t=tag: order.append(t), 50.0)
    sched.run_until_idle()
    assert order == ["a", "b", "c"]


def test_promote_delayed_interleaves_by_ready_time():
    ctx = make_ctx()
    sched = Scheduler(ctx)
    order = []
    sched.post_delayed(MAIN_THREAD, "late", lambda: order.append("late"), 200.0)
    sched.post_delayed(MAIN_THREAD, "early", lambda: order.append("early"), 10.0)
    sched.run_until_idle()
    assert order == ["early", "late"]


def test_wake_writes_attributed_to_posting_thread():
    ctx = make_ctx()
    sched = Scheduler(ctx)
    ctx.tracer.switch(MAIN_THREAD)
    sched.post(IO_THREAD, "x", lambda: None)
    signal_records = [
        r for r in ctx.tracer.store.forward()
        if ctx.tracer.symbols.name(r.fn).endswith("WaitableEvent::Signal")
    ]
    assert signal_records, "cross-thread post must signal the target"
    # The poster performs the wake; nothing here runs on the woken thread.
    assert all(r.tid == MAIN_THREAD for r in signal_records)


def test_post_brackets_the_wake_in_the_queue_lock():
    from repro.trace.records import sync_event_of

    ctx = make_ctx()
    sched = Scheduler(ctx)
    ctx.tracer.switch(MAIN_THREAD)
    sched.post(IO_THREAD, "x", lambda: None)
    store = ctx.tracer.store
    lock_events = [
        e
        for i, r in enumerate(store.forward())
        if (e := sync_event_of(i, r)) is not None and e.kind == "lock"
    ]
    assert [e.op for e in lock_events] == ["acquire", "release"]
    assert all(e.tid == MAIN_THREAD for e in lock_events)
    futex_at = next(
        i for i, r in enumerate(store.forward())
        if r.kind == InstrKind.SYSCALL and r.syscall == 202
    )
    assert lock_events[0].index < futex_at < lock_events[1].index


def test_run_until_idle_task_cap():
    ctx = make_ctx()
    sched = Scheduler(ctx)

    def reposter():
        sched.post(MAIN_THREAD, "again", reposter)

    sched.post(MAIN_THREAD, "start", reposter)
    executed = sched.run_until_idle(max_tasks=25)
    assert executed == 25


# -- network --------------------------------------------------------------- #


def test_fetch_requires_io_thread():
    ctx = make_ctx()
    net = NetworkStack(ctx, IPCChannel(ctx))
    ctx.tracer.switch(MAIN_THREAD)
    with pytest.raises(RuntimeError):
        net.fetch(Resource(url="u", kind="html", content="x"))


def test_fetch_allocates_body_region_and_idles_latency():
    ctx = make_ctx()
    net = NetworkStack(ctx, IPCChannel(ctx))
    ctx.tracer.switch(IO_THREAD)
    before = ctx.clock.now_us
    resource = net.fetch(Resource(url="u", kind="css", content="x" * 5000, latency_ms=50))
    assert resource.region is not None
    assert resource.region.size >= 5000 // 64
    assert ctx.clock.now_us - before >= 50_000


def test_fetch_emits_recvfrom_chunks():
    ctx = make_ctx()
    net = NetworkStack(ctx, IPCChannel(ctx))
    ctx.tracer.switch(IO_THREAD)
    net.fetch(Resource(url="u", kind="js", content="y" * 10_000))
    recvs = [
        r for r in ctx.tracer.store.forward()
        if r.kind == InstrKind.SYSCALL and r.syscall == 45
    ]
    # 10 KB at ~1400 B per chunk -> at least 7 recvfroms.
    assert len(recvs) >= 7
    assert all(r.mem_written for r in recvs)


def test_tls_decrypt_connects_wire_to_body():
    ctx = make_ctx()
    net = NetworkStack(ctx, IPCChannel(ctx))
    ctx.tracer.switch(IO_THREAD)
    resource = net.fetch(Resource(url="u", kind="js", content="z" * 2000))
    body_cells = set(resource.region.all_cells())
    decrypt_writes = set()
    for rec in ctx.tracer.store.forward():
        if ctx.tracer.symbols.name(rec.fn).startswith("net::SSLClientSocket"):
            decrypt_writes.update(rec.mem_written)
    assert body_cells & decrypt_writes, "decrypt must write the body cells"


def test_beacon_emits_sendto():
    ctx = make_ctx()
    channel = IPCChannel(ctx)
    net = NetworkStack(ctx, channel)
    ctx.tracer.switch(IO_THREAD)
    payload = ctx.memory.alloc_cell("payload")
    net.send_beacon("https://t.example/x", payload)
    sends = [
        r for r in ctx.tracer.store.forward()
        if r.kind == InstrKind.SYSCALL and r.syscall == 44
    ]
    assert sends
    assert payload in sends[-1].mem_read


# -- IPC --------------------------------------------------------------------- #


def test_ipc_serialize_then_flush():
    ctx = make_ctx()
    channel = IPCChannel(ctx)
    ctx.tracer.switch(MAIN_THREAD)
    buffer_cell = channel.serialize("Test", weight=2)
    ctx.tracer.switch(IO_THREAD)
    channel.flush_on_io_thread(buffer_cell)
    sends = [
        r for r in ctx.tracer.store.forward()
        if r.kind == InstrKind.SYSCALL and r.syscall == 44
    ]
    assert sends
    assert buffer_cell in sends[-1].mem_read
    assert channel.sent == 1


def test_ipc_receive_returns_payload_cells():
    ctx = make_ctx()
    channel = IPCChannel(ctx)
    ctx.tracer.switch(IO_THREAD)
    cells = channel.receive("Nav", payload_size=3)
    assert len(cells) == 3
    assert channel.received == 1
    recvs = [
        r for r in ctx.tracer.store.forward()
        if r.kind == InstrKind.SYSCALL and r.syscall == 45
    ]
    assert set(cells) <= set(recvs[-1].mem_written)


def test_ipc_round_trip_preserves_payload_dataflow():
    # serialize -> flush: the pickle ops read the payload cells into the
    # buffer, and the flush's sendto reads that same buffer — so the
    # payload is connected to the wire through the trace's dataflow.
    ctx = make_ctx()
    channel = IPCChannel(ctx)
    ctx.tracer.switch(MAIN_THREAD)
    payload = tuple(ctx.memory.alloc_cell(f"p{i}") for i in range(2))
    buffer_cell = channel.serialize("Frame", payload=payload, weight=4)
    ctx.tracer.switch(IO_THREAD)
    channel.flush_on_io_thread(buffer_cell)
    store = ctx.tracer.store
    pickled_reads = set()
    for rec in store.forward():
        if buffer_cell in rec.mem_written:
            pickled_reads.update(rec.mem_read)
    assert set(payload) <= pickled_reads
    sends = [
        r for r in store.forward()
        if r.kind == InstrKind.SYSCALL and r.syscall == 44
    ]
    assert buffer_cell in sends[-1].mem_read


def test_ipc_weight_accounting():
    ctx = make_ctx()
    channel = IPCChannel(ctx)
    ctx.tracer.switch(MAIN_THREAD)
    buffer_cell = channel.serialize("Metrics", weight=6)
    pickles = [
        r for r in ctx.tracer.store.forward()
        if buffer_cell in r.mem_written
        and ctx.tracer.symbols.name(r.fn) == "ipc::ChannelMojo::Send"
    ]
    # One header write plus exactly `weight` pickle ops.
    assert len(pickles) == 7
    assert channel.sent == 1


def test_ipc_records_land_on_their_endpoint_threads():
    ctx = make_ctx()
    channel = IPCChannel(ctx)
    ctx.tracer.switch(MAIN_THREAD)
    buffer_cell = channel.serialize("Swap")
    ctx.tracer.switch(IO_THREAD)
    channel.flush_on_io_thread(buffer_cell)
    channel.receive("Ack")
    by_fn = {}
    for rec in ctx.tracer.store.forward():
        by_fn.setdefault(ctx.tracer.symbols.name(rec.fn), set()).add(rec.tid)
    assert by_fn["ipc::ChannelMojo::Send"] == {MAIN_THREAD}
    assert by_fn["ipc::ChannelMojo::WriteToPipe"] == {IO_THREAD}
    assert by_fn["ipc::ChannelMojo::OnMessageReceived"] == {IO_THREAD}


def test_ipc_channel_is_a_sync_object():
    # Every serialize releases the channel, every flush/receive acquires
    # it: the race detector sees the Mojo pipe as a release/acquire pair.
    from repro.trace.records import sync_event_of

    ctx = make_ctx()
    channel = IPCChannel(ctx)
    ctx.tracer.switch(MAIN_THREAD)
    buffer_cell = channel.serialize("Swap")
    ctx.tracer.switch(IO_THREAD)
    channel.flush_on_io_thread(buffer_cell)
    channel.receive("Ack")
    events = [
        e
        for i, r in enumerate(ctx.tracer.store.forward())
        if (e := sync_event_of(i, r)) is not None and e.kind == "ipc"
    ]
    assert [e.op for e in events] == ["release", "acquire", "acquire"]
    assert all(e.obj == channel.sync_cell for e in events)
