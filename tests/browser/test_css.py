"""Unit tests for CSS values, selectors, and the parser."""

import pytest

from repro.browser.context import EngineContext
from repro.browser.css import (
    Color,
    Length,
    TRANSPARENT,
    expand_shorthand,
    parse_css,
    parse_selector,
    parse_selector_list,
    parse_stylesheet_source,
    parse_value,
)
from repro.browser.html import Element


def make_ctx():
    ctx = EngineContext()
    ctx.spawn_threads()
    return ctx


# -- values -------------------------------------------------------------- #


def test_parse_lengths():
    assert parse_value("width", "100px") == Length(100)
    assert parse_value("width", "50%") == Length(50, percent=True)
    assert parse_value("font-size", "2em") == Length(32)
    assert Length(50, percent=True).resolve(200) == 100


def test_parse_colors():
    assert parse_value("color", "#fff") == Color(255, 255, 255)
    assert parse_value("color", "#102030") == Color(16, 32, 48)
    assert parse_value("background-color", "red") == Color(230, 30, 30)
    assert parse_value("background-color", "transparent") == TRANSPARENT
    rgba = parse_value("color", "rgba(1, 2, 3, 0.5)")
    assert rgba == Color(1, 2, 3, 0.5)
    assert not rgba.opaque


def test_parse_numbers_and_keywords():
    assert parse_value("opacity", "0.5") == 0.5
    assert parse_value("z-index", "3") == 3.0
    assert parse_value("display", "block") == "block"


def test_expand_shorthand():
    assert expand_shorthand("margin", "4px") == {
        "margin-top": "4px",
        "margin-right": "4px",
        "margin-bottom": "4px",
        "margin-left": "4px",
    }
    expanded = expand_shorthand("padding", "1px 2px")
    assert expanded["padding-top"] == "1px"
    assert expanded["padding-right"] == "2px"
    assert expanded["padding-bottom"] == "1px"
    assert expanded["padding-left"] == "2px"
    assert expand_shorthand("width", "3px") == {"width": "3px"}


# -- selectors ------------------------------------------------------------ #


def test_selector_specificity():
    assert parse_selector("div").specificity() == (0, 0, 1)
    assert parse_selector(".a.b").specificity() == (0, 2, 0)
    assert parse_selector("#x .y div").specificity() == (1, 1, 1)


def test_selector_matching_simple():
    ctx = make_ctx()
    el = Element(ctx, "div")
    el.set_attribute("class", "card featured")
    el.set_attribute("id", "main")
    assert parse_selector("div").matches(el)
    assert parse_selector(".card").matches(el)
    assert parse_selector("#main").matches(el)
    assert parse_selector("div.card.featured").matches(el)
    assert not parse_selector("span").matches(el)
    assert not parse_selector(".missing").matches(el)


def test_selector_attribute():
    ctx = make_ctx()
    el = Element(ctx, "input")
    el.set_attribute("type", "text")
    assert parse_selector("input[type]").matches(el)
    assert parse_selector("input[type=text]").matches(el)
    assert not parse_selector("input[type=radio]").matches(el)


def test_selector_descendant_and_child():
    ctx = make_ctx()
    outer = Element(ctx, "div")
    outer.set_attribute("class", "outer")
    mid = Element(ctx, "section")
    inner = Element(ctx, "span")
    outer.append_child(mid)
    mid.append_child(inner)
    assert parse_selector(".outer span").matches(inner)
    assert parse_selector("section > span").matches(inner)
    assert not parse_selector(".outer > span").matches(inner)


def test_selector_list():
    selectors = parse_selector_list("div, .a, #b")
    assert len(selectors) == 3


def test_selector_hover_never_matches_at_load():
    ctx = make_ctx()
    el = Element(ctx, "a")
    assert not parse_selector("a:hover").matches(el)


def test_selector_first_child():
    ctx = make_ctx()
    parent = Element(ctx, "ul")
    first = Element(ctx, "li")
    second = Element(ctx, "li")
    parent.append_child(first)
    parent.append_child(second)
    assert parse_selector("li:first-child").matches(first)
    assert not parse_selector("li:first-child").matches(second)


# -- stylesheet parser ----------------------------------------------------- #


def test_parse_stylesheet_rules():
    sheet = parse_stylesheet_source(
        "test",
        """
        .card { width: 200px; margin: 4px; }
        #hero, .banner { background-color: #123456; }
        """,
    )
    assert len(sheet.rules) == 2
    first = sheet.rules[0]
    assert len(first.selectors) == 1
    names = {d.name for d in first.declarations}
    assert "width" in names and "margin-top" in names
    second = sheet.rules[1]
    assert len(second.selectors) == 2


def test_parse_media_block_recursed():
    sheet = parse_stylesheet_source(
        "test", "@media (max-width: 600px) { .m { display: none; } }"
    )
    assert len(sheet.rules) == 1
    assert sheet.rules[0].selectors[0].source == ".m"


def test_parse_at_rule_counts_as_unmatched_bytes():
    sheet = parse_stylesheet_source(
        "test", "@keyframes spin { 0% { opacity: 0; } 100% { opacity: 1; } }"
    )
    assert len(sheet.rules) == 1
    assert sheet.rules[0].selectors == []
    assert sheet.used_bytes() == 0
    assert sheet.rule_bytes() > 0


def test_parse_comments_stripped_spans_kept():
    source = "/* a comment */ .x { color: red; }"
    sheet = parse_stylesheet_source("test", source)
    rule = sheet.rules[0]
    assert source[rule.span[0] : rule.span[1]].startswith(".x")


def test_important_flag():
    sheet = parse_stylesheet_source("test", ".x { color: red !important; }")
    assert sheet.rules[0].declarations[0].important


def test_traced_parse_allocates_cells():
    ctx = make_ctx()
    source = ".a { color: red; } .b { width: 10px; }"
    region = ctx.alloc_bytes("css", len(source))
    sheet = parse_css(ctx, "main.css", source, region)
    for rule in sheet.rules:
        assert rule.selector_cell >= 0
        for decl in rule.declarations:
            assert decl.cell >= 0


def test_used_bytes_accounting():
    sheet = parse_stylesheet_source("t", ".a { color: red; } .b { width: 1px; }")
    assert sheet.used_bytes() == 0
    sheet.rules[0].ever_matched = True
    assert sheet.used_bytes() == sheet.rules[0].byte_size()
