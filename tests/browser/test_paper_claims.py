"""Engine-level tests of specific behavioural claims from the paper."""

import pytest

from repro.browser import BrowserEngine, EngineConfig, PageSpec, UserAction
from repro.browser.context import COMPOSITOR_THREAD, MAIN_THREAD


def make_engine():
    engine = BrowserEngine(
        EngineConfig(viewport_width=640, viewport_height=480, load_animation_ticks=0)
    )
    html = (
        "<body style='margin:0'>"
        "<div id='tall' style='height:2000px;background-color:#eeeeee'>content</div>"
        "<button id='btn'>Go</button>"
        "<script src='a.js'></script></body>"
    )
    js = (
        "document.getElementById('btn').addEventListener('click', function(e) {"
        " document.getElementById('btn').textContent = 'Clicked'; });"
    )
    engine.load_page(PageSpec(url="t", html=html, scripts={"a.js": js}))
    return engine


def _thread_counts(engine):
    return engine.trace_store().instructions_per_thread()


def test_scroll_is_compositor_fast_path():
    """Paper V-A: 'user inputs that do not cause any major change to the
    rendered page, such as scrolling, are handled in the compositor
    thread' — the main thread stays (nearly) idle."""
    engine = make_engine()
    before = _thread_counts(engine)
    engine.run_session([UserAction(kind="scroll", amount=400, think_time_ms=10)])
    after = _thread_counts(engine)
    main_delta = after[MAIN_THREAD] - before[MAIN_THREAD]
    comp_delta = after[COMPOSITOR_THREAD] - before[COMPOSITOR_THREAD]
    assert comp_delta > 0, "scroll must run on the compositor"
    assert main_delta <= comp_delta * 0.1, (
        f"scroll leaked onto the main thread: main+{main_delta}, comp+{comp_delta}"
    )


def test_click_goes_through_main_thread():
    """Paper V-A: 'for other inputs, such as a mouse click to open a menu,
    the compositor thread notifies the main thread to render the
    changes'."""
    engine = make_engine()
    before = _thread_counts(engine)
    engine.run_session([UserAction(kind="click", target_id="btn", think_time_ms=10)])
    after = _thread_counts(engine)
    assert after[MAIN_THREAD] > before[MAIN_THREAD]
    assert engine.document.get_element_by_id("btn").text_content() == "Clicked"


def test_interaction_renders_new_frame():
    engine = make_engine()
    frames = engine.compositor.frame_count
    engine.run_session([UserAction(kind="click", target_id="btn", think_time_ms=10)])
    assert engine.compositor.frame_count > frames


def test_load_computations_dominate_interaction_computations():
    """Paper II-A / Figure 2: 'the computations of load time are much more
    intensive because the whole page is rendered from the ground up' while
    interactions only touch a few elements."""
    engine = make_engine()
    load_records = len(engine.trace_store())
    engine.run_session([UserAction(kind="click", target_id="btn", think_time_ms=10)])
    interaction_records = len(engine.trace_store()) - load_records
    assert interaction_records < load_records * 0.5


def test_hidden_menu_costs_nothing_until_opened():
    """Style/layout of display:none subtrees is skipped until a click
    reveals them (the imperceptible-computation case inverted)."""
    engine = BrowserEngine(
        EngineConfig(viewport_width=640, viewport_height=480, load_animation_ticks=0)
    )
    html = (
        "<body><button id='open'>Open</button>"
        "<div id='menu' style='display:none'>"
        + "".join(f"<p>item {i}</p>" for i in range(20))
        + "</div><script src='a.js'></script></body>"
    )
    js = (
        "document.getElementById('open').addEventListener('click', function(e) {"
        " document.getElementById('menu').style.display = 'block'; });"
    )
    engine.load_page(PageSpec(url="t", html=html, scripts={"a.js": js}))
    menu = engine.document.get_element_by_id("menu")
    assert engine.layout_tree.box_for(menu) is None, "hidden at load"
    engine.run_session([UserAction(kind="click", target_id="open", think_time_ms=10)])
    assert engine.layout_tree.box_for(menu) is not None, "laid out after opening"


# -- devtools inspectors ------------------------------------------------------ #


def test_devtools_dumps():
    from repro.browser.devtools import coverage_report, dump_dom, dump_layers

    engine = make_engine()
    dom = dump_dom(engine)
    assert "<body" in dom and "id=btn" in dom
    layers = dump_layers(engine)
    assert "(root)" in layers and "presented" in layers
    coverage = coverage_report(engine)
    assert "JS" in coverage and "a.js" in coverage
