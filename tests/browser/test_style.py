"""Unit tests for style resolution: cascade, inheritance, UA defaults."""

import pytest

from repro.browser.context import EngineContext
from repro.browser.css.cssom import CSSOM
from repro.browser.css.parser import parse_css
from repro.browser.css.values import Color, Length
from repro.browser.html import parse_html
from repro.browser.style.computed import ComputedStyle
from repro.browser.style.resolver import StyleResolver
from repro.browser.style.ua import ua_defaults_for


def resolve(html, css=""):
    ctx = EngineContext()
    ctx.spawn_threads()
    region = ctx.alloc_bytes("html", len(html))
    parser = parse_html(ctx, html, region)
    cssom = CSSOM()
    if css:
        css_region = ctx.alloc_bytes("css", len(css))
        cssom.add_sheet(parse_css(ctx, "t.css", css, css_region))
    resolver = StyleResolver(ctx, cssom)
    resolver.resolve_document(parser.document)
    return ctx, parser.document, resolver


def style_of(doc, resolver, ident):
    return resolver.style_of(doc.get_element_by_id(ident))


def test_ua_defaults_make_div_block_and_span_inline():
    _, doc, resolver = resolve("<body><div id='d'>x</div><span id='s'>y</span></body>")
    assert style_of(doc, resolver, "d").display == "block"
    assert style_of(doc, resolver, "s").display == "inline"


def test_ua_defaults_hide_head_elements():
    assert ua_defaults_for("script")["display"] == "none"
    assert ua_defaults_for("title")["display"] == "none"
    assert ua_defaults_for("unknown-tag") == {}


def test_author_rule_overrides_ua_default():
    _, doc, resolver = resolve(
        "<body><div id='d'>x</div></body>", "div { display: inline; }"
    )
    assert style_of(doc, resolver, "d").display == "inline"


def test_specificity_id_beats_class_beats_tag():
    css = """
    div { background-color: #111111; }
    .cls { background-color: #222222; }
    #the { background-color: #333333; }
    """
    _, doc, resolver = resolve(
        "<body><div id='the' class='cls'>x</div></body>", css
    )
    assert style_of(doc, resolver, "the").background_color == Color(0x33, 0x33, 0x33)


def test_later_rule_wins_at_equal_specificity():
    css = ".a { color: #111111; } .a { color: #222222; }"
    _, doc, resolver = resolve("<body><div id='d' class='a'>x</div></body>", css)
    assert style_of(doc, resolver, "d").color == Color(0x22, 0x22, 0x22)


def test_important_beats_inline():
    css = ".a { background-color: #111111 !important; }"
    _, doc, resolver = resolve(
        "<body><div id='d' class='a' style='background-color:#222222'>x</div></body>",
        css,
    )
    assert style_of(doc, resolver, "d").background_color == Color(0x11, 0x11, 0x11)


def test_inline_style_beats_rules():
    css = ".a { background-color: #111111; }"
    _, doc, resolver = resolve(
        "<body><div id='d' class='a' style='background-color:#222222'>x</div></body>",
        css,
    )
    assert style_of(doc, resolver, "d").background_color == Color(0x22, 0x22, 0x22)


def test_color_inherits_background_does_not():
    css = "#parent { color: #aa0000; background-color: #00aa00; }"
    _, doc, resolver = resolve(
        "<body><div id='parent'><div id='child'>x</div></div></body>", css
    )
    child = style_of(doc, resolver, "child")
    assert child.color == Color(0xAA, 0, 0)
    assert child.background_color.a == 0.0  # initial transparent


def test_font_size_inherits_through_levels():
    css = "#top { font-size: 30px; }"
    _, doc, resolver = resolve(
        "<body><div id='top'><div><span id='deep'>x</span></div></div></body>", css
    )
    assert style_of(doc, resolver, "deep").font_size == 30.0


def test_unmatched_rules_marked_unused():
    css = ".used { color: red; } .never { color: blue; }"
    ctx, doc, resolver = resolve("<body><div id='d' class='used'>x</div></body>", css)
    rules = resolver.cssom.all_rules()
    used = [r for r in rules if r.ever_matched]
    unused = [r for r in rules if not r.ever_matched]
    assert len(used) == 1
    assert len(unused) == 1


def test_resolve_subtree_after_mutation():
    ctx, doc, resolver = resolve(
        "<body><div id='d'>x</div></body>", "#d { width: 10px; }"
    )
    element = doc.get_element_by_id("d")
    element.set_attribute("style", "width: 77px")
    resolver.resolve_subtree(element)
    width = resolver.style_of(element).length_or_auto("width")
    assert width == Length(77)


def test_computed_style_helpers():
    style = ComputedStyle.initial()
    assert style.display == "inline"
    assert style.visible
    assert style.opacity == 1.0
    assert not style.creates_layer
    style.values["position"] = "fixed"
    assert style.creates_layer
    style.values["position"] = "static"
    style.values["opacity"] = 0.4
    assert style.creates_layer
    assert not style.is_opaque


def test_creates_layer_for_will_change_and_transform():
    style = ComputedStyle.initial()
    style.values["will-change"] = "transform"
    assert style.creates_layer
    style = ComputedStyle.initial()
    style.values["transform"] = "translatex(10px)"
    assert style.creates_layer


def test_z_index_parsing_into_layer_order():
    style = ComputedStyle.initial()
    style.values["z-index"] = 7.0
    assert style.z_index == 7
    assert style.has_explicit_z


def test_descendant_selector_cascades():
    css = ".outer span { color: #0000aa; }"
    _, doc, resolver = resolve(
        "<body><div class='outer'><p><span id='s'>x</span></p></div></body>", css
    )
    assert style_of(doc, resolver, "s").color == Color(0, 0, 0xAA)
