"""Semantics tests for JS value coercion and runtime helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.browser.context import EngineContext
from repro.browser.js.lexer import JSLexError, tokenize_js
from repro.browser.js.values import (
    JSArray,
    JSObject,
    js_to_number,
    js_to_string,
    js_truthy,
    js_typeof,
)


def make_ctx():
    ctx = EngineContext()
    ctx.spawn_threads()
    return ctx


# -- coercions ----------------------------------------------------------- #


def test_truthiness_table():
    assert not js_truthy(None)
    assert not js_truthy(False)
    assert not js_truthy(0.0)
    assert not js_truthy("")
    assert js_truthy(True)
    assert js_truthy(1.5)
    assert js_truthy("x")
    assert js_truthy(JSObject(make_ctx()))


def test_to_number_coercions():
    assert js_to_number("42") == 42.0
    assert js_to_number("") == 0.0
    assert js_to_number(None) == 0.0
    assert js_to_number(True) == 1.0
    assert js_to_number(False) == 0.0
    assert js_to_number("not a number") != js_to_number("not a number")  # NaN


def test_to_string_numbers():
    assert js_to_string(3.0) == "3"
    assert js_to_string(3.5) == "3.5"
    assert js_to_string(float("nan")) == "NaN"
    assert js_to_string(None) == "undefined"
    assert js_to_string(True) == "true"


def test_to_string_composites():
    ctx = make_ctx()
    array = JSArray(ctx)
    array.elements = [1.0, "a", None]
    assert js_to_string(array) == "1,a,undefined"
    assert js_to_string(JSObject(ctx)) == "[object Object]"


def test_typeof_table():
    ctx = make_ctx()
    assert js_typeof(None) == "undefined"
    assert js_typeof(True) == "boolean"
    assert js_typeof(1.0) == "number"
    assert js_typeof("s") == "string"
    assert js_typeof(JSObject(ctx)) == "object"
    assert js_typeof(JSArray(ctx)) == "object"


# -- environment --------------------------------------------------------- #


def test_environment_scoping():
    from repro.browser.js.values import Environment, JSReferenceError

    ctx = make_ctx()
    outer = Environment(ctx)
    inner = Environment(ctx, outer)
    outer.define("x", 1.0)
    assert inner.get("x") == 1.0
    inner.define("x", 2.0)
    assert inner.get("x") == 2.0
    assert outer.get("x") == 1.0
    with pytest.raises(JSReferenceError):
        inner.get("missing")
    # Sloppy-mode assignment to an undeclared name creates a global.
    inner.set("implicit", 7.0)
    assert outer.get("implicit") == 7.0


def test_array_index_cells_bounded():
    ctx = make_ctx()
    array = JSArray(ctx)
    cells = {array.index_cell(i) for i in range(1000)}
    assert len(cells) <= JSArray.CELL_BOUND


# -- lexer robustness ------------------------------------------------------ #


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60))
@settings(max_examples=150, deadline=None)
def test_lexer_terminates_on_printable_ascii(source):
    """The tokenizer either produces tokens or raises JSLexError — never
    hangs or crashes with anything else."""
    try:
        tokens = tokenize_js(source)
    except JSLexError:
        return
    assert tokens[-1].kind == "eof"
    # Spans are within bounds and non-decreasing.
    last = 0
    for token in tokens[:-1]:
        assert 0 <= token.start <= token.end <= len(source)
        assert token.start >= last
        last = token.start


@given(st.lists(st.sampled_from(["foo", "bar42", "_x", "$y"]), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_lexer_identifier_round_trip(names):
    source = " ".join(names)
    tokens = tokenize_js(source)
    idents = [t.value for t in tokens if t.kind == "ident"]
    assert idents == names
