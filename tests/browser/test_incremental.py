"""The incremental frame pipeline: identity, savings, invalidation edges."""

import dataclasses

import pytest

from repro.browser import BrowserEngine, EngineConfig, PageSpec
from repro.browser.invalidation import (
    LAYOUT,
    PAINT,
    STYLE,
    DirtySet,
    is_connected,
    join,
)
from repro.trace.lint import lint_trace
from repro.workloads import benchmark


def _run(name, incremental=True):
    bench = benchmark(name)
    config = dataclasses.replace(bench.config, incremental=incremental)
    engine = BrowserEngine(config)
    engine.load_page(bench.page)
    engine.run_session(bench.actions)
    return engine


def _display_items(engine):
    return [
        (item.kind, item.rect, item.color, item.owner_id)
        for layer in engine.paint_layers
        for item in layer.items
    ]


@pytest.fixture(scope="module")
def ticker_pair():
    return _run("ticker", incremental=True), _run("ticker", incremental=False)


def test_frame0_identical_between_modes(ticker_pair):
    inc, leg = ticker_pair
    si, sl = inc.trace_store(), leg.trace_store()
    fi, fl = si.frame_spans()[0], sl.frame_spans()[0]
    assert fi.kind == fl.kind == "load"
    ri = list(si.records())[fi.begin : fi.end + 1]
    rl = list(sl.records())[fl.begin : fl.end + 1]
    assert ri == rl, "load frame must be byte-identical in both modes"


def test_steady_state_frames_are_smaller(ticker_pair):
    inc, _ = ticker_pair
    spans = inc.trace_store().frame_spans()
    assert len(spans) >= 5
    load = spans[0].n_records()
    for span in spans[1:]:
        assert span.n_records() < load * 0.5, (
            f"update frame {span.frame_id} ran {span.n_records()} of "
            f"{load} load-frame records"
        )


def test_incremental_mode_saves_over_legacy(ticker_pair):
    inc, leg = ticker_pair
    inc_updates = [s.n_records() for s in inc.trace_store().frame_spans()[1:]]
    leg_updates = [s.n_records() for s in leg.trace_store().frame_spans()[1:]]
    assert len(inc_updates) == len(leg_updates)
    assert sum(inc_updates) < sum(leg_updates)


def test_final_display_lists_match_legacy(ticker_pair):
    inc, leg = ticker_pair
    assert _display_items(inc) == _display_items(leg)


@pytest.mark.parametrize("name", ["ticker", "livefeed", "scrollseq"])
def test_multiframe_traces_lint_clean(name):
    engine = _run(name)
    report = lint_trace(engine.trace_store())
    assert report.ok, report.summary()


def test_livefeed_display_lists_match_legacy():
    inc, leg = _run("livefeed", True), _run("livefeed", False)
    assert _display_items(inc) == _display_items(leg)
    si, sl = inc.trace_store(), leg.trace_store()
    fi, fl = si.frame_spans()[0], sl.frame_spans()[0]
    ri = list(si.records())[fi.begin : fi.end + 1]
    rl = list(sl.records())[fl.begin : fl.end + 1]
    assert ri == rl


# --------------------------------------------------------------------- #
# Invalidation edge cases                                               #
# --------------------------------------------------------------------- #

_EDGE_HTML = """<!DOCTYPE html>
<html>
<head><link rel="stylesheet" href="edge.css"></head>
<body>
<div class="box" id="target">steady</div>
<div class="box" id="other">other</div>
<script src="edge.js"></script>
</body>
</html>
"""

_EDGE_CSS = """
body { margin: 0; background-color: #ffffff; }
.box { width: 200px; height: 50px; background-color: #dddddd; }
"""


def _edge_engine(js):
    engine = BrowserEngine(EngineConfig(viewport_width=640, viewport_height=480))
    engine.load_page(
        PageSpec(
            url="https://edge.test/",
            html=_EDGE_HTML,
            stylesheets={"edge.css": _EDGE_CSS},
            scripts={"edge.js": js},
        )
    )
    return engine


def test_noop_mutation_renders_no_frame():
    # Writing the value an element already holds must not dirty anything.
    js = """
setTimeout(function() {
    var el = document.getElementById('target');
    el.textContent = 'steady';
    el.className = 'box';
    el.setAttribute('id', 'target');
}, 20);
"""
    engine = _edge_engine(js)
    spans = engine.trace_store().frame_spans()
    assert len(spans) == 1, "no-op writes must not schedule an update frame"


def test_detached_subtree_mutation_renders_no_frame():
    # Mutating a node that is not connected to the document is invisible.
    js = """
setTimeout(function() {
    var ghost = document.createElement('div');
    ghost.setAttribute('class', 'box');
    ghost.textContent = 'never shown';
}, 20);
"""
    engine = _edge_engine(js)
    spans = engine.trace_store().frame_spans()
    assert len(spans) == 1, "detached mutations must not schedule a frame"


def test_real_mutation_renders_one_update_frame():
    js = """
setTimeout(function() {
    document.getElementById('target').textContent = 'changed';
}, 20);
"""
    engine = _edge_engine(js)
    spans = engine.trace_store().frame_spans()
    assert [s.kind for s in spans] == ["load", "update"]
    assert spans[1].n_records() < spans[0].n_records()


def test_mutation_during_mutation_handler_defers_to_next_frame():
    # A handler that runs while a frame is in flight must not nest frames:
    # its damage is deferred to a fresh frame after the current one ends.
    js = """
var n = 0;
setTimeout(function() {
    document.getElementById('target').textContent = 'first';
    document.getElementById('other').textContent = 'second';
}, 20);
"""
    engine = _edge_engine(js)
    spans = engine.trace_store().frame_spans()
    report = lint_trace(engine.trace_store())
    assert report.ok, report.summary()
    assert [s.kind for s in spans][0] == "load"
    assert all(s.complete for s in spans)


# --------------------------------------------------------------------- #
# The dirty lattice itself                                              #
# --------------------------------------------------------------------- #


def test_join_is_monotone():
    assert join(PAINT, PAINT) == PAINT
    assert join(LAYOUT, LAYOUT) == LAYOUT
    assert join(PAINT, LAYOUT) == STYLE
    assert join(STYLE, PAINT) == STYLE
    with pytest.raises(ValueError):
        join("bogus", PAINT)


def test_dirtyset_collapses_nested_elements():
    engine = _edge_engine("")
    doc = engine.document
    body = doc.body()
    target = doc.get_element_by_id("target")
    dirty = DirtySet()
    dirty.mark(target, PAINT)
    dirty.mark(body, LAYOUT)
    roots = dirty.roots()
    # target is inside body: one root, and joining the descendant's PAINT
    # into the ancestor's LAYOUT widens to STYLE (incomparable levels).
    assert len(roots) == 1
    element, level = roots[0]
    assert element is body
    assert level == STYLE
    assert is_connected(target, doc)

    same = DirtySet()
    same.mark(target, PAINT)
    same.mark(target, PAINT)
    assert same.roots() == [(target, PAINT)]
