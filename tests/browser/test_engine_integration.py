"""Integration tests: full pipeline through BrowserEngine, then slicing."""

import pytest

from repro.browser import BrowserEngine, EngineConfig, PageSpec, UserAction
from repro.browser.context import COMPOSITOR_THREAD, IO_THREAD, MAIN_THREAD
from repro.profiler import Profiler, pixel_criteria, syscall_criteria

SIMPLE_CSS = """
body { margin: 0; background-color: #ffffff; }
.hero { width: 100%; height: 300px; background-color: #131921; }
.card { width: 200px; height: 150px; background-color: #eeeeee; margin: 8px; }
.unused-rule-one { border-width: 3px; color: orange; }
.unused-rule-two { padding: 40px; background-color: blue; }
"""

SIMPLE_JS = """
function usedAtLoad() {
    var hero = document.getElementById('hero');
    hero.setAttribute('data-ready', 'yes');
    return 1;
}
function neverCalledHelper(a, b) {
    var table = [];
    for (var i = 0; i < 50; i++) { table.push(a * i + b); }
    return table;
}
var analytics = { hits: 0 };
function trackPageView() {
    analytics.hits = analytics.hits + 1;
    var payload = 'pv=' + analytics.hits;
    navigator.sendBeacon('https://stats.example/collect', payload);
}
usedAtLoad();
trackPageView();
"""

SIMPLE_HTML = """<!DOCTYPE html>
<html>
<head>
<title>Test page</title>
<link rel="stylesheet" href="main.css">
</head>
<body>
<div id="hero" class="hero">Welcome to the test page</div>
<div class="card" id="card1">Card one content</div>
<div class="card" id="card2">Card two content</div>
<button id="menu-btn">Menu</button>
<script src="app.js"></script>
<script>
document.getElementById('menu-btn').addEventListener('click', function(e) {
    document.getElementById('card1').textContent = 'Menu is open now';
});
</script>
</body>
</html>
"""


def make_page():
    return PageSpec(
        url="https://example.test/",
        html=SIMPLE_HTML,
        stylesheets={"main.css": SIMPLE_CSS},
        scripts={"app.js": SIMPLE_JS},
    )


@pytest.fixture(scope="module")
def loaded_engine():
    engine = BrowserEngine(EngineConfig(viewport_width=640, viewport_height=480))
    engine.load_page(make_page())
    return engine


def test_load_reaches_first_frame(loaded_engine):
    assert loaded_engine.loaded
    store = loaded_engine.trace_store()
    assert len(store) > 500
    assert store.metadata.load_complete_index is not None
    assert store.metadata.tile_buffers, "raster must emit pixel criteria"


def test_all_threads_executed(loaded_engine):
    counts = loaded_engine.trace_store().instructions_per_thread()
    assert counts.get(MAIN_THREAD, 0) > 0
    assert counts.get(COMPOSITOR_THREAD, 0) > 0
    assert counts.get(IO_THREAD, 0) > 0
    raster_tids = loaded_engine.ctx.raster_thread_ids()
    assert any(counts.get(tid, 0) > 0 for tid in raster_tids)


def test_dom_built_and_styled(loaded_engine):
    doc = loaded_engine.document
    hero = doc.get_element_by_id("hero")
    assert hero is not None
    # The load-time script ran and touched the DOM.
    assert hero.get_attribute("data-ready") == "yes"
    style = loaded_engine.resolver.style_of(hero)
    assert style.background_color.r == 0x13


def test_layout_produced_geometry(loaded_engine):
    tree = loaded_engine.layout_tree
    hero_box = tree.box_for(loaded_engine.document.get_element_by_id("hero"))
    assert hero_box is not None
    assert hero_box.rect.h == 300.0
    assert tree.document_height() > 300.0


def test_pixel_slice_is_partial(loaded_engine):
    store = loaded_engine.trace_store()
    prof = Profiler(store)
    result = prof.pixel_slice()
    fraction = result.fraction()
    assert 0.05 < fraction < 0.95, f"implausible slice fraction {fraction:.2%}"


def test_never_called_js_outside_slice(loaded_engine):
    store = loaded_engine.trace_store()
    prof = Profiler(store)
    result = prof.pixel_slice()
    # Find records of the never-called helper: it is only ever parsed, so
    # no v8::js::neverCalledHelper frame may exist at all.
    names = [name for _, name in store.symbols]
    assert "v8::js::neverCalledHelper" not in names
    assert "v8::js::usedAtLoad" in names


def test_syscall_slice_superset_of_pixels(loaded_engine):
    store = loaded_engine.trace_store()
    prof = Profiler(store)
    pixels = prof.slice(pixel_criteria(store))
    syscalls = prof.combined_slice()
    missing = sum(
        1 for i in range(len(store)) if pixels.flags[i] and not syscalls.flags[i]
    )
    assert missing == 0, f"{missing} pixel-slice records missing from syscall slice"


def test_click_renders_change():
    engine = BrowserEngine(EngineConfig(viewport_width=640, viewport_height=480))
    engine.load_page(make_page())
    frames_before = engine.compositor.frame_count
    engine.run_session(
        [UserAction(kind="click", target_id="menu-btn", think_time_ms=100)]
    )
    card = engine.document.get_element_by_id("card1")
    assert card.text_content() == "Menu is open now"
    assert engine.compositor.frame_count > frames_before


def test_coverage_tracks_unused_js(loaded_engine):
    coverage = loaded_engine.interp.coverage
    assert coverage.total_bytes() > 0
    assert 0 < coverage.unused_bytes() < coverage.total_bytes()


def test_unused_css_rules_detected(loaded_engine):
    cssom = loaded_engine.cssom
    matched = [r for r in cssom.all_rules() if r.ever_matched]
    unmatched = [r for r in cssom.all_rules() if not r.ever_matched]
    assert matched, "some rules must match"
    assert unmatched, "the unused rules must not match"
