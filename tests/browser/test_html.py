"""Unit tests for the HTML tokenizer, tree builder, and DOM."""

import pytest

from repro.browser.context import EngineContext
from repro.browser.html import (
    Comment,
    Doctype,
    EndTag,
    HTMLLexError,
    RawText,
    StartTag,
    Text,
    parse_html,
    token_list,
)


def make_ctx():
    ctx = EngineContext()
    ctx.spawn_threads()
    return ctx


def parse(ctx, source):
    region = ctx.alloc_bytes("html", len(source))
    return parse_html(ctx, source, region)


# -- tokenizer ---------------------------------------------------------- #


def test_tokenize_basic():
    tokens = token_list("<div class=\"a\">hi</div>")
    assert isinstance(tokens[0], StartTag)
    assert tokens[0].name == "div"
    assert tokens[0].attributes == {"class": "a"}
    assert isinstance(tokens[1], Text)
    assert tokens[1].text == "hi"
    assert isinstance(tokens[2], EndTag)


def test_tokenize_attribute_forms():
    tokens = token_list("<input type=text disabled value='x'>")
    tag = tokens[0]
    assert tag.attributes == {"type": "text", "disabled": "", "value": "x"}


def test_tokenize_self_closing():
    tokens = token_list("<br/>")
    assert tokens[0].self_closing


def test_tokenize_comment_and_doctype():
    tokens = token_list("<!DOCTYPE html><!-- hey --><p>x</p>")
    assert isinstance(tokens[0], Doctype)
    assert isinstance(tokens[1], Comment)
    assert tokens[1].text.strip() == "hey"


def test_tokenize_script_raw_text():
    tokens = token_list("<script>if (a < b) { x(); }</script>")
    assert isinstance(tokens[0], StartTag)
    assert isinstance(tokens[1], RawText)
    assert "a < b" in tokens[1].text
    assert isinstance(tokens[2], EndTag)


def test_tokenize_unclosed_comment_raises():
    with pytest.raises(HTMLLexError):
        token_list("<!-- never closed")


def test_tokenize_spans_cover_source():
    source = "<div>abc</div>"
    tokens = token_list(source)
    assert tokens[0].span == (0, 5)
    assert tokens[1].span == (5, 8)
    assert tokens[2].span == (8, len(source))


# -- tree builder -------------------------------------------------------- #


def test_parse_simple_document():
    ctx = make_ctx()
    parser = parse(
        ctx,
        "<html><head><title>T</title></head>"
        "<body><div id='main'><p>hello</p></div></body></html>",
    )
    doc = parser.document
    assert doc.body() is not None
    main = doc.get_element_by_id("main")
    assert main is not None
    assert main.tag == "div"
    paragraphs = doc.get_elements_by_tag("p")
    assert len(paragraphs) == 1
    assert paragraphs[0].text_content() == "hello"


def test_parse_synthesizes_head_and_body():
    ctx = make_ctx()
    parser = parse(ctx, "<title>T</title><div>content</div>")
    doc = parser.document
    assert doc.head() is not None
    assert doc.body() is not None
    assert doc.get_elements_by_tag("title")[0].parent is doc.head()
    assert doc.get_elements_by_tag("div")[0].parent is doc.body()


def test_parse_auto_close_li():
    ctx = make_ctx()
    parser = parse(ctx, "<body><ul><li>a<li>b<li>c</ul></body>")
    ul = parser.document.get_elements_by_tag("ul")[0]
    assert [e.tag for e in ul.child_elements()] == ["li", "li", "li"]


def test_parse_void_elements_have_no_children():
    ctx = make_ctx()
    parser = parse(ctx, "<body><img src='x.png'><p>after</p></body>")
    img = parser.document.get_elements_by_tag("img")[0]
    assert img.children == []
    p = parser.document.get_elements_by_tag("p")[0]
    assert p.parent.tag == "body"


def test_parse_collects_scripts_and_styles():
    ctx = make_ctx()
    parser = parse(
        ctx,
        "<head><style>.a{color:red}</style></head>"
        "<body><script>var x = 1;</script></body>",
    )
    assert len(parser.scripts) == 1
    assert "var x = 1;" in parser.scripts[0][1]
    assert len(parser.styles) == 1
    assert ".a{color:red}" in parser.styles[0][1]


def test_parse_stray_end_tag_ignored():
    ctx = make_ctx()
    parser = parse(ctx, "<body><div>x</div></span></body>")
    assert parser.document.body() is not None


def test_parse_emits_trace_records():
    ctx = make_ctx()
    before = len(ctx.tracer.store)
    parse(ctx, "<body><div id='a'>text</div></body>")
    assert len(ctx.tracer.store) > before


def test_dom_classes_and_ancestors():
    ctx = make_ctx()
    parser = parse(ctx, "<body><div class='a b'><span id='s'>x</span></div></body>")
    span = parser.document.get_element_by_id("s")
    div = span.parent
    assert div.has_class("a") and div.has_class("b")
    assert [a.tag for a in span.ancestors()][:2] == ["div", "body"]


def test_dom_descendants_in_document_order():
    ctx = make_ctx()
    parser = parse(ctx, "<body><div><p>1</p><p>2</p></div><span>3</span></body>")
    body = parser.document.body()
    tags = [n.tag for n in body.descendant_elements()]
    assert tags == ["div", "p", "p", "span"]


def test_reindex_after_mutation():
    ctx = make_ctx()
    parser = parse(ctx, "<body><div id='a'>x</div></body>")
    doc = parser.document
    from repro.browser.html import Element

    new = Element(ctx, "div")
    new.set_attribute("id", "later")
    doc.body().append_child(new)
    assert doc.get_element_by_id("later") is new


def test_entities_decoded_in_text_and_attributes():
    from repro.browser.html.entities import decode_entities

    tokens = token_list('<div title="a &amp; b">1 &lt; 2 &copy; &#65;&#x42;</div>')
    assert tokens[0].attributes["title"] == "a & b"
    assert tokens[1].text == "1 < 2 © AB"
    assert decode_entities("&unknown; stays") == "&unknown; stays"
    assert decode_entities("no refs") == "no refs"
    assert decode_entities("&#xZZ;") == "&#xZZ;"
