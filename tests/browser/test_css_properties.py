"""Edge-case tests for CSS values and selector properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.browser.context import EngineContext
from repro.browser.css.parser import parse_declarations, parse_stylesheet_source
from repro.browser.css.selectors import (
    SelectorParseError,
    parse_selector,
    parse_selector_list,
)
from repro.browser.css.values import (
    Color,
    Length,
    PROPERTIES,
    initial_value,
    is_inherited,
    parse_value,
)
from repro.browser.html import Element


def test_property_registry_defaults():
    assert initial_value("display") == "inline"
    assert initial_value("opacity") == 1.0
    assert initial_value("nonexistent") is None
    assert is_inherited("color")
    assert not is_inherited("width")
    assert not is_inherited("nonexistent")


def test_every_property_has_an_initial_value():
    for name, spec in PROPERTIES.items():
        assert spec.initial is not None, name


def test_length_resolution():
    assert Length(10).resolve(1000) == 10
    assert Length(25, percent=True).resolve(200) == 50
    assert repr(Length(50, percent=True)) == "50%"
    assert repr(Length(12)) == "12px"


def test_color_repr_and_opacity():
    c = Color(1, 2, 3, 0.5)
    assert not c.opaque
    assert "rgba(1,2,3,0.5)" in repr(c)
    assert Color(0, 0, 0).opaque


def test_parse_value_fallbacks():
    # Unknown constructs degrade to the raw keyword.
    assert parse_value("width", "calc(100% - 20px)") == "calc(100% - 20px)"
    assert parse_value("color", "rgba(oops)") == "rgba(oops)"
    # Named colors only apply to color-ish properties.
    assert parse_value("display", "red") == "red"
    assert parse_value("border-color", "red") == Color(230, 30, 30)


def test_parse_declarations_skips_malformed():
    decls = parse_declarations("color: red; broken; : nope; width: 5px;;")
    names = [d.name for d in decls]
    assert names == ["color", "width"]


def test_nested_media_blocks():
    sheet = parse_stylesheet_source(
        "t", "@media screen { @media (min-width: 10px) { .x { color: red; } } }"
    )
    assert len(sheet.rules) == 1
    assert sheet.rules[0].selectors[0].source == ".x"


def test_unbalanced_braces_raise():
    from repro.browser.css.parser import CSSParseError

    with pytest.raises(CSSParseError):
        parse_stylesheet_source("t", ".x { color: red;")


def test_selector_list_skips_empty_parts():
    selectors = parse_selector_list("div, , .a,")
    assert len(selectors) == 2


def test_bad_selector_raises():
    with pytest.raises(SelectorParseError):
        parse_selector("..bad")
    with pytest.raises(SelectorParseError):
        parse_selector("")


# -- property-based: specificity ordering --------------------------------- #

_tags = st.sampled_from(["div", "span", "p", "a"])
_classes = st.lists(st.sampled_from(["a", "b", "c"]), max_size=3)


@st.composite
def compound_selectors(draw):
    tag = draw(st.one_of(st.none(), _tags))
    classes = draw(_classes)
    ident = draw(st.one_of(st.none(), st.sampled_from(["x", "y"])))
    parts = []
    if tag:
        parts.append(tag)
    if ident:
        parts.append(f"#{ident}")
    parts.extend(f".{c}" for c in classes)
    if not parts:
        parts = ["*"]
    return "".join(parts)


@given(compound_selectors())
@settings(max_examples=100, deadline=None)
def test_specificity_components_count_parts(source):
    selector = parse_selector(source)
    ids, classes, tags = selector.specificity()
    assert ids == source.count("#")
    assert classes == source.count(".")
    assert tags == (0 if source.startswith(("*", "#", ".")) else 1)


@given(compound_selectors())
@settings(max_examples=100, deadline=None)
def test_matching_is_deterministic(source):
    ctx = EngineContext()
    ctx.spawn_threads()
    element = Element(ctx, "div")
    element.set_attribute("class", "a b")
    element.set_attribute("id", "x")
    selector = parse_selector(source)
    assert selector.matches(element) == selector.matches(element)


@given(compound_selectors())
@settings(max_examples=100, deadline=None)
def test_universal_superset(source):
    """Anything a specific selector matches, `*` also matches."""
    ctx = EngineContext()
    ctx.spawn_threads()
    element = Element(ctx, "div")
    element.set_attribute("class", "a")
    element.set_attribute("id", "x")
    if parse_selector(source).matches(element):
        assert parse_selector("*").matches(element)
