"""Frame epochs: tracer validation, binary round trip, lint check."""

import pytest

from repro.machine import Tracer
from repro.machine.tracer import TILE_MARKER
from repro.trace.lint import lint_trace
from repro.trace.records import (
    FRAME_BEGIN_MARKER,
    FRAME_END_MARKER,
    FrameSpan,
    InstrKind,
    TraceRecord,
)
from repro.trace.store import load_trace, save_trace


def _frame_trace():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.frame_begin(0, "load")
    tracer.op("build", writes=(0x10,))
    tracer.op("paint", reads=(0x10,), writes=(0x20,))
    tracer.marker(TILE_MARKER, cells=(0x20,))
    tracer.frame_end(0)
    tracer.frame_begin(1, "update")
    tracer.op("tick", reads=(0x10,), writes=(0x21,))
    tracer.marker(TILE_MARKER, cells=(0x21,))
    tracer.frame_end(1)
    return tracer.store


def test_frame_spans_recorded():
    store = _frame_trace()
    spans = store.frame_spans()
    assert [s.frame_id for s in spans] == [0, 1]
    assert [s.kind for s in spans] == ["load", "update"]
    assert all(s.complete for s in spans)
    records = list(store.records())
    for span in spans:
        assert records[span.begin].marker == FRAME_BEGIN_MARKER
        assert records[span.end].marker == FRAME_END_MARKER
        assert span.n_records() == span.end - span.begin + 1


def test_frame_round_trip(tmp_path):
    store = _frame_trace()
    path = tmp_path / "frames.ucwa"
    save_trace(store, path)
    loaded = load_trace(path)
    assert list(loaded.records()) == list(store.records())
    assert [
        (s.frame_id, s.kind, s.begin, s.end) for s in loaded.frame_spans()
    ] == [(s.frame_id, s.kind, s.begin, s.end) for s in store.frame_spans()]


def test_incomplete_frame_round_trips_as_incomplete(tmp_path):
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.frame_begin(0, "load")
    tracer.op("work", writes=(0x10,))
    path = tmp_path / "open.ucwa"
    save_trace(tracer.store, path)
    loaded = load_trace(path)
    assert loaded.frame_spans() == []  # only complete spans qualify
    spans = loaded.metadata.frames
    assert len(spans) == 1 and not spans[0].complete


def test_tracer_rejects_nested_frames():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.frame_begin(0, "load")
    with pytest.raises(RuntimeError, match="still open"):
        tracer.frame_begin(1, "update")


def test_tracer_rejects_non_increasing_frame_ids():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.frame_begin(1, "load")
    tracer.frame_end(1)
    with pytest.raises(RuntimeError, match="must increase"):
        tracer.frame_begin(1, "update")


def test_tracer_rejects_mismatched_frame_end():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.frame_begin(0, "load")
    with pytest.raises(RuntimeError, match="not the open frame"):
        tracer.frame_end(3)


def test_lint_accepts_clean_frame_trace():
    report = lint_trace(_frame_trace())
    assert report.ok, report.summary()


def test_lint_flags_unbalanced_frame_markers():
    store = _frame_trace()
    store.extend(
        [TraceRecord(tid=1, pc=999, kind=InstrKind.MARKER, fn=0, marker=FRAME_END_MARKER)]
    )
    report = lint_trace(store)
    assert not report.ok
    assert any(i.check == "frame-epoch-monotonicity" for i in report.issues)


def test_lint_flags_overlapping_frame_spans():
    store = _frame_trace()
    spans = store.metadata.frames
    spans.append(FrameSpan(frame_id=2, kind="update", begin=spans[-1].end, end=None))
    report = lint_trace(store)
    assert any(i.check == "frame-epoch-monotonicity" for i in report.issues)
