"""Checkpoint sidecars: image round-trip and the consistency lint check."""

import dataclasses

import pytest

from repro.profiler.cdg import build_index
from repro.profiler.incremental import IncrementalSlicer, SliceCheckpoint
from repro.profiler.redundancy import frame_pixel_criteria
from repro.trace.checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointImage,
    sidecar_path,
)
from repro.trace.lint import lint_trace
from repro.trace.store import save_trace
from repro.trace.__main__ import main as trace_main
from repro.workloads.fuzz import random_frame_trace


@pytest.fixture(scope="module")
def store():
    return random_frame_trace(11)


@pytest.fixture(scope="module")
def checkpoint(store):
    """A populated checkpoint: every frame of the trace sliced once."""
    cdi = build_index(store.records())
    ckpt = SliceCheckpoint(trace_digest="t" * 64)
    for span in store.frame_spans():
        criteria = frame_pixel_criteria(store, span)
        IncrementalSlicer(store, cdi, criteria, checkpoint=ckpt).run()
    assert ckpt.memos and ckpt.facts
    return ckpt


# --------------------------------------------------------------------- #
# Image round-trip                                                      #
# --------------------------------------------------------------------- #


def test_image_round_trip(checkpoint, tmp_path):
    path = tmp_path / "t.ckpt"
    checkpoint.save(path)
    assert path.read_bytes().startswith(CHECKPOINT_MAGIC)
    loaded = SliceCheckpoint.load(path)
    assert loaded.options_key == checkpoint.options_key
    assert loaded.trace_digest == checkpoint.trace_digest
    assert [r.key() for r in loaded.regions] == [
        r.key() for r in checkpoint.regions
    ]
    assert set(loaded.facts) == set(checkpoint.facts)
    assert set(loaded.memos) == set(checkpoint.memos)
    for index, memo in checkpoint.memos.items():
        other = loaded.memos[index]
        assert other.entry == memo.entry
        assert other.exit == memo.exit
        assert other.flags == memo.flags
        assert other.extra == memo.extra
        assert other.min_depth == memo.min_depth
    for index, facts in checkpoint.facts.items():
        other = loaded.facts[index]
        assert other.digest == facts.digest
        assert other.pcs == facts.pcs
        assert other.footprint.mem_written == facts.footprint.mem_written


def test_image_bytes_round_trip(checkpoint):
    image = checkpoint.to_image()
    again = CheckpointImage.from_bytes(image.to_bytes())
    assert again == image


def test_truncated_image_rejected(checkpoint, tmp_path):
    data = checkpoint.to_image().to_bytes()
    with pytest.raises(ValueError, match="truncated"):
        CheckpointImage.from_bytes(data[: len(data) - 3])
    with pytest.raises(ValueError, match="not a UCWA checkpoint"):
        CheckpointImage.from_bytes(b"garbage" + data)


def test_sidecar_path():
    assert str(sidecar_path("/tmp/t.ucwa")).endswith("t.ucwa.ckpt")


# --------------------------------------------------------------------- #
# checkpoint-consistency lint                                           #
# --------------------------------------------------------------------- #


def _issues(store, image):
    report = lint_trace(store, checkpoint=image)
    return [i for i in report.issues if i.check == "checkpoint-consistency"]


def test_valid_checkpoint_lints_clean(store, checkpoint):
    assert _issues(store, checkpoint.to_image()) == []


def test_lint_catches_tampered_digest(store, checkpoint):
    image = checkpoint.to_image()
    index = next(iter(image.facts))
    image.facts[index] = dataclasses.replace(
        image.facts[index], digest="0" * 64
    )
    assert any("digest" in i.message for i in _issues(store, image))


def test_lint_catches_wrong_record_count(store, checkpoint):
    image = checkpoint.to_image()
    index = next(iter(image.facts))
    facts = image.facts[index]
    image.facts[index] = dataclasses.replace(
        facts, n_records=facts.n_records + 1
    )
    assert any("record(s)" in i.message for i in _issues(store, image))


def test_lint_catches_broken_tiling(store, checkpoint):
    image = checkpoint.to_image()
    lo, hi, frame_id, kind = image.regions[1]
    image.regions[1] = (lo + 1, hi, frame_id, kind)
    messages = [i.message for i in _issues(store, image)]
    assert any("does not continue the tiling" in m for m in messages)


def test_lint_catches_moved_frame_region(store, checkpoint):
    image = checkpoint.to_image()
    frame_pos = next(
        i for i, (_, _, frame_id, _) in enumerate(image.regions)
        if frame_id >= 0
    )
    lo, hi, frame_id, _kind = image.regions[frame_pos]
    image.regions[frame_pos] = (lo, hi, frame_id, "scroll")
    assert any(
        "does not match the trace's frame spans" in i.message
        for i in _issues(store, image)
    )


def test_lint_catches_memo_without_facts(store, checkpoint):
    image = checkpoint.to_image()
    index = next(iter(image.memos))
    del image.facts[index]
    assert any("no region facts" in i.message for i in _issues(store, image))


def test_lint_prefix_checkpoint_accepted(store):
    """A mid-stream save summarizes only a prefix; that must lint clean."""
    cdi = build_index(store.records())
    ckpt = SliceCheckpoint()
    spans = store.frame_spans()
    criteria = frame_pixel_criteria(store, spans[0])
    from repro.trace.stream import compute_regions

    prefix_hi = spans[0].end + 1
    regions = compute_regions(
        [s for s in store.metadata.complete_frames() if s.end < prefix_hi],
        prefix_hi,
    )

    class _Prefix:
        metadata = store.metadata
        symbols = store.symbols

        def __len__(self):
            return prefix_hi

        def span(self, lo, hi):
            return store.span(lo, hi)

    IncrementalSlicer(
        _Prefix(), cdi, criteria, checkpoint=ckpt, regions=regions
    ).run()
    assert _issues(store, ckpt.to_image()) == []


# --------------------------------------------------------------------- #
# CLI integration                                                       #
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def trace_on_disk(store, tmp_path_factory):
    path = tmp_path_factory.mktemp("ckpt") / "t.ucwa"
    save_trace(store, path)
    return path


def test_cli_lint_with_checkpoint(store, checkpoint, trace_on_disk, tmp_path, capsys):
    ckpt_path = tmp_path / "t.ckpt"
    checkpoint.save(ckpt_path)
    assert trace_main(
        ["lint", str(trace_on_disk), f"--checkpoint={ckpt_path}"]
    ) == 0
    out = capsys.readouterr().out
    assert "checkpoint-consistency" in out


def test_cli_lint_auto_sidecar(store, checkpoint, trace_on_disk, capsys):
    sidecar = sidecar_path(trace_on_disk)
    checkpoint.save(sidecar)
    try:
        assert trace_main(["lint", str(trace_on_disk)]) == 0
        assert "checkpoint-consistency" in capsys.readouterr().out
    finally:
        sidecar.unlink()


def test_cli_lint_tampered_checkpoint_fails(store, checkpoint, trace_on_disk, tmp_path, capsys):
    image = checkpoint.to_image()
    index = next(iter(image.facts))
    image.facts[index] = dataclasses.replace(
        image.facts[index], digest="0" * 64
    )
    ckpt_path = tmp_path / "bad.ckpt"
    image.save(ckpt_path)
    assert trace_main(
        ["lint", str(trace_on_disk), f"--checkpoint={ckpt_path}", "--json"]
    ) == 1
    out = capsys.readouterr().out
    assert "checkpoint-consistency" in out


def test_cli_lint_unreadable_checkpoint_exits_2(trace_on_disk, tmp_path, capsys):
    junk = tmp_path / "junk.ckpt"
    junk.write_bytes(b"not a checkpoint")
    assert trace_main(
        ["lint", str(trace_on_disk), f"--checkpoint={junk}"]
    ) == 2
    assert "cannot load checkpoint" in capsys.readouterr().err
