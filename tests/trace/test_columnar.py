"""Property tests for the columnar UCWA3 format (repro/trace/columnar.py).

The locked-down invariants:

* **round trip** — for every paper workload and a broad fuzz corpus,
  v2 -> v3 -> v2 is byte-identical (``serialize_trace`` over the loaded
  columnar trace reproduces the exact UCWA2 image);
* **digest invariance** — ``trace_digest`` is format-stable: the same
  logical trace hashes identically whether held as a row store or a
  (possibly index-carrying) columnar trace, so service cache keys never
  churn on a format migration;
* **lint transparency** — the sanitizer passes on converted traces
  exactly as it does on the originals;
* **hostile input** — malformed headers, truncated files, and corrupt
  section tables raise ``ValueError`` naming the file, never crash.
"""

import pytest

np = pytest.importorskip("numpy")

import struct

from repro.trace.columnar import (
    ColumnarTrace,
    convert_trace,
    load_columnar,
    save_columnar,
    serialize_columnar,
)
from repro.trace.lint import lint_or_raise
from repro.trace.store import (
    load_any_trace,
    load_trace,
    save_trace,
    serialize_trace,
    trace_digest,
)
from repro.workloads import benchmark, benchmark_names
from repro.workloads.fuzz import random_trace

FUZZ_SEEDS = range(32)


def _workload_store(name):
    from repro.harness.experiments import run_engine

    return run_engine(benchmark(name)).trace_store()


def _assert_round_trip(store, tmp_path, label):
    v2_image = serialize_trace(store)
    digest = trace_digest(store)

    cols = ColumnarTrace.from_store(store)
    assert len(cols) == len(store)
    # The columnar trace satisfies TraceSource: digest without conversion.
    assert trace_digest(cols) == digest, label

    path = tmp_path / f"{label}.ucwa"
    save_columnar(cols, path)
    loaded = load_columnar(path)
    assert len(loaded) == len(store)
    assert serialize_trace(loaded) == v2_image, (
        f"v2->v3->v2 not byte-identical for {label}"
    )
    assert trace_digest(loaded) == digest, label
    return loaded


@pytest.mark.parametrize("name", benchmark_names())
def test_workload_round_trip(name, tmp_path):
    store = _workload_store(name)
    loaded = _assert_round_trip(store, tmp_path, name)
    # Records materialize identically via the batched span path.
    for orig, back in zip(store.forward(), loaded.forward()):
        assert orig == back


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_round_trip(seed, tmp_path):
    store = random_trace(seed, target_records=800 + 67 * (seed % 5))
    _assert_round_trip(store, tmp_path, f"fuzz{seed}")


@pytest.mark.parametrize("name", ("bing", "ticker"))
def test_index_round_trip_and_digest_invariance(name, tmp_path):
    from repro.profiler.vectorized import attach_index

    store = _workload_store(name)
    digest = trace_digest(store)
    cols = ColumnarTrace.from_store(store)
    index = attach_index(cols)
    assert cols.index is index and index.n_edges() > 0

    # The derived INVT/EDGE sections must not leak into the digest.
    assert trace_digest(cols) == digest

    path = tmp_path / f"{name}-indexed.ucwa"
    save_columnar(cols, path)
    loaded = load_columnar(path)
    assert loaded.index is not None
    assert np.array_equal(loaded.index.edge_src, index.edge_src)
    assert np.array_equal(loaded.index.edge_tgt, index.edge_tgt)
    assert np.array_equal(loaded.index.inv_id, index.inv_id)
    assert np.array_equal(loaded.index.inv_call, index.inv_call)
    assert np.array_equal(loaded.index.inv_ret, index.inv_ret)
    assert np.array_equal(loaded.index.inv_fn, index.inv_fn)
    assert trace_digest(loaded) == digest
    assert serialize_trace(loaded) == serialize_trace(store)

    # A no-index file is strictly smaller and loads with index=None.
    bare = tmp_path / f"{name}-bare.ucwa"
    cols_bare = ColumnarTrace.from_store(store)
    save_columnar(cols_bare, bare)
    assert bare.stat().st_size < path.stat().st_size
    assert load_columnar(bare).index is None


@pytest.mark.parametrize("name", ("wiki_article", "scrollseq"))
def test_lint_passes_on_converted_trace(name, tmp_path):
    store = _workload_store(name)
    src = tmp_path / "src.ucwa"
    dst = tmp_path / "dst.ucwa"
    save_trace(store, src)
    convert_trace(src, dst, fmt="v3")
    report_orig = lint_or_raise(store)
    report_conv = lint_or_raise(load_columnar(dst))
    assert report_conv.counts == report_orig.counts
    assert [i.check for i in report_conv.issues] == [
        i.check for i in report_orig.issues
    ]


def test_convert_back_to_v2_is_byte_identical(tmp_path):
    store = random_trace(77, target_records=2_000)
    src = tmp_path / "src.ucwa"
    v3 = tmp_path / "mid.ucwa"
    back = tmp_path / "back.ucwa"
    save_trace(store, src)
    convert_trace(src, v3, fmt="v3")
    convert_trace(v3, back, fmt="v2")
    assert back.read_bytes() == src.read_bytes()
    with pytest.raises(ValueError, match="v9"):
        convert_trace(src, back, fmt="v9")


def test_load_any_trace_dispatches_on_header(tmp_path):
    store = random_trace(5, target_records=1_000)
    v2 = tmp_path / "a.ucwa"
    v3 = tmp_path / "b.ucwa"
    save_trace(store, v2)
    save_columnar(ColumnarTrace.from_store(store), v3)
    assert isinstance(load_any_trace(v3), ColumnarTrace)
    assert serialize_trace(load_any_trace(v3)) == serialize_trace(
        load_any_trace(v2)
    )
    # The row-store loader refuses v3 with a pointer to the right entry.
    with pytest.raises(ValueError, match="load_any_trace"):
        load_trace(v3)


def test_span_rebases_operand_offsets():
    store = random_trace(11, target_records=1_200)
    cols = ColumnarTrace.from_store(store)
    records = list(store.forward())
    lo, hi = len(records) // 3, 2 * len(records) // 3
    assert cols.span(lo, hi) == records[lo:hi]
    assert cols[len(records) - 1] == records[-1]
    assert cols[-1] == records[-1]
    with pytest.raises(IndexError):
        cols[len(records)]


# --------------------------------------------------------------------- #
# Hostile input: every malformation is a ValueError naming the file     #
# --------------------------------------------------------------------- #


@pytest.fixture()
def valid_v3(tmp_path):
    store = random_trace(2, target_records=600)
    cols = ColumnarTrace.from_store(store)
    path = tmp_path / "good.ucwa"
    save_columnar(cols, path)
    return path, bytearray(path.read_bytes())


def _expect_value_error(tmp_path, data, name):
    path = tmp_path / name
    path.write_bytes(bytes(data))
    with pytest.raises(ValueError) as err:
        load_columnar(path)
    assert name in str(err.value), (
        f"error for {name} does not name the file: {err.value}"
    )


def test_rejects_empty_file(tmp_path):
    _expect_value_error(tmp_path, b"", "empty.ucwa")


def test_rejects_wrong_header(tmp_path):
    _expect_value_error(tmp_path, b"UCWAX\n" + b"\x00" * 64, "hdr.ucwa")


def test_rejects_truncated_section_table(valid_v3, tmp_path):
    _, data = valid_v3
    _expect_value_error(tmp_path, data[:12], "table.ucwa")


def test_rejects_truncated_payload(valid_v3, tmp_path):
    _, data = valid_v3
    _expect_value_error(tmp_path, data[: len(data) - 16], "cut.ucwa")


def test_rejects_section_extent_past_eof(valid_v3, tmp_path):
    _, data = valid_v3
    # Inflate the first section's length field far past the file size.
    table_at = len(b"UCWA3\n") + 4
    tag, offset, length = struct.unpack_from("<4sQQ", data, table_at)
    struct.pack_into("<4sQQ", data, table_at, tag, offset, length + 10_000_000)
    _expect_value_error(tmp_path, data, "extent.ucwa")


def test_rejects_bad_array_width_code(valid_v3, tmp_path):
    path, data = valid_v3
    # CORE payload: u64 record count, then the first adaptive array header
    # byte (its width code).  Smash the code to an unsupported value.
    buf = path.read_bytes()
    table_at = len(b"UCWA3\n") + 4
    (n_sections,) = struct.unpack_from("<I", buf, len(b"UCWA3\n"))
    for k in range(n_sections):
        tag, offset, length = struct.unpack_from(
            "<4sQQ", buf, table_at + k * struct.calcsize("<4sQQ")
        )
        if tag == b"CORE":
            data[offset + 8] = 99
            break
    else:
        pytest.fail("no CORE section in fixture file")
    _expect_value_error(tmp_path, data, "width.ucwa")


def test_rejects_missing_required_section(valid_v3, tmp_path):
    _, data = valid_v3
    table_at = len(b"UCWA3\n") + 4
    tag, offset, length = struct.unpack_from("<4sQQ", data, table_at)
    struct.pack_into("<4sQQ", data, table_at, b"XXXX", offset, length)
    _expect_value_error(tmp_path, data, "missing.ucwa")


def test_serialize_columnar_is_deterministic():
    store = random_trace(9, target_records=900)
    a = serialize_columnar(ColumnarTrace.from_store(store))
    b = serialize_columnar(ColumnarTrace.from_store(store))
    assert a == b
