"""Unit tests for trace storage and the binary round trip."""

import pytest

from repro.machine import Tracer
from repro.machine.tracer import LOAD_COMPLETE_MARKER, TILE_MARKER
from repro.trace import (
    InstrKind,
    SymbolTable,
    TraceRecord,
    TraceStore,
    load_trace,
    save_trace,
)


def small_trace():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "root_main")
    tracer.spawn_thread(2, "Compositor", "root_comp")
    with tracer.function("blink::html::Parse"):
        tracer.op("a", reads=(0x1000, 0x1001), writes=(0x2000,))
        tracer.compare_and_branch("more", reads=(0x2000,))
    tracer.switch(2)
    with tracer.function("cc::Raster"):
        tracer.syscall("recvfrom", writes=(0x3000,))
        tracer.marker(TILE_MARKER, cells=(0x4000, 0x4001))
        tracer.marker(LOAD_COMPLETE_MARKER)
    return tracer.store


def test_forward_backward_iteration():
    store = small_trace()
    fwd = list(store.forward())
    bwd = list(store.backward())
    assert fwd == list(reversed(bwd))
    assert len(fwd) == len(store)


def test_thread_ids_and_counts():
    store = small_trace()
    assert store.thread_ids() == [1, 2]
    counts = store.instructions_per_thread()
    assert sum(counts.values()) == len(store)
    assert counts[1] > 0 and counts[2] > 0


def test_round_trip_preserves_records(tmp_path):
    store = small_trace()
    path = tmp_path / "trace.ucwa"
    save_trace(store, path)
    loaded = load_trace(path)
    assert len(loaded) == len(store)
    for orig, back in zip(store.forward(), loaded.forward()):
        assert orig.tid == back.tid
        assert orig.pc == back.pc
        assert orig.kind == back.kind
        assert orig.regs_read == tuple(back.regs_read)
        assert orig.regs_written == tuple(back.regs_written)
        assert tuple(orig.mem_read) == tuple(back.mem_read)
        assert tuple(orig.mem_written) == tuple(back.mem_written)
        assert orig.syscall == back.syscall
        assert orig.marker == back.marker


def test_round_trip_preserves_symbols_and_metadata(tmp_path):
    store = small_trace()
    path = tmp_path / "trace.ucwa"
    save_trace(store, path)
    loaded = load_trace(path)
    orig_names = [name for _, name in store.symbols]
    back_names = [name for _, name in loaded.symbols]
    assert orig_names == back_names
    assert loaded.metadata.thread_names == store.metadata.thread_names
    assert loaded.metadata.tile_buffers == store.metadata.tile_buffers
    assert loaded.metadata.load_complete_index == store.metadata.load_complete_index


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.ucwa"
    path.write_bytes(b"not a trace at all")
    with pytest.raises(ValueError):
        load_trace(path)


def test_symbol_table_namespace():
    table = SymbolTable()
    sym = table.intern("cc::TileManager::ScheduleTasks")
    assert table.namespace(sym) == "cc::TileManager"
    assert table.top_level_namespace(sym) == "cc"
    plain = table.intern("memcpy")
    assert table.namespace(plain) is None
    assert table.top_level_namespace(plain) is None


def test_symbol_table_intern_idempotent():
    table = SymbolTable()
    a = table.intern("f")
    b = table.intern("f")
    assert a == b
    assert table.lookup("f") == a
    assert table.lookup("g") is None
    assert table.name(a) == "f"


def test_record_touches_memory():
    rec = TraceRecord(tid=1, pc=10, kind=InstrKind.OP, fn=0)
    assert not rec.touches_memory()
    rec2 = TraceRecord(tid=1, pc=10, kind=InstrKind.OP, fn=0, mem_read=(1,))
    assert rec2.touches_memory()


def test_metadata_thread_roles():
    store = small_trace()
    assert store.metadata.main_thread_id() == 1
    assert store.metadata.thread_ids_by_role("Comp") == [2]
