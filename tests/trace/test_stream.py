"""Streaming epoch reader: region tiling, span access, format invariance."""

import pytest

from repro.trace.records import FrameSpan
from repro.trace.store import save_trace
from repro.trace.stream import (
    NO_FRAME,
    compute_regions,
    open_epoch_stream,
    region_digest,
)
from repro.workloads.fuzz import random_frame_trace, random_trace


@pytest.fixture(scope="module")
def frame_store():
    return random_frame_trace(7)


# --------------------------------------------------------------------- #
# Region tiling                                                         #
# --------------------------------------------------------------------- #


def test_regions_tile_exactly(frame_store):
    regions = compute_regions(
        frame_store.metadata.complete_frames(), len(frame_store)
    )
    cursor = 0
    for i, region in enumerate(regions):
        assert region.index == i
        assert region.lo == cursor
        assert region.hi > region.lo
        cursor = region.hi
    assert cursor == len(frame_store)


def test_regions_match_frame_spans(frame_store):
    regions = compute_regions(
        frame_store.metadata.complete_frames(), len(frame_store)
    )
    frames = [r for r in regions if r.is_frame]
    spans = [s for s in frame_store.frame_spans() if s.complete]
    assert [(r.lo, r.hi, r.frame_id, r.kind) for r in frames] == [
        (s.begin, s.end + 1, s.frame_id, s.kind) for s in spans
    ]
    assert regions[0].kind in ("prologue", "load", "update")
    for region in regions:
        if not region.is_frame:
            assert region.kind in ("prologue", "gap")
            assert region.frame_id == NO_FRAME


def test_frameless_trace_is_one_region():
    store = random_trace(3)
    regions = compute_regions(store.metadata.complete_frames(), len(store))
    assert [r.key() for r in regions] == [(0, len(store), NO_FRAME, "all")]


def test_tiling_stable_under_growth(frame_store):
    """A prefix's regions are a prefix of the full tiling (modulo the
    trailing gap), so checkpoints built mid-stream stay valid."""
    frames = frame_store.metadata.complete_frames()
    full = compute_regions(frames, len(frame_store))
    mid = full[len(full) // 2]
    prefix = compute_regions(frames, mid.hi)
    for a, b in zip(prefix, full):
        if a.key() != b.key():  # only the cut-off trailing gap may differ
            assert not a.is_frame and a.hi == mid.hi
    assert prefix[-1].hi == mid.hi


def test_incomplete_trailing_frame_lands_in_gap():
    frames = [
        FrameSpan(frame_id=0, kind="load", begin=2, end=10),
        FrameSpan(frame_id=1, kind="update", begin=14, end=None),
    ]
    regions = compute_regions(frames, 20)
    assert [r.key() for r in regions] == [
        (0, 2, NO_FRAME, "prologue"),
        (2, 11, 0, "load"),
        (11, 20, NO_FRAME, "gap"),
    ]


# --------------------------------------------------------------------- #
# Epoch streams                                                         #
# --------------------------------------------------------------------- #


def _stream_variants(store, tmp_path):
    from repro.trace.columnar import ColumnarTrace, save_columnar

    v2 = tmp_path / "t.ucwa"
    v3 = tmp_path / "t3.ucwa"
    save_trace(store, v2)
    save_columnar(ColumnarTrace.from_store(store), v3)
    return {
        "store": open_epoch_stream(store),
        "file-v2": open_epoch_stream(v2),
        "file-v3": open_epoch_stream(str(v3)),
    }


def test_span_round_trip_across_sources(frame_store, tmp_path):
    reference = list(frame_store.records())
    for name, stream in _stream_variants(frame_store, tmp_path).items():
        assert len(stream) == len(reference), name
        # whole trace, a frame region, and an unaligned slice
        probes = [(0, len(reference)), (5, 6), (17, 170)]
        probes += [(r.lo, r.hi) for r in stream.regions]
        for lo, hi in probes:
            assert stream.span(lo, hi) == reference[lo:hi], (name, lo, hi)


def test_epochs_cover_trace_with_tiles(frame_store, tmp_path):
    for name, stream in _stream_variants(frame_store, tmp_path).items():
        cursor = 0
        tiles = []
        for epoch in stream.epochs():
            assert epoch.lo == cursor, name
            assert len(epoch.records) == epoch.region.n_records()
            tiles.extend(epoch.tiles)
            cursor = epoch.hi
        assert cursor == len(stream), name
        assert tiles == list(frame_store.metadata.tile_buffers), name


def test_span_bounds_checked(frame_store, tmp_path):
    stream = open_epoch_stream(
        (lambda p: (save_trace(frame_store, p), p)[1])(tmp_path / "b.ucwa")
    )
    with pytest.raises(ValueError, match="span"):
        stream.span(0, len(stream) + 1)


def test_open_epoch_stream_rejects_junk():
    with pytest.raises(TypeError, match="cannot stream"):
        open_epoch_stream(42)


# --------------------------------------------------------------------- #
# Region digests                                                        #
# --------------------------------------------------------------------- #


def test_region_digest_format_invariant(frame_store, tmp_path):
    streams = _stream_variants(frame_store, tmp_path)
    regions = streams["store"].regions
    for region in regions:
        digests = {
            name: region_digest(stream.span(region.lo, region.hi))
            for name, stream in streams.items()
        }
        assert len(set(digests.values())) == 1, (region, digests)


def test_region_digest_detects_tampering(frame_store):
    records = frame_store.span(0, 40)
    import dataclasses

    tampered = list(records)
    tampered[7] = dataclasses.replace(tampered[7], pc=tampered[7].pc ^ 1)
    assert region_digest(records) != region_digest(tampered)
    assert region_digest(records) == region_digest(frame_store.span(0, 40))
