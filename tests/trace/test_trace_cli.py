"""Tests for the trace CLI and full-trace persistence of a real workload."""

import pytest

from repro.profiler import Profiler, pixel_criteria
from repro.trace import load_trace, save_trace
from repro.trace.__main__ import main as trace_main
from repro.harness.experiments import run_engine
from repro.workloads import benchmark


@pytest.fixture(scope="module")
def saved_trace(tmp_path_factory):
    bench = benchmark("wiki_article")
    bench.config.load_animation_ticks = 4
    engine = run_engine(bench)
    path = tmp_path_factory.mktemp("traces") / "wiki.ucwa"
    save_trace(engine.trace_store(), path)
    return engine, path


def test_real_trace_round_trip(saved_trace):
    engine, path = saved_trace
    loaded = load_trace(path)
    store = engine.trace_store()
    assert len(loaded) == len(store)
    assert loaded.metadata.thread_names == store.metadata.thread_names
    assert loaded.metadata.tile_buffers == store.metadata.tile_buffers


def test_slice_identical_from_disk(saved_trace):
    """Collect once, profile many: the stored trace slices identically."""
    engine, path = saved_trace
    loaded = load_trace(path)
    original = Profiler(engine.trace_store()).pixel_slice()
    replayed = Profiler(loaded).pixel_slice()
    assert bytes(original.flags) == bytes(replayed.flags)


def test_cli_info(saved_trace, capsys):
    _, path = saved_trace
    assert trace_main(["info", str(path)]) == 0
    out = capsys.readouterr().out
    assert "records" in out
    assert "CrRendererMain" in out
    assert "tile markers" in out


def test_cli_slice(saved_trace, capsys):
    _, path = saved_trace
    assert trace_main(["slice", str(path)]) == 0
    out = capsys.readouterr().out
    assert "pixels slice:" in out


def test_cli_slice_criteria_families(saved_trace, capsys):
    """--criteria switches the slicing-criteria family (paper Section V)."""
    _, path = saved_trace
    assert trace_main(["slice", str(path), "--criteria=syscalls"]) == 0
    out = capsys.readouterr().out
    assert "syscalls slice:" in out

    assert trace_main(["slice", str(path), "--criteria=pixels+syscalls"]) == 0
    out = capsys.readouterr().out
    assert "pixels+syscalls slice:" in out


def test_cli_slice_combined_criteria_is_superset(saved_trace, capsys):
    """pixels+syscalls can only widen the slice, never shrink it."""
    import re

    _, path = saved_trace

    def fraction(criteria):
        assert trace_main(["slice", str(path), f"--criteria={criteria}"]) == 0
        match = re.search(r"slice: ([\d.]+)%", capsys.readouterr().out)
        assert match is not None
        return float(match.group(1))

    combined = fraction("pixels+syscalls")
    assert combined >= fraction("pixels")
    assert combined >= fraction("syscalls")


def test_cli_slice_rejects_unknown_criteria(saved_trace, capsys):
    _, path = saved_trace
    assert trace_main(["slice", str(path), "--criteria=colors"]) == 2
    out = capsys.readouterr().out
    assert "unknown criteria 'colors'" in out
    assert "pixels" in out and "syscalls" in out and "pixels+syscalls" in out


def test_cli_usage_on_bad_args(capsys):
    assert trace_main([]) == 2
    assert trace_main(["bogus"]) == 2


def test_cli_slice_rejects_unknown_engine(saved_trace, capsys):
    _, path = saved_trace
    assert trace_main(["slice", str(path), "--engine=turbo"]) == 2
    out = capsys.readouterr().out
    assert "unknown engine 'turbo'" in out
    assert "sequential" in out and "parallel" in out


@pytest.mark.parametrize("workers", ("0", "-3"))
def test_cli_slice_rejects_non_positive_workers(saved_trace, workers, capsys):
    _, path = saved_trace
    assert trace_main(["slice", str(path), f"--workers={workers}"]) == 2
    out = capsys.readouterr().out
    assert "--workers must be >= 1" in out


def test_cli_slice_rejects_non_integer_workers(saved_trace, capsys):
    _, path = saved_trace
    assert trace_main(["slice", str(path), "--workers=many"]) == 2
    out = capsys.readouterr().out
    assert "--workers expects an integer" in out


def test_cli_lint_on_real_trace(saved_trace, capsys):
    _, path = saved_trace
    assert trace_main(["lint", str(path)]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "call-ret-balance" in out
