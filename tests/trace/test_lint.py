"""Trace sanitizer: clean traces pass, corrupted traces fail by name."""

import dataclasses

import pytest

from repro.machine.registers import FLAGS, RBX
from repro.machine.tracer import TILE_MARKER, Tracer
from repro.trace.lint import TraceLintError, lint_or_raise, lint_trace
from repro.trace.records import InstrKind, TraceRecord
from repro.trace.store import save_trace
from repro.workloads.fuzz import random_trace


def _clean_store():
    """A small hand-built trace satisfying every invariant."""
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.op("init", writes=(0x10, 0x11), reg_writes=(RBX,))
    tracer.call("work")
    tracer.op("step", reads=(0x10,), writes=(0x12,), reg_reads=(RBX,))
    tracer.compare_and_branch("loop", (0x12,))
    tracer.syscall("write", reads=(0x12,))
    tracer.ret()
    tracer.op("paint", writes=(0x20, 0x21))
    tracer.marker(TILE_MARKER, (0x20, 0x21))
    return tracer.store


def _counts(report):
    return {check: n for check, n in report.counts.items() if n}


def test_clean_trace_passes():
    report = lint_trace(_clean_store())
    assert report.ok
    assert _counts(report) == {}
    assert "PASS" in report.summary()


@pytest.mark.parametrize("seed", range(5))
def test_fuzz_traces_are_fully_clean(seed):
    """The generator is def-before-use: not even warnings remain."""
    report = lint_trace(random_trace(seed, target_records=1_200))
    assert report.ok
    assert _counts(report) == {}


def test_fuzz_trace_lints_before_slicing():
    lint_or_raise(random_trace(3))  # must not raise


def test_wiki_workload_trace_passes():
    from repro.harness.experiments import run_engine
    from repro.workloads import benchmark

    bench = benchmark("wiki_article")
    bench.config.load_animation_ticks = 2
    report = lint_trace(run_engine(bench).trace_store())
    assert report.ok, report.summary()
    # Real engine traces read pre-initialized state; that is diagnostic only.
    errors = {
        c: n for c, n in _counts(report).items() if c != "memory-use-before-def"
    }
    assert errors == {}


def test_unbalanced_call_is_named_violation():
    store = _clean_store()
    records = store.records()
    ret_at = next(
        i for i, r in enumerate(records) if r.kind == InstrKind.RET
    )
    del records[ret_at]
    report = lint_trace(store)
    assert not report.ok
    assert report.counts["call-ret-balance"] == 1
    with pytest.raises(TraceLintError, match="call-ret-balance"):
        lint_or_raise(store)


def test_extra_ret_is_named_violation():
    store = _clean_store()
    store.append(
        TraceRecord(tid=1, pc=999, kind=InstrKind.RET, fn=0)
    )
    report = lint_trace(store)
    assert report.counts["call-ret-balance"] == 1


def test_stripped_cmp_is_named_violation():
    store = _clean_store()
    records = store.records()
    cmp_at = next(
        i for i, r in enumerate(records) if r.kind == InstrKind.CMP
    )
    del records[cmp_at]
    report = lint_trace(store)
    assert not report.ok
    assert report.counts["branch-flags-pairing"] >= 1
    # The branch now also reads FLAGS that nothing wrote.
    assert report.counts["register-use-before-def"] >= 1


def test_register_read_before_write_is_named_violation():
    store = _clean_store()
    records = store.records()
    records[0] = dataclasses.replace(records[0], regs_read=(FLAGS,))
    report = lint_trace(store)
    assert report.counts["register-use-before-def"] == 1
    assert "flags" in str(report.errors[0])


def test_syscall_arg_registers_are_exempt():
    # The ABI hand-off is implicit: a SYSCALL reading rdi/rsi without a
    # prior write must not be flagged (calibrated on real engine traces).
    report = lint_trace(_clean_store())
    assert report.counts["register-use-before-def"] == 0


def test_memory_use_before_def_is_warning_only():
    store = _clean_store()
    records = store.records()
    records[0] = dataclasses.replace(records[0], mem_read=(0x999,))
    report = lint_trace(store)
    assert report.counts["memory-use-before-def"] == 1
    assert report.ok  # warnings do not fail the lint
    lint_or_raise(store)  # and do not raise


def test_non_monotone_tile_markers_are_named_violation():
    store = _clean_store()
    store.metadata.tile_buffers.append((0, (0x20,)))  # before the real one
    report = lint_trace(store)
    assert report.counts["monotone-marker-clock"] >= 1


def test_marker_metadata_mismatch_is_named_violation():
    store = _clean_store()
    index, _cells = store.metadata.tile_buffers[0]
    store.metadata.tile_buffers[0] = (index, (0xDEAD,))
    report = lint_trace(store)
    assert report.counts["monotone-marker-clock"] == 1


def test_malformed_syscall_record_is_named_violation():
    store = _clean_store()
    records = store.records()
    sys_at = next(
        i for i, r in enumerate(records) if r.kind == InstrKind.SYSCALL
    )
    records[sys_at] = dataclasses.replace(records[sys_at], syscall=None)
    report = lint_trace(store)
    assert report.counts["record-shape"] == 1


def test_unknown_tid_is_named_violation():
    store = _clean_store()
    store.append(TraceRecord(tid=77, pc=1, kind=InstrKind.OP, fn=0))
    report = lint_trace(store)
    assert report.counts["record-shape"] == 1


def _locked_store(ops):
    """A clean trace plus a scripted sequence of lock marker events."""
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.op("init", writes=(0x10,))
    for op, cell in ops:
        if op == "acquire":
            tracer.lock_acquire(cell)
        else:
            tracer.lock_release(cell)
    return tracer.store


def test_recursive_lock_acquire_is_named_violation():
    store = _locked_store(
        [("acquire", 0x900), ("acquire", 0x900), ("release", 0x900)]
    )
    report = lint_trace(store)
    assert report.counts["lock-discipline"] == 1
    assert "recursive" in str(report.errors[0])


def test_release_of_unheld_lock_is_named_violation():
    store = _locked_store([("release", 0x900)])
    report = lint_trace(store)
    assert report.counts["lock-discipline"] == 1
    assert "not held" in str(report.errors[0])


def test_lock_held_at_trace_end_is_named_violation():
    store = _locked_store([("acquire", 0x900)])
    report = lint_trace(store)
    assert report.counts["lock-discipline"] == 1
    assert "still held" in str(report.errors[0])


def test_malformed_sync_marker_is_named_violation():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.marker("sync:release", (0x900, 0x901))  # two sync cells: invalid
    report = lint_trace(tracer.store)
    assert report.counts["lock-discipline"] == 1
    assert "malformed" in str(report.errors[0])


def test_sync_markers_are_exempt_from_memory_use_before_def():
    # Sync cells are never data-written; the markers that "read" them must
    # not trip the use-before-def heuristics.
    store = _locked_store([("acquire", 0x900), ("release", 0x900)])
    report = lint_trace(store)
    assert report.counts["memory-use-before-def"] == 0


def test_ipc_use_before_def_is_named_violation():
    tracer = Tracer()
    tracer.spawn_thread(3, "Chrome_ChildIOThread", "io_loop")
    with tracer.function("ipc::ChannelMojo::OnMessageReceived"):
        tracer.op("unpickle0", reads=(0x700,), writes=(0x700,))
    report = lint_trace(tracer.store)
    assert not report.ok
    assert report.counts["ipc-use-before-def"] == 1
    # The generic warning fires too, but only the IPC check is an error.
    assert report.counts["memory-use-before-def"] == 1


def test_ipc_frames_with_produced_payloads_pass():
    from repro.browser.context import EngineContext, IO_THREAD, MAIN_THREAD
    from repro.browser.ipc.channel import IPCChannel

    ctx = EngineContext()
    ctx.spawn_threads()
    channel = IPCChannel(ctx)
    ctx.tracer.switch(MAIN_THREAD)
    buffer_cell = channel.serialize("Swap")
    ctx.tracer.switch(IO_THREAD)
    channel.flush_on_io_thread(buffer_cell)
    channel.receive("Ack")
    report = lint_trace(ctx.tracer.store)
    assert report.counts["ipc-use-before-def"] == 0
    assert report.counts["lock-discipline"] == 0


def test_cli_lint_json_output(tmp_path, capsys):
    import json

    from repro.trace.__main__ import main as trace_main

    path = tmp_path / "clean.ucwa"
    save_trace(random_trace(13, target_records=800), path)
    assert trace_main(["lint", str(path), "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert data["path"] == str(path)
    from repro.trace.lint import CHECKS

    assert set(data["counts"]) == set(CHECKS)
    assert data["issues"] == []


def test_cli_lint_json_reports_findings_and_fails(tmp_path, capsys):
    import json

    from repro.trace.__main__ import main as trace_main

    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.op("init", writes=(0x10,))
    tracer.lock_acquire(0x900)  # never released
    path = tmp_path / "held.ucwa"
    save_trace(tracer.store, path)
    assert trace_main(["lint", str(path), "--json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is False
    assert data["counts"]["lock-discipline"] == 1
    assert data["issues"][0]["check"] == "lock-discipline"
    assert data["issues"][0]["severity"] == "error"


def test_cli_lint_passes_on_clean_trace(tmp_path, capsys):
    from repro.trace.__main__ import main as trace_main

    path = tmp_path / "clean.ucwa"
    save_trace(random_trace(11, target_records=800), path)
    assert trace_main(["lint", str(path)]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_cli_lint_fails_on_corrupted_trace(tmp_path, capsys):
    from repro.trace.__main__ import main as trace_main

    store = random_trace(12, target_records=800)
    records = store.records()
    ret_at = next(i for i, r in enumerate(records) if r.kind == InstrKind.RET)
    del records[ret_at]
    # Deleting a record shifts every later index; re-anchor the metadata so
    # only the CALL/RET imbalance is under test.
    store.metadata.tile_buffers = [
        (i - 1 if i > ret_at else i, cells)
        for i, cells in store.metadata.tile_buffers
    ]
    path = tmp_path / "corrupt.ucwa"
    save_trace(store, path)
    assert trace_main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "call-ret-balance" in out


def test_cli_lint_rejects_bad_options(tmp_path, capsys):
    from repro.trace.__main__ import main as trace_main

    path = tmp_path / "t.ucwa"
    save_trace(_clean_store(), path)
    assert trace_main(["lint", str(path), "--epoch-size=0"]) == 2
    assert trace_main(["lint", str(path), "--epoch-size=zap"]) == 2
    assert trace_main(["lint", str(path), "--bogus"]) == 2
