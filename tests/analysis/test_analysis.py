"""Unit tests for the analysis package (coverage rows, spikes, charts)."""

import pytest

from repro.analysis.coverage import CoverageRow, coverage_table, _human
from repro.analysis.figures import figure4_chart, figure4_series, figure5_chart
from repro.analysis.utilization import (
    UtilizationSpike,
    ascii_chart,
    busy_fraction,
    find_spikes,
)
from repro.profiler.categorize import CATEGORIES, CategoryDistribution


def test_coverage_row_fraction():
    row = CoverageRow(site="X", condition="Only Load", unused_bytes=60, total_bytes=100)
    assert row.unused_fraction == pytest.approx(0.6)
    assert "60%" in row.formatted()


def test_coverage_row_zero_total():
    row = CoverageRow(site="X", condition="Only Load", unused_bytes=0, total_bytes=0)
    assert row.unused_fraction == 0.0


def test_coverage_table_renders():
    rows = [
        CoverageRow("Amazon", "Only Load", 955_000, 1_600_000),
        CoverageRow("Bing", "Only Load", 103_000, 199_000),
    ]
    table = coverage_table(rows)
    assert "Table I" in table
    assert "Amazon" in table and "Bing" in table


def test_human_sizes():
    assert _human(500) == "500 B"
    assert _human(2_500) == "2.5 KB"
    assert _human(1_600_000) == "1.6 MB"


def test_find_spikes_basic():
    series = [(0.0, 0.9), (0.1, 0.8), (0.2, 0.0), (0.3, 0.0), (0.4, 0.5), (0.5, 0.0)]
    spikes = find_spikes(series, threshold=0.15)
    assert len(spikes) == 2
    assert spikes[0].peak == pytest.approx(0.9)
    assert spikes[1].start_s == pytest.approx(0.4)
    assert spikes[0].duration_s > 0


def test_find_spikes_open_ended():
    series = [(0.0, 0.0), (0.1, 0.9)]
    spikes = find_spikes(series)
    assert len(spikes) == 1


def test_find_spikes_empty():
    assert find_spikes([]) == []


def test_busy_fraction():
    assert busy_fraction([(0, 1.0), (1, 0.0)]) == pytest.approx(0.5)
    assert busy_fraction([]) == 0.0


def test_ascii_chart_shape():
    series = [(i / 10, (i % 5) / 5) for i in range(50)]
    chart = ascii_chart(series, width=40, height=5, title="T")
    lines = chart.splitlines()
    assert lines[0] == "T"
    assert len(lines) == 1 + 5 + 2
    assert "#" in chart


def test_ascii_chart_empty():
    assert "empty" in ascii_chart([])


def test_figure4_series_downsamples_and_keeps_last():
    timeline = [(i, i / 100) for i in range(100)]
    sampled = figure4_series(timeline, points=10)
    assert len(sampled) <= 12
    assert sampled[-1] == timeline[-1]
    assert figure4_series([], points=10) == []


def test_figure4_chart_renders():
    timeline = [(i * 100, 0.3 + 0.01 * (i % 7)) for i in range(50)]
    chart = figure4_chart(timeline, "demo")
    assert "demo" in chart
    assert "*" in chart


def test_figure5_chart_renders_all_categories():
    dist = CategoryDistribution(
        counts={c: 10 for c in CATEGORIES}, uncategorized=20, total_unnecessary=100
    )
    chart = figure5_chart([("bench", dist)])
    for category in CATEGORIES:
        assert category in chart
    assert "80%" in chart  # categorized fraction
