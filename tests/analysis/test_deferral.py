"""Tests for the deferral-opportunity analyzer."""

import pytest

from repro.analysis.deferral import analyze_deferral, render_report
from repro.harness.experiments import run_benchmark
from repro.workloads import benchmark


@pytest.fixture(scope="module")
def wiki_result():
    return run_benchmark(benchmark("wiki_article"))


def test_report_totals_consistent(wiki_result):
    report = analyze_deferral(wiki_result)
    assert 0 < report.load_slice_instructions < report.load_instructions
    assert report.load_waste_instructions == (
        report.load_instructions - report.load_slice_instructions
    )
    assert 0.0 < report.hypothetical_load_reduction < 1.0


def test_candidates_sorted_by_waste(wiki_result):
    report = analyze_deferral(wiki_result)
    waste = [c.wasted_at_load for c in report.candidates]
    assert waste == sorted(waste, reverse=True)


def test_js_filter_restricts_candidates(wiki_result):
    report = analyze_deferral(wiki_result, prefix_filter="v8::")
    assert report.candidates
    for candidate in report.candidates:
        assert candidate.function.startswith("v8::")


def test_analytics_is_a_top_js_candidate(wiki_result):
    """The analytics bootstrap runs at load and never touches pixels."""
    report = analyze_deferral(wiki_result, prefix_filter="v8::js::metrics")
    top = report.top_candidates(limit=5, min_waste=1)
    assert top, "analytics functions should be deferral candidates"
    assert all(c.waste_fraction > 0.9 for c in top)


def test_unused_scripts_listed(wiki_result):
    report = analyze_deferral(wiki_result)
    names = [name for name, _, _ in report.unused_scripts]
    assert "wiki.js" in names or "metrics.js" in names


def test_render_report(wiki_result):
    text = render_report(analyze_deferral(wiki_result))
    assert "Deferral opportunity report" in text
    assert "wasted" in text
    assert "code-splitting" in text


def test_candidate_waste_fraction_bounds(wiki_result):
    report = analyze_deferral(wiki_result)
    for candidate in report.candidates:
        assert 0.0 <= candidate.waste_fraction <= 1.0
        assert candidate.wasted_at_load <= candidate.executed_at_load


# -- energy model ------------------------------------------------------------- #


def test_energy_breakdown_consistent(wiki_result):
    from repro.analysis.energy import energy_breakdown

    breakdown = energy_breakdown(wiki_result)
    assert breakdown.total_uj == pytest.approx(
        breakdown.useful_uj + breakdown.wasted_uj
    )
    assert 0.0 < breakdown.wasted_fraction < 1.0
    thread_total = sum(total for _, total, _ in breakdown.threads)
    assert thread_total == pytest.approx(breakdown.total_uj)


def test_energy_savings_ordering(wiki_result):
    from repro.analysis.energy import energy_breakdown

    breakdown = energy_breakdown(wiki_result)
    # Elimination beats offloading, and both are positive.
    assert breakdown.elimination_savings_uj() > breakdown.little_core_savings_uj() > 0


def test_energy_report_renders(wiki_result):
    from repro.analysis.energy import energy_breakdown, render_energy_report

    text = render_energy_report(energy_breakdown(wiki_result))
    assert "Energy report" in text
    assert "LITTLE core" in text
    assert "JavaScript" in text
