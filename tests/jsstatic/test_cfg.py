"""CFG construction: reachability, constant folding, exception edges."""

from repro.browser.js.parser import parse_js
from repro.jsstatic.cfg import build_cfg, unreachable_statements


def _unreachable(source):
    program = parse_js(source)
    cfg = build_cfg(program.body)
    return unreachable_statements(cfg)


def _spans(nodes):
    return [n.span for n in nodes]


def test_straight_line_code_fully_reachable():
    assert _unreachable("var a = 1; var b = a + 1; log(b);") == []


def test_statements_after_return_unreachable():
    dead = _unreachable(
        "function f() { return 1; var x = 2; }\n"
        "f();"
    )
    # The analysis runs on the top level here; check the function body too.
    program = parse_js("function f() { return 1; var x = 2; }")
    body = program.body[0].func.body
    dead = unreachable_statements(build_cfg(body))
    assert len(dead) == 1


def test_constant_false_branch_unreachable():
    dead = _unreachable("if (false) { touch(); } else { live(); }")
    assert len(dead) == 1


def test_constant_true_branch_keeps_consequent():
    dead = _unreachable("if (true) { live(); } else { touch(); }")
    assert len(dead) == 1  # only the alternate


def test_non_constant_branch_fully_reachable():
    assert _unreachable("if (x) { a(); } else { b(); }") == []


def test_while_false_body_unreachable():
    dead = _unreachable("while (false) { touch(); } after();")
    assert len(dead) == 1


def test_while_true_without_break_kills_following_code():
    dead = _unreachable("while (true) { spin(); } after();")
    assert _spans(dead)  # after() can never run
    assert len(dead) == 1


def test_while_true_with_break_keeps_following_code():
    assert _unreachable("while (true) { break; } after();") == []


def test_code_after_break_unreachable():
    dead = _unreachable("while (x) { break; touch(); } after();")
    assert len(dead) == 1


def test_for_loop_reachable_and_constant_false_test():
    assert _unreachable("for (var i = 0; i < 3; i = i + 1) { body(); }") == []
    # A constant-false test makes both the body and the update dead, while
    # the loop's init/test themselves stay reachable.
    dead = _unreachable("for (var i = 0; false; i = i + 1) { body(); }")
    assert len(dead) == 2


def test_do_while_body_always_reachable():
    assert _unreachable("do { body(); } while (false); after();") == []


def test_for_in_reachable():
    assert _unreachable("for (var k in obj) { use(k); } after();") == []


def test_switch_cases_reachable_and_fallthrough():
    src = (
        "switch (x) {"
        " case 1: a();"
        " case 2: b(); break;"
        " default: c();"
        "} after();"
    )
    assert _unreachable(src) == []


def test_try_catch_handler_reachable():
    assert _unreachable(
        "try { risky(); } catch (e) { handle(e); } after();"
    ) == []


def test_throw_then_code_unreachable():
    dead = _unreachable("throw boom; touch();")
    assert len(dead) == 1
