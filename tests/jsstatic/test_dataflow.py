"""Dataflow: dead stores, liveness across loops, captured-variable safety."""

from repro.browser.js.parser import parse_js
from repro.jsstatic.cfg import build_cfg
from repro.jsstatic.dataflow import analyze_dataflow


def _function_flow(source):
    """Analyze the body of the first function declaration in ``source``."""
    program = parse_js(source)
    func = program.body[0].func
    cfg = build_cfg(func.body)
    return analyze_dataflow(cfg, list(func.params), func.body)


def test_overwritten_local_is_dead_store():
    flow = _function_flow(
        "function f() { var x = 1; x = 2; return x; }"
    )
    assert [d.name for d in flow.dead_stores] == ["x"]


def test_used_store_is_not_dead():
    flow = _function_flow(
        "function f() { var x = 1; var y = x + 1; return y; }"
    )
    assert flow.dead_stores == []


def test_never_read_local_is_dead_store():
    flow = _function_flow("function f() { var unused = compute(); }")
    assert [d.name for d in flow.dead_stores] == ["unused"]


def test_declaration_without_value_not_reported():
    flow = _function_flow("function f() { var x; }")
    assert flow.dead_stores == []


def test_loop_carried_value_is_live():
    # The store to acc in the loop is read by the *next* iteration.
    flow = _function_flow(
        "function f(n) {"
        " var acc = 0;"
        " for (var i = 0; i < n; i = i + 1) { acc = acc + i; }"
        " return acc;"
        "}"
    )
    assert flow.dead_stores == []


def test_compound_assignment_reads_old_value():
    flow = _function_flow(
        "function f() { var x = 1; x += 2; return x; }"
    )
    assert flow.dead_stores == []


def test_captured_variable_never_reported():
    # The closure may read x at any time; the overwrite is not provably dead.
    flow = _function_flow(
        "function f() {"
        " var x = 1;"
        " var g = function () { return x; };"
        " x = 2;"
        " return g;"
        "}"
    )
    assert "x" in flow.captured_names
    assert all(d.name != "x" for d in flow.dead_stores)


def test_global_assignment_never_reported():
    # y is not declared locally: the store goes to the global environment
    # and is visible to every other script.
    flow = _function_flow("function f() { y = 1; }")
    assert flow.dead_stores == []


def test_branch_merges_keep_either_store_live():
    flow = _function_flow(
        "function f(c) {"
        " var x = 0;"
        " if (c) { x = 1; } else { x = 2; }"
        " return x;"
        "}"
    )
    names = [d.name for d in flow.dead_stores]
    assert names == ["x"]  # only the initial 0 is dead; both branch stores live


def test_maybe_undefined_detects_use_before_def_path():
    flow = _function_flow(
        "function f(c) {"
        " if (c) { var x = 1; }"
        " return x;"
        "}"
    )
    assert any(name == "x" for name, _node in flow.maybe_undefined)


def test_param_always_defined():
    flow = _function_flow("function f(a) { return a; }")
    assert flow.maybe_undefined == []
    assert flow.dead_stores == []


def test_catch_parameter_is_local():
    flow = _function_flow(
        "function f() { try { risky(); } catch (e) { return e; } }"
    )
    assert "e" in flow.local_names
    assert flow.dead_stores == []


def test_for_in_variable_is_local():
    flow = _function_flow(
        "function f(o) { for (var k in o) { use(k); } }"
    )
    assert "k" in flow.local_names
    assert flow.dead_stores == []
