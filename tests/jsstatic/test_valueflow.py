"""Interprocedural value-flow analysis: resolution, escapes, fallbacks."""

from repro.browser.js.parser import parse_js
from repro.jsstatic import valueflow
from repro.jsstatic.analyzer import analyze_page
from repro.jsstatic.callgraph import EdgeKind, build_call_graph
from repro.jsstatic.compare import call_site_verdicts
from repro.jsstatic.valueflow import resolve_value_flow


def _graph(source, url="s.js"):
    return build_call_graph({url: parse_js(source)})


def _flow(source, url="s.js"):
    graph = _graph(source, url)
    assert graph.valueflow is not None and graph.valueflow.ok
    return graph, graph.valueflow


def _dead_names(source):
    graph = _graph(source)
    return {f.label() for f in graph.dead_functions()}


def _fid(graph, name):
    infos = graph.functions_named(name)
    assert len(infos) == 1, name
    return infos[0].fid


# -- resolution through assignments, properties, arrays, returns --------- #

def test_alias_call_resolves_to_single_target():
    graph, flow = _flow("function a() { } var b = a; b();")
    fid = _fid(graph, "a")
    assert fid in flow.invoked_fids
    sites = [s for s in flow.sites.values() if s.callee == "b"]
    assert len(sites) == 1
    assert sites[0].status == "resolved"
    assert sites[0].targets == {fid}
    assert "bound to global 'b'" in sites[0].chains[fid]


def test_property_store_then_load_invokes():
    src = "var api = {}; api.run = function () { }; api.run();"
    graph, flow = _flow(src)
    assert flow.invoked_fids == {graph.functions[0].fid}
    assert _dead_names(src) == set()


def test_property_stored_never_loaded_is_dead():
    src = "var api = {}; api.run = function () { };"
    assert _dead_names(src) == {"<anonymous@25>"} or len(_dead_names(src)) == 1


def test_array_element_call_resolves():
    src = "function f() { } var t = [f]; t[0]();"
    assert _dead_names(src) == set()


def test_array_element_never_indexed_is_dead():
    src = "function f() { } var t = [f];"
    assert _dead_names(src) == {"f"}


def test_computed_string_key_resolves():
    src = (
        "var reg = {};\n"
        "reg['h' + 1] = function () { };\n"
        "reg['h1']();\n"
    )
    assert _dead_names(src) == set()


def test_returned_closure_is_invoked():
    src = "function mk() { return function () { }; } var g = mk(); g();"
    assert _dead_names(src) == set()


def test_returned_closure_never_called_is_dead():
    src = "function mk() { return function () { }; } var g = mk();"
    dead = _dead_names(src)
    assert len(dead) == 1 and "mk" not in dead


def test_closure_captured_variable_resolves():
    src = (
        "function outer() {\n"
        "  var helper = function () { };\n"
        "  function inner() { helper(); }\n"
        "  inner();\n"
        "}\n"
        "outer();\n"
    )
    assert _dead_names(src) == set()


def test_callback_argument_flows_into_parameter():
    src = (
        "function call_it(cb) { cb(); }\n"
        "call_it(function () { work_done(); });\n"
        "function work_done() { }\n"
    )
    assert _dead_names(src) == set()


def test_callback_argument_parked_unrun_is_dead():
    # The lazy-widget shape: the handler is stored in a registry keyed
    # by id and no activation ever reads it back.
    src = (
        "var handlers = {};\n"
        "function register(id, fn) { handlers[id] = fn; }\n"
        "register('w0', function () { heavy(); });\n"
    )
    dead = _dead_names(src)
    assert "register" not in dead
    assert len(dead) == 1  # the handler


def test_context_sensitivity_separates_registrations():
    # Two registrations through the same registrar: only the activated
    # key's handler is live.
    src = (
        "var handlers = {};\n"
        "function register(id, fn) { handlers[id] = fn; }\n"
        "function activate(id) { handlers[id](); }\n"
        "register('a', function () { ran_a(); });\n"
        "register('b', function () { ran_b(); });\n"
        "function ran_a() { }\n"
        "function ran_b() { }\n"
        "activate('a');\n"
    )
    dead = _dead_names(src)
    assert "ran_a" not in dead
    assert "ran_b" in dead


# -- registrations and escapes ------------------------------------------- #

def test_settimeout_argument_is_registered_live():
    graph, flow = _flow("setTimeout(function () { tick(); }, 100);")
    fid = graph.functions[0].fid
    assert fid in flow.registered_fids
    assert fid in flow.live_fids


def test_add_event_listener_argument_is_registered_live():
    src = "el.addEventListener('click', function (ev) { });"
    graph, flow = _flow(src)
    assert graph.functions[0].fid in flow.registered_fids


def test_function_passed_to_unknown_callee_escapes():
    graph, flow = _flow("function f() { } mystery(f);")
    fid = _fid(graph, "f")
    assert fid in flow.escaped_fids
    assert fid in flow.live_fids
    assert "mystery" in flow.escape_reasons[fid]
    sites = [s for s in flow.sites.values() if s.callee == "mystery"]
    assert sites and sites[0].status == "fallback"


def test_function_stored_through_unknown_base_escapes():
    graph, flow = _flow("function f() { } window.hook = f;")
    assert _fid(graph, "f") in flow.escaped_fids


def test_thrown_function_escapes():
    graph, flow = _flow("function f() { } throw f;")
    assert _fid(graph, "f") in flow.escaped_fids


def test_escaped_function_body_reanalyzed_with_unknown_args():
    # Once f escapes, anything *it* references must stay live too.
    src = "function g() { } function f() { g(); } mystery(f);"
    assert _dead_names(src) == set()


def test_escaped_object_contents_escape():
    src = (
        "function f() { }\n"
        "var box = { fn: f };\n"
        "mystery(box);\n"
    )
    graph, flow = _flow(src)
    fid = _fid(graph, "f")
    assert fid in flow.escaped_fids
    assert flow.escaped_objs


# -- observability facts -------------------------------------------------- #

def test_cold_store_is_unobservable():
    src = "var o = {}; function w() { o.n = 1; } w();"
    _graph_, flow = _flow(src)
    stores = {s for key in flow.cell_stores.values() for s in key}
    oid, prop = next((s for s in stores if s[1] == "n"))
    assert flow.unobservable_store(oid, prop) is None


def test_read_store_is_observable():
    src = "var o = {}; function w() { o.n = 1; } w(); use(o.n);"
    _graph_, flow = _flow(src)
    stores = {s for key in flow.cell_stores.values() for s in key}
    oid, prop = next((s for s in stores if s[1] == "n"))
    assert flow.unobservable_store(oid, prop) is not None


def test_selfupdate_only_store_is_unobservable():
    src = "var o = { n: 0 }; function w() { o.n += 1; } w();"
    _graph_, flow = _flow(src)
    stores = {s for key in flow.cell_stores.values() for s in key}
    oid, prop = next((s for s in stores if s[1] == "n"))
    assert flow.unobservable_store(oid, prop) is None


def test_escaped_object_store_is_observable():
    src = "var o = {}; o.n = 1; mystery(o);"
    _graph_, flow = _flow(src)
    oid = next(iter(flow.escaped_objs))
    assert "escapes" in flow.unobservable_store(oid, "n")


# -- fallback semantics ---------------------------------------------------- #

def test_budget_exhaustion_falls_back_to_edge_fixpoint(monkeypatch):
    monkeypatch.setattr(valueflow, "MAX_STEPS", 3)
    src = "function maybe() { } var table = [maybe];"
    graph = build_call_graph({"s.js": parse_js(src)})
    assert graph.valueflow is None  # bailed out, nothing recorded
    # The REF/ESCAPE over-approximation is authoritative again.
    assert graph.dead_functions() == []


def test_failed_resolution_reports_reason(monkeypatch):
    monkeypatch.setattr(valueflow, "MAX_ROUNDS", 0)
    flow = resolve_value_flow(
        build_call_graph({"s.js": parse_js("var x = 1;")}, resolve=False),
        {"s.js": parse_js("var x = 1;")},
    )
    assert not flow.ok
    assert "round budget" in flow.reason


def test_resolve_false_skips_the_analysis():
    graph = build_call_graph(
        {"s.js": parse_js("function f() { } f();")}, resolve=False
    )
    assert graph.valueflow is None
    assert graph.dead_functions() == []


# -- graph wiring and report plumbing -------------------------------------- #

def test_resolved_sites_add_vflow_edges():
    graph, flow = _flow("function a() { } a();")
    edges = graph.value_edges[("top", "s.js")]
    assert (EdgeKind.VFLOW, _fid(graph, "a")) in edges


def test_incomplete_sites_add_no_vflow_edges():
    graph, flow = _flow("mystery(1);")
    for edges in graph.value_edges.values():
        assert all(kind is not EdgeKind.VFLOW for kind, _ in edges)


def test_call_site_verdicts_shape():
    analysis = analyze_page(
        {"s.js": "function a() { } var b = a; b(); mystery(2);"}
    )
    verdicts = call_site_verdicts(analysis)
    by_callee = {v["callee"]: v for v in verdicts}
    assert by_callee["b"]["status"] == "resolved"
    assert by_callee["b"]["targets"] == ["a"]
    assert "bound to global 'b'" in by_callee["b"]["chains"]["a"]
    assert by_callee["mystery"]["status"] == "fallback"


def test_call_site_verdicts_empty_without_valueflow():
    analysis = analyze_page({"s.js": "function f() { } f();"}, resolve=False)
    assert call_site_verdicts(analysis) == []


def test_liveness_is_fixpoint_stable():
    # Re-running the analysis over the same graph yields identical sets.
    src = (
        "var handlers = {};\n"
        "function register(id, fn) { handlers[id] = fn; }\n"
        "register('w0', function () { });\n"
        "setTimeout(function () { register('w1', function () { }); }, 5);\n"
    )
    first = _graph(src)
    second = _graph(src)
    assert first.valueflow.live_fids == second.valueflow.live_fids
    assert first.valueflow.invoked_fids == second.valueflow.invoked_fids
    assert first.valueflow.escaped_fids == second.valueflow.escaped_fids
