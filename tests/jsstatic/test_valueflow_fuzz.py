"""Fuzz-differential soundness: value-flow liveness vs. byte coverage.

The value-flow analysis replaces the REF over-approximation with
resolved liveness, so the property that must never break is that no
function the engine *actually executed* (byte-coverage ground truth) is
marked dead by the resolved graph.  Each seed builds a randomized
synthetic page — the same 60-seed corpus the slicer differential tests
use — runs its full browsing session through the engine, and joins the
static verdicts against the recorded coverage; a failing seed reproduces
the page exactly.
"""

import pytest

from repro.harness.experiments import run_engine
from repro.jsstatic.analyzer import analyze_page
from repro.jsstatic.compare import benchmark_sources, compare_coverage
from repro.workloads.fuzz import random_page

SEEDS = range(60)


@pytest.mark.parametrize("seed", SEEDS)
def test_no_executed_function_marked_dead(seed):
    bench = random_page(seed)
    analysis = analyze_page(benchmark_sources(bench))
    engine = run_engine(bench)
    cmp = compare_coverage(f"fuzz-{seed}", analysis, engine.interp.coverage)
    assert cmp.is_sound, (
        f"seed={seed}: executed functions marked dead: {cmp.false_dead}"
    )
    assert cmp.precision == 1.0


def test_corpus_mostly_resolves():
    """The analysis itself (not the fallback) must carry the corpus."""
    resolved = 0
    for seed in SEEDS:
        analysis = analyze_page(benchmark_sources(random_page(seed)))
        flow = analysis.graph.valueflow
        if flow is not None and flow.ok:
            resolved += 1
    assert resolved >= 54, f"value flow resolved only {resolved}/60 seeds"
