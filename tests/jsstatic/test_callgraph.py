"""Call-graph liveness: handlers, timers, callbacks, aliases, escapes."""

from repro.browser.js.parser import parse_js
from repro.jsstatic.analyzer import analyze_page
from repro.jsstatic.callgraph import EdgeKind, build_call_graph


def _graph(source, url="s.js"):
    return build_call_graph({url: parse_js(source)})


def _dead_names(source):
    graph = _graph(source)
    return {f.label() for f in graph.dead_functions()}


def test_unreferenced_function_is_dead():
    assert _dead_names("function unused() { return 1; }") == {"unused"}


def test_called_function_is_live():
    assert _dead_names("function used() { return 1; } used();") == set()


def test_transitive_call_chain_live():
    src = "function a() { b(); } function b() { } a();"
    assert _dead_names(src) == set()


def test_uncalled_chain_dead():
    src = "function a() { b(); } function b() { }"
    assert _dead_names(src) == {"a", "b"}


def test_event_handler_is_live():
    src = (
        "function onClick(ev) { react(ev); }"
        "document.getElementById('x').addEventListener('click', onClick);"
    )
    assert _dead_names(src) == set()


def test_inline_event_handler_is_live():
    src = (
        "window.addEventListener('load', function () { boot(); });"
    )
    assert _dead_names(src) == set()


def test_timer_callback_is_live():
    assert _dead_names("function tick() { } setTimeout(tick, 100);") == set()
    assert _dead_names(
        "requestAnimationFrame(function () { frame(); });"
    ) == set()


def test_array_callback_is_live():
    src = "items.forEach(function (it) { use(it); });"
    assert _dead_names(src) == set()


def test_aliased_function_called_by_alias_is_live():
    src = "var go = function () { return 1; }; go();"
    assert _dead_names(src) == set()


def test_aliased_function_never_referenced_is_dead():
    assert _dead_names("var go = function () { return 1; };") == {"go"}


def test_name_reference_without_call_is_resolved_dead():
    # Value flow tracks the array store: the function value sits in a
    # tracked object that is never read back, so it can never run.
    src = "function maybe() { } var table = [maybe];"
    assert _dead_names(src) == {"maybe"}


def test_name_reference_without_call_stays_live_without_valueflow():
    # The PR-2 edge fixpoint keeps the REF over-approximation.
    src = "function maybe() { } var table = [maybe];"
    graph = build_call_graph({"s.js": parse_js(src)}, resolve=False)
    assert graph.dead_functions() == []


def test_object_literal_method_never_loaded_is_dead():
    graph = _graph("var api = { run: function () { work(); } };")
    assert len(graph.functions) == 1
    assert [f.fid for f in graph.dead_functions()] == [graph.functions[0].fid]


def test_object_literal_method_called_through_property_is_live():
    src = "var api = { run: function () { } }; api.run();"
    assert _dead_names(src) == set()


def test_iife_is_live():
    assert _dead_names("(function () { boot(); })();") == set()


def test_cross_script_call_resolves():
    graph = build_call_graph({
        "a.js": parse_js("function shared() { return 1; }"),
        "b.js": parse_js("shared();"),
    })
    assert graph.dead_functions() == []


def test_edge_kinds_recorded():
    graph = _graph(
        "function h() { }"
        "el.addEventListener('click', h);"
        "setTimeout(function () { }, 0);"
    )
    kinds = {
        kind
        for edges in list(graph.name_edges.values()) + list(graph.value_edges.values())
        for kind, _target in edges
    }
    assert EdgeKind.HANDLER in kinds
    assert EdgeKind.TIMER in kinds


def test_escape_edge_for_function_in_array_literal():
    # The syntactic scanner still records the ESCAPE value edge (it is
    # the fallback evidence), but value flow proves the array is never
    # read, so the function resolves dead.
    graph = _graph("var table = [function () { work(); }];")
    edges = graph.value_edges[("top", "s.js")]
    assert len(graph.functions) == 1
    fid = graph.functions[0].fid
    assert (EdgeKind.ESCAPE, fid) in edges
    assert [f.fid for f in graph.dead_functions()] == [fid]
    graph = build_call_graph(
        {"s.js": parse_js("var table = [function () { work(); }];")},
        resolve=False,
    )
    assert graph.dead_functions() == []


def test_escape_edge_for_function_passed_to_unknown_callee():
    # register() is not a timer/handler/callback API, so the argument
    # escapes rather than getting a special invocation edge.
    graph = _graph("register(function () { });")
    kinds = {kind for kind, _fid in graph.value_edges[("top", "s.js")]}
    assert kinds == {EdgeKind.ESCAPE}


def test_timer_name_edge_for_identifier_callback():
    graph = _graph("function tick() { } setTimeout(tick, 100);")
    names = graph.name_edges[("top", "s.js")]
    assert (EdgeKind.TIMER, "tick") in names


def test_timer_value_edge_for_inline_callback():
    graph = _graph("requestAnimationFrame(function () { });")
    edges = graph.value_edges[("top", "s.js")]
    fid = graph.functions[0].fid
    assert (EdgeKind.TIMER, fid) in edges


def test_timer_edge_only_for_callback_position():
    # Only argument 0 of a timer call is the callback; a function-valued
    # name in any later position is an ordinary REF.
    graph = _graph("function tick() { } setTimeout(tick, delay);")
    names = graph.name_edges[("top", "s.js")]
    assert (EdgeKind.TIMER, "tick") in names
    assert (EdgeKind.REF, "delay") in names
    assert (EdgeKind.TIMER, "delay") not in names


def test_handler_registered_only_by_dead_registrar_stays_dead():
    # The HANDLER edge to the callback exists, but it originates from a
    # region (the registrar) that never runs — the fixpoint must not
    # follow edges out of dead regions.
    src = (
        "function registrar() { el.addEventListener('click', handler); }"
        "function handler() { }"
    )
    graph = _graph(src)
    registrar = graph.functions_named("registrar")[0]
    edges = graph.name_edges[("fn", str(registrar.fid))]
    assert (EdgeKind.HANDLER, "handler") in edges
    assert _dead_names(src) == {"registrar", "handler"}


def test_handler_registered_by_live_registrar_is_live():
    src = (
        "function registrar() { el.addEventListener('click', handler); }"
        "function handler() { }"
        "registrar();"
    )
    assert _dead_names(src) == set()


def test_function_inside_dead_function_is_dead():
    # inner's name is referenced from the live top level, but its defining
    # region (outer) never runs, so its value can never exist.
    analysis = analyze_page({
        "s.js": (
            "function outer() { function inner() { } inner(); }"
            "inner;"
        )
    })
    dead = {f.label() for f in analysis.dead_functions}
    assert dead == {"outer", "inner"}


def test_nested_functions_in_live_function_follow_edges():
    analysis = analyze_page({
        "s.js": (
            "function outer() { function inner() { } inner(); }"
            "outer();"
        )
    })
    assert analysis.dead_functions == []
