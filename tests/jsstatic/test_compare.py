"""Soundness + precision/recall of static verdicts vs. dynamic coverage.

The acceptance bar for the whole analyzer: on the bundled workloads, no
function reported statically dead is ever executed by the engine's full
scripted session (precision == 1.0), and the comparison harness reports
per-workload precision/recall.
"""

import pytest

from repro.harness.experiments import run_engine
from repro.jsstatic.compare import (
    benchmark_sources,
    compare_benchmark,
    comparison_report,
)
from repro.workloads import benchmark

WORKLOADS = ("wiki_article", "amazon_desktop", "bing", "google_maps")


@pytest.fixture(scope="module")
def comparisons():
    out = {}
    for name in WORKLOADS:
        engine = run_engine(benchmark(name))
        out[name] = compare_benchmark(name, engine=engine)
    return out


@pytest.mark.parametrize("name", WORKLOADS)
def test_static_dead_verdicts_are_sound(comparisons, name):
    cmp = comparisons[name]
    assert cmp.is_sound, f"unsound verdicts: {cmp.false_dead}"
    assert cmp.precision == 1.0


@pytest.mark.parametrize("name", WORKLOADS)
def test_static_dead_is_subset_of_dynamic_dead(comparisons, name):
    for script in comparisons[name].scripts:
        assert script.static_dead <= script.dynamic_dead


def test_recall_is_meaningful_on_larger_workloads(comparisons):
    # The synthetic app bundles carry deliberately-unused library tails;
    # the analyzer should predict a solid majority of the dynamic waste.
    for name in ("amazon_desktop", "bing", "google_maps"):
        cmp = comparisons[name]
        assert cmp.n_static_dead > 0
        assert cmp.recall >= 0.5, f"{name}: recall {cmp.recall:.2f}"


def test_every_coverage_script_is_analyzed(comparisons):
    for name in WORKLOADS:
        cmp = comparisons[name]
        analyzed = set(cmp.analysis.programs)
        compared = {s.url for s in cmp.scripts}
        assert compared <= analyzed
        assert compared  # the join must not be empty


def test_report_contains_precision_and_recall(comparisons):
    report = comparison_report(list(comparisons.values()))
    assert "prec" in report and "recall" in report
    for name in WORKLOADS:
        assert name in report
    assert "UNSOUND" not in report


def test_benchmark_sources_include_late_scripts():
    bench = benchmark("amazon_desktop_browse")
    sources = benchmark_sources(bench)
    assert set(bench.page.scripts) <= set(sources)
    late_urls = {u for late in bench.late_scripts.values() for u in late}
    assert late_urls <= set(sources)


def test_cli_report_runs(capsys):
    from repro.jsstatic.__main__ import main

    assert main(["analyze", "wiki_article"]) == 0
    out = capsys.readouterr().out
    assert "statically dead functions" in out
