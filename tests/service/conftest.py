"""Shared fixtures: a saved fuzz trace and in-process daemon instances.

Sockets live in a short ``mkdtemp`` directory rather than ``tmp_path``
because ``AF_UNIX`` paths are capped at ~108 bytes and pytest's nested
tmp directories can exceed that.
"""

import shutil
import tempfile

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ProfilingServer
from repro.trace.store import save_trace
from repro.workloads.fuzz import random_trace


@pytest.fixture(scope="session")
def fuzz_trace_path(tmp_path_factory):
    """A well-formed ~4k-record trace on disk (pixel markers guaranteed)."""
    store = random_trace(seed=11, target_records=4_000)
    path = tmp_path_factory.mktemp("svc-traces") / "fuzz.ucwa"
    save_trace(store, path)
    return path


@pytest.fixture
def service_factory():
    """Boot in-process daemons; everything is torn down at test end."""
    started = []
    tmp_dirs = []

    def boot(**kwargs) -> ProfilingServer:
        tmp = tempfile.mkdtemp(prefix="repro-svc-")
        tmp_dirs.append(tmp)
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("queue_size", 16)
        server = ProfilingServer(f"{tmp}/s.sock", f"{tmp}/cache", **kwargs)
        server.start()
        started.append(server)
        return server

    yield boot
    for server in started:
        server.close()
    for tmp in tmp_dirs:
        shutil.rmtree(tmp, ignore_errors=True)


@pytest.fixture
def service(service_factory):
    server = service_factory()
    return server, ServiceClient(server.socket_path)
