"""Shared fixtures: a saved fuzz trace and in-process daemon instances.

Sockets live in a short ``mkdtemp`` directory rather than ``tmp_path``
because ``AF_UNIX`` paths are capped at ~108 bytes and pytest's nested
tmp directories can exceed that.
"""

import shutil
import tempfile

import pytest

from repro.service.client import ServiceClient
from repro.service.fleet.supervisor import FleetSupervisor
from repro.service.server import ProfilingServer
from repro.trace.store import save_trace
from repro.workloads.fuzz import random_frame_trace, random_trace


@pytest.fixture(scope="session")
def fuzz_trace_path(tmp_path_factory):
    """A well-formed ~4k-record trace on disk (pixel markers guaranteed)."""
    store = random_trace(seed=11, target_records=4_000)
    path = tmp_path_factory.mktemp("svc-traces") / "fuzz.ucwa"
    save_trace(store, path)
    return path


@pytest.fixture(scope="session")
def frame_trace_path(tmp_path_factory):
    """A multi-frame trace (streaming slicing needs frame epochs)."""
    store = random_frame_trace(seed=5, n_frames=4, records_per_frame=300)
    path = tmp_path_factory.mktemp("svc-traces") / "frames.ucwa"
    save_trace(store, path)
    return path


@pytest.fixture
def service_factory():
    """Boot in-process daemons; everything is torn down at test end."""
    started = []
    tmp_dirs = []

    def boot(**kwargs) -> ProfilingServer:
        tmp = tempfile.mkdtemp(prefix="repro-svc-")
        tmp_dirs.append(tmp)
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("queue_size", 16)
        server = ProfilingServer(f"{tmp}/s.sock", f"{tmp}/cache", **kwargs)
        server.start()
        started.append(server)
        return server

    yield boot
    for server in started:
        server.close()
    for tmp in tmp_dirs:
        shutil.rmtree(tmp, ignore_errors=True)


@pytest.fixture
def service(service_factory):
    server = service_factory()
    return server, ServiceClient(server.socket_path)


@pytest.fixture
def fleet_factory():
    """Boot localhost TCP fleets; everything torn down at test end."""
    started = []
    tmp_dirs = []

    def boot(n_shards=2, **kwargs) -> FleetSupervisor:
        tmp = tempfile.mkdtemp(prefix="repro-fleet-")
        tmp_dirs.append(tmp)
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("auth_token", "test-fleet-secret")
        supervisor = FleetSupervisor(tmp, n_shards, **kwargs)
        supervisor.start()
        started.append(supervisor)
        return supervisor

    yield boot
    for supervisor in started:
        supervisor.stop()
    for tmp in tmp_dirs:
        shutil.rmtree(tmp, ignore_errors=True)
