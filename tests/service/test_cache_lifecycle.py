"""Disk-tier lifecycle: byte accounting, LRU byte budget, TTL, restart.

The clock is injected so every TTL/LRU decision is deterministic — no
sleeps.  Byte accounting is checked against the actual serialized JSON
sizes, not just "some positive number", so a drifting ledger fails here
before it mis-sizes a fleet's eviction decisions.
"""

import json

import pytest

from repro.service.cache import ResultCache


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _size(payload) -> int:
    return len(json.dumps(payload, sort_keys=True).encode("utf-8"))


# --------------------------------------------------------------------- #
# Byte accounting                                                       #
# --------------------------------------------------------------------- #


def test_put_tracks_serialized_bytes_exactly(tmp_path):
    cache = ResultCache(tmp_path)
    a = {"fraction": 0.5, "flags": "x" * 100}
    b = {"fraction": 0.25}
    cache.put("ka", a)
    cache.put("kb", b)
    assert cache.cache_bytes() == _size(a) + _size(b)
    assert cache.stats()["cache_bytes"] == _size(a) + _size(b)
    assert cache.stats()["entries_disk"] == 2


def test_overwriting_a_key_does_not_double_count(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k", {"v": "x" * 500})
    small = {"v": "y"}
    cache.put("k", small)
    assert cache.cache_bytes() == _size(small)
    assert cache.stats()["entries_disk"] == 1


def test_eviction_returns_bytes_to_the_ledger(tmp_path):
    clock = FakeClock()
    payload = {"v": "x" * 200}
    budget = _size(payload) * 2 + 10
    cache = ResultCache(tmp_path, max_bytes=budget, clock=clock)
    for i in range(3):
        clock.advance(1.0)
        cache.put(f"k{i}", payload)
    assert cache.cache_bytes() <= budget
    assert cache.stats()["evictions"] == 1
    assert cache.cache_bytes() == 2 * _size(payload)


# --------------------------------------------------------------------- #
# LRU byte-budget eviction                                              #
# --------------------------------------------------------------------- #


def test_least_recently_used_entry_is_the_victim(tmp_path):
    clock = FakeClock()
    payload = {"v": "x" * 200}
    cache = ResultCache(tmp_path, max_bytes=_size(payload) * 2 + 10, clock=clock)
    cache.put("a", payload)
    clock.advance(1.0)
    cache.put("b", payload)
    clock.advance(1.0)
    assert cache.lookup("a") is not None  # touch a: b is now the LRU
    clock.advance(1.0)
    cache.put("c", payload)  # overflow — evicts b, not a
    assert cache.contains("a")
    assert not cache.contains("b")
    assert cache.contains("c")
    assert cache.stats()["evictions"] == 1


def test_the_entry_just_written_survives_its_own_put(tmp_path):
    # A single entry larger than the whole budget must still land —
    # otherwise an oversized result could never be cached at all.
    cache = ResultCache(tmp_path, max_bytes=16)
    big = {"v": "x" * 1000}
    cache.put("only", big)
    assert cache.contains("only")
    assert cache.cache_bytes() == _size(big)


def test_eviction_clears_both_tiers(tmp_path):
    clock = FakeClock()
    payload = {"v": "x" * 200}
    cache = ResultCache(tmp_path, max_bytes=_size(payload) + 10, clock=clock)
    cache.put("old", payload)
    clock.advance(1.0)
    cache.put("new", payload)
    assert not cache.contains("old")
    found = cache.lookup("old")  # not served from the memory tier either
    assert found is None
    assert not (tmp_path / "results" / "old.json").exists()


# --------------------------------------------------------------------- #
# TTL                                                                   #
# --------------------------------------------------------------------- #


def test_expired_entry_is_a_miss_and_is_unlinked(tmp_path):
    clock = FakeClock()
    cache = ResultCache(tmp_path, ttl_s=60.0, clock=clock)
    cache.put("k", {"v": 1})
    clock.advance(59.0)
    assert cache.lookup("k") is not None  # still fresh
    clock.advance(2.0)  # now 61s past storage
    assert cache.lookup("k") is None
    stats = cache.stats()
    assert stats["expirations"] == 1
    assert stats["misses"] == 1
    assert not (tmp_path / "results" / "k.json").exists()
    assert cache.cache_bytes() == 0


def test_contains_respects_ttl(tmp_path):
    clock = FakeClock()
    cache = ResultCache(tmp_path, ttl_s=10.0, clock=clock)
    cache.put("k", {"v": 1})
    assert cache.contains("k")
    clock.advance(11.0)
    assert not cache.contains("k")


def test_rewriting_a_key_resets_its_ttl(tmp_path):
    clock = FakeClock()
    cache = ResultCache(tmp_path, ttl_s=10.0, clock=clock)
    cache.put("k", {"v": 1})
    clock.advance(8.0)
    cache.put("k", {"v": 2})  # refreshed
    clock.advance(8.0)  # 16s after first put, 8s after second
    found = cache.lookup("k")
    assert found is not None
    assert found[0] == {"v": 2}


# --------------------------------------------------------------------- #
# Restart re-index                                                      #
# --------------------------------------------------------------------- #


def test_restart_reindexes_sizes_and_bytes(tmp_path):
    first = ResultCache(tmp_path)
    a = {"v": "x" * 100}
    b = {"v": "y" * 300}
    first.put("ka", a)
    first.put("kb", b)

    reborn = ResultCache(tmp_path)
    assert reborn.stats()["entries_disk"] == 2
    assert reborn.cache_bytes() == _size(a) + _size(b)
    found = reborn.lookup("ka")
    assert found is not None and found[1] == "disk"


def test_restart_enforces_a_tighter_budget(tmp_path):
    first = ResultCache(tmp_path)
    payload = {"v": "x" * 200}
    for i in range(4):
        first.put(f"k{i}", payload)

    reborn = ResultCache(tmp_path, max_bytes=_size(payload) * 2 + 10)
    assert reborn.cache_bytes() <= _size(payload) * 2 + 10
    assert reborn.stats()["entries_disk"] == 2
    assert reborn.stats()["evictions"] == 2


def test_restart_keeps_ttl_counting_from_file_age(tmp_path, monkeypatch):
    import os
    import time

    first = ResultCache(tmp_path)
    first.put("old", {"v": 1})
    # Age the file two minutes into the past.
    path = tmp_path / "results" / "old.json"
    past = time.time() - 120.0
    os.utime(path, (past, past))

    reborn = ResultCache(tmp_path, ttl_s=60.0)
    assert reborn.lookup("old") is None  # already expired at boot
    assert reborn.stats()["expirations"] == 1


# --------------------------------------------------------------------- #
# Constructor validation                                                #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "kwargs",
    [
        {"memory_entries": 0},
        {"max_bytes": 0},
        {"ttl_s": 0.0},
        {"ttl_s": -5.0},
    ],
)
def test_degenerate_lifecycle_parameters_are_rejected(tmp_path, kwargs):
    with pytest.raises(ValueError):
        ResultCache(tmp_path, **kwargs)
