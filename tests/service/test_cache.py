"""Content-addressed cache tests: key recipe, LRU/disk tiers, memo."""

import json

from repro.service.cache import (
    ResultCache,
    WorkloadDigestMemo,
    cache_key,
    code_version,
)

_DIGEST = "ab" * 32


def test_cache_key_is_deterministic():
    assert cache_key(_DIGEST, "pixels", "sequential") == cache_key(
        _DIGEST, "pixels", "sequential"
    )


def test_cache_key_covers_every_addressing_dimension():
    base = cache_key(_DIGEST, "pixels", "sequential", frame=None, version="v1")
    variants = [
        cache_key("cd" * 32, "pixels", "sequential", frame=None, version="v1"),
        cache_key(_DIGEST, "syscalls", "sequential", frame=None, version="v1"),
        cache_key(_DIGEST, "pixels", "parallel", frame=None, version="v1"),
        cache_key(_DIGEST, "pixels", "sequential", frame=0, version="v1"),
        cache_key(_DIGEST, "pixels", "sequential", frame=None, version="v2"),
    ]
    assert len({base, *variants}) == len(variants) + 1


def test_code_version_is_stable_and_short():
    assert code_version() == code_version()
    assert len(code_version()) == 16


def test_put_then_get_hits_memory(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", {"fraction": 0.5})
    assert cache.lookup("k1") == ({"fraction": 0.5}, "memory")
    stats = cache.stats()
    assert stats["memory_hits"] == 1
    assert stats["misses"] == 0


def test_miss_is_counted(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.lookup("absent") is None
    assert cache.stats()["misses"] == 1
    assert cache.stats()["hit_rate"] == 0.0


def test_lru_eviction_falls_back_to_disk_and_promotes(tmp_path):
    cache = ResultCache(tmp_path, memory_entries=2)
    for i in range(3):
        cache.put(f"k{i}", {"i": i})
    # k0 was evicted from the LRU but the write-through kept it on disk.
    payload, tier = cache.lookup("k0")
    assert (payload, tier) == ({"i": 0}, "disk")
    # The disk hit promoted it back into memory.
    assert cache.lookup("k0") == ({"i": 0}, "memory")
    stats = cache.stats()
    assert stats["disk_hits"] == 1
    assert stats["memory_hits"] == 1
    assert stats["entries_disk"] == 3


def test_disk_store_survives_restart(tmp_path):
    ResultCache(tmp_path).put("persist", {"ok": 1})
    reopened = ResultCache(tmp_path)
    assert reopened.lookup("persist") == ({"ok": 1}, "disk")


def test_corrupt_disk_entry_is_a_miss_and_heals(tmp_path):
    cache = ResultCache(tmp_path, memory_entries=1)
    cache.put("bad", {"ok": 1})
    cache.put("other", {"ok": 2})  # evicts "bad" from memory
    path = tmp_path / "results" / "bad.json"
    path.write_text("{torn", "utf-8")
    assert cache.lookup("bad") is None
    assert not path.exists()  # dropped so the next put heals the slot
    cache.put("bad", {"ok": 3})
    assert cache.get("bad") == {"ok": 3}


def test_contains_does_not_touch_counters(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k", {})
    assert cache.contains("k")
    assert not cache.contains("absent")
    stats = cache.stats()
    assert stats["memory_hits"] == stats["disk_hits"] == stats["misses"] == 0


def test_workload_memo_round_trip_and_persistence(tmp_path):
    memo = WorkloadDigestMemo(tmp_path)
    assert memo.get("bing") is None
    memo.put("bing", _DIGEST)
    assert memo.get("bing") == _DIGEST
    # A fresh instance reads the same file back.
    assert WorkloadDigestMemo(tmp_path).get("bing") == _DIGEST
    # Entries are scoped to the current code version.
    stored = json.loads((tmp_path / "workload-digests.json").read_text("utf-8"))
    assert stored == {code_version(): {"bing": _DIGEST}}
