"""Wire-protocol framing tests (socketpair, no daemon involved)."""

import json
import socket
import struct

import pytest

from repro.service import protocol


def _pair():
    return socket.socketpair()


def test_round_trip_single_message():
    a, b = _pair()
    try:
        message = {"op": "submit", "spec": {"workload": "bing"}, "wait": True}
        protocol.send_message(a, message)
        assert protocol.recv_message(b) == message
    finally:
        a.close()
        b.close()


def test_round_trip_back_to_back_frames():
    """Message boundaries are explicit: two frames never bleed together."""
    a, b = _pair()
    try:
        protocol.send_message(a, {"op": "ping"})
        protocol.send_message(a, {"op": "stats"})
        assert protocol.recv_message(b) == {"op": "ping"}
        assert protocol.recv_message(b) == {"op": "stats"}
    finally:
        a.close()
        b.close()


def test_clean_eof_returns_none():
    a, b = _pair()
    a.close()
    try:
        assert protocol.recv_message(b) is None
    finally:
        b.close()


def test_eof_mid_frame_is_protocol_error():
    a, b = _pair()
    try:
        raw = json.dumps({"op": "ping"}).encode()
        a.sendall(struct.pack(">I", len(raw)) + raw[: len(raw) // 2])
        a.close()
        with pytest.raises(protocol.ProtocolError, match="mid-frame|before frame body"):
            protocol.recv_message(b)
    finally:
        b.close()


def test_oversized_length_prefix_rejected_without_allocating():
    a, b = _pair()
    try:
        a.sendall(struct.pack(">I", protocol.MAX_MESSAGE_BYTES + 1))
        with pytest.raises(protocol.ProtocolError, match="exceeds limit"):
            protocol.recv_message(b)
    finally:
        a.close()
        b.close()


def test_invalid_json_is_protocol_error():
    a, b = _pair()
    try:
        raw = b"not json at all"
        a.sendall(struct.pack(">I", len(raw)) + raw)
        with pytest.raises(protocol.ProtocolError, match="not valid JSON"):
            protocol.recv_message(b)
    finally:
        a.close()
        b.close()


def test_non_object_payload_is_protocol_error():
    a, b = _pair()
    try:
        raw = json.dumps([1, 2, 3]).encode()
        a.sendall(struct.pack(">I", len(raw)) + raw)
        with pytest.raises(protocol.ProtocolError, match="expected a JSON object"):
            protocol.recv_message(b)
    finally:
        a.close()
        b.close()


def test_ok_and_error_helpers():
    assert protocol.ok(pong=True) == {"ok": True, "pong": True}
    response = protocol.error(protocol.ERR_BUSY, "queue full")
    assert response["ok"] is False
    assert response["error"]["code"] == "busy"
    assert response["error"]["message"] == "queue full"
