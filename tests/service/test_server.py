"""End-to-end daemon tests over the Unix socket (happy paths)."""

import hashlib
import threading

import pytest

from repro.profiler.api import run_slice_job
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobSpec
from repro.service.server import ProfilingServer
from repro.trace.store import load_trace, save_trace
from repro.workloads.fuzz import random_trace


def test_ping(service):
    _, client = service
    assert client.ping() is True


def test_cold_submit_matches_in_process_run(service, fuzz_trace_path):
    """A service job returns exactly what profiler.api returns in-process."""
    _, client = service
    response = client.submit(JobSpec(trace_path=str(fuzz_trace_path)), wait=True)
    assert response["outcome"] == "ok"
    assert response["state"] == "done"
    assert response["coalesced"] is False

    result, stats = run_slice_job(load_trace(fuzz_trace_path), criteria="pixels")
    payload = response["result"]
    assert payload["fraction"] == stats.fraction
    assert payload["total"] == stats.total
    assert payload["slice_size"] == stats.in_slice
    assert payload["flags_sha256"] == hashlib.sha256(bytes(result.flags)).hexdigest()


def test_warm_submit_is_served_from_cache(service, fuzz_trace_path):
    server, client = service
    spec = JobSpec(trace_path=str(fuzz_trace_path))
    cold = client.submit(spec, wait=True)
    warm = client.submit(spec, wait=True)
    assert cold["outcome"] == "ok"
    assert warm["outcome"] == "cache-memory"
    assert warm["cache"] == "memory"
    assert warm["result"] == cold["result"]
    assert server.cache.stats()["memory_hits"] >= 1
    # Cache hits are synthetic jobs: done before they ever touch the queue.
    assert server.metrics.outcome_counts()["cache-memory"] >= 1


def test_criteria_and_frame_address_distinct_cache_slots(service, fuzz_trace_path):
    _, client = service
    pixels = client.submit(
        JobSpec(trace_path=str(fuzz_trace_path), criteria="pixels"), wait=True
    )
    syscalls = client.submit(
        JobSpec(trace_path=str(fuzz_trace_path), criteria="syscalls"), wait=True
    )
    # Different question, different slot: the second submit did not hit.
    assert pixels["outcome"] == "ok"
    assert syscalls["outcome"] == "ok"
    assert syscalls["result"]["flags_sha256"] != pixels["result"]["flags_sha256"]
    # But each repeats warm.
    assert (
        client.submit(
            JobSpec(trace_path=str(fuzz_trace_path), criteria="syscalls"), wait=True
        )["outcome"]
        == "cache-memory"
    )


def test_warm_set_survives_daemon_restart(service_factory, fuzz_trace_path):
    """Write-through to disk: a new daemon on the same cache dir is warm."""
    first = service_factory()
    spec = JobSpec(trace_path=str(fuzz_trace_path))
    cold = ServiceClient(first.socket_path).submit(spec, wait=True)
    assert cold["outcome"] == "ok"
    first.close()

    second = ProfilingServer(first.socket_path, first._cache_dir)
    second.start()
    try:
        warm = ServiceClient(second.socket_path).submit(spec, wait=True)
        assert warm["outcome"] == "cache-disk"
        assert warm["result"] == cold["result"]
    finally:
        second.close()


def test_workload_submit_cold_then_warm_via_digest_memo(service):
    """The memo makes a repeat *workload* submit warm without re-running it."""
    server, client = service
    spec = JobSpec(workload="wiki_article")
    cold = client.submit(spec, wait=True)
    assert cold["outcome"] == "ok"
    assert server.memo.get("wiki_article") == cold["result"]["trace_digest"]
    warm = client.submit(spec, wait=True)
    assert warm["outcome"] == "cache-memory"
    assert warm["result"]["flags_sha256"] == cold["result"]["flags_sha256"]


def test_concurrent_identical_submits_coalesce_to_one_job(service, tmp_path):
    """N clients asking the same question cost one slice, not N."""
    server, client = service
    # Big enough that the job is still running when the followers submit.
    path = tmp_path / "big.ucwa"
    save_trace(random_trace(seed=23, target_records=60_000), path)
    spec = JobSpec(trace_path=str(path))

    leader = client.submit(spec, wait=False)
    assert leader["state"] in ("queued", "running")

    followers = []

    def follow():
        followers.append(ServiceClient(server.socket_path).submit(spec, wait=True))

    threads = [threading.Thread(target=follow) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    done = client.wait(leader["id"], timeout_s=60)
    assert done["outcome"] == "ok"
    for follower in followers:
        assert follower["id"] == leader["id"]
        assert follower["coalesced"] is True
        assert follower["result"] == done["result"]
    assert server.metrics.counter("coalesced") == 2
    # One slice ran; nothing about coalescing touched the cache counters.
    assert server.metrics.outcome_counts()["ok"] == 1


def test_status_and_wait_roundtrip(service, fuzz_trace_path):
    _, client = service
    submitted = client.submit(JobSpec(trace_path=str(fuzz_trace_path)), wait=False)
    done = client.wait(submitted["id"], timeout_s=60)
    assert done["outcome"] == "ok"
    status = client.status(submitted["id"])
    assert status["state"] == "done"
    assert status["result"] == done["result"]
    assert status["queue_wait_s"] >= 0
    assert status["run_s"] > 0


def test_unknown_job_id_is_a_stable_error(service):
    _, client = service
    with pytest.raises(ServiceError) as excinfo:
        client.status("job-999")
    assert excinfo.value.code == "no-such-job"


def test_invalid_spec_is_rejected_before_queueing(service):
    server, client = service
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"workload": "no_such_workload"}, wait=True)
    assert excinfo.value.code == "invalid-spec"
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"workload": "bing", "criteria": "colors"})
    assert excinfo.value.code == "invalid-spec"
    assert server.metrics.counter("invalid_specs") == 2


def test_stats_endpoint_reports_latency_and_outcomes(service, fuzz_trace_path):
    _, client = service
    client.submit(JobSpec(trace_path=str(fuzz_trace_path)), wait=True)
    client.submit(JobSpec(trace_path=str(fuzz_trace_path)), wait=True)
    stats = client.stats()
    assert stats["counters"]["submits"] == 2
    assert stats["outcomes"]["ok"] == 1
    assert stats["outcomes"]["cache-memory"] == 1
    assert stats["queue_depth"] == 0
    assert stats["running"] == 0
    assert stats["workers"] == 2
    assert stats["draining"] is False
    assert stats["uptime_s"] > 0
    for stage in ("queue_wait", "resolve", "slice", "total"):
        assert stage in stats["latency"], stats["latency"].keys()
    slice_stage = stats["latency"]["slice"]
    assert slice_stage["count"] == 1
    assert slice_stage["p50_s"] <= slice_stage["p90_s"] <= slice_stage["p99_s"]
    cache = stats["cache"]
    assert cache["memory_hits"] == 1
    assert cache["hit_rate"] > 0


def test_unreachable_socket_raises_unreachable(tmp_path):
    client = ServiceClient(str(tmp_path / "nobody-home.sock"), connect_timeout_s=0.2)
    with pytest.raises(ServiceError) as excinfo:
        client.ping()
    assert excinfo.value.code == "unreachable"
