"""Fleet integration: routing, forwarding, failover, handoff, identity.

Two shards on localhost TCP are enough to exercise every fleet
mechanism; the load harness covers scale.  The differential test is the
acceptance gate: a fleet must return byte-identical results (flags
sha256) to a single-node AF_UNIX daemon for the same trace digests.
"""

import pytest

from repro.service.cache import cache_key
from repro.service.client import ServiceClient
from repro.service.fleet.router import FleetClient

TOKEN = "test-fleet-secret"


def _fleet_client(supervisor):
    return FleetClient(supervisor.config, auth_token=TOKEN)


def test_routed_submit_lands_on_the_owner(fleet_factory, fuzz_trace_path):
    supervisor = fleet_factory(n_shards=2)
    fc = _fleet_client(supervisor)
    response = fc.submit_trace(fuzz_trace_path, wait=True)
    assert response["outcome"] == "ok"
    owner = fc.owner_for(fc.trace_digest(fuzz_trace_path))
    assert response["shard"] == owner
    assert "forwarded_by" not in response  # client-side routing: no hop
    # A repeat is a warm hit on the same shard.
    warm = fc.submit_trace(fuzz_trace_path, wait=True)
    assert warm["outcome"].startswith("cache-")
    assert warm["shard"] == owner


def test_misrouted_submit_is_forwarded_to_the_owner(fleet_factory, fuzz_trace_path):
    supervisor = fleet_factory(n_shards=2)
    fc = _fleet_client(supervisor)
    digest = fc.trace_digest(fuzz_trace_path)
    owner = fc.owner_for(digest)
    wrong = next(s for s in supervisor.config.shards if s.id != owner)

    # Talk to the wrong shard directly: upload there, submit there.
    client = ServiceClient(wrong.endpoint, auth_token=TOKEN)
    client.upload_trace(fuzz_trace_path)
    response = client.submit({"trace_ref": digest}, wait=True)
    assert response["outcome"] == "ok"
    assert response["shard"] == owner  # executed on the owner...
    assert response["forwarded_by"] == wrong.id  # ...via one proxy hop
    # The forwarding shipped the trace bytes server-to-server.
    owner_server = supervisor.server(owner)
    assert owner_server.uploads.has(digest)
    # And the owner now holds the warm entry where routed clients look.
    warm = fc.submit_trace(fuzz_trace_path, wait=True)
    assert warm["outcome"].startswith("cache-")


def test_fleet_results_byte_identical_to_single_node(
    fleet_factory, service_factory, fuzz_trace_path, frame_trace_path
):
    """The acceptance differential: same digests, same flags, any topology."""
    single_server = service_factory()
    single = ServiceClient(single_server.socket_path)
    supervisor = fleet_factory(n_shards=2)
    fc = _fleet_client(supervisor)

    jobs = [
        (fuzz_trace_path, "pixels", None),
        (fuzz_trace_path, "syscalls", None),
        (fuzz_trace_path, "pixels+syscalls", None),
        (frame_trace_path, "pixels", None),
        (frame_trace_path, "pixels", 0),
        (frame_trace_path, "pixels", 2),
    ]
    for path, criteria, frame in jobs:
        spec = {"trace_path": str(path), "criteria": criteria}
        if frame is not None:
            spec["frame"] = frame
        reference = single.submit(spec, wait=True)
        fleet = fc.submit_trace(path, criteria=criteria, frame=frame, wait=True)
        assert reference["outcome"] in ("ok", "cache-memory", "cache-disk")
        assert fleet["outcome"] in ("ok", "cache-memory", "cache-disk")
        assert (
            fleet["result"]["flags_sha256"] == reference["result"]["flags_sha256"]
        ), f"fleet diverged from single node on {criteria}/frame={frame}"
        assert fleet["result"]["trace_digest"] == reference["result"]["trace_digest"]
        assert fleet["result"]["slice_size"] == reference["result"]["slice_size"]


def test_shard_death_fails_over_along_the_ring(fleet_factory, fuzz_trace_path):
    supervisor = fleet_factory(n_shards=3)
    fc = _fleet_client(supervisor)
    digest = fc.trace_digest(fuzz_trace_path)
    owner = fc.owner_for(digest)

    supervisor.kill(owner)

    # The client walks the preference order past the dead owner; the
    # job completes on the next shard with an identical result.
    response = fc.submit_trace(fuzz_trace_path, wait=True)
    assert response["outcome"] == "ok"
    successor = fc.ring.preference(fc.key_for(digest))[1]
    assert response["shard"] == successor
    # Repeats stay warm on the successor.
    warm = fc.submit_trace(fuzz_trace_path, wait=True)
    assert warm["outcome"].startswith("cache-")
    assert warm["shard"] == successor


def test_server_side_failover_when_owner_dies(fleet_factory, fuzz_trace_path):
    """A misrouted submit whose owner is dead executes locally."""
    supervisor = fleet_factory(n_shards=2)
    fc = _fleet_client(supervisor)
    digest = fc.trace_digest(fuzz_trace_path)
    owner = fc.owner_for(digest)
    other = next(s for s in supervisor.config.shards if s.id != owner)

    client = ServiceClient(other.endpoint, auth_token=TOKEN)
    client.upload_trace(fuzz_trace_path)
    supervisor.kill(owner)

    response = client.submit({"trace_ref": digest}, wait=True)
    assert response["outcome"] == "ok"
    assert response["shard"] == other.id  # served locally, no hang
    assert supervisor.server(other.id).metrics.counter("forward_failovers") == 1


def test_drain_hands_warm_state_to_ring_successors(fleet_factory, frame_trace_path):
    supervisor = fleet_factory(n_shards=2)
    fc = _fleet_client(supervisor)
    digest = fc.trace_digest(frame_trace_path)
    owner = fc.owner_for(digest)
    survivor = next(s.id for s in supervisor.config.shards if s.id != owner)

    cold = fc.submit_trace(frame_trace_path, wait=True)
    assert cold["outcome"] == "ok"
    # Warm an incremental checkpoint on the owner too.
    ckpt_owner = fc.owner_for(digest, engine="incremental", frame=1)
    fc.submit_trace(frame_trace_path, engine="incremental", frame=1, wait=True)

    drained = fc.drain(owner)
    assert drained["draining"] is True
    assert drained["handed_off"] >= 1
    assert drained.get("handoff_failed", 0) == 0

    # The survivor now answers the same question from cache — the warm
    # replica moved with the departing shard's keys.
    survivor_client = ServiceClient(
        supervisor.config.shard(survivor).endpoint, auth_token=TOKEN
    )
    key = fc.key_for(digest)
    found = supervisor.server(survivor).cache.lookup(key)
    assert found is not None
    payload, _tier = found
    assert payload["flags_sha256"] == cold["result"]["flags_sha256"]
    if ckpt_owner == owner:
        # The checkpoint shipped too (when the drained shard held it).
        received = supervisor.server(survivor).metrics.counter("handoff_received")
        assert received >= 1
    assert survivor_client.ping()  # survivor unaffected


def test_locally_computed_results_replicate_to_their_owner(fleet_factory):
    """Workload jobs (digest unknown at submit) replicate post-hoc."""
    supervisor = fleet_factory(n_shards=2)
    fc = _fleet_client(supervisor)
    response = fc.submit_workload("wiki_article", wait=True)
    assert response["outcome"] == "ok"
    ran_on = response["shard"]
    digest = response["result"]["trace_digest"]
    key = cache_key(digest, "pixels", "sequential", None)
    owner = fc.ring.owner(key)
    if owner == ran_on:
        pytest.skip("pseudo-key and digest key landed on the same shard")
    found = supervisor.server(owner).cache.lookup(key)
    assert found is not None  # replica arrived at the digest-keyed owner
    assert supervisor.server(ran_on).metrics.counter("replicated") == 1


def test_fleet_stats_are_labelled_and_merge(fleet_factory, fuzz_trace_path):
    supervisor = fleet_factory(n_shards=2)
    fc = _fleet_client(supervisor)
    fc.submit_trace(fuzz_trace_path, wait=True)
    fc.submit_trace(fuzz_trace_path, wait=True)

    view = fc.stats()
    assert sorted(view["shards"]) == ["shard-0", "shard-1"]
    assert view["unreachable"] == []
    for shard_id, snapshot in view["shards"].items():
        assert snapshot["labels"] == {"shard": shard_id}
        assert snapshot["shard"] == shard_id
        assert snapshot["fleet"]["shards"] == ["shard-0", "shard-1"]
    merged = view["fleet"]
    assert merged["shards_merged"] == 2
    assert merged["counters"]["submits"] == 2
    total_outcomes = sum(merged["outcomes"].values())
    assert total_outcomes == 2  # one ok + one cache hit, summed across shards
    assert {"shard": "shard-0"} in merged["shards"]


def test_ring_op_exposes_the_topology(fleet_factory):
    supervisor = fleet_factory(n_shards=2)
    client = ServiceClient(supervisor.config.shards[0].endpoint, auth_token=TOKEN)
    response = client.ring()
    assert response["shard"] == "shard-0"
    assert [s["id"] for s in response["fleet"]["shards"]] == [
        "shard-0",
        "shard-1",
    ]
    # A client can reconstruct the identical ring from the wire form.
    from repro.service.fleet.ring import FleetConfig

    clone = FleetConfig.from_dict(response["fleet"])
    assert clone == supervisor.config


def test_stats_merge_handles_dead_shards(fleet_factory, fuzz_trace_path):
    supervisor = fleet_factory(n_shards=2)
    fc = _fleet_client(supervisor)
    fc.submit_trace(fuzz_trace_path, wait=True)
    supervisor.kill("shard-1")
    view = fc.stats()
    assert view["unreachable"] == ["shard-1"]
    assert view["fleet"]["shards_merged"] == 1
