"""CLI contract: invalid specs exit 2 *client-side*, loadtest entry point.

The invalid-spec tests point at an endpoint that does not exist — the
only way they can exit 2 with a spec message (rather than an
unreachable error) is if validation happens before any connection is
attempted, which is the satellite contract: bad ``--engine``/values
never reach a daemon, and with ``--upload`` no bytes move.
"""

import json

import pytest

from repro.service.__main__ import main

NOWHERE = "unix:/tmp/no-such-repro-daemon.sock"


@pytest.mark.parametrize(
    "bad_option",
    [
        "--engine=warp",
        "--engine=",
        "--criteria=vibes",
        "--frame=notanint",
        "--slicer-workers=many",
        "--timeout=soon",
    ],
)
def test_invalid_submit_values_exit_2_before_any_connection(bad_option, capsys):
    code = main(
        ["submit", f"--socket={NOWHERE}", "--workload=wiki_article", bad_option]
    )
    assert code == 2
    err = capsys.readouterr().err
    # A spec message, not a transport one: the daemon was never dialed.
    assert "unreachable" not in err
    assert "invalid job spec" in err or "expects" in err


def test_invalid_engine_with_upload_exits_2_before_bytes_move(
    fuzz_trace_path, capsys
):
    code = main(
        [
            "submit",
            f"--socket={NOWHERE}",
            f"--upload={fuzz_trace_path}",
            "--engine=warp",
        ]
    )
    assert code == 2
    assert "invalid job spec" in capsys.readouterr().err


@pytest.mark.parametrize(
    "argv",
    [
        ["submit", f"--socket={NOWHERE}"],  # no target at all
        ["submit", f"--socket={NOWHERE}", "--upload=/tmp/x", "--trace=/tmp/y"],
        ["submit", f"--socket={NOWHERE}", "--workload=wiki_article", "--stream"],
        ["submit", f"--socket={NOWHERE}", "--upload=/tmp/x", "--stream"],  # not incremental
        ["submit", f"--socket={NOWHERE}", "--workload=wiki_article", "--bogus=1"],
        ["submit", "--workload=wiki_article"],  # no endpoint
        ["serve", "--socket=/tmp/x.sock"],  # no cache dir
        ["serve", "--cache-dir=/tmp/c", "--tcp=nohostport"],
        ["serve", "--cache-dir=/tmp/c"],  # no transport
        ["status", f"--socket={NOWHERE}"],  # job id missing
        ["loadtest", "--shards=abc"],
        ["loadtest", "--surprise=1"],
        ["frobnicate"],
        [],
    ],
)
def test_malformed_invocations_exit_2(argv, capsys):
    assert main(argv) == 2
    capsys.readouterr()  # drain


def test_submit_over_tcp_with_auth(service_factory, fuzz_trace_path, capsys):
    server = service_factory(tcp_addr=("127.0.0.1", 0), auth_token="sekrit")
    code = main(
        [
            "submit",
            f"--socket=tcp:127.0.0.1:{server.tcp_port}",
            "--auth-token=sekrit",
            f"--trace={fuzz_trace_path}",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "slice" in out and "engine=sequential" in out


def test_upload_stream_prints_per_frame_lines(
    service_factory, frame_trace_path, capsys
):
    server = service_factory(tcp_addr=("127.0.0.1", 0))
    code = main(
        [
            "submit",
            f"--socket=tcp:127.0.0.1:{server.tcp_port}",
            f"--upload={frame_trace_path}",
            "--engine=incremental",
            "--stream",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "streamed" in out and "checkpoint cold" in out
    assert out.count("frame ") == 4  # one line per sliced frame


def test_unreadable_upload_file_exits_2(service_factory, capsys):
    server = service_factory(tcp_addr=("127.0.0.1", 0))
    code = main(
        [
            "submit",
            f"--socket=tcp:127.0.0.1:{server.tcp_port}",
            "--upload=/tmp/definitely-not-a-trace.ucwa",
        ]
    )
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


def test_loadtest_reduced_run_emits_json_and_passes_budgets(capsys):
    code = main(
        [
            "loadtest",
            "--shards=1",
            "--clients=4",
            "--jobs=12",
            "--rounds=2",
            "--traces=1",
            "--records-per-frame=120",
            "--json",
        ]
    )
    captured = capsys.readouterr()
    report = json.loads(captured.out)
    assert code == 0, report.get("violations")
    assert report["violations"] == []
    assert len(report["rounds"]) == 2
    assert report["rounds"][0]["dropped"] == 0
    assert report["rounds"][1]["warm_hit_rate"] >= 0.9
