"""Failure-path tests: crash isolation, retry-once, timeouts, cancel,
backpressure, cache invalidation, and graceful drain.

All jobs here run against the small fuzz trace so every path is fast and
deterministic; the ``fault`` hook in :class:`JobSpec` injects the failure
inside the worker process itself (see repro/service/jobs.py).
"""

import time

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobSpec
from repro.trace.store import file_digest, save_trace
from repro.workloads.fuzz import random_trace


def _wait_until(predicate, timeout_s=10.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("condition not reached before deadline")


def test_worker_crash_is_isolated_and_retried_once(service, fuzz_trace_path):
    """A deterministic crasher fails after exactly two attempts — and the
    server survives to run the next job."""
    server, client = service
    crashed = client.submit(
        JobSpec(trace_path=str(fuzz_trace_path), fault="crash"), wait=True
    )
    assert crashed["outcome"] == "crashed"
    assert crashed["attempts"] == 2  # retry-once, then give up
    assert crashed["error"]["code"] == "crashed"
    assert "exit code 17" in crashed["error"]["message"]
    assert "result" not in crashed

    # The daemon is unharmed: same connection path, clean job, clean result.
    assert client.ping() is True
    healthy = client.submit(JobSpec(trace_path=str(fuzz_trace_path)), wait=True)
    assert healthy["outcome"] == "ok"
    assert server.metrics.counter("retries") == 1


def test_transient_crash_recovers_on_the_retry(service, fuzz_trace_path):
    server, client = service
    spec = JobSpec(trace_path=str(fuzz_trace_path), fault="crash-once")
    response = client.submit(spec, wait=True)
    assert response["outcome"] == "ok"
    assert response["attempts"] == 2
    assert response["result"]["fraction"] > 0

    # Fault-injected runs never reach the cache: an identical resubmit
    # re-executes (and crashes once again) instead of hitting.
    again = client.submit(spec, wait=True)
    assert again["outcome"] == "ok"
    assert again["attempts"] == 2
    assert server.cache.stats()["memory_hits"] == 0


def test_job_timeout_is_structured_and_not_retried(service, fuzz_trace_path):
    _, client = service
    response = client.submit(
        JobSpec(trace_path=str(fuzz_trace_path), fault="hang", timeout_s=0.4),
        wait=True,
    )
    assert response["outcome"] == "timeout"
    assert response["attempts"] == 1  # a job that spent its budget once stops
    assert response["error"]["code"] == "timeout"
    assert client.ping() is True


def test_wait_op_timeout_leaves_the_job_running(service, fuzz_trace_path):
    _, client = service
    hung = client.submit(
        JobSpec(trace_path=str(fuzz_trace_path), fault="hang", timeout_s=5.0),
        wait=False,
    )
    with pytest.raises(ServiceError) as excinfo:
        client.wait(hung["id"], timeout_s=0.2)
    assert excinfo.value.code == "timeout"
    assert client.status(hung["id"])["state"] in ("queued", "running")
    client.cancel(hung["id"])
    done = client.wait(hung["id"], timeout_s=30)
    assert done["outcome"] == "cancelled"
    assert done["error"]["code"] == "cancelled"


def test_editing_the_trace_file_invalidates_its_cache_entries(
    service, tmp_path
):
    """Content addressing needs no invalidation API: a changed digest is a
    different key, so a stale result can never be served."""
    _, client = service
    path = tmp_path / "mutable.ucwa"
    save_trace(random_trace(seed=31, target_records=3_000), path)
    spec = JobSpec(trace_path=str(path))

    first = client.submit(spec, wait=True)
    assert first["outcome"] == "ok"
    assert client.submit(spec, wait=True)["outcome"] == "cache-memory"

    old_digest = file_digest(path)
    save_trace(random_trace(seed=32, target_records=3_000), path)
    assert file_digest(path) != old_digest

    fresh = client.submit(spec, wait=True)
    assert fresh["outcome"] == "ok"  # a slice ran — no stale hit
    assert fresh["result"]["trace_digest"] != first["result"]["trace_digest"]


def test_full_queue_rejects_with_busy(service_factory, fuzz_trace_path):
    """Backpressure is an explicit response, not a hang."""
    server = service_factory(workers=1, queue_size=1)
    client = ServiceClient(server.socket_path)
    path = str(fuzz_trace_path)

    # Distinct criteria → distinct fingerprints, so nothing coalesces.
    running = client.submit(
        JobSpec(trace_path=path, fault="hang", timeout_s=30), wait=False
    )
    _wait_until(lambda: client.stats()["running"] == 1)
    queued = client.submit(
        JobSpec(trace_path=path, criteria="syscalls", fault="hang", timeout_s=30),
        wait=False,
    )
    with pytest.raises(ServiceError) as excinfo:
        client.submit(
            JobSpec(
                trace_path=path,
                criteria="pixels+syscalls",
                fault="hang",
                timeout_s=30,
            )
        )
    assert excinfo.value.code == "busy"
    assert client.stats()["counters"]["busy_rejected"] == 1

    for job in (running, queued):
        client.cancel(job["id"])
        assert client.wait(job["id"], timeout_s=30)["outcome"] == "cancelled"


def test_identical_faulty_submits_coalesce(service, fuzz_trace_path):
    """Coalescing is deterministic to test with a hanging job in flight."""
    server, client = service
    spec = JobSpec(trace_path=str(fuzz_trace_path), fault="hang", timeout_s=30)
    leader = client.submit(spec, wait=False)
    follower = client.submit(spec, wait=False)
    assert follower["id"] == leader["id"]
    assert follower["coalesced"] is True
    assert server.metrics.counter("coalesced") == 1
    client.cancel(leader["id"])
    assert client.wait(leader["id"], timeout_s=30)["outcome"] == "cancelled"


def test_graceful_drain_refuses_new_work_and_finishes_old(
    service_factory, fuzz_trace_path
):
    server = service_factory(workers=1)
    client = ServiceClient(server.socket_path)
    inflight = client.submit(
        JobSpec(trace_path=str(fuzz_trace_path), fault="hang", timeout_s=0.6),
        wait=False,
    )
    _wait_until(lambda: client.stats()["running"] == 1)

    response = client.shutdown(drain=True)
    assert response["draining"] is True

    # Draining: the daemon still answers but refuses new submissions.
    with pytest.raises(ServiceError) as excinfo:
        client.submit(JobSpec(trace_path=str(fuzz_trace_path)))
    assert excinfo.value.code == "shutting-down"

    # The in-flight job is allowed to reach its own terminal state
    # (here its timeout), then the listener goes away.
    server.serve_forever()  # returns once the drain completes
    with pytest.raises(ServiceError) as excinfo:
        ServiceClient(server.socket_path, connect_timeout_s=0.2).ping()
    assert excinfo.value.code == "unreachable"

    job = server._jobs[inflight["id"]]
    assert job.outcome == "timeout"


def test_shutdown_now_cancels_everything_quickly(service_factory, fuzz_trace_path):
    server = service_factory(workers=2)
    client = ServiceClient(server.socket_path)
    jobs = [
        client.submit(
            JobSpec(
                trace_path=str(fuzz_trace_path),
                criteria=criteria,
                fault="hang",
                timeout_s=60,
            ),
            wait=False,
        )
        for criteria in ("pixels", "syscalls")
    ]
    _wait_until(lambda: client.stats()["running"] == 2)

    start = time.monotonic()
    client.shutdown(drain=False)
    server.serve_forever()
    assert time.monotonic() - start < 10.0  # cancelled, not waited out

    for submitted in jobs:
        assert server._jobs[submitted["id"]].outcome == "cancelled"
