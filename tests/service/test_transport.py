"""TCP transport + shared-secret auth handshake.

The TCP listener speaks the identical length-prefixed JSON protocol as
the Unix socket; the only difference is the per-connection auth state.
These tests pin the stable error codes (``auth-required``,
``auth-failed``) and the one-strike connection policy.
"""

import socket

import pytest

from repro.service.client import ServiceClient, ServiceError, parse_endpoint
from repro.service.protocol import recv_message, send_message


def _tcp_server(service_factory, **kwargs):
    kwargs.setdefault("tcp_addr", ("127.0.0.1", 0))
    return service_factory(**kwargs)


def test_parse_endpoint_forms():
    assert parse_endpoint("/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert parse_endpoint("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert parse_endpoint("tcp:127.0.0.1:7001") == ("tcp", ("127.0.0.1", 7001))
    for bad in ("tcp:nohost", "tcp::8080", "tcp:host:notaport", "tcp:h:0"):
        with pytest.raises(ValueError):
            parse_endpoint(bad)


def test_tcp_listener_binds_ephemeral_port_and_serves(service_factory, fuzz_trace_path):
    server = _tcp_server(service_factory)
    assert server.tcp_port is not None and server.tcp_port > 0
    client = ServiceClient(f"tcp:127.0.0.1:{server.tcp_port}")
    assert client.ping()
    response = client.submit({"trace_path": str(fuzz_trace_path)}, wait=True)
    assert response["outcome"] == "ok"


def test_tcp_and_unix_serve_the_same_daemon(service_factory, fuzz_trace_path):
    server = _tcp_server(service_factory)
    unix = ServiceClient(server.socket_path)
    tcp = ServiceClient(f"tcp:127.0.0.1:{server.tcp_port}")
    cold = unix.submit({"trace_path": str(fuzz_trace_path)}, wait=True)
    warm = tcp.submit({"trace_path": str(fuzz_trace_path)}, wait=True)
    assert warm["outcome"].startswith("cache-")  # one shared cache
    assert warm["result"]["flags_sha256"] == cold["result"]["flags_sha256"]


def test_auth_required_before_any_op(service_factory):
    server = _tcp_server(service_factory, auth_token="sekrit")
    bare = ServiceClient(f"tcp:127.0.0.1:{server.tcp_port}")  # no token
    with pytest.raises(ServiceError) as err:
        bare.ping()
    assert err.value.code == "auth-required"


def test_bad_token_is_auth_failed_and_closes_the_connection(service_factory):
    server = _tcp_server(service_factory, auth_token="sekrit")
    wrong = ServiceClient(f"tcp:127.0.0.1:{server.tcp_port}", auth_token="nope")
    with pytest.raises(ServiceError) as err:
        wrong.ping()
    assert err.value.code == "auth-failed"

    # One strike: after a rejected token the server hangs up, so a
    # follow-up frame on the same connection sees EOF, not a response.
    raw = socket.create_connection(("127.0.0.1", server.tcp_port), timeout=5.0)
    try:
        raw.settimeout(5.0)
        send_message(raw, {"op": "auth", "token": "still-wrong"})
        rejected = recv_message(raw)
        assert rejected["ok"] is False
        assert rejected["error"]["code"] == "auth-failed"
        send_message(raw, {"op": "ping"})
        assert recv_message(raw) is None  # connection closed
    finally:
        raw.close()


def test_good_token_unlocks_every_op(service_factory, fuzz_trace_path):
    server = _tcp_server(service_factory, auth_token="sekrit")
    client = ServiceClient(f"tcp:127.0.0.1:{server.tcp_port}", auth_token="sekrit")
    assert client.ping()
    response = client.submit({"trace_path": str(fuzz_trace_path)}, wait=True)
    assert response["outcome"] == "ok"
    assert client.stats()["counters"].get("submits") == 1


def test_unix_socket_skips_the_handshake_even_with_a_token(service_factory):
    # Filesystem permissions are the Unix socket's access control; the
    # shared secret only guards the network transport.
    server = _tcp_server(service_factory, auth_token="sekrit")
    unix = ServiceClient(server.socket_path)
    assert unix.ping()


def test_auth_failures_are_counted(service_factory):
    server = _tcp_server(service_factory, auth_token="sekrit")
    for _ in range(3):
        with pytest.raises(ServiceError):
            ServiceClient(
                f"tcp:127.0.0.1:{server.tcp_port}", auth_token="bad"
            ).ping()
    assert server.metrics.counter("auth_failures") == 3


def test_tcp_only_server_has_no_unix_socket(service_factory, tmp_path):
    from repro.service.server import ProfilingServer

    server = ProfilingServer(
        None, tmp_path / "cache", workers=1, tcp_addr=("127.0.0.1", 0)
    )
    server.start()
    try:
        assert server.socket_path is None
        assert ServiceClient(f"tcp:127.0.0.1:{server.tcp_port}").ping()
    finally:
        server.close()


def test_server_without_any_transport_is_rejected(tmp_path):
    from repro.service.server import ProfilingServer

    server = ProfilingServer(None, tmp_path / "cache", workers=1)
    with pytest.raises(ValueError):
        server.start()
