"""Metrics: snapshot safety under concurrency, labels, fleet merging."""

import threading

import pytest

from repro.service.metrics import (
    OUTCOMES,
    ServiceMetrics,
    merge_snapshots,
    percentile,
)


# --------------------------------------------------------------------- #
# percentile                                                            #
# --------------------------------------------------------------------- #


def test_percentile_nearest_rank():
    samples = list(range(1, 101))  # 1..100
    assert percentile(samples, 50) == 50
    assert percentile(samples, 99) == 99
    assert percentile(samples, 100) == 100
    assert percentile([7.0], 99) == 7.0


def test_percentile_of_empty_set_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


# --------------------------------------------------------------------- #
# ServiceMetrics                                                        #
# --------------------------------------------------------------------- #


def test_snapshot_is_safe_under_concurrent_observe():
    """Snapshots race against observes without corruption or exceptions.

    The regression this guards: sorting the *live* sample deque during a
    percentile computation while another thread appends → RuntimeError
    or silently wrong percentiles.  The implementation must copy under
    the lock and sort the copy.
    """
    metrics = ServiceMetrics()
    stop = threading.Event()
    errors = []

    def hammer():
        i = 0
        while not stop.is_set():
            metrics.observe("slice", (i % 100) / 1000.0)
            metrics.increment("submits")
            i += 1

    def snapshotter():
        try:
            for _ in range(200):
                snap = metrics.snapshot()
                latency = snap["latency"].get("slice")
                if latency and "p99_s" in latency:
                    assert latency["p99_s"] >= 0.0
        except Exception as err:  # pragma: no cover — the failure mode
            errors.append(err)

    writers = [threading.Thread(target=hammer) for _ in range(4)]
    reader = threading.Thread(target=snapshotter)
    for t in writers:
        t.start()
    reader.start()
    reader.join()
    stop.set()
    for t in writers:
        t.join()
    assert errors == []
    final = metrics.snapshot()
    assert final["latency"]["slice"]["count"] == final["counters"]["submits"]


def test_labels_round_trip_and_set_label():
    metrics = ServiceMetrics(labels={"shard": "shard-0"})
    assert metrics.labels == {"shard": "shard-0"}
    assert metrics.snapshot()["labels"] == {"shard": "shard-0"}
    metrics.set_label("shard", "shard-7")
    metrics.set_label("zone", "local")
    assert metrics.snapshot()["labels"] == {"shard": "shard-7", "zone": "local"}


def test_unlabelled_snapshot_omits_the_labels_field():
    assert "labels" not in ServiceMetrics().snapshot()


def test_unknown_outcome_is_rejected():
    with pytest.raises(ValueError):
        ServiceMetrics().outcome("shrugged")


def test_snapshot_reports_every_outcome_bucket():
    metrics = ServiceMetrics()
    metrics.outcome("ok")
    snap = metrics.snapshot()
    assert set(snap["outcomes"]) == set(OUTCOMES)
    assert snap["outcomes"]["ok"] == 1
    assert snap["outcomes"]["error"] == 0


# --------------------------------------------------------------------- #
# merge_snapshots                                                       #
# --------------------------------------------------------------------- #


def _shard_snapshot(shard, submits, mean, p99, count):
    return {
        "uptime_s": 10.0 * (1 + submits % 3),
        "labels": {"shard": shard},
        "counters": {"submits": submits},
        "outcomes": {"ok": submits},
        "latency": {
            "slice": {
                "count": count,
                "mean_s": mean,
                "p50_s": mean,
                "p90_s": p99 * 0.9,
                "p99_s": p99,
            }
        },
    }


def test_merge_sums_counters_and_outcomes():
    merged = merge_snapshots(
        [
            _shard_snapshot("shard-0", 3, 0.010, 0.050, 3),
            _shard_snapshot("shard-1", 5, 0.020, 0.030, 5),
        ]
    )
    assert merged["shards_merged"] == 2
    assert merged["counters"]["submits"] == 8
    assert merged["outcomes"]["ok"] == 8
    assert {"shard": "shard-0"} in merged["shards"]
    assert {"shard": "shard-1"} in merged["shards"]


def test_merge_weights_means_and_takes_max_percentiles():
    merged = merge_snapshots(
        [
            _shard_snapshot("shard-0", 1, 0.010, 0.050, 2),
            _shard_snapshot("shard-1", 1, 0.040, 0.030, 6),
        ]
    )
    slice_summary = merged["latency"]["slice"]
    assert slice_summary["count"] == 8
    # Count-weighted mean: (0.010*2 + 0.040*6) / 8.
    assert slice_summary["mean_s"] == pytest.approx(0.0325)
    # Percentiles cannot merge exactly; the conservative bound is max.
    assert slice_summary["p99_s"] == 0.050


def test_merge_of_nothing_is_empty_but_well_formed():
    merged = merge_snapshots([])
    assert merged["shards_merged"] == 0
    assert merged["counters"] == {}
    assert merged["latency"] == {}
    assert all(v == 0 for v in merged["outcomes"].values())
