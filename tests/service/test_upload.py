"""Streaming trace upload: digest verification, failure paths, memory.

The failure-path tests pin the contract the protocol docstring promises:
stable error codes, truncated uploads never register (no spool debris,
no phantom ``trace_ref`` target), and the server never hangs — every
scenario ends in a response or a clean close.
"""

import base64
import hashlib
import socket

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.fleet.upload import (
    UploadError,
    UploadStore,
    iter_file_chunks,
    upload_path,
)
from repro.service.protocol import recv_message, send_message


def _file_sha256(path):
    hasher = hashlib.sha256()
    for chunk in iter_file_chunks(path):
        hasher.update(chunk)
    return hasher.hexdigest()


# --------------------------------------------------------------------- #
# UploadSession / UploadStore units                                     #
# --------------------------------------------------------------------- #


def test_session_round_trip_registers_content_addressed(tmp_path, fuzz_trace_path):
    store = UploadStore(tmp_path / "uploads")
    session = store.session()
    for chunk in iter_file_chunks(fuzz_trace_path, 1024):
        session.append(chunk)
    digest = _file_sha256(fuzz_trace_path)
    finished = session.finish(digest)
    assert finished.digest == digest
    assert finished.path == upload_path(store.directory, digest)
    assert finished.path.read_bytes() == fuzz_trace_path.read_bytes()
    assert store.has(digest)
    assert store.digests() == [digest]


def test_session_digest_mismatch_removes_spool(tmp_path):
    store = UploadStore(tmp_path / "uploads")
    session = store.session()
    session.append(b"UCWA2\nsome bytes")
    with pytest.raises(UploadError) as err:
        session.finish("0" * 64)
    assert err.value.code == "digest-mismatch"
    assert list(store.directory.iterdir()) == []  # no spool debris


def test_session_rejects_non_trace_bytes(tmp_path):
    store = UploadStore(tmp_path / "uploads")
    session = store.session()
    payload = b"#!/bin/sh\necho not a trace\n"
    session.append(payload)
    with pytest.raises(UploadError) as err:
        session.finish(hashlib.sha256(payload).hexdigest())
    assert err.value.code == "bad-upload"
    assert list(store.directory.iterdir()) == []


def test_session_abort_is_idempotent_and_cleans_up(tmp_path):
    store = UploadStore(tmp_path / "uploads")
    session = store.session()
    session.append(b"partial")
    session.abort()
    session.abort()
    assert list(store.directory.iterdir()) == []


def test_oversized_chunk_is_a_protocol_violation(tmp_path):
    from repro.service.fleet.upload import MAX_CHUNK_BYTES

    session = UploadStore(tmp_path / "uploads").session()
    with pytest.raises(UploadError) as err:
        session.append(b"x" * (MAX_CHUNK_BYTES + 1))
    assert err.value.code == "bad-upload"
    session.abort()


# --------------------------------------------------------------------- #
# End-to-end over the wire                                              #
# --------------------------------------------------------------------- #


def _tcp_client(service_factory, **kwargs):
    kwargs.setdefault("tcp_addr", ("127.0.0.1", 0))
    server = service_factory(**kwargs)
    return server, ServiceClient(f"tcp:127.0.0.1:{server.tcp_port}")


def test_upload_then_trace_ref_submit(service_factory, fuzz_trace_path):
    server, client = _tcp_client(service_factory)
    uploaded = client.upload_trace(fuzz_trace_path, chunk_size=8 * 1024)
    digest = _file_sha256(fuzz_trace_path)
    assert uploaded["digest"] == digest
    assert uploaded["bytes"] == fuzz_trace_path.stat().st_size
    assert client.has_trace(digest)
    assert not client.has_trace("f" * 64)

    by_ref = client.submit({"trace_ref": digest}, wait=True)
    assert by_ref["outcome"] == "ok"
    # The ref job's result is byte-identical to the path job's: same
    # bytes, same digest, same content-addressed cache slot.
    by_path = client.submit({"trace_path": str(fuzz_trace_path)}, wait=True)
    assert by_path["outcome"].startswith("cache-")
    assert by_path["result"]["flags_sha256"] == by_ref["result"]["flags_sha256"]


def test_upload_with_spec_submits_in_one_round_trip(service_factory, fuzz_trace_path):
    server, client = _tcp_client(service_factory)
    response = client.upload_trace(
        fuzz_trace_path, spec={"criteria": "pixels"}, wait=True
    )
    assert response["outcome"] == "ok"
    assert response["digest"] == _file_sha256(fuzz_trace_path)
    assert response["result"]["trace_digest"] == response["digest"]


def test_unknown_trace_ref_is_a_stable_error(service_factory):
    server, client = _tcp_client(service_factory)
    with pytest.raises(ServiceError) as err:
        client.submit({"trace_ref": "a" * 64}, wait=True)
    assert err.value.code == "no-such-trace"


def test_digest_mismatch_on_trace_end(service_factory):
    server, client = _tcp_client(service_factory)
    sock = client._open(5.0)
    try:
        send_message(sock, {"op": "trace-begin"})
        assert recv_message(sock)["ok"]
        send_message(
            sock,
            {
                "op": "trace-chunk",
                "data": base64.b64encode(b"UCWA2\npayload").decode(),
            },
        )
        send_message(sock, {"op": "trace-end", "digest": "0" * 64})
        response = recv_message(sock)
    finally:
        sock.close()
    assert response["ok"] is False
    assert response["error"]["code"] == "digest-mismatch"
    assert server.uploads.digests() == []  # nothing registered
    assert not list(server.uploads.directory.glob(".part-*"))  # no spool


def test_truncated_upload_cleans_up_and_server_stays_healthy(
    service_factory, fuzz_trace_path
):
    server, client = _tcp_client(service_factory)
    sock = client._open(5.0)
    send_message(sock, {"op": "trace-begin"})
    assert recv_message(sock)["ok"]
    send_message(
        sock,
        {"op": "trace-chunk", "data": base64.b64encode(b"UCWA2\nhalf a tr").decode()},
    )
    # Vanish mid-upload: no trace-end, just a dead socket.
    sock.close()

    # The abort is asynchronous (connection handler's finally); poll
    # briefly rather than racing it.
    import time

    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not list(server.uploads.directory.glob(".part-*")):
            break
        time.sleep(0.01)
    assert not list(server.uploads.directory.glob(".part-*"))
    assert server.uploads.digests() == []
    assert server.metrics.counter("uploads_aborted") == 1
    # And the daemon still serves new work on a fresh connection.
    assert client.ping()
    assert client.upload_trace(fuzz_trace_path)["digest"] == _file_sha256(
        fuzz_trace_path
    )


def test_chunk_without_begin_reports_on_trace_end(service_factory):
    server, client = _tcp_client(service_factory)
    sock = client._open(5.0)
    try:
        send_message(
            sock, {"op": "trace-chunk", "data": base64.b64encode(b"x").decode()}
        )
        send_message(sock, {"op": "trace-end", "digest": "0" * 64})
        response = recv_message(sock)
    finally:
        sock.close()
    assert response["error"]["code"] == "bad-upload"


def test_bad_base64_chunk_fails_the_upload(service_factory):
    server, client = _tcp_client(service_factory)
    sock = client._open(5.0)
    try:
        send_message(sock, {"op": "trace-begin"})
        assert recv_message(sock)["ok"]
        send_message(sock, {"op": "trace-chunk", "data": "!!! not base64 !!!"})
        send_message(sock, {"op": "trace-end", "digest": "0" * 64})
        response = recv_message(sock)
    finally:
        sock.close()
    assert response["error"]["code"] == "bad-upload"
    assert not list(server.uploads.directory.glob(".part-*"))


def test_streamed_upload_slices_frames_as_epochs_arrive(
    service_factory, frame_trace_path
):
    server, client = _tcp_client(service_factory)
    cold = client.upload_trace(
        frame_trace_path, spec={"engine": "incremental"}, stream=True
    )
    assert cold["streamed"] is True
    assert cold["checkpoint"] == "cold"
    assert len(cold["frames"]) == 4
    assert all(f["in_slice"] >= 0 for f in cold["frames"])
    # The streamed pass persisted its checkpoint: a per-frame submit of
    # the same digest starts warm, and a re-stream reports warm too.
    by_frame = client.submit(
        {"trace_ref": cold["digest"], "engine": "incremental", "frame": 1},
        wait=True,
    )
    assert by_frame["outcome"] == "ok"
    assert by_frame["result"]["engine_stats"]["checkpoint"] == "warm"
    warm = client.upload_trace(
        frame_trace_path, spec={"engine": "incremental"}, stream=True
    )
    assert warm["checkpoint"] == "warm"
    assert [f["flags_sha256"] for f in warm["frames"]] == [
        f["flags_sha256"] for f in cold["frames"]
    ]


def test_stream_requires_incremental_engine(service_factory, frame_trace_path):
    server, client = _tcp_client(service_factory)
    with pytest.raises(ServiceError) as err:
        client.upload_trace(
            frame_trace_path, spec={"engine": "sequential"}, stream=True
        )
    assert err.value.code == "invalid-spec"


def test_upload_memory_stays_bounded(service_factory, tmp_path):
    """Peak heap during an upload must be O(chunk), not O(trace).

    A ~6 MiB synthetic trace streamed in 64 KiB chunks: if either side
    buffered the full image the allocation delta would exceed the file
    size; the budget asserts it stays far below it.
    """
    import tracemalloc

    from repro.trace.store import save_trace
    from repro.workloads.fuzz import random_trace

    store = random_trace(seed=3, target_records=60_000)
    big = tmp_path / "big.ucwa"
    save_trace(store, big)
    size = big.stat().st_size
    assert size > 1024 * 1024  # the test is vacuous on a tiny file

    server, client = _tcp_client(service_factory)
    chunk = 64 * 1024
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    response = client.upload_trace(big, chunk_size=chunk)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert response["bytes"] == size
    # Client + server run in this process; allow generous slack for
    # base64 framing and JSON, but nothing near the full file size.
    assert peak - before < max(size // 4, 12 * chunk)


def test_iter_file_chunks_validates_chunk_size(fuzz_trace_path):
    with pytest.raises(ValueError):
        list(iter_file_chunks(fuzz_trace_path, 0))
    chunks = list(iter_file_chunks(fuzz_trace_path, 1024))
    assert all(len(c) <= 1024 for c in chunks)
    assert b"".join(chunks) == fuzz_trace_path.read_bytes()
