"""Service frames-incremental path: checkpoint reuse across submits.

Successive per-frame submits of the same trace digest with
``engine="incremental"`` must share a persisted checkpoint: the first
submit builds it cold, later submits of *other* frames load it warm —
distinct fingerprints, so the result cache cannot serve them — and every
answer stays byte-identical to the sequential engine's.
"""

import pytest

from repro.service.jobs import JobSpec, execute_job
from repro.trace.store import save_trace
from repro.workloads.fuzz import random_frame_trace


@pytest.fixture(scope="session")
def frame_trace_path(tmp_path_factory):
    store = random_frame_trace(seed=5)
    path = tmp_path_factory.mktemp("svc-frames") / "frames.ucwa"
    save_trace(store, path)
    return path


def _frame_spec(path, frame, engine="incremental"):
    return JobSpec(trace_path=str(path), frame=frame, engine=engine)


def test_successive_frame_submits_reuse_checkpoint(service, frame_trace_path):
    server, client = service
    first = client.submit(_frame_spec(frame_trace_path, 0), wait=True)
    assert first["outcome"] == "ok"
    assert first["result"]["engine_stats"]["checkpoint"] == "cold"

    second = client.submit(_frame_spec(frame_trace_path, 1), wait=True)
    assert second["outcome"] == "ok"  # new fingerprint: not a cache hit
    assert second["result"]["engine_stats"]["checkpoint"] == "warm"

    third = client.submit(_frame_spec(frame_trace_path, 2), wait=True)
    assert third["result"]["engine_stats"]["checkpoint"] == "warm"
    # The warm checkpoint did real work: most records were served from
    # memos rather than re-walked.
    stats = third["result"]["engine_stats"]
    assert stats["memo_exact"] + stats["memo_pass_through"] > 0

    ckpt_dir = server._cache_dir / "checkpoints"
    assert ckpt_dir.is_dir() and list(ckpt_dir.iterdir())


def test_incremental_submits_match_sequential(service, frame_trace_path):
    _, client = service
    for frame in (0, 1, 2, 3):
        seq = client.submit(
            _frame_spec(frame_trace_path, frame, engine="sequential"),
            wait=True,
        )
        inc = client.submit(_frame_spec(frame_trace_path, frame), wait=True)
        assert (
            inc["result"]["flags_sha256"] == seq["result"]["flags_sha256"]
        ), f"frame {frame}"
        assert inc["result"]["slice_size"] == seq["result"]["slice_size"]


def test_whole_trace_incremental_submit(service, fuzz_trace_path):
    """A frameless trace is one 'all' region; the engine still answers."""
    _, client = service
    seq = client.submit(
        JobSpec(trace_path=str(fuzz_trace_path), engine="sequential"),
        wait=True,
    )
    inc = client.submit(
        JobSpec(trace_path=str(fuzz_trace_path), engine="incremental"),
        wait=True,
    )
    assert inc["result"]["flags_sha256"] == seq["result"]["flags_sha256"]


def test_execute_job_without_checkpoint_dir_is_stateless(frame_trace_path):
    """No checkpoint_dir (e.g. a directly-executed spec): no sidecar I/O,
    no 'checkpoint' marker in the payload."""
    payload = execute_job(_frame_spec(frame_trace_path, 0))
    assert "checkpoint" not in payload["engine_stats"]


def test_checkpoint_dir_round_trip_via_execute_job(frame_trace_path, tmp_path):
    import dataclasses

    spec = dataclasses.replace(
        _frame_spec(frame_trace_path, 0), checkpoint_dir=str(tmp_path / "ck")
    )
    cold = execute_job(spec)
    assert cold["engine_stats"]["checkpoint"] == "cold"
    spec2 = dataclasses.replace(spec, frame=1)
    warm = execute_job(spec2)
    assert warm["engine_stats"]["checkpoint"] == "warm"


def test_torn_checkpoint_file_rebuilds_cold(frame_trace_path, tmp_path):
    import dataclasses

    ckpt_dir = tmp_path / "ck"
    spec = dataclasses.replace(
        _frame_spec(frame_trace_path, 0), checkpoint_dir=str(ckpt_dir)
    )
    execute_job(spec)
    (ckpt_file,) = ckpt_dir.iterdir()
    ckpt_file.write_bytes(ckpt_file.read_bytes()[:40])  # tear it
    again = execute_job(dataclasses.replace(spec, frame=1))
    assert again["engine_stats"]["checkpoint"] == "cold"


def test_fingerprint_ignores_checkpoint_dir(frame_trace_path):
    import dataclasses

    base = _frame_spec(frame_trace_path, 0)
    with_dir = dataclasses.replace(base, checkpoint_dir="/tmp/elsewhere")
    assert base.fingerprint() == with_dir.fingerprint()
