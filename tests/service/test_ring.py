"""Consistent-hash ring properties the fleet's correctness rests on."""

import hashlib

import pytest

from repro.service.fleet.ring import (
    DEFAULT_VNODES,
    FleetConfig,
    HashRing,
    ShardInfo,
)


def _keys(n):
    return [hashlib.sha256(f"key-{i}".encode()).hexdigest() for i in range(n)]


def test_ownership_is_deterministic_across_instances():
    a = HashRing(["s0", "s1", "s2"])
    b = HashRing(["s0", "s1", "s2"])
    for key in _keys(200):
        assert a.owner(key) == b.owner(key)


def test_ownership_ignores_shard_declaration_order():
    a = HashRing(["s0", "s1", "s2"])
    b = HashRing(["s2", "s0", "s1"])
    for key in _keys(200):
        assert a.owner(key) == b.owner(key)


def test_load_spreads_across_shards():
    ring = HashRing(["s0", "s1", "s2", "s3"])
    counts = {shard: 0 for shard in ring.shard_ids}
    keys = _keys(4000)
    for key in keys:
        counts[ring.owner(key)] += 1
    # With 64 vnodes/shard the max/min share ratio stays modest.
    assert min(counts.values()) > len(keys) / len(counts) * 0.5
    assert max(counts.values()) < len(keys) / len(counts) * 1.6


def test_removal_remaps_only_the_departed_shards_keys():
    ring = HashRing(["s0", "s1", "s2", "s3"])
    reduced = ring.without("s2")
    moved = 0
    for key in _keys(2000):
        before = ring.owner(key)
        after = reduced.owner(key)
        if before != "s2":
            assert after == before  # survivors keep their keys
        else:
            moved += 1
            assert after != "s2"
    assert moved > 0


def test_preference_first_is_owner_and_matches_removal_semantics():
    ring = HashRing(["s0", "s1", "s2", "s3"])
    for key in _keys(300):
        order = ring.preference(key)
        assert order[0] == ring.owner(key)
        assert sorted(order) == sorted(ring.shard_ids)  # all shards, distinct
        # The second preference is exactly who owns the key once the
        # first leaves — the invariant that makes drain handoff and
        # client failover agree on placement.
        assert order[1] == ring.without(order[0]).owner(key)


def test_preference_cap():
    ring = HashRing(["s0", "s1", "s2", "s3"])
    assert len(ring.preference("k", n=2)) == 2


def test_degenerate_rings_are_rejected():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(["a", "a"])
    with pytest.raises(ValueError):
        HashRing(["a"], vnodes=0)
    with pytest.raises(ValueError):
        HashRing(["only"]).without("only")
    with pytest.raises(KeyError):
        HashRing(["a", "b"]).without("zzz")


def test_fleet_config_round_trips_and_derives_equal_rings():
    config = FleetConfig(
        shards=(
            ShardInfo(id="shard-0", host="127.0.0.1", port=7001),
            ShardInfo(id="shard-1", host="127.0.0.1", port=7002),
        ),
        vnodes=32,
    )
    clone = FleetConfig.from_dict(config.to_dict())
    assert clone == config
    for key in _keys(100):
        assert config.ring().owner(key) == clone.ring().owner(key)
    assert config.shard("shard-1").endpoint == "tcp:127.0.0.1:7002"
    with pytest.raises(KeyError):
        config.shard("shard-9")


def test_fleet_config_rejects_bad_wire_forms():
    with pytest.raises(ValueError):
        FleetConfig.from_dict({"shards": "nope"})
    with pytest.raises(ValueError):
        FleetConfig.from_dict({"shards": [{"id": "a"}]})
    with pytest.raises(ValueError):
        FleetConfig.from_dict({"shards": [], "vnodes": 0})


def test_default_vnodes_constant():
    assert HashRing(["a"]).vnodes == DEFAULT_VNODES
