"""Job-spec validation and pure job execution (no daemon involved)."""

import hashlib

import pytest

from repro.profiler.api import run_slice_job
from repro.service.jobs import FAULTS, JobSpec, SpecError, execute_job
from repro.trace.store import file_digest, save_trace, trace_digest
from repro.workloads.fuzz import random_trace


@pytest.fixture(scope="module")
def small_trace(tmp_path_factory):
    store = random_trace(seed=7, target_records=1_500)
    path = tmp_path_factory.mktemp("svc-jobs") / "small.ucwa"
    save_trace(store, path)
    return store, path


def test_validate_requires_exactly_one_target():
    with pytest.raises(SpecError, match="exactly one"):
        JobSpec().validate()
    with pytest.raises(SpecError, match="exactly one"):
        JobSpec(workload="bing", trace_path="/tmp/x.ucwa").validate()


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(workload="no_such"), "unknown workload"),
        (dict(workload="bing", criteria="colors"), "unknown criteria"),
        (dict(workload="bing", engine="turbo"), "unknown engine"),
        (dict(workload="bing", workers=0), "workers must be >= 1"),
        (dict(workload="bing", frame=-1), "frame must be >= 0"),
        (dict(workload="bing", timeout_s=0), "timeout_s must be positive"),
        (dict(workload="bing", fault="explode"), "unknown fault"),
    ],
)
def test_validate_rejects_bad_fields(kwargs, match):
    with pytest.raises(SpecError, match=match):
        JobSpec(**kwargs).validate()


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(SpecError, match="unknown job-spec field"):
        JobSpec.from_dict({"workload": "bing", "priority": 9})
    with pytest.raises(SpecError, match="must be an object"):
        JobSpec.from_dict(["bing"])


def test_from_dict_round_trips_to_dict():
    spec = JobSpec(workload="bing", criteria="syscalls", engine="parallel", workers=2)
    assert JobSpec.from_dict(spec.to_dict()) == spec


def test_fingerprint_ignores_timeout_but_not_fault():
    base = JobSpec(workload="bing")
    assert base.fingerprint() == JobSpec(workload="bing", timeout_s=9.0).fingerprint()
    assert base.fingerprint() != JobSpec(workload="bing", fault="crash").fingerprint()
    assert base.fingerprint() != JobSpec(workload="bing", criteria="syscalls").fingerprint()


def test_fingerprint_normalizes_trace_paths(tmp_path, monkeypatch):
    path = tmp_path / "t.ucwa"
    monkeypatch.chdir(tmp_path)
    assert (
        JobSpec(trace_path=str(path)).fingerprint()
        == JobSpec(trace_path="t.ucwa").fingerprint()
    )


def test_execute_job_matches_in_process_api_run(small_trace):
    """The service's unit of work reproduces profiler.api exactly."""
    store, path = small_trace
    payload = execute_job(JobSpec(trace_path=str(path)).validate())
    result, stats = run_slice_job(store, criteria="pixels")
    assert payload["criteria"] == result.criteria_name
    assert payload["total"] == stats.total
    assert payload["slice_size"] == stats.in_slice
    assert payload["fraction"] == stats.fraction
    assert payload["flags_sha256"] == hashlib.sha256(bytes(result.flags)).hexdigest()
    assert payload["trace_digest"] == file_digest(path)
    assert [t["name"] for t in payload["threads"]] == [t.name for t in stats.threads]
    assert payload["timings"]["resolve_s"] >= 0
    assert payload["timings"]["slice_s"] > 0


def test_execute_job_syscall_criteria(small_trace):
    store, path = small_trace
    payload = execute_job(JobSpec(trace_path=str(path), criteria="syscalls").validate())
    _, stats = run_slice_job(store, criteria="syscalls")
    assert payload["criteria"] == "syscalls"
    assert payload["fraction"] == stats.fraction


def test_trace_digest_differs_from_store_to_store():
    a = trace_digest(random_trace(seed=1, target_records=800))
    b = trace_digest(random_trace(seed=2, target_records=800))
    assert a != b
    assert a == trace_digest(random_trace(seed=1, target_records=800))


def test_error_fault_surfaces_as_spec_error(small_trace):
    _, path = small_trace
    with pytest.raises(SpecError, match="injected job error"):
        execute_job(JobSpec(trace_path=str(path), fault="error").validate(), attempt=0)


def test_fault_registry_is_closed():
    assert set(FAULTS) == {"crash", "crash-once", "hang", "error"}
