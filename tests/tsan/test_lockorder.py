"""Static lock-order analysis: engine graph, synthetic cycles, observed orders."""

import textwrap

import pytest

from repro.machine.tracer import Tracer
from repro.tsan.lockorder import (
    analyze_lock_order,
    cross_reference,
    observed_orders,
)


@pytest.fixture(scope="module")
def engine_graph():
    return analyze_lock_order()


def test_engine_locks_are_discovered(engine_graph):
    expected = {
        "base:lock:trace_event",
        "blink:lock:layout",
        "cc:lock:pending_rasters",
        "cc:lock:tiles",
        "cc:lock:tree",
        "sched:lock:queue:*",
    }
    assert expected <= engine_graph.locks


def test_engine_sites_resolve(engine_graph):
    assert engine_graph.unresolved == []
    assert len(engine_graph.sites) >= 10


def test_engine_graph_is_acyclic(engine_graph):
    assert engine_graph.cycles() == []
    assert engine_graph.inversions() == []


def test_tree_before_tiles_is_a_static_edge(engine_graph):
    assert "cc:lock:tiles" in engine_graph.edges["cc:lock:tree"]


def _analyze_source(tmp_path, source):
    (tmp_path / "mod.py").write_text(textwrap.dedent(source))
    return analyze_lock_order(root=tmp_path)


def test_synthetic_inversion_is_a_cycle(tmp_path):
    graph = _analyze_source(
        tmp_path,
        '''
        class Widget:
            def ab(self):
                with self.ctx.lock("lock:a").held():
                    with self.ctx.lock("lock:b").held():
                        pass

            def ba(self):
                with self.ctx.lock("lock:b").held():
                    with self.ctx.lock("lock:a").held():
                        pass
        ''',
    )
    assert graph.edges["lock:a"] == {"lock:b"}
    assert graph.edges["lock:b"] == {"lock:a"}
    assert graph.cycles()
    assert graph.inversions() == [("lock:a", "lock:b")]


def test_alias_and_factory_resolution(tmp_path):
    graph = _analyze_source(
        tmp_path,
        '''
        class Widget:
            def _inner_lock(self):
                return self.ctx.lock("lock:inner")

            def work(self):
                outer = self.ctx.lock("lock:outer")
                with outer.held():
                    with self._inner_lock().held():
                        pass
        ''',
    )
    assert graph.edges["lock:outer"] == {"lock:inner"}
    assert graph.unresolved == []


def test_interprocedural_edge_through_a_call(tmp_path):
    graph = _analyze_source(
        tmp_path,
        '''
        class Widget:
            def leaf(self):
                with self.ctx.lock("lock:leaf").held():
                    pass

            def caller(self):
                with self.ctx.lock("lock:root").held():
                    self.leaf()
        ''',
    )
    assert "lock:leaf" in graph.edges["lock:root"]


def test_fstring_names_become_families(tmp_path):
    graph = _analyze_source(
        tmp_path,
        '''
        class Widget:
            def work(self, tid):
                with self.ctx.lock(f"lock:q:{tid}").held():
                    pass
        ''',
    )
    assert "lock:q:*" in graph.locks


def test_unresolvable_site_is_reported(tmp_path):
    graph = _analyze_source(
        tmp_path,
        '''
        def work(mystery):
            with mystery.held():
                pass
        ''',
    )
    assert len(graph.unresolved) == 1


# -- observed orders & cross-reference ------------------------------------- #


def _nested_lock_trace():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    a, b = 0x900, 0x901
    tracer.lock_acquire(a)
    tracer.lock_acquire(b)
    tracer.lock_release(b)
    tracer.lock_release(a)
    return tracer.store, {0x900: "lock:a", 0x901: "lock:b"}


def test_observed_orders_count_nested_pairs():
    store, names = _nested_lock_trace()
    observed = observed_orders(store, cell_names=names.get)
    assert observed.edges == {("lock:a", "lock:b"): 1}
    assert observed.acquires == 2
    assert observed.releases == 2


def test_cross_reference_flags_unpredicted_orders(tmp_path):
    graph = _analyze_source(
        tmp_path,
        '''
        def work(ctx):
            with ctx.lock("lock:b").held():
                with ctx.lock("lock:a").held():
                    pass
        ''',
    )
    store, names = _nested_lock_trace()  # observes a -> b
    xref = cross_reference(graph, observed_orders(store, cell_names=names.get))
    assert xref["unpredicted_observed"] == [["lock:a", "lock:b"]]
    assert xref["unexercised_static"] == [["lock:b", "lock:a"]]


@pytest.mark.parametrize("name", ["wiki_article"])
def test_engine_observed_orders_are_predicted(engine_graph, name):
    from repro.harness.experiments import run_engine
    from repro.tsan.detector import cell_namer
    from repro.workloads import benchmark

    bench = benchmark(name)
    bench.config.load_animation_ticks = 2
    engine = run_engine(bench)
    observed = observed_orders(
        engine.trace_store(), cell_names=cell_namer(engine.ctx.memory)
    )
    assert observed.acquires == observed.releases > 0
    xref = cross_reference(engine_graph, observed)
    assert xref["unpredicted_observed"] == []
