"""CLI surface of the sanitizer: python -m repro.tsan {races,locks}."""

import json

from repro.trace.store import save_trace
from repro.tsan.__main__ import main as tsan_main
from repro.workloads.fuzz import random_sync_trace, random_trace


def test_races_on_clean_trace_exits_zero(tmp_path, capsys):
    store, _ = random_sync_trace(5, target_records=1_200)
    path = tmp_path / "clean.ucwa"
    save_trace(store, path)
    assert tsan_main(["races", str(path)]) == 0
    assert "no races found" in capsys.readouterr().out


def test_races_on_racy_trace_exits_nonzero(tmp_path, capsys):
    path = tmp_path / "racy.ucwa"
    save_trace(random_trace(5, target_records=1_200), path)
    assert tsan_main(["races", str(path)]) == 1
    assert "race" in capsys.readouterr().out


def test_races_json_is_machine_readable(tmp_path, capsys):
    store, _ = random_sync_trace(6, target_records=1_200)
    path = tmp_path / "clean.ucwa"
    save_trace(store, path)
    assert tsan_main(["races", str(path), "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert data["n_races"] == 0
    assert data["trace"] == str(path)


def test_races_rejects_ambiguous_inputs(capsys):
    assert tsan_main(["races"]) == 2
    assert tsan_main(["races", "a.ucwa", "--workload=wiki_article"]) == 2
    assert tsan_main(["races", "--bogus"]) == 2


def test_locks_static_pass_is_clean(capsys):
    assert tsan_main(["locks"]) == 0
    out = capsys.readouterr().out
    assert "cycles: 0" in out
    assert "inversion pairs: 0" in out


def test_locks_json_lists_the_engine_graph(capsys):
    assert tsan_main(["locks", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "cc:lock:tree" in data["static"]["locks"]
    assert data["static"]["cycles"] == []


def test_usage_on_unknown_subcommand(capsys):
    assert tsan_main([]) == 2
    assert tsan_main(["bogus"]) == 2
    assert "Usage" in capsys.readouterr().out
