"""Happens-before race detector: hand-built traces, fuzz recall, workloads."""

import pytest

from repro.machine.tracer import Tracer
from repro.tsan.detector import detect_races
from repro.tsan.report import measure_recall
from repro.tsan.vclock import covers, fresh, join_into
from repro.workloads.fuzz import random_sync_trace, random_trace

CELL = 0x100
LOCK = 0x900
SYNC = 0x910


def _two_threads():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.spawn_thread(2, "Compositor", "comp_loop")
    return tracer


# -- vector clocks --------------------------------------------------------- #


def test_fresh_clock_covers_only_its_own_past():
    clock = fresh(1)
    assert covers(clock, 1, 1)
    assert not covers(clock, 1, 2)
    assert not covers(clock, 2, 1)


def test_join_takes_componentwise_max():
    a = {1: 3, 2: 1}
    join_into(a, {2: 5, 3: 2})
    assert a == {1: 3, 2: 5, 3: 2}


# -- hand-built races ------------------------------------------------------ #


def test_unsynchronized_write_write_is_a_race():
    tracer = _two_threads()
    tracer.op("w1", writes=(CELL,))
    tracer.switch(2)
    tracer.op("w2", writes=(CELL,))
    report = detect_races(tracer.store)
    assert not report.ok
    assert [race.kind for race in report.races] == ["write-write"]
    assert report.races[0].prior.tid == 1
    assert report.races[0].current.tid == 2
    assert report.racy_cells == {CELL}


def test_unsynchronized_write_read_is_a_race():
    tracer = _two_threads()
    tracer.op("w", writes=(CELL,))
    tracer.switch(2)
    tracer.op("r", reads=(CELL,))
    report = detect_races(tracer.store)
    assert [race.kind for race in report.races] == ["write-read"]


def test_unsynchronized_read_write_is_a_race():
    tracer = _two_threads()
    tracer.op("w", writes=(CELL,))
    tracer.sync_release(SYNC)
    tracer.switch(2)
    tracer.sync_acquire(SYNC)
    tracer.op("r", reads=(CELL,))  # ordered after the write: fine
    tracer.switch(1)
    tracer.op("w2", writes=(CELL,))  # unordered with thread 2's read
    report = detect_races(tracer.store)
    assert [race.kind for race in report.races] == ["read-write"]


def test_release_acquire_orders_the_pair():
    tracer = _two_threads()
    tracer.op("w1", writes=(CELL,))
    tracer.sync_release(SYNC)
    tracer.switch(2)
    tracer.sync_acquire(SYNC)
    tracer.op("w2", writes=(CELL,))
    report = detect_races(tracer.store)
    assert report.ok
    assert report.n_sync_objects == 1
    assert report.sync_events == {1: {"plain": 1}, 2: {"plain": 1}}


def test_lock_critical_sections_are_ordered():
    tracer = _two_threads()
    tracer.lock_acquire(LOCK)
    tracer.op("w1", writes=(CELL,))
    tracer.lock_release(LOCK)
    tracer.switch(2)
    tracer.lock_acquire(LOCK)
    tracer.op("w2", writes=(CELL,))
    tracer.lock_release(LOCK)
    report = detect_races(tracer.store)
    assert report.ok
    assert report.sync_events[1]["lock"] == 2


def test_same_thread_accesses_never_race():
    tracer = _two_threads()
    tracer.op("w1", writes=(CELL,))
    tracer.op("w2", writes=(CELL,))
    tracer.op("r", reads=(CELL,))
    assert detect_races(tracer.store).ok


def test_non_sync_markers_are_not_accesses():
    tracer = _two_threads()
    tracer.op("w", writes=(CELL,))
    tracer.switch(2)
    tracer.marker("tile_ready", (CELL,))
    assert detect_races(tracer.store).ok


def test_duplicate_pc_pairs_report_once():
    tracer = _two_threads()
    for _ in range(5):
        tracer.switch(1)
        tracer.op("w1", writes=(CELL,))
        tracer.switch(2)
        tracer.op("w2", writes=(CELL,))
    report = detect_races(tracer.store)
    # Same (cell, kind, prior pc, current pc) every round: one race each way.
    assert len(report.races) == 2


def test_max_races_caps_the_report():
    report = detect_races(random_trace(0, target_records=1_500), max_races=7)
    assert len(report.races) == 7


def test_race_describe_names_the_cell():
    tracer = _two_threads()
    tracer.op("w1", writes=(CELL,))
    tracer.switch(2)
    tracer.op("w2", writes=(CELL,))
    report = detect_races(tracer.store, cell_names=lambda c: "shared:state")
    assert "shared:state" in report.races[0].describe()


# -- fuzz ground truth ----------------------------------------------------- #


@pytest.mark.parametrize("seed", range(4))
def test_clean_sync_traces_have_no_false_positives(seed):
    store, injected = random_sync_trace(seed, target_records=2_000)
    assert not injected
    report = detect_races(store)
    assert report.ok, report.races[0].describe() if report.races else ""


@pytest.mark.parametrize("seed", range(4))
def test_injected_races_are_detected(seed):
    store, injected = random_sync_trace(
        seed, target_records=2_000, inject_races=4
    )
    assert len(injected) == 4
    report = detect_races(store)
    detected = sum(1 for d in injected if d.cell in report.racy_cells)
    assert detected == len(injected)


def test_measured_recall_meets_the_bar():
    result = measure_recall(
        seeds=range(6), injections=4, clean_seeds=range(6, 10),
        target_records=1_500,
    )
    assert result.injected == 24
    assert result.recall >= 0.9
    assert result.clean_with_false_positives == 0


# -- engine workloads ------------------------------------------------------ #


def test_wiki_workload_is_race_free():
    from repro.harness.experiments import run_engine
    from repro.workloads import benchmark

    bench = benchmark("wiki_article")
    bench.config.load_animation_ticks = 2
    engine = run_engine(bench)
    from repro.tsan.detector import cell_namer

    report = detect_races(
        engine.trace_store(), cell_names=cell_namer(engine.ctx.memory)
    )
    assert report.ok, "\n".join(r.describe() for r in report.races[:5])
    # Every engine thread that ran synchronizes at least once.
    assert report.sync_event_total() > 0
    assert report.n_sync_objects >= 3
