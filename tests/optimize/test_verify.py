"""End-to-end optimize-and-verify: pixel identity, trip-wires, accounting."""

import pytest

from repro.harness.experiments import run_benchmark
from repro.optimize import optimize_benchmark, verification_report
from repro.workloads import benchmark


@pytest.fixture(scope="module")
def wiki_result():
    return optimize_benchmark("wiki_article")


def test_wiki_verifies_pixel_identical(wiki_result):
    wiki_result.check()  # raises on any safety failure
    assert wiki_result.verified
    assert wiki_result.pixel_identical
    assert wiki_result.tripwire_hits == []
    assert len(wiki_result.original_digests) > 1


def test_wiki_every_applied_rewrite_carries_a_discharged_proof(wiki_result):
    applied = wiki_result.plan.applied()
    assert applied, "the optimizer must find something on wiki_article"
    for rewrite in applied:
        assert rewrite.proof.category.value in (
            "proven-safe", "dynamically-safe"
        )
        assert rewrite.proof.evidence
        assert rewrite.proof.obligation


def test_wiki_pass_stats_account_the_record_delta(wiki_result):
    names = [s.name for s in wiki_result.pass_stats]
    assert names == [
        "discarded-call-elim", "dead-function-elim", "branch-prune",
        "defer-script", "elide-image",
    ]
    by_name = {s.name: s for s in wiki_result.pass_stats}
    # wiki's only win is moving metrics.js off the load path.
    assert by_name["defer-script"].applied == 1
    assert by_name["defer-script"].records > 0


def test_verification_report_renders(wiki_result):
    text = verification_report(wiki_result)
    assert "optimize wiki_article" in text
    assert "pixel identity : OK" in text
    assert "trip-wires     : 0 OK" in text
    assert "defer-script" in text


def test_tripwire_fires_when_a_stubbed_function_runs():
    # Simulate a wrong dead verdict: a script whose live path enters a
    # __tripwire stub must surface the hit on runtime.tripwire_hits.
    bench = benchmark("wiki_article")
    url = next(iter(bench.page.scripts))
    tripped = bench.with_scripts(
        {url: "function stub() { __tripwire(7); }\nstub();\n"}
    )
    result = run_benchmark(tripped, metrics_ticks=2)
    assert 7.0 in result.engine.runtime.tripwire_hits


def test_optimize_is_deterministic():
    a = optimize_benchmark("wiki_article")
    b = optimize_benchmark("wiki_article")
    assert a.transformed_digests == b.transformed_digests
    assert a.transformed_records == b.transformed_records
    assert [r.target for r in a.plan.rewrites] == [
        r.target for r in b.plan.rewrites
    ]
