"""Purity lattice: per-region effect verdicts and the interprocedural join."""

from repro.browser.js.parser import parse_js
from repro.jsstatic.callgraph import build_call_graph, region_of
from repro.optimize import Purity, analyze_page_purity


def _analyze(source, url="s.js"):
    programs = {url: parse_js(source)}
    graph = build_call_graph(programs)
    return analyze_page_purity(graph, programs), graph


def _of(source, name):
    analysis, graph = _analyze(source)
    info = graph.functions_named(name)[0]
    return analysis.of_function(info.fid)


def test_arithmetic_function_is_pure():
    info = _of("function f(a, b) { return a + b * 2; }", "f")
    assert info.level is Purity.PURE


def test_local_assignment_is_local_write():
    info = _of("function f() { var x = 0; x = x + 1; return x; }", "f")
    assert info.level is Purity.LOCAL_WRITE
    assert not info.global_write


def test_push_onto_fresh_local_is_local_write():
    info = _of("function f() { var a = []; a.push(1); return a; }", "f")
    assert info.level is Purity.LOCAL_WRITE


def test_dom_store_is_dom_write():
    src = "function f() { document.getElementById('x').textContent = 'hi'; }"
    info = _of(src, "f")
    assert info.level is Purity.DOM_WRITE
    assert info.dom_write


def test_global_store_is_global_escape_with_named_write():
    info = _of("var g = 0; function f() { g = 1; }", "f")
    assert info.level is Purity.GLOBAL_ESCAPE
    assert info.global_writes == {"g"}


def test_console_io_is_global_escape():
    info = _of("function f() { console.log('x'); }", "f")
    assert info.io
    assert info.level is Purity.GLOBAL_ESCAPE


def test_timer_registration_is_recorded():
    src = "function f() { setTimeout(function () { }, 10); }"
    info = _of(src, "f")
    assert "timer" in info.registers


def test_unresolved_call_is_unknown():
    info = _of("function f() { mystery(); }", "f")
    assert "mystery" in info.unknown_calls
    assert info.level is Purity.GLOBAL_ESCAPE


def test_fixpoint_absorbs_synchronous_callee_effects():
    src = (
        "var g = 0;"
        "function leaf() { g = 1; }"
        "function root() { leaf(); }"
    )
    info = _of(src, "root")
    assert info.global_writes == {"g"}
    assert info.level is Purity.GLOBAL_ESCAPE


def test_sync_closure_reaches_transitive_callees():
    src = (
        "function leaf() { return 1; }"
        "function mid() { return leaf(); }"
        "function root() { return mid(); }"
    )
    analysis, graph = _analyze(src)
    root = graph.functions_named("root")[0]
    leaf = graph.functions_named("leaf")[0]
    closure = analysis.sync_closure({region_of(root)})
    assert region_of(leaf) in closure


def test_script_top_level_region_is_analyzed():
    # Stores to names the script itself declares are the top level's own
    # locals; a store to an undeclared name is a global write.
    analysis, _graph = _analyze("var mine = 1; shared = 2; console.log(mine);")
    top = analysis.of_script("s.js")
    assert top.io
    assert "shared" in top.global_writes
    assert "mine" not in top.global_writes
