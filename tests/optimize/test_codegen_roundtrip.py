"""Codegen idempotency over every script of every bundled workload.

The optimizer's rewrites go through parse -> mutate -> generate; the
verification re-run then re-parses the generated source.  That substrate
is only trustworthy if generation is a fixpoint: parsing generated
output and generating again must reproduce the exact same text, for
every real script we ship — not just the synthetic snippets the unit
tests use.
"""

import pytest

from repro.browser.js.codegen import generate
from repro.browser.js.parser import parse_js
from repro.jsstatic.compare import benchmark_sources
from repro.workloads import benchmark, benchmark_names


@pytest.mark.parametrize("name", benchmark_names())
def test_codegen_round_trip_is_idempotent_on_workload(name):
    sources = benchmark_sources(benchmark(name))
    for url, source in sources.items():
        once = generate(parse_js(source))
        twice = generate(parse_js(once))
        assert once == twice, f"{name}:{url} codegen is not idempotent"


@pytest.mark.parametrize("name", benchmark_names())
def test_reparsed_ast_produces_identical_analysis_input(name):
    """parse(generate(parse(src))) sees the same function population."""
    from repro.jsstatic.callgraph import build_call_graph

    sources = benchmark_sources(benchmark(name))
    original = build_call_graph(
        {url: parse_js(src) for url, src in sources.items()}, resolve=False
    )
    regenerated = build_call_graph(
        {
            url: parse_js(generate(parse_js(src)))
            for url, src in sources.items()
        },
        resolve=False,
    )
    assert len(original.functions) == len(regenerated.functions)
    # Anonymous labels embed byte offsets, which legitimately shift with
    # the regenerated layout — compare the named population in order.
    def _named(graph):
        return [
            sorted(f.aliases) for f in graph.functions if f.aliases
        ]

    assert _named(original) == _named(regenerated)
