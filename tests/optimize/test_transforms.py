"""Transform passes: eligibility, confinement, cascades, and refusals."""

from repro.browser.js.codegen import generate
from repro.browser.js.parser import parse_js
from repro.optimize import (
    OptimizationPlan,
    ProofCategory,
    plan_image_elisions,
    plan_scripts,
)


def _plan(source, url="s.js", **kwargs):
    return plan_scripts("synthetic", {url: source}, **kwargs)


def _applied(plan, pass_name):
    return plan.applied(pass_name)


def _refused(plan, pass_name):
    return [r for r in plan.refused() if r.pass_name == pass_name]


# -- codegen round trip ------------------------------------------------- #

def test_codegen_is_idempotent():
    src = (
        "var reg = { n: 0 };\n"
        "function bump(k) { if (k > 0) { reg.n = reg.n + k; } return reg.n; }\n"
        "bump(2);\n"
        "el.addEventListener('click', function (ev) { bump(1); });\n"
    )
    once = generate(parse_js(src))
    twice = generate(parse_js(once))
    assert once == twice


# -- pass 1: discarded-call elimination --------------------------------- #

def test_confined_global_writer_is_eliminated_and_stubbed():
    src = (
        "var reg = { n: 0 };\n"
        "function bump() { reg.n = reg.n + 1; }\n"
        "bump();\n"
    )
    plan = _plan(src)
    elim = _applied(plan, "discarded-call-elim")
    assert len(elim) == 1
    assert "bump()" in elim[0].target
    assert elim[0].proof.category is ProofCategory.PROVEN_SAFE
    assert elim[0].proof.evidence == "jsstatic:purity+observability"
    # The cascade re-analysis sees bump as dead and stubs it.
    stubs = _applied(plan, "dead-function-elim")
    assert any(r.target == "bump" for r in stubs)
    transformed = plan.scripts["s.js"].transformed_source
    assert "__tripwire" in transformed
    parse_js(transformed)  # still valid JS


def test_global_read_outside_closure_blocks_elimination():
    src = (
        "var reg = { n: 0 };\n"
        "function bump() { reg.n = reg.n + 1; }\n"
        "bump();\n"
        "probe(reg.n);\n"
    )
    plan = _plan(src)
    assert _applied(plan, "discarded-call-elim") == []
    refusals = _refused(plan, "discarded-call-elim")
    assert len(refusals) == 1
    assert refusals[0].proof.category is ProofCategory.UNSAFE


def test_live_second_caller_blocks_elimination():
    # bump's registry would dangle: a handler can still invoke bump after
    # the candidate call site is gone, so confinement must refuse.
    src = (
        "var reg = { n: 0 };\n"
        "function bump() { reg.n = reg.n + 1; }\n"
        "bump();\n"
        "function live() { bump(); return reg.n; }\n"
        "el.addEventListener('click', live);\n"
    )
    plan = _plan(src)
    assert _applied(plan, "discarded-call-elim") == []
    # Both bump() call sites (top level and inside live) are candidates,
    # and both are refused: live reads reg outside bump's closure.
    refusals = _refused(plan, "discarded-call-elim")
    assert len(refusals) == 2
    assert all("read outside" in r.proof.obligation for r in refusals)


def test_io_in_callee_blocks_elimination():
    plan = _plan("function logit() { console.log(1); }\nlogit();\n")
    assert _applied(plan, "discarded-call-elim") == []
    refusals = _refused(plan, "discarded-call-elim")
    assert len(refusals) == 1


def test_bound_result_that_is_later_read_blocks_elimination():
    src = (
        "function keep() { return 1; }\n"
        "var out = keep();\n"
        "use(out);\n"
    )
    plan = _plan(src)
    assert _applied(plan, "discarded-call-elim") == []


def test_pure_callee_with_dead_store_is_eliminated():
    src = (
        "function calc() { return 1 + 2; }\n"
        "var unused = calc();\n"
        "calc();\n"
    )
    plan = _plan(src)
    elim = _applied(plan, "discarded-call-elim")
    assert len(elim) == 2
    transformed = plan.scripts["s.js"].transformed_source
    assert "unused" not in transformed


# -- pass 3: constant-branch pruning ------------------------------------ #

def test_literal_false_branch_is_pruned():
    src = (
        "function heavy() { work(); }\n"
        "function light() { return 1; }\n"
        "if (false) { heavy(); } else { light(); }\n"
    )
    plan = _plan(src)
    pruned = _applied(plan, "branch-prune")
    assert len(pruned) == 1
    assert pruned[0].proof.category is ProofCategory.PROVEN_SAFE
    transformed = plan.scripts["s.js"].transformed_source
    assert "light()" in transformed
    # The dropped arm's call site is gone (liveness analysis ran before
    # pruning, so heavy keeps its body — only the branch is folded).
    assert "heavy();" not in transformed


def test_branch_with_function_declaration_is_refused():
    src = (
        "if (true) { go(); } else { function trap() { } }\n"
        "function go() { }\n"
    )
    plan = _plan(src)
    refusals = _refused(plan, "branch-prune")
    assert len(refusals) == 1
    assert "declares a function" in refusals[0].proof.obligation


def test_identifier_test_is_not_pruned():
    src = "var flag = false;\nif (flag) { go(); }\nfunction go() { }\n"
    plan = _plan(src)
    assert _applied(plan, "branch-prune") == []
    assert _refused(plan, "branch-prune") == []


# -- pass 5: image elision ---------------------------------------------- #

def test_image_elision_partitions_by_flagged_touches():
    plan = OptimizationPlan(benchmark="synthetic")
    plan_image_elisions(
        plan,
        {"unseen.png": (0, 10), "drawn.png": (3, 10), "unfetched.png": (0, 0)},
    )
    assert plan.elided_images() == ["unseen.png"]
    applied = plan.applied("elide-image")
    assert applied[0].proof.category is ProofCategory.DYNAMICALLY_SAFE
    assert applied[0].proof.evidence == "profiler:pixel-slice"
    refused = [r for r in plan.image_rewrites if not r.applied]
    assert [r.target for r in refused] == ["drawn.png"]
    targets = {r.target for r in plan.image_rewrites}
    assert "unfetched.png" not in targets


def test_no_image_evidence_plans_nothing():
    plan = OptimizationPlan(benchmark="synthetic")
    plan_image_elisions(plan, None)
    plan_image_elisions(plan, {})
    assert plan.image_rewrites == []


# -- phase 3: value-flow discharge -------------------------------------- #

_LAZY_WIDGET = (
    "var handlers = {};\n"
    "function widget_register(id, fn) { handlers[id] = fn; }\n"
    "widget_register('w0', function () { heavy(); });\n"
)


def test_lazy_widget_registration_discharged_proven_safe():
    # The PR-7 proof refused every FunctionExpr-argument registration;
    # value flow proves the parked handler can never run and the
    # registry store is never read, so the call is eliminated.
    plan = _plan(_LAZY_WIDGET)
    elim = _applied(plan, "discarded-call-elim")
    assert len(elim) == 1
    assert "widget_register()" in elim[0].target
    assert elim[0].proof.category is ProofCategory.PROVEN_SAFE
    assert elim[0].proof.evidence == "jsstatic:valueflow"
    assert "never invoked" in elim[0].proof.obligation
    # The cascade then stubs the now-unreachable registrar.
    stubs = _applied(plan, "dead-function-elim")
    assert any(r.target == "widget_register" for r in stubs)
    transformed = plan.scripts["s.js"].transformed_source
    assert "widget_register('w0'" not in transformed


def test_activated_widget_blocks_the_discharge():
    # Same registry, but an activation path reads the handler back out:
    # the handler is live, so the registration must survive.
    src = _LAZY_WIDGET + (
        "function widget_activate(id) { handlers[id](); }\n"
        "widget_activate('w0');\n"
    )
    plan = _plan(src)
    assert all(
        "widget_register" not in r.target
        for r in _applied(plan, "discarded-call-elim")
    )
    assert "widget_register('w0'" in plan.scripts["s.js"].transformed_source


def test_registry_read_elsewhere_blocks_the_discharge():
    # The handler never runs, but the stored property is read: removing
    # the registration would change what probe() observes.
    src = _LAZY_WIDGET + "probe(handlers['w0']);\n"
    plan = _plan(src)
    assert all(
        r.proof.evidence != "jsstatic:valueflow"
        for r in _applied(plan, "discarded-call-elim")
    )
    assert "widget_register('w0'" in plan.scripts["s.js"].transformed_source


def test_effectful_extra_argument_blocks_the_discharge():
    src = (
        "var handlers = {};\n"
        "function widget_register(id, fn) { handlers[id] = fn; }\n"
        "widget_register(next_id(), function () { heavy(); });\n"
    )
    plan = _plan(src)
    assert _applied(plan, "discarded-call-elim") == []


# -- plan bookkeeping --------------------------------------------------- #

def test_unchanged_script_has_no_replacement():
    plan = _plan("var x = 1;\nuse(x);\n")
    assert plan.replacements() == {}
    assert plan.deferred_urls() == []
