"""Observability index: which global uses count as reads vs pure overwrites."""

from repro.browser.js.parser import parse_js
from repro.jsstatic.callgraph import build_call_graph, region_of
from repro.optimize import build_observability


def _obs(source, url="s.js"):
    programs = {url: parse_js(source)}
    graph = build_call_graph(programs)
    return build_observability(programs, graph.functions), graph


def test_plain_assignment_target_is_write_only():
    obs, _ = _obs("var g = 0; g = 1;")
    assert not obs.reads.get("g")
    assert ("top", "s.js") in obs.writes["g"]


def test_expression_use_is_a_read():
    obs, _ = _obs("var g = 0; use(g);")
    assert ("top", "s.js") in obs.reads["g"]


def test_compound_assignment_target_is_write_only():
    # ``g += 1`` re-reads g, but only to overwrite it: nothing else can
    # observe the old value, so for elimination purposes it is a write.
    obs, _ = _obs("var g = 0; g += 1;")
    assert not obs.reads.get("g")


def test_member_store_base_is_write_only():
    obs, _ = _obs("var reg = { n: 0 }; reg.n = 1;")
    assert not obs.reads.get("reg")
    assert ("top", "s.js") in obs.writes["reg"]


def test_member_read_base_is_a_read():
    obs, _ = _obs("var reg = { n: 0 }; use(reg.n);")
    assert ("top", "s.js") in obs.reads["reg"]


def test_push_with_discarded_result_is_write_only():
    obs, _ = _obs("var arr = []; arr.push(1);")
    assert not obs.reads.get("arr")
    assert ("top", "s.js") in obs.writes["arr"]


def test_push_with_bound_result_is_a_read():
    obs, _ = _obs("var arr = []; var n = arr.push(1);")
    assert ("top", "s.js") in obs.reads["arr"]


def test_locals_are_not_indexed():
    obs, _ = _obs("function f() { var x = 0; use(x); }")
    assert "x" not in obs.reads
    assert "x" not in obs.writes


def test_reads_are_attributed_to_the_enclosing_function_region():
    obs, graph = _obs("var g = 0; function f() { return g; }")
    f = graph.functions_named("f")[0]
    assert region_of(f) in obs.reads["g"]
    assert ("top", "s.js") not in obs.reads["g"]
