"""Differential testing: vectorized-v3 ≡ sequential-v2 ≡ parallel-v3.

Extends the engine trio of ``test_differential.py`` with the columnar
pipeline: the same randomized traces are sliced by

* the streaming sequential pass over the **row store** (UCWA2 reference
  semantics),
* the vectorized array-join closure over the **columnar trace** with its
  precomputed slice index (``profiler/vectorized.py``),
* the epoch-sharded parallel fixpoint fed **columnar epoch views**
  (``profiler/parallel.py`` over ``ColumnarTrace.span``),

and must produce identical sliced-record sets, identical join reasons
(``track_reasons``), and identical unnecessary-computation category
distributions.  The vectorized engine shares no traversal code with the
sequential pass — its closure is batch searchsorted joins over def/use
arrays — so a bug would have to be reimplemented independently in both
formulations to slip through.  On mismatch the failing seed is in the
assertion message; ``random_trace(seed)`` reproduces the trace exactly.
"""

from __future__ import annotations

import os

import pytest

np = pytest.importorskip("numpy")

from repro.profiler import Profiler
from repro.profiler.categorize import categorize_unnecessary
from repro.profiler.cdg import build_index
from repro.profiler.criteria import (
    combined_criteria,
    pixel_criteria,
    syscall_criteria,
)
from repro.profiler.parallel import ParallelSlicer
from repro.profiler.slicer import BackwardSlicer, SlicerOptions
from repro.profiler.vectorized import VectorizedSlicer, attach_index
from repro.trace.columnar import ColumnarTrace
from repro.trace.lint import lint_or_raise
from repro.workloads.fuzz import random_trace

# 60 seeds x up to 3 criteria = up to 180 randomized differential runs.
SEEDS = range(60)

#: worker count used for the in-test parallel runs; CI overrides this to
#: exercise both the inline path (1) and real process pools (4).
WORKERS = int(os.environ.get("REPRO_SLICER_WORKERS", "1"))

#: every sliced record carries a join reason in these runs, so reason
#: maps are compared for full equality (kind and detail).
REASONS = SlicerOptions(track_reasons=True)


def _criteria_variants(store):
    variants = [syscall_criteria(store)]
    if store.metadata.tile_buffers:
        variants.append(pixel_criteria(store))
        variants.append(combined_criteria(store))
    return variants


def _diff_indices(a, b, limit=10):
    return [i for i, (x, y) in enumerate(zip(a, b)) if x != y][:limit]


def _assert_equivalent(store, seed, *, workers=WORKERS, epoch_size=None,
                       options=REASONS):
    # Sanitize first: a malformed trace would make any slicer agreement
    # (or disagreement) meaningless.
    lint_or_raise(store, epoch_size=epoch_size or 4096)
    cols = ColumnarTrace.from_store(store)
    attach_index(cols)
    cdi = build_index(store.forward())
    for criteria in _criteria_variants(store):
        label = f"seed={seed} criteria={criteria.name}"
        seq = BackwardSlicer(store, cdi, criteria, options=options).run()
        vec = VectorizedSlicer(cols, cdi, criteria, options=options).run()
        par = ParallelSlicer(
            cols, cdi, criteria, workers=workers, epoch_size=epoch_size,
            options=options,
        ).run()
        assert bytes(vec.flags) == bytes(seq.flags), (
            f"vectorized != sequential for {label}; "
            f"first diffs at {_diff_indices(seq.flags, vec.flags)}"
        )
        assert bytes(par.flags) == bytes(seq.flags), (
            f"parallel-columnar != sequential for {label}; "
            f"first diffs at {_diff_indices(seq.flags, par.flags)}"
        )
        if options.track_reasons:
            assert vec.reasons == seq.reasons, (
                f"vectorized reasons != sequential for {label}"
            )
        seq_cat = categorize_unnecessary(store, seq)
        vec_cat = categorize_unnecessary(cols, vec)
        assert (vec_cat.counts, vec_cat.uncategorized) == (
            seq_cat.counts, seq_cat.uncategorized,
        ), f"category distributions differ for {label}"


@pytest.mark.parametrize("seed", SEEDS)
def test_random_traces_vectorized_agrees(seed):
    store = random_trace(seed, target_records=1_500 + 100 * (seed % 7))
    # Small epochs force many frontier hand-offs in the parallel runs.
    _assert_equivalent(store, seed, epoch_size=128 + 13 * (seed % 5))


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_random_traces_with_process_pool(seed):
    """A few seeds through real worker processes over columnar views."""
    store = random_trace(seed + 2000, target_records=4_000)
    _assert_equivalent(store, seed + 2000, workers=4, epoch_size=512)


@pytest.mark.parametrize(
    "options",
    (
        SlicerOptions(control_dependences=False, track_reasons=True),
        SlicerOptions(call_site_dependences=False, track_reasons=True),
        SlicerOptions(
            control_dependences=False,
            call_site_dependences=False,
            track_reasons=True,
        ),
    ),
    ids=("no-control", "no-callsite", "data-only"),
)
@pytest.mark.parametrize("seed", (4, 17, 33))
def test_ablation_options_agree(seed, options):
    """The ablation switches reroute the vectorized engine off the stored
    edge list onto freshly built joins; results must not change."""
    store = random_trace(seed, target_records=2_000)
    _assert_equivalent(store, seed, epoch_size=256, options=options)


@pytest.mark.parametrize("seed", (6, 28))
def test_windowed_criteria_agree(seed):
    """Frame-windowed criteria (window_end) through both engines."""
    store = random_trace(seed, target_records=2_500)
    lint_or_raise(store)
    cols = ColumnarTrace.from_store(store)
    attach_index(cols)
    cdi = build_index(store.forward())
    base = syscall_criteria(store)
    windowed = base.windowed(len(store) // 2)
    seq = BackwardSlicer(store, cdi, windowed, options=REASONS).run()
    vec = VectorizedSlicer(cols, cdi, windowed, options=REASONS).run()
    assert bytes(vec.flags) == bytes(seq.flags), f"seed={seed}"
    assert vec.reasons == seq.reasons


def test_engine_switch_on_profiler_api():
    store = random_trace(123)
    cols = ColumnarTrace.from_store(store)
    attach_index(cols)
    seq = Profiler(store).pixel_slice()
    vec = Profiler(cols).pixel_slice(engine="vectorized")
    assert bytes(vec.flags) == bytes(seq.flags)
    assert vec.engine_stats["engine"] == "vectorized"
    assert vec.engine_stats["stored_index"] is True
    assert vec.engine_stats["edges"] > 0
    with pytest.raises(ValueError):
        Profiler(cols).pixel_slice(engine="turbo")


def test_vectorized_accepts_row_store():
    """A plain TraceStore converts on entry; results are unchanged."""
    store = random_trace(31, target_records=2_000)
    cdi = build_index(store.forward())
    crit = syscall_criteria(store)
    seq = BackwardSlicer(store, cdi, crit).run()
    vec = VectorizedSlicer(store, cdi, crit).run()
    assert bytes(vec.flags) == bytes(seq.flags)
    assert vec.engine_stats["stored_index"] is False


def test_timeline_matches_parallel_reconstruction():
    """The vectorized timeline uses the same flags-reconstruction as the
    parallel engine: identical samples, and the final sample (the one the
    figures consume) equals the sequential count."""
    store = random_trace(42, target_records=3_000)
    cols = ColumnarTrace.from_store(store)
    attach_index(cols)
    cdi = build_index(store.forward())
    crit = pixel_criteria(store)
    seq = BackwardSlicer(store, cdi, crit, sample_every=500).run()
    vec = VectorizedSlicer(cols, cdi, crit, sample_every=500).run()
    par = ParallelSlicer(store, cdi, crit, workers=1, sample_every=500).run()
    assert vec.timeline == par.timeline
    assert vec.timeline[-1] == seq.timeline[-1]


def test_criteria_required():
    store = random_trace(1)
    cols = ColumnarTrace.from_store(store)
    with pytest.raises(ValueError):
        VectorizedSlicer(cols, None, None)
