"""Unit tests for dynamic CFG construction."""

from repro.machine import Tracer
from repro.profiler.cfg import DynamicCFGBuilder, build_cfgs
from repro.trace.records import InstrKind


def build(tracer):
    return build_cfgs(tracer.store.forward())


def fn_id(tracer, name):
    return tracer.symbols.lookup(name)


def make_tracer():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "root")
    return tracer


def test_linear_function():
    tracer = make_tracer()
    with tracer.function("f"):
        tracer.op("a")
        tracer.op("b")
        tracer.op("c")
    cfgs = build(tracer)
    cfg = cfgs[fn_id(tracer, "f")]
    pcs = [tracer.pc_of("f", label) for label in ("a", "b", "c")]
    ret_pc = tracer.pc_of("f", "$ret")
    assert set(cfg.nodes()) == set(pcs) | {ret_pc}
    assert cfg.succs[pcs[0]] == {pcs[1]}
    assert cfg.succs[pcs[1]] == {pcs[2]}
    assert cfg.succs[pcs[2]] == {ret_pc}
    assert cfg.entries == {pcs[0]}
    assert cfg.exits == {ret_pc}


def test_loop_creates_back_edge():
    tracer = make_tracer()
    with tracer.function("f"):
        for _ in range(3):
            tracer.compare_and_branch("head", reads=(0x1000,))
            tracer.op("body")
        tracer.compare_and_branch("head", reads=(0x1000,))  # exit evaluation
        tracer.op("after")
    cfgs = build(tracer)
    cfg = cfgs[fn_id(tracer, "f")]
    br = tracer.pc_of("f", "head$br")
    body = tracer.pc_of("f", "body")
    cmp_pc = tracer.pc_of("f", "head$cmp")
    after = tracer.pc_of("f", "after")
    assert body in cfg.succs[br]
    assert after in cfg.succs[br]  # two successors: loop body and exit
    assert cmp_pc in cfg.succs[body]  # back edge to loop head
    assert br in cfg.branch_pcs


def test_calls_split_functions():
    tracer = make_tracer()
    with tracer.function("caller"):
        tracer.op("pre")
        with tracer.function("callee"):
            tracer.op("inner")
        tracer.op("post")
    cfgs = build(tracer)
    caller_cfg = cfgs[fn_id(tracer, "caller")]
    callee_cfg = cfgs[fn_id(tracer, "callee")]
    inner_pc = tracer.pc_of("callee", "inner")
    assert inner_pc in callee_cfg.succs
    assert inner_pc not in caller_cfg.succs
    # Fall-through edge: call site -> next caller instruction.
    call_pc = tracer.pc_of("caller", "call:callee")
    post_pc = tracer.pc_of("caller", "post")
    assert post_pc in caller_cfg.succs[call_pc]


def test_repeated_invocations_aggregate():
    tracer = make_tracer()
    for use_branch in (True, False):
        with tracer.function("f"):
            tracer.compare_and_branch("cond", reads=(0x1,))
            if use_branch:
                tracer.op("then")
            else:
                tracer.op("else")
            tracer.op("merge")
    cfgs = build(tracer)
    cfg = cfgs[fn_id(tracer, "f")]
    br = tracer.pc_of("f", "cond$br")
    then_pc = tracer.pc_of("f", "then")
    else_pc = tracer.pc_of("f", "else")
    assert cfg.succs[br] == {then_pc, else_pc}


def test_truncated_frame_marks_exit():
    tracer = make_tracer()
    tracer.call("f")
    tracer.op("last")
    # No ret: trace collection stopped mid-function.
    cfgs = build(tracer)
    cfg = cfgs[fn_id(tracer, "f")]
    assert tracer.pc_of("f", "last") in cfg.exits


def test_multithreaded_interleaving():
    tracer = make_tracer()
    tracer.spawn_thread(2, "Compositor", "root2")
    tracer.switch(1)
    tracer.call("f")
    tracer.op("m1")
    tracer.switch(2)
    tracer.call("g")
    tracer.op("c1")
    tracer.switch(1)
    tracer.op("m2")
    tracer.ret()
    tracer.switch(2)
    tracer.op("c2")
    tracer.ret()
    cfgs = build(tracer)
    f_cfg = cfgs[fn_id(tracer, "f")]
    g_cfg = cfgs[fn_id(tracer, "g")]
    # Interleaving must not create edges across threads.
    m1, m2 = tracer.pc_of("f", "m1"), tracer.pc_of("f", "m2")
    c1, c2 = tracer.pc_of("g", "c1"), tracer.pc_of("g", "c2")
    assert m2 in f_cfg.succs[m1]
    assert c2 in g_cfg.succs[c1]
    assert c1 not in f_cfg.succs.get(m1, set())


def test_seal_gives_every_cfg_an_exit():
    builder = DynamicCFGBuilder()
    tracer = make_tracer()
    with tracer.function("f"):
        tracer.op("a")
    for rec in tracer.store.forward():
        builder.feed(rec)
    cfgs = builder.finish()
    for cfg in cfgs.values():
        assert cfg.exits, f"fn {cfg.fn} has no exits"


def test_branch_pcs_collected():
    tracer = make_tracer()
    with tracer.function("f"):
        tracer.compare_and_branch("x", reads=(0x1,))
        tracer.op("a")
    cfgs = build(tracer)
    cfg = cfgs[fn_id(tracer, "f")]
    assert cfg.branch_pcs == {tracer.pc_of("f", "x$br")}
