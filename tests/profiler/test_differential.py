"""Differential testing: parallel ≡ sequential ≡ oracle.

Three independent implementations of the backward slice are run over the
same randomized traces and must produce identical sliced-record sets:

* the streaming sequential pass (``profiler/slicer.py``),
* the epoch-sharded parallel fixpoint (``profiler/parallel.py``),
* the transitive-closure oracle (``profiler/oracle.py``).

The trio makes single-implementation bugs visible: the oracle shares no
code or formulation with the streaming passes, so a bug would have to be
reimplemented three independent ways to slip through.  On mismatch the
failing seed is in the assertion message; ``random_trace(seed)``
reproduces the trace exactly.
"""

from __future__ import annotations

import os

import pytest

from repro.profiler import Profiler
from repro.profiler.cdg import build_index
from repro.profiler.criteria import (
    combined_criteria,
    pixel_criteria,
    syscall_criteria,
)
from repro.profiler.oracle import OracleSlicer
from repro.profiler.parallel import ParallelSlicer
from repro.profiler.slicer import BackwardSlicer
from repro.trace.lint import lint_or_raise
from repro.workloads.fuzz import random_page, random_trace

# 60 seeds x 3 criteria = 180 randomized differential runs.
SEEDS = range(60)

#: worker count used for the in-test parallel runs; CI overrides this to
#: exercise both the inline path (1) and real process pools (4).
WORKERS = int(os.environ.get("REPRO_SLICER_WORKERS", "1"))


def _criteria_variants(store):
    variants = [syscall_criteria(store)]
    if store.metadata.tile_buffers:
        variants.append(pixel_criteria(store))
        variants.append(combined_criteria(store))
    return variants


def _assert_equivalent(store, seed, *, workers=WORKERS, epoch_size=None):
    # Sanitize first: a malformed trace would make any slicer agreement
    # (or disagreement) meaningless.
    lint_or_raise(store, epoch_size=epoch_size or 4096)
    cdi = build_index(store.forward())
    for criteria in _criteria_variants(store):
        seq = BackwardSlicer(store, cdi, criteria).run()
        par = ParallelSlicer(
            store, cdi, criteria, workers=workers, epoch_size=epoch_size
        ).run()
        orc = OracleSlicer(store, cdi, criteria).run()
        label = f"seed={seed} criteria={criteria.name}"
        assert bytes(par.flags) == bytes(seq.flags), (
            f"parallel != sequential for {label}; "
            f"first diffs at {_diff_indices(seq.flags, par.flags)}"
        )
        assert bytes(orc.flags) == bytes(seq.flags), (
            f"oracle != sequential for {label}; "
            f"first diffs at {_diff_indices(seq.flags, orc.flags)}"
        )


def _diff_indices(a, b, limit=10):
    return [i for i, (x, y) in enumerate(zip(a, b)) if x != y][:limit]


@pytest.mark.parametrize("seed", SEEDS)
def test_random_traces_all_engines_agree(seed):
    store = random_trace(seed, target_records=1_500 + 100 * (seed % 7))
    # Small epochs force many frontier hand-offs and fixpoint rounds.
    _assert_equivalent(store, seed, epoch_size=128 + 13 * (seed % 5))


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_random_traces_with_process_pool(seed):
    """A few seeds through real worker processes (not the inline path)."""
    store = random_trace(seed + 1000, target_records=4_000)
    _assert_equivalent(store, seed + 1000, workers=4, epoch_size=512)


@pytest.mark.parametrize("seed", (7, 21))
def test_random_pages_all_engines_agree(seed):
    """Full engine-generated traces from randomized synthetic pages."""
    from repro.harness.experiments import run_engine
    from repro.tsan.detector import detect_races

    bench = random_page(seed, n_actions=1)
    store = run_engine(bench, metrics_ticks=1).trace_store()
    # Engine-generated traces must also be race-free under the concurrency
    # sanitizer: an unsynchronized cross-thread pair would make the slice
    # depend on interleaving, voiding the sequential/parallel comparison.
    report = detect_races(store)
    assert report.ok, "\n".join(r.describe() for r in report.races[:5])
    _assert_equivalent(store, seed, epoch_size=max(256, len(store) // 13))


@pytest.mark.parametrize("seed", (3, 11))
def test_sync_fuzz_traces_slice_identically(seed):
    """Well-synchronized fuzz traces through all three slicers too."""
    from repro.tsan.detector import detect_races
    from repro.workloads.fuzz import random_sync_trace

    store, injected = random_sync_trace(seed, target_records=2_000)
    assert not injected
    assert detect_races(store).ok
    _assert_equivalent(store, seed, epoch_size=256)


def test_engine_switch_on_profiler_api():
    store = random_trace(123)
    prof = Profiler(store)
    seq = prof.pixel_slice()
    par = prof.pixel_slice(engine="parallel", workers=WORKERS)
    assert bytes(par.flags) == bytes(seq.flags)
    assert par.engine_stats["engine"] == "parallel"
    assert par.engine_stats["epoch_runs"] >= par.engine_stats["epochs"]
    with pytest.raises(ValueError):
        prof.pixel_slice(engine="turbo")


def test_parallel_timeline_final_sample_matches_sequential():
    store = random_trace(42, target_records=3_000)
    prof = Profiler(store)
    seq = prof.pixel_slice(sample_every=500)
    par = prof.pixel_slice(sample_every=500, engine="parallel", workers=1)
    assert par.timeline, "parallel engine should emit timeline samples"
    assert par.timeline[-1] == seq.timeline[-1]


def test_frontier_serialization_round_trip():
    from repro.profiler.parallel import SliceFrontier
    import pickle

    frontier = SliceFrontier(
        live_mem=(3, 9, 0xFFFF_FFFF_0000),
        live_regs=((1, (2, 5)), (4, (1,))),
        pending=((1, (1 << 21,)),),
        stacks=((1, ((7, 1234, 1, 0), (9, -1, 0, 1))),),
    )
    assert SliceFrontier.from_bytes(frontier.to_bytes()) == frontier
    assert pickle.loads(pickle.dumps(frontier)) == frontier
    assert SliceFrontier.empty().to_bytes() == SliceFrontier().to_bytes()
