"""Tests for slice diffing and the call-tree profile."""

import pytest

from repro.machine import Tracer
from repro.machine.tracer import TILE_MARKER
from repro.profiler import Profiler, pixel_criteria, combined_criteria
from repro.profiler.calltree import build_call_tree, hottest_paths, render_call_tree
from repro.profiler.diff import diff_slices, exclusive_functions


def traced_store():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "root")
    buf, pixel = 0x10, 0x11
    with tracer.function("work"):
        with tracer.function("visible"):
            tracer.op("w", writes=(pixel,))
        with tracer.function("net_only"):
            tracer.op("fill", writes=(buf,))
            tracer.syscall("sendto", reads=(buf,))
    with tracer.function("cc::Raster"):
        tracer.op("raster", reads=(pixel,), writes=(0x12,))
        tracer.marker(TILE_MARKER, cells=(0x12,))
    return tracer


def test_diff_pixel_vs_syscall():
    tracer = traced_store()
    prof = Profiler(tracer.store)
    pixels = prof.slice(pixel_criteria(tracer.store))
    syscalls = prof.slice(combined_criteria(tracer.store))
    diff = diff_slices(pixels, syscalls)
    assert diff.total == len(tracer.store)
    assert diff.a_subset_of_b, "pixel slice must be within the syscall slice"
    assert not diff.b_subset_of_a
    assert diff.only_b > 0
    assert 0.0 < diff.jaccard < 1.0
    assert "jaccard" in diff.summary()


def test_diff_identical_slices():
    tracer = traced_store()
    prof = Profiler(tracer.store)
    a = prof.slice(pixel_criteria(tracer.store))
    b = prof.slice(pixel_criteria(tracer.store))
    diff = diff_slices(a, b)
    assert diff.only_a == diff.only_b == 0
    assert diff.jaccard == 1.0


def test_diff_rejects_mismatched_traces():
    tracer1 = traced_store()
    tracer2 = Tracer()
    tracer2.spawn_thread(1, "CrRendererMain", "root")
    with tracer2.function("f"):
        tracer2.op("a", writes=(1,))
        tracer2.marker(TILE_MARKER, cells=(1,))
    a = Profiler(tracer1.store).pixel_slice()
    b = Profiler(tracer2.store).pixel_slice()
    with pytest.raises(ValueError):
        diff_slices(a, b)


def test_exclusive_functions_names_the_output_path():
    tracer = traced_store()
    prof = Profiler(tracer.store)
    pixels = prof.slice(pixel_criteria(tracer.store))
    syscalls = prof.slice(combined_criteria(tracer.store))
    rows = exclusive_functions(tracer.store, pixels, syscalls)
    names = [name for name, _ in rows]
    assert "net_only" in names


def test_call_tree_structure():
    tracer = traced_store()
    roots = build_call_tree(tracer.store)
    root = roots[1]
    assert root.name == "root"
    work = root.children[tracer.symbols.lookup("work")]
    child_names = {c.name for c in work.children.values()}
    assert child_names == {"visible", "net_only"}
    # Totals add up to the trace length for the single thread.
    assert root.total_records() == len(tracer.store)


def test_call_tree_slice_split():
    tracer = traced_store()
    prof = Profiler(tracer.store)
    result = prof.slice(pixel_criteria(tracer.store))
    roots = build_call_tree(tracer.store, result)
    root = roots[1]
    work = root.children[tracer.symbols.lookup("work")]
    visible = work.children[tracer.symbols.lookup("visible")]
    net_only = work.children[tracer.symbols.lookup("net_only")]
    assert visible.total_sliced() > 0
    assert net_only.self_sliced == 0  # invisible under pixel criteria
    assert root.total_sliced() == result.slice_size()


def test_render_and_hottest_paths():
    tracer = traced_store()
    roots = build_call_tree(tracer.store)
    lines = render_call_tree(roots[1], min_records=1)
    assert any("work" in line for line in lines)
    paths = hottest_paths(roots, limit=5)
    assert paths[0][0] == "root"
    assert paths[0][1] >= paths[-1][1]


def test_call_tree_multithreaded():
    tracer = traced_store()
    tracer.spawn_thread(2, "Compositor", "root2")
    tracer.switch(2)
    with tracer.function("cc::Tick"):
        tracer.op("t", writes=(0x99,))
    roots = build_call_tree(tracer.store)
    assert set(roots) == {1, 2}
    assert roots[2].children, "thread 2 has its own subtree"
