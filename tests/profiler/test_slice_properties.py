"""Property-based invariants of the backward slice.

Checked over hypothesis-drawn random traces and one bundled engine
workload:

* **data closure** — for every sliced record, the latest earlier writer
  of each cell it reads (and same-thread register it reads) is sliced;
* **control closure** — for every sliced record, the nearest preceding
  same-thread dynamic instance of each branch in its static
  control-dependence set is sliced;
* **call/ret balance** — a matched CALL/RET pair is either entirely in
  or entirely out of the slice, per thread;
* **criteria monotonicity** — adding criteria only grows the slice
  (pixels ⊆ pixels + syscalls).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.profiler import Profiler
from repro.profiler.cdg import build_index
from repro.profiler.criteria import combined_criteria, pixel_criteria
from repro.trace.records import InstrKind
from repro.workloads.fuzz import random_trace


def _writer_indexes(store):
    """(mem writers per cell, reg writers per (tid, reg)), ascending.

    RET records are excluded — they take no part in the liveness rule.
    """
    mem: Dict[int, List[int]] = {}
    reg: Dict[Tuple[int, int], List[int]] = {}
    for i, rec in enumerate(store.records()):
        if rec.kind == InstrKind.RET:
            continue
        for addr in rec.mem_written:
            mem.setdefault(addr, []).append(i)
        for r in rec.regs_written:
            reg.setdefault((rec.tid, r), []).append(i)
    return mem, reg


def _latest_before(indices: Optional[List[int]], i: int) -> Optional[int]:
    if not indices:
        return None
    pos = bisect_left(indices, i)
    return indices[pos - 1] if pos else None


def _matched_call_ret_pairs(store) -> List[Tuple[int, int]]:
    """(call_index, ret_index) pairs via forward stack simulation."""
    pairs: List[Tuple[int, int]] = []
    stacks: Dict[int, List[int]] = {}
    for i, rec in enumerate(store.records()):
        stack = stacks.setdefault(rec.tid, [])
        if rec.kind == InstrKind.CALL:
            stack.append(i)
        elif rec.kind == InstrKind.RET and stack:
            pairs.append((stack.pop(), i))
    return pairs


def _check_closure_properties(store, result, cdi):
    records = store.records()
    flags = result.flags
    mem_writers, reg_writers = _writer_indexes(store)
    branches: Dict[Tuple[int, int], List[int]] = {}
    for i, rec in enumerate(records):
        if rec.kind == InstrKind.BRANCH:
            branches.setdefault((rec.tid, rec.pc), []).append(i)

    for i, flag in enumerate(flags):
        if not flag:
            continue
        rec = records[i]
        if rec.kind == InstrKind.RET:
            continue  # retroactively flagged; generates no dependences
        for addr in rec.mem_read:
            writer = _latest_before(mem_writers.get(addr), i)
            assert writer is None or flags[writer], (
                f"record {i} reads cell {addr:#x} but its latest writer "
                f"{writer} is not sliced"
            )
        for r in rec.regs_read:
            writer = _latest_before(reg_writers.get((rec.tid, r)), i)
            assert writer is None or flags[writer], (
                f"record {i} reads register {r} but its latest writer "
                f"{writer} is not sliced"
            )
        for dep_pc in cdi.deps_of(rec.pc):
            branch = _latest_before(branches.get((rec.tid, dep_pc)), i)
            assert branch is None or flags[branch], (
                f"record {i} is control dependent on pc {dep_pc:#x} but its "
                f"nearest preceding instance {branch} is not sliced"
            )

    for call_index, ret_index in _matched_call_ret_pairs(store):
        assert flags[call_index] == flags[ret_index], (
            f"unbalanced pair: CALL {call_index} flag={flags[call_index]} "
            f"vs RET {ret_index} flag={flags[ret_index]}"
        )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_slice_closure_invariants_on_random_traces(seed):
    store = random_trace(seed, target_records=1_200)
    cdi = build_index(store.forward())
    prof = Profiler(store)
    result = prof.combined_slice()
    _check_closure_properties(store, result, cdi)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_slice_monotonic_in_criteria(seed):
    store = random_trace(seed, target_records=1_200)
    prof = Profiler(store)
    pixel = prof.pixel_slice()
    combined = prof.combined_slice()
    for i, flag in enumerate(pixel.flags):
        if flag:
            assert combined.flags[i], (
                f"seed {seed}: record {i} in pixel slice but not in "
                f"pixel+syscall slice"
            )
    assert combined.slice_size() >= pixel.slice_size()


@pytest.fixture(scope="module")
def wiki_run():
    from repro.harness.experiments import run_engine
    from repro.workloads import benchmark

    bench = benchmark("wiki_article")
    return run_engine(bench).trace_store()


def test_slice_closure_invariants_on_engine_workload(wiki_run):
    store = wiki_run
    cdi = build_index(store.forward())
    prof = Profiler(store)
    _check_closure_properties(store, prof.pixel_slice(), cdi)


def test_slice_monotonic_on_engine_workload(wiki_run):
    store = wiki_run
    prof = Profiler(store)
    pixel = prof.pixel_slice()
    combined = prof.combined_slice()
    assert all(
        combined.flags[i] for i, flag in enumerate(pixel.flags) if flag
    )
