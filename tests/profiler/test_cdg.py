"""Unit tests for control-dependence computation."""

from repro.profiler.cdg import ControlDependenceIndex, control_dependences
from repro.profiler.cfg import FunctionCFG


def cfg_from_edges(fn, edges, exits):
    cfg = FunctionCFG(fn=fn)
    for src, dst in edges:
        cfg.add_edge(src, dst)
    cfg.exits.update(exits)
    cfg.seal()
    return cfg


def test_diamond_arms_depend_on_branch():
    cfg = cfg_from_edges(0, [(1, 2), (1, 3), (2, 4), (3, 4)], exits={4})
    cd = control_dependences(cfg)
    assert cd.get(2) == (1,)
    assert cd.get(3) == (1,)
    assert 4 not in cd  # the merge point is not control dependent on 1


def test_loop_body_depends_on_head():
    # 1(head) -> 2(body) -> 1, 1 -> 3(after)
    cfg = cfg_from_edges(0, [(1, 2), (2, 1), (1, 3)], exits={3})
    cd = control_dependences(cfg)
    assert 1 in cd.get(2, ())
    # The loop head itself is control-dependent on itself (executing the
    # body re-reaches the head), the classic FOW self-dependence.
    assert 1 in cd.get(1, ())
    assert 3 not in cd


def test_nested_branches():
    #  1 -> {2, 6}; 2 -> {3, 4}; 3,4 -> 5; 5 -> 7; 6 -> 7
    edges = [(1, 2), (1, 6), (2, 3), (2, 4), (3, 5), (4, 5), (5, 7), (6, 7)]
    cfg = cfg_from_edges(0, edges, exits={7})
    cd = control_dependences(cfg)
    assert cd.get(3) == (2,)
    assert cd.get(4) == (2,)
    assert cd.get(2) == (1,)
    assert cd.get(5) == (1,)  # 5 runs iff the 1->2 arm was taken
    assert cd.get(6) == (1,)
    assert 7 not in cd


def test_straight_line_has_no_dependences():
    cfg = cfg_from_edges(0, [(1, 2), (2, 3)], exits={3})
    assert control_dependences(cfg) == {}


def test_index_merges_functions():
    cfg_a = cfg_from_edges(0, [(1, 2), (1, 3), (2, 4), (3, 4)], exits={4})
    cfg_b = cfg_from_edges(1, [(10, 11), (10, 12), (11, 13), (12, 13)], exits={13})
    index = ControlDependenceIndex({0: cfg_a, 1: cfg_b})
    assert index.deps_of(2) == (1,)
    assert index.deps_of(11) == (10,)
    assert index.deps_of(99) == ()
    assert len(index) == 4  # nodes 2,3 and 11,12


def test_branch_to_exit_side():
    # 1 -> 2 -> 3(exit), 1 -> 3: node 2 is control dependent on 1.
    cfg = cfg_from_edges(0, [(1, 2), (2, 3), (1, 3)], exits={3})
    cd = control_dependences(cfg)
    assert cd.get(2) == (1,)
