"""Edge-case coverage for slice provenance (explain) and comparison (diff)."""

import pytest

from repro.machine import Tracer
from repro.machine.registers import RBX
from repro.machine.tracer import TILE_MARKER
from repro.profiler import (
    Profiler,
    SlicerOptions,
    chain_heads,
    diff_slices,
    explain_record,
    pixel_criteria,
    reason_summary,
)


def _store():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.op("dead", writes=(0x90,))
    tracer.op("seed", writes=(0x10,), reg_writes=(RBX,))
    tracer.call("helper")
    tracer.op("mix", reads=(0x10,), writes=(0x20,), reg_reads=(RBX,))
    tracer.ret()
    tracer.compare_and_branch("guard", reads=(0x20,))
    tracer.op("paint", reads=(0x20,), writes=(0x30,))
    tracer.marker(TILE_MARKER, cells=(0x30,))
    return tracer.store


@pytest.fixture(scope="module")
def tracked():
    store = _store()
    profiler = Profiler(store)
    result = profiler.slice(
        pixel_criteria(store), options=SlicerOptions(track_reasons=True)
    )
    return store, result


def test_explain_covers_every_reason_kind(tracked):
    store, result = tracked
    seen = set()
    for index in result.indices():
        text = explain_record(store, result, index)
        assert f"record {index}" in text
        seen.add(result.reasons[index][0])
    # control-dependence reasons are covered in test_explain_persistence;
    # this straight-line trace exercises the data and call chains.
    assert {"data", "call"} <= seen


def test_explain_register_reason(tracked):
    store, result = tracked
    reg_indices = [
        i for i in result.indices() if result.reasons[i][0] == "register"
    ]
    for index in reg_indices:
        assert "live register" in explain_record(store, result, index)


def test_explain_record_outside_slice(tracked):
    store, result = tracked
    outside = [i for i in range(len(result.flags)) if not result.flags[i]]
    assert outside, "the dead record must stay out of the slice"
    assert "not in the slice" in explain_record(store, result, outside[0])


def test_explain_without_reason_tracking():
    store = _store()
    result = Profiler(store).slice(pixel_criteria(store))
    index = result.indices()[0]
    assert "track_reasons=True" in explain_record(store, result, index)
    with pytest.raises(ValueError, match="track_reasons"):
        reason_summary(result)


def test_reason_summary_accounts_for_whole_slice(tracked):
    _, result = tracked
    summary = reason_summary(result)
    assert sum(summary.values()) == result.slice_size()
    assert all(count > 0 for count in summary.values())


def test_chain_heads_respects_limit(tracked):
    store, result = tracked
    heads = chain_heads(store, result, limit=2)
    assert len(heads) == 2
    assert heads[0][0] == result.indices()[0]
    assert all(isinstance(name, str) for _, name in heads)


def test_diff_empty_slices_have_unit_jaccard():
    store = _store()
    result = Profiler(store).slice(pixel_criteria(store))
    empty_a = type(result)(criteria_name="a", flags=bytearray(len(result.flags)))
    empty_b = type(result)(criteria_name="b", flags=bytearray(len(result.flags)))
    diff = diff_slices(empty_a, empty_b)
    assert diff.both == diff.only_a == diff.only_b == 0
    assert diff.neither == len(result.flags)
    assert diff.jaccard == 1.0
    assert diff.a_subset_of_b and diff.b_subset_of_a
    assert "jaccard" in diff.summary()


def test_diff_subset_relations(tracked):
    _, result = tracked
    narrowed = type(result)(
        criteria_name="narrow", flags=bytearray(result.flags)
    )
    narrowed.flags[result.indices()[0]] = 0
    diff = diff_slices(narrowed, result)
    assert diff.a_subset_of_b and not diff.b_subset_of_a
    assert diff.only_b == 1 and diff.only_a == 0
    assert diff.jaccard < 1.0
