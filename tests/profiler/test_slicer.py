"""Behavioural tests of the backward slicer on hand-built traces."""

import pytest

from repro.machine import Tracer
from repro.machine.tracer import TILE_MARKER
from repro.profiler import (
    Profiler,
    custom_criteria,
    pixel_criteria,
    syscall_criteria,
)
from repro.profiler.criteria import SlicingCriteria
from repro.trace.records import InstrKind


def make_tracer():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "root")
    return tracer


def slice_with(tracer, criteria, **kwargs):
    return Profiler(tracer.store).slice(criteria, **kwargs)


def test_straight_line_dataflow():
    tracer = make_tracer()
    a, b, out, junk = 0x100, 0x101, 0x102, 0x103
    with tracer.function("f"):
        i_src = tracer.op("src", writes=(a,))
        i_mid = tracer.op("mid", reads=(a,), writes=(b,))
        i_junk = tracer.op("junk", writes=(junk,))
        i_out = tracer.op("out", reads=(b,), writes=(out,))
    crit = custom_criteria("test", (((i_out + 1), (out,)),))
    # Criterion point just after the writing instruction: anchor at the RET.
    result = slice_with(tracer, crit)
    assert i_out in result
    assert i_mid in result
    assert i_src in result
    assert i_junk not in result


def test_overwritten_definition_not_in_slice():
    tracer = make_tracer()
    cell, src1, src2 = 0x200, 0x201, 0x202
    with tracer.function("f"):
        i_dead = tracer.op("first", reads=(src1,), writes=(cell,))
        i_live = tracer.op("second", reads=(src2,), writes=(cell,))
        i_use = tracer.op("use", reads=(cell,), writes=(0x203,))
    crit = custom_criteria("test", ((i_use + 1, (0x203,)),))
    result = slice_with(tracer, crit)
    assert i_live in result
    assert i_use in result
    assert i_dead not in result  # killed by the second write


def test_control_dependence_pulls_in_branch_and_condition():
    tracer = make_tracer()
    cond_src, cond, val, out = 0x300, 0x301, 0x302, 0x303
    with tracer.function("f"):
        i_cond_src = tracer.op("cond_src", writes=(cond_src,))
        i_cond = tracer.op("cond", reads=(cond_src,), writes=(cond,))
        tracer.compare_and_branch("if", reads=(cond,))
        i_then = tracer.op("then", writes=(val,))
        i_merge = tracer.op("merge", reads=(val,), writes=(out,))
    # Re-run the function taking the other arm so the branch has two
    # dynamic successors and real control dependence exists.
    with tracer.function("f"):
        tracer.op("cond_src", writes=(cond_src,))
        tracer.op("cond", reads=(cond_src,), writes=(cond,))
        tracer.compare_and_branch("if", reads=(cond,))
        tracer.op("merge", reads=(val,), writes=(out,))
    crit = custom_criteria("test", ((i_merge + 1, (out,)),))
    result = slice_with(tracer, crit)
    assert i_then in result
    records = tracer.store.records()
    # The branch and its cmp must have joined the slice.
    br_pc = tracer.pc_of("f", "if$br")
    cmp_pc = tracer.pc_of("f", "if$cmp")
    sliced_pcs = {records[i].pc for i in result.indices()}
    assert br_pc in sliced_pcs
    assert cmp_pc in sliced_pcs
    # And liveness must have flowed through the condition to its producers.
    assert i_cond in result
    assert i_cond_src in result


def test_unneeded_function_call_excluded():
    tracer = make_tracer()
    useful, useless, out = 0x400, 0x401, 0x402
    with tracer.function("outer"):
        with tracer.function("useful_fn"):
            i_useful = tracer.op("w", writes=(useful,))
        with tracer.function("useless_fn"):
            i_useless = tracer.op("w", writes=(useless,))
        i_out = tracer.op("combine", reads=(useful,), writes=(out,))
    crit = custom_criteria("test", ((i_out + 1, (out,)),))
    result = slice_with(tracer, crit)
    records = tracer.store.records()
    assert i_useful in result
    assert i_useless not in result
    # CALL/RET of the useful invocation join the slice...
    call_useful = next(
        i for i, r in enumerate(records)
        if r.kind == InstrKind.CALL and r.pc == tracer.pc_of("outer", "call:useful_fn")
    )
    assert call_useful in result
    assert (i_useful + 1) in result  # its RET record
    # ...but the useless invocation's do not.
    call_useless = next(
        i for i, r in enumerate(records)
        if r.kind == InstrKind.CALL and r.pc == tracer.pc_of("outer", "call:useless_fn")
    )
    assert call_useless not in result
    assert (i_useless + 1) not in result


def test_cross_thread_dataflow_through_shared_memory():
    tracer = make_tracer()
    tracer.spawn_thread(2, "Compositor", "root2")
    shared, out = 0x500, 0x501
    tracer.switch(1)
    with tracer.function("producer"):
        i_prod = tracer.op("w", writes=(shared,))
    tracer.switch(2)
    with tracer.function("consumer"):
        i_cons = tracer.op("r", reads=(shared,), writes=(out,))
    crit = custom_criteria("test", ((i_cons + 1, (out,)),))
    result = slice_with(tracer, crit)
    assert i_cons in result
    assert i_prod in result  # shared live-memory set crosses threads


def test_registers_do_not_leak_across_threads():
    tracer = make_tracer()
    tracer.spawn_thread(2, "Compositor", "root2")
    from repro.machine.registers import RAX

    tracer.switch(1)
    with tracer.function("f1"):
        i_t1 = tracer.op("w", reg_writes=(RAX,))
    tracer.switch(2)
    with tracer.function("f2"):
        i_t2 = tracer.op("r", reg_reads=(RAX,), writes=(0x600,))
    crit = custom_criteria("test", ((i_t2 + 1, (0x600,)),))
    result = slice_with(tracer, crit)
    assert i_t2 in result
    # Thread 2's RAX is a different architectural register than thread 1's.
    assert i_t1 not in result


def test_pixel_criteria_via_tile_marker():
    tracer = make_tracer()
    display_item, pixel = 0x700, 0x701
    with tracer.function("blink::paint::Paint"):
        i_item = tracer.op("record", writes=(display_item,))
        i_junk = tracer.op("junk", writes=(0x702,))
    with tracer.function("cc::RasterBufferProvider::PlaybackToMemory"):
        i_raster = tracer.op("raster", reads=(display_item,), writes=(pixel,))
        tracer.marker(TILE_MARKER, cells=(pixel,))
    result = slice_with(tracer, pixel_criteria(tracer.store))
    assert i_raster in result
    assert i_item in result
    assert i_junk not in result


def test_pixel_criteria_requires_markers():
    tracer = make_tracer()
    with tracer.function("f"):
        tracer.op("a")
    with pytest.raises(ValueError):
        pixel_criteria(tracer.store)


def test_syscall_criteria_seed_inputs():
    tracer = make_tracer()
    buf, junk = 0x800, 0x801
    with tracer.function("net::Send"):
        i_fill = tracer.op("fill", writes=(buf,))
        i_junk = tracer.op("junk", writes=(junk,))
        i_sys = tracer.syscall("sendto", reads=(buf,))
    result = slice_with(tracer, syscall_criteria(tracer.store))
    assert i_sys in result
    assert i_fill in result
    assert i_junk not in result


def test_syscall_not_seeded_under_pixel_criteria():
    tracer = make_tracer()
    buf, pixel = 0x900, 0x901
    with tracer.function("net::Send"):
        i_fill = tracer.op("fill", writes=(buf,))
        i_sys = tracer.syscall("sendto", reads=(buf,))
    with tracer.function("cc::Raster"):
        tracer.op("raster", writes=(pixel,))
        tracer.marker(TILE_MARKER, cells=(pixel,))
    result = slice_with(tracer, pixel_criteria(tracer.store))
    assert i_sys not in result
    assert i_fill not in result


def test_syscall_output_feeding_pixels_is_in_pixel_slice():
    # recvfrom writes the resource buffer the raster path consumes.
    tracer = make_tracer()
    buf, pixel = 0xA00, 0xA01
    with tracer.function("net::Recv"):
        i_sys = tracer.syscall("recvfrom", writes=(buf,))
    with tracer.function("cc::Raster"):
        i_raster = tracer.op("raster", reads=(buf,), writes=(pixel,))
        tracer.marker(TILE_MARKER, cells=(pixel,))
    result = slice_with(tracer, pixel_criteria(tracer.store))
    assert i_raster in result
    assert i_sys in result


def test_windowed_criteria_exclude_late_seeds():
    tracer = make_tracer()
    early_pix, late_pix = 0xB00, 0xB01
    with tracer.function("cc::Raster"):
        i_early = tracer.op("early", writes=(early_pix,))
        m_early = tracer.marker(TILE_MARKER, cells=(early_pix,))
        i_late = tracer.op("late", writes=(late_pix,))
        tracer.marker(TILE_MARKER, cells=(late_pix,))
    crit = pixel_criteria(tracer.store).windowed(m_early)
    result = slice_with(tracer, crit)
    assert i_early in result
    assert i_late not in result


def test_timeline_samples_monotonic():
    tracer = make_tracer()
    cells = [0xC00 + i for i in range(50)]
    with tracer.function("f"):
        for i, cell in enumerate(cells):
            tracer.op(f"w{i}", writes=(cell,))
        last = tracer.op("out", reads=(cells[-1],), writes=(0xCFF,))
    crit = custom_criteria("test", ((last + 1, (0xCFF,)),))
    result = slice_with(tracer, crit, sample_every=10)
    assert result.timeline, "expected timeline samples"
    processed = [s.processed for s in result.timeline]
    assert processed == sorted(processed)
    in_slice = [s.in_slice for s in result.timeline]
    assert in_slice == sorted(in_slice)
    assert all(s.in_slice <= s.processed for s in result.timeline)


def test_slice_result_helpers():
    tracer = make_tracer()
    with tracer.function("f"):
        i_a = tracer.op("a", writes=(0xD00,))
        tracer.op("b", writes=(0xD01,))
        i_c = tracer.op("c", reads=(0xD00,), writes=(0xD02,))
    crit = custom_criteria("t", ((i_c + 1, (0xD02,)),))
    result = slice_with(tracer, crit)
    assert result.slice_size() == len(result.indices())
    assert 0.0 < result.fraction() < 1.0
    assert result.total() == len(tracer.store)
    assert i_a in result.indices()


# --------------------------------------------------------------------- #
# Join-reason tracking                                                  #
# --------------------------------------------------------------------- #


def _reasons_trace():
    """One trace that exercises every join kind.

    data (cell), register, control (branch), call (CALL and its
    retroactively-flagged RET), and syscall.
    """
    tracer = make_tracer()
    cond, val, out = 0xE00, 0xE01, 0xE02
    with tracer.function("f"):
        tracer.op("cond_src", writes=(cond,))
        tracer.compare_and_branch("if", reads=(cond,))
        with tracer.function("g"):
            tracer.op("make", writes=(val,), reg_writes=(3,))
            tracer.op("shuffle", reg_reads=(3,), reg_writes=(4,))
            tracer.op("spill", reg_reads=(4,), writes=(val,))
        i_use = tracer.op("use", reads=(val,), writes=(out,))
        tracer.syscall("write", reads=(out,))
    # Second run through the other arm so the branch has two dynamic
    # successors and real control dependence exists.
    with tracer.function("f"):
        tracer.op("cond_src", writes=(cond,))
        tracer.compare_and_branch("if", reads=(cond,))
        tracer.op("use", reads=(val,), writes=(out,))
        tracer.syscall("write", reads=(out,))
    crit = SlicingCriteria(
        name="t",
        criteria=custom_criteria("t", ((i_use + 1, (out,)),)).criteria,
        include_syscalls=True,
    )
    return tracer, crit


def test_track_reasons_records_every_join_kind():
    from repro.profiler import SlicerOptions

    tracer, crit = _reasons_trace()
    result = slice_with(tracer, crit, options=SlicerOptions(track_reasons=True))
    assert result.reasons is not None
    kinds = {kind for kind, _ in result.reasons.values()}
    assert {"data", "register", "control", "call", "syscall"} <= kinds


def test_track_reasons_sum_to_slice_size():
    from repro.profiler import SlicerOptions

    tracer, crit = _reasons_trace()
    result = slice_with(tracer, crit, options=SlicerOptions(track_reasons=True))
    # Every sliced record carries exactly one reason — in particular the
    # retroactively-flagged RETs of needed invocations must not be missed.
    assert set(result.reasons) == set(result.indices())
    assert len(result.reasons) == result.slice_size()


def test_track_reasons_on_retroactive_ret():
    from repro.profiler import SlicerOptions

    tracer, crit = _reasons_trace()
    result = slice_with(tracer, crit, options=SlicerOptions(track_reasons=True))
    records = tracer.store.records()
    g = tracer.symbols.lookup("g")
    ret_g = next(
        i for i, r in enumerate(records)
        if r.kind == InstrKind.RET and r.fn == g
    )
    call_g = next(
        i for i, r in enumerate(records)
        if r.kind == InstrKind.CALL and r.pc == tracer.pc_of("f", "call:g")
    )
    assert ret_g in result and call_g in result
    assert result.reasons[ret_g] == ("call", g)
    assert result.reasons[call_g] == ("call", g)


def test_reason_summary_matches_slice_size():
    from repro.profiler import SlicerOptions, reason_summary

    tracer, crit = _reasons_trace()
    result = slice_with(tracer, crit, options=SlicerOptions(track_reasons=True))
    summary = reason_summary(result)
    assert sum(summary.values()) == result.slice_size()


def test_track_reasons_parallel_engine_agrees():
    from repro.profiler import SlicerOptions

    tracer, crit = _reasons_trace()
    seq = slice_with(tracer, crit, options=SlicerOptions(track_reasons=True))
    par = slice_with(
        tracer, crit,
        options=SlicerOptions(track_reasons=True),
        engine="parallel", workers=1, epoch_size=4,
    )
    assert bytes(par.flags) == bytes(seq.flags)
    assert set(par.reasons) == set(seq.reasons)
