"""Cross-frame redundancy profiling invariants."""

import pytest

from repro.browser import BrowserEngine
from repro.machine import Tracer
from repro.machine.tracer import TILE_MARKER
from repro.profiler import analyze_frames, frame_pixel_criteria
from repro.profiler.redundancy import _stability_pass
from repro.workloads import benchmark


@pytest.fixture(scope="module")
def ticker_store():
    bench = benchmark("ticker")
    engine = BrowserEngine(bench.config)
    engine.load_page(bench.page)
    engine.run_session(bench.actions)
    return engine.trace_store()


@pytest.fixture(scope="module")
def ticker_report(ticker_store):
    return analyze_frames(ticker_store)


def test_one_result_per_complete_frame(ticker_store, ticker_report):
    spans = ticker_store.frame_spans()
    assert len(ticker_report.frames) == len(spans) >= 5
    for frame, span in zip(ticker_report.frames, spans):
        assert frame.frame_id == span.frame_id
        assert frame.kind == span.kind
        assert frame.total == span.n_records()


def test_breakdown_partitions_each_frame(ticker_report):
    for frame in ticker_report.frames:
        assert frame.in_slice + frame.redundant + frame.fresh_unnecessary == frame.total
        assert frame.unnecessary == frame.redundant + frame.fresh_unnecessary
        assert 0.0 <= frame.slice_fraction <= 1.0
        assert 0.0 <= frame.redundant_fraction <= 1.0


def test_load_frame_has_no_redundancy(ticker_report):
    # Frame 0 computes everything for the first time; nothing executed in
    # an earlier frame, so (almost) nothing can be frame-redundant.
    load = ticker_report.first()
    assert load.kind == "load"
    assert load.redundant_fraction < 0.01


def test_update_frames_detect_redundancy(ticker_report):
    updates = ticker_report.updates()
    assert updates
    assert any(frame.redundant > 0 for frame in updates)


def test_steady_state_ratio(ticker_report):
    ratio = ticker_report.steady_state_ratio()
    assert ratio is not None
    assert ratio < 0.5, f"update frames should be well under half of load, got {ratio:.1%}"


def test_report_is_engine_invariant(ticker_store, ticker_report):
    """The incremental engine's one streaming pass must reproduce the
    sequential report field for field (satellite of the incremental
    engine PR: the redundant/fresh split is engine-invariant)."""
    incremental = analyze_frames(ticker_store, engine="incremental")
    assert len(incremental.frames) == len(ticker_report.frames)
    for inc, seq in zip(incremental.frames, ticker_report.frames):
        assert inc == seq


def test_frame_criteria_restrict_to_span(ticker_store):
    spans = ticker_store.frame_spans()
    crits = frame_pixel_criteria(ticker_store, spans[1])
    assert crits.window_end == spans[1].end
    for crit in crits.criteria:
        assert spans[1].begin <= crit.index <= spans[1].end


def test_frameless_trace_is_rejected():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    tracer.op("work", writes=(0x10,))
    tracer.marker(TILE_MARKER, cells=(0x10,))
    with pytest.raises(ValueError, match="no complete frame epochs"):
        analyze_frames(tracer.store)


def test_stability_pass_sees_silent_writes():
    # b rereads a cell rewritten only by a stable re-execution of a: the
    # rewrite is silent, so b stays stable (transitive redundancy).
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    a0 = tracer.op("produce", reads=(0x1,), writes=(0x10,))
    b0 = tracer.op("consume", reads=(0x10,), writes=(0x20,))
    a1 = tracer.op("produce", reads=(0x1,), writes=(0x10,))  # silent rewrite
    b1 = tracer.op("consume", reads=(0x10,), writes=(0x20,))
    c = tracer.op("invalidate", writes=(0x10,))  # genuinely new write
    b2 = tracer.op("consume", reads=(0x10,), writes=(0x20,))
    prev, stable = _stability_pass(tracer.store)
    assert stable[a1] and prev[a1] == a0
    assert stable[b1] and prev[b1] == b0
    assert not stable[b2], "a changing write must break stability"
