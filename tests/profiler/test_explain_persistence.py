"""Tests for slice explanations, slicer options, and CDG persistence."""

import pytest

from repro.machine import Tracer
from repro.machine.tracer import TILE_MARKER
from repro.profiler import (
    BackwardSlicer,
    Profiler,
    SlicerOptions,
    custom_criteria,
    pixel_criteria,
    syscall_criteria,
)
from repro.profiler.cdg import load_index, save_index
from repro.profiler.explain import chain_heads, explain_record, reason_summary


def make_tracer():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "root")
    return tracer


def traced_program():
    tracer = make_tracer()
    cond, val, out, pixel = 0x10, 0x11, 0x12, 0x13
    with tracer.function("outer"):
        i_cond = tracer.op("set_cond", writes=(cond,))
        tracer.compare_and_branch("check", reads=(cond,))
        with tracer.function("producer"):
            i_val = tracer.op("compute", writes=(val,))
        i_out = tracer.op("combine", reads=(val,), writes=(out,))
    # Second run taking a different path so control dependence is real.
    with tracer.function("outer"):
        tracer.op("set_cond", writes=(cond,))
        tracer.compare_and_branch("check", reads=(cond,))
        tracer.op("combine", reads=(val,), writes=(out,))
    with tracer.function("cc::Raster"):
        i_raster = tracer.op("raster", reads=(out,), writes=(pixel,))
        tracer.marker(TILE_MARKER, cells=(pixel,))
    return tracer, i_cond, i_val, i_out, i_raster


def test_reason_tracking_kinds():
    tracer, i_cond, i_val, i_out, i_raster = traced_program()
    prof = Profiler(tracer.store)
    result = prof.slice(
        pixel_criteria(tracer.store), options=SlicerOptions(track_reasons=True)
    )
    assert result.reasons is not None
    summary = reason_summary(result)
    assert summary.get("data", 0) > 0
    assert summary.get("control", 0) > 0
    assert summary.get("call", 0) > 0


def test_explain_record_strings():
    tracer, i_cond, i_val, i_out, i_raster = traced_program()
    prof = Profiler(tracer.store)
    result = prof.slice(
        pixel_criteria(tracer.store), options=SlicerOptions(track_reasons=True)
    )
    assert "wrote live memory cell" in explain_record(tracer.store, result, i_raster)
    # A record outside the slice:
    outside = next(i for i in range(len(tracer.store)) if not result.flags[i])
    assert "not in the slice" in explain_record(tracer.store, result, outside)


def test_explain_without_tracking():
    tracer, *_ = traced_program()
    prof = Profiler(tracer.store)
    result = prof.slice(pixel_criteria(tracer.store))
    sliced = result.indices()[0]
    assert "track_reasons" in explain_record(tracer.store, result, sliced)
    with pytest.raises(ValueError):
        reason_summary(result)


def test_syscall_reason():
    tracer = make_tracer()
    with tracer.function("net::Send"):
        tracer.op("fill", writes=(0x20,))
        i_sys = tracer.syscall("sendto", reads=(0x20,))
    prof = Profiler(tracer.store)
    result = prof.slice(
        syscall_criteria(tracer.store), options=SlicerOptions(track_reasons=True)
    )
    assert "syscall sendto" in explain_record(tracer.store, result, i_sys)


def test_chain_heads_are_earliest_sliced():
    tracer, i_cond, *_ = traced_program()
    prof = Profiler(tracer.store)
    result = prof.slice(pixel_criteria(tracer.store))
    heads = chain_heads(tracer.store, result, limit=3)
    assert heads
    assert heads[0][0] == result.indices()[0]


def test_options_disable_control_dependences():
    tracer, i_cond, i_val, i_out, i_raster = traced_program()
    prof = Profiler(tracer.store)
    full = prof.slice(pixel_criteria(tracer.store))
    reduced = prof.slice(
        pixel_criteria(tracer.store),
        options=SlicerOptions(control_dependences=False),
    )
    assert reduced.slice_size() < full.slice_size()
    # The condition producer only joins through the branch chain.
    assert full.flags[i_cond]
    assert not reduced.flags[i_cond]


def test_options_disable_call_sites():
    tracer, i_cond, i_val, i_out, i_raster = traced_program()
    prof = Profiler(tracer.store)
    reduced = prof.slice(
        pixel_criteria(tracer.store),
        options=SlicerOptions(call_site_dependences=False),
    )
    records = tracer.store.records()
    from repro.trace.records import InstrKind

    producer_calls = [
        i
        for i, r in enumerate(records)
        if r.kind == InstrKind.CALL
        and r.pc == tracer.pc_of("outer", "call:producer")
    ]
    assert producer_calls
    assert all(not reduced.flags[i] for i in producer_calls)
    # The producer's body still joins via dataflow.
    assert reduced.flags[i_val]


def test_cdg_round_trip(tmp_path):
    tracer, *_ = traced_program()
    prof = Profiler(tracer.store)
    index = prof.control_dependence_index()
    path = tmp_path / "trace.cdg"
    save_index(index, path)
    loaded = load_index(path)
    assert len(loaded) == len(index)
    for pc in list(index._cd):
        assert loaded.deps_of(pc) == index.deps_of(pc)


def test_loaded_cdg_produces_identical_slice(tmp_path):
    tracer, *_ = traced_program()
    store = tracer.store
    prof = Profiler(store)
    index = prof.control_dependence_index()
    path = tmp_path / "trace.cdg"
    save_index(index, path)
    loaded = load_index(path)
    original = BackwardSlicer(store, index, pixel_criteria(store)).run()
    replayed = BackwardSlicer(store, loaded, pixel_criteria(store)).run()
    assert bytes(original.flags) == bytes(replayed.flags)


def test_cdg_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.cdg"
    path.write_bytes(b"nope")
    with pytest.raises(ValueError):
        load_index(path)
