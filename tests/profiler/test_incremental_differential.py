"""Differential testing: incremental ≡ sequential ≡ vectorized, per frame.

Randomized multi-frame traces (:func:`repro.workloads.fuzz.
random_frame_trace`) are sliced frame by frame three ways:

* the sequential reference pass (``BackwardSlicer``),
* the incremental region-memoizing engine **sharing one checkpoint
  across all frames** — the sharing is the point: a memo recorded while
  slicing frame 2 is consulted while slicing frame 5, so any unsound
  reuse shows up as a flag mismatch,
* the vectorized columnar engine (an independent formulation, so a bug
  would have to be implemented twice to slip through).

Every seed also drives :class:`StreamingSliceSession` over the store's
epoch stream and compares each frame's streaming answer against a
sequential slice of the *stream prefix* (fresh CDI per prefix) — the
engine's stated contract.  On mismatch the failing seed is in the
assertion message; ``random_frame_trace(seed)`` reproduces the trace
exactly.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.profiler.cdg import build_index
from repro.profiler.incremental import (
    IncrementalSlicer,
    SliceCheckpoint,
    StreamingSliceSession,
)
from repro.profiler.redundancy import frame_pixel_criteria
from repro.profiler.slicer import BackwardSlicer, slice_trace
from repro.profiler.vectorized import VectorizedSlicer
from repro.trace.columnar import ColumnarTrace
from repro.trace.lint import lint_or_raise
from repro.trace.store import TraceStore
from repro.trace.stream import open_epoch_stream
from repro.workloads.fuzz import random_frame_trace

SEEDS = range(60)

#: a subset of seeds gets an injected raster-free frame (the hardest
#: region shape: real records, empty criteria)
def _build(seed: int) -> TraceStore:
    empty_at = 2 if seed % 3 == 1 else None
    return random_frame_trace(seed, empty_frame_at=empty_at)


@pytest.mark.parametrize("seed", SEEDS)
def test_three_engines_agree_per_frame(seed):
    store = _build(seed)
    lint_or_raise(store)
    spans = [s for s in store.frame_spans() if s.complete]
    assert len(spans) >= 4, f"seed {seed}: expected 4 complete frames"
    cdi = build_index(store.records())
    cols = ColumnarTrace.from_store(store)
    checkpoint = SliceCheckpoint()
    for span in spans:
        criteria = frame_pixel_criteria(store, span)
        seq = BackwardSlicer(store, cdi, criteria).run()
        inc = IncrementalSlicer(
            store, cdi, criteria, checkpoint=checkpoint
        ).run()
        vec = VectorizedSlicer(cols, cdi, criteria).run()
        assert bytes(inc.flags) == bytes(seq.flags), (
            f"seed {seed} frame {span.frame_id}: incremental != sequential"
        )
        assert bytes(vec.flags) == bytes(seq.flags), (
            f"seed {seed} frame {span.frame_id}: vectorized != sequential"
        )


# The streaming contract (answers over growing prefixes with an
# incrementally-maintained CDI) re-slices every prefix sequentially, so
# it runs on a smaller seed set.
STREAM_SEEDS = range(10)


def _prefix(store: TraceStore, hi: int) -> TraceStore:
    prefix = TraceStore(store.symbols)
    prefix._records = store.span(0, hi)
    prefix.metadata = store.metadata
    return prefix


@pytest.mark.parametrize("seed", STREAM_SEEDS)
def test_streaming_session_matches_prefix_sequential(seed):
    store = _build(seed)
    session = StreamingSliceSession(open_epoch_stream(store))
    results = list(session.results())
    spans = [s for s in store.frame_spans() if s.complete]
    # One result per complete frame, even the raster-free one.
    assert [r.frame_id for r in results] == [s.frame_id for s in spans]
    for result in results:
        prefix = _prefix(store, result.hi)
        criteria = frame_pixel_criteria(store, spans[result.frame_id])
        seq = slice_trace(prefix, criteria, cdi=build_index(prefix._records))
        assert bytes(result.flags) == bytes(seq.flags), (
            f"seed {seed} frame {result.frame_id}: streaming != prefix "
            f"sequential"
        )
        assert result.in_slice == sum(
            seq.flags[result.lo : result.hi]
        )


def test_streaming_session_bounded_residency():
    store = _build(0)
    session = StreamingSliceSession(open_epoch_stream(store), keep_resident=2)
    for result in session.results():
        assert len(session.resident) <= 2
    # Evicted regions re-materialize through the stream: the last frame
    # still sliced its full prefix (n_seen may since have grown past it
    # by the trailing non-frame gap).
    assert len(result.flags) == result.hi <= session.n_seen


def test_streaming_rejects_gapped_epoch():
    store = _build(1)
    stream = open_epoch_stream(store)
    session = StreamingSliceSession(stream)
    epochs = list(stream.epochs())
    session.feed(epochs[0])
    with pytest.raises(ValueError, match="does not continue"):
        session.feed(epochs[2])
