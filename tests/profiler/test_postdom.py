"""Unit tests for postdominator computation on hand-built CFGs."""

from repro.profiler.cfg import FunctionCFG, VIRTUAL_EXIT
from repro.profiler.postdom import immediate_postdominators, postdominates


def cfg_from_edges(edges, exits):
    cfg = FunctionCFG(fn=0)
    for src, dst in edges:
        cfg.add_edge(src, dst)
    cfg.exits.update(exits)
    cfg.seal()
    return cfg


def test_linear_chain():
    cfg = cfg_from_edges([(1, 2), (2, 3)], exits={3})
    ipdom = immediate_postdominators(cfg)
    assert ipdom[1] == 2
    assert ipdom[2] == 3
    assert ipdom[3] == VIRTUAL_EXIT


def test_diamond_merge_postdominates_branch():
    #    1
    #   / \
    #  2   3
    #   \ /
    #    4
    cfg = cfg_from_edges([(1, 2), (1, 3), (2, 4), (3, 4)], exits={4})
    ipdom = immediate_postdominators(cfg)
    assert ipdom[1] == 4
    assert ipdom[2] == 4
    assert ipdom[3] == 4
    assert postdominates(ipdom, 4, 1)
    assert not postdominates(ipdom, 2, 1)


def test_loop():
    # 1 -> 2 -> 3 -> 2 (back edge), 2 -> 4 (exit)
    cfg = cfg_from_edges([(1, 2), (2, 3), (3, 2), (2, 4)], exits={4})
    ipdom = immediate_postdominators(cfg)
    assert ipdom[1] == 2
    assert ipdom[3] == 2  # after the body you must pass the head again
    assert ipdom[2] == 4


def test_multiple_exits():
    #  1 -> 2 (exit), 1 -> 3 (exit): nothing but EXIT postdominates 1
    cfg = cfg_from_edges([(1, 2), (1, 3)], exits={2, 3})
    ipdom = immediate_postdominators(cfg)
    assert ipdom[1] == VIRTUAL_EXIT
    assert ipdom[2] == VIRTUAL_EXIT
    assert ipdom[3] == VIRTUAL_EXIT


def test_nested_diamond():
    #      1
    #     / \
    #    2   6
    #   / \  |
    #  3   4 |
    #   \ /  |
    #    5   |
    #     \ /
    #      7
    edges = [(1, 2), (1, 6), (2, 3), (2, 4), (3, 5), (4, 5), (5, 7), (6, 7)]
    cfg = cfg_from_edges(edges, exits={7})
    ipdom = immediate_postdominators(cfg)
    assert ipdom[2] == 5
    assert ipdom[1] == 7
    assert ipdom[5] == 7
    assert ipdom[6] == 7


def test_postdominates_reflexive_and_transitive():
    cfg = cfg_from_edges([(1, 2), (2, 3)], exits={3})
    ipdom = immediate_postdominators(cfg)
    assert postdominates(ipdom, 1, 1)
    assert postdominates(ipdom, 3, 1)
    assert not postdominates(ipdom, 1, 3)


def test_single_node_function():
    cfg = FunctionCFG(fn=0)
    cfg.add_node(42)
    cfg.exits.add(42)
    cfg.seal()
    ipdom = immediate_postdominators(cfg)
    assert ipdom[42] == VIRTUAL_EXIT


def test_every_node_postdominated_by_exit():
    edges = [(1, 2), (2, 3), (3, 1), (2, 5), (5, 6), (6, 2), (5, 9)]
    cfg = cfg_from_edges(edges, exits={9})
    ipdom = immediate_postdominators(cfg)
    for node in cfg.nodes():
        assert postdominates(ipdom, VIRTUAL_EXIT, node)
