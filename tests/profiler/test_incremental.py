"""Incremental engine: registration, checkpoint reuse, adversarial traces.

The differential guarantee (incremental ≡ sequential ≡ vectorized, byte
for byte) is fuzz-tested in ``test_incremental_differential.py``; this
module covers the engine plumbing and the cases a region-memoizing
engine is most likely to get wrong:

* a slice whose dependence chain crosses a frame boundary,
* a chain reaching back **two** frames (the middle frame must thread the
  frontier through untouched),
* an empty frame (no raster, empty criteria),
* resuming from a checkpoint that was serialized to disk mid-sweep,
* the steady-state guard: with a shared checkpoint, frame ``N+1``'s
  slice touches well under half the records a full re-slice walks.
"""

import pytest

from repro.browser import BrowserEngine
from repro.machine import Tracer
from repro.machine.tracer import TILE_MARKER
from repro.profiler import Profiler
from repro.profiler.cdg import build_index
from repro.profiler.incremental import (
    IncrementalSlicer,
    SliceCheckpoint,
    options_key,
)
from repro.profiler.redundancy import frame_pixel_criteria
from repro.profiler.slicer import DEFAULT_OPTIONS, slice_trace
from repro.workloads import benchmark


@pytest.fixture(scope="module")
def ticker_store():
    bench = benchmark("ticker")
    engine = BrowserEngine(bench.config)
    engine.load_page(bench.page)
    engine.run_session(bench.actions)
    return engine.trace_store()


# --------------------------------------------------------------------- #
# Engine registration                                                   #
# --------------------------------------------------------------------- #


def test_profiler_engine_matches_sequential(ticker_store):
    profiler = Profiler(ticker_store)
    span = ticker_store.frame_spans()[1]
    criteria = frame_pixel_criteria(ticker_store, span)
    seq = profiler.slice(criteria, engine="sequential")
    inc = profiler.slice(criteria, engine="incremental")
    assert bytes(inc.flags) == bytes(seq.flags)
    assert inc.engine_stats["engine"] == "incremental"
    assert inc.engine_stats["records_total"] == len(ticker_store)


def test_slice_trace_engine_matches_sequential(ticker_store):
    span = ticker_store.frame_spans()[2]
    criteria = frame_pixel_criteria(ticker_store, span)
    cdi = build_index(ticker_store.records())
    seq = slice_trace(ticker_store, criteria, cdi=cdi)
    inc = slice_trace(ticker_store, criteria, cdi=cdi, engine="incremental")
    assert bytes(inc.flags) == bytes(seq.flags)


def test_unknown_engine_rejected(ticker_store):
    span = ticker_store.frame_spans()[0]
    criteria = frame_pixel_criteria(ticker_store, span)
    with pytest.raises(ValueError, match="incremental"):
        Profiler(ticker_store).slice(criteria, engine="sideways")


def test_timeline_final_sample_matches_sequential(ticker_store):
    # Intermediate samples may differ by the not-yet-paired RET count
    # (see ``reconstruct_timeline``); the final sample is exact.
    profiler = Profiler(ticker_store)
    span = ticker_store.frame_spans()[1]
    criteria = frame_pixel_criteria(ticker_store, span)
    seq = profiler.slice(criteria, engine="sequential", sample_every=256)
    inc = profiler.slice(criteria, engine="incremental", sample_every=256)
    assert inc.timeline, "incremental engine should emit timeline samples"
    assert inc.timeline[-1] == seq.timeline[-1]


# --------------------------------------------------------------------- #
# Checkpoint reuse                                                      #
# --------------------------------------------------------------------- #


def test_shared_checkpoint_steady_state_guard(ticker_store):
    """Frame N+1 from frame N's checkpoint touches < 50% of the records
    a full re-slice walks (the CI smoke guard)."""
    profiler = Profiler(ticker_store)
    spans = ticker_store.frame_spans()
    assert len(spans) >= 5
    for i, span in enumerate(spans):
        criteria = frame_pixel_criteria(ticker_store, span)
        seq = profiler.slice(criteria, engine="sequential")
        inc = profiler.slice(criteria, engine="incremental")
        assert bytes(inc.flags) == bytes(seq.flags), f"frame {span.frame_id}"
        stats = inc.engine_stats
        if i >= 3:  # steady state: every seedless region is memoized
            touched = stats["records_touched"] / stats["records_total"]
            assert touched < 0.5, (
                f"frame {span.frame_id}: incremental touched {touched:.1%} "
                f"of the trace; expected well under 50%"
            )
            assert stats["memo_exact"] + stats["memo_pass_through"] > 0


def test_fresh_checkpoint_per_call_never_reuses(ticker_store):
    spans = ticker_store.frame_spans()
    cdi = build_index(ticker_store.records())
    for span in spans[:2]:
        criteria = frame_pixel_criteria(ticker_store, span)
        slicer = IncrementalSlicer(ticker_store, cdi, criteria)
        slicer.run()
        assert slicer.exact_hits == 0 and slicer.pass_throughs == 0
        assert slicer.records_touched == len(ticker_store)


def test_options_change_drops_memos(ticker_store):
    profiler = Profiler(ticker_store)
    span = ticker_store.frame_spans()[1]
    criteria = frame_pixel_criteria(ticker_store, span)
    profiler.slice(criteria, engine="incremental")
    ckpt = profiler.slice_checkpoint()
    assert ckpt.memos
    ckpt.ensure_layout(ckpt.regions, "cd=0;call=1")
    assert not ckpt.memos and not ckpt.facts


def test_checkpoint_disk_resume(ticker_store, tmp_path):
    """Serialize mid-sweep, reload, and keep slicing: the reloaded memos
    are reused and the flags stay byte-identical to sequential."""
    profiler = Profiler(ticker_store)
    spans = ticker_store.frame_spans()
    half = spans[: len(spans) // 2]
    for span in half:
        profiler.slice(
            frame_pixel_criteria(ticker_store, span), engine="incremental"
        )
    path = tmp_path / "ticker.ckpt"
    profiler.slice_checkpoint().save(path)

    resumed = SliceCheckpoint.load(path)
    assert resumed.options_key == options_key(DEFAULT_OPTIONS)
    assert set(resumed.memos) == set(profiler.slice_checkpoint().memos)
    fresh = Profiler(ticker_store)
    for span in spans[len(spans) // 2 :]:
        criteria = frame_pixel_criteria(ticker_store, span)
        seq = fresh.slice(criteria, engine="sequential")
        inc = fresh.slice(criteria, engine="incremental", checkpoint=resumed)
        assert bytes(inc.flags) == bytes(seq.flags), f"frame {span.frame_id}"
    assert resumed.counters.exact_hits + resumed.counters.pass_throughs > 0


def test_track_reasons_bypasses_memoization(ticker_store):
    from repro.profiler.slicer import SlicerOptions

    profiler = Profiler(ticker_store)
    span = ticker_store.frame_spans()[1]
    criteria = frame_pixel_criteria(ticker_store, span)
    opts = SlicerOptions(track_reasons=True)
    seq = profiler.slice(criteria, engine="sequential", options=opts)
    inc = profiler.slice(criteria, engine="incremental", options=opts)
    assert bytes(inc.flags) == bytes(seq.flags)
    assert inc.reasons == seq.reasons
    # A reasons run must not have poisoned the checkpoint with memos
    # lacking reason maps, nor consumed any.
    assert inc.engine_stats["memo_exact"] == 0
    assert inc.engine_stats["memo_pass_through"] == 0


# --------------------------------------------------------------------- #
# Adversarial hand-built traces                                         #
# --------------------------------------------------------------------- #


def _frame(tracer, frame_id, kind, body):
    tracer.frame_begin(frame_id, kind)
    body()
    tracer.frame_end(frame_id)


def _assert_engines_agree(store, span):
    criteria = frame_pixel_criteria(store, span)
    cdi = build_index(store.records())
    seq = slice_trace(store, criteria, cdi=cdi)
    inc = slice_trace(store, criteria, cdi=cdi, engine="incremental")
    assert bytes(inc.flags) == bytes(seq.flags)
    return seq


def test_cross_frame_memory_dependence():
    """Frame 1's paint reads a cell only frame 0 wrote: the producing
    write in frame 0 must be in frame 1's slice."""
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")

    def load():
        tracer.op("model_init", writes=(0x100,))
        tracer.op("paint0", writes=(0x200,))
        tracer.marker(TILE_MARKER, (0x200,))

    def update():
        tracer.op("style", reads=(0x100,), writes=(0x201,))
        tracer.op("paint1", reads=(0x201,), writes=(0x202,))
        tracer.marker(TILE_MARKER, (0x202,))

    _frame(tracer, 0, "load", load)
    _frame(tracer, 1, "update", update)
    store = tracer.store
    producer = next(
        i for i, r in enumerate(store.records()) if r.mem_written == (0x100,)
    )
    seq = _assert_engines_agree(store, store.frame_spans()[1])
    assert seq.flags[producer], "cross-frame producer must be in the slice"


def test_slice_reaches_back_two_frames():
    """The dependence chain skips the middle frame entirely, so the
    incremental walk must pass the frontier through frame 1 unresolved
    and land it on frame 0's write."""
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")

    def load():
        tracer.op("deep_init", writes=(0x300,))
        tracer.op("paint0", writes=(0x400,))
        tracer.marker(TILE_MARKER, (0x400,))

    def middle():
        tracer.op("unrelated", writes=(0x310,))
        tracer.op("paint1", reads=(0x310,), writes=(0x401,))
        tracer.marker(TILE_MARKER, (0x401,))

    def late():
        tracer.op("paint2", reads=(0x300,), writes=(0x402,))
        tracer.marker(TILE_MARKER, (0x402,))

    _frame(tracer, 0, "load", load)
    _frame(tracer, 1, "update", middle)
    _frame(tracer, 2, "update", late)
    store = tracer.store
    records = list(store.records())
    deep = next(
        i for i, r in enumerate(records) if r.mem_written == (0x300,)
    )
    unrelated = next(
        i for i, r in enumerate(records) if r.mem_written == (0x310,)
    )
    seq = _assert_engines_agree(store, store.frame_spans()[2])
    assert seq.flags[deep], "chain must reach back two frames"
    assert not seq.flags[unrelated], "middle frame's work is off-chain"


def test_empty_frame():
    """A frame that rasters nothing yields empty criteria and an
    all-zero slice — and must not derail neighbouring frames."""
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")

    def load():
        tracer.op("init", writes=(0x500,))
        tracer.op("paint0", writes=(0x600,))
        tracer.marker(TILE_MARKER, (0x600,))

    def idle():
        tracer.op("tick", reads=(0x500,))

    def update():
        tracer.op("paint2", reads=(0x500,), writes=(0x601,))
        tracer.marker(TILE_MARKER, (0x601,))

    _frame(tracer, 0, "load", load)
    _frame(tracer, 1, "update", idle)
    _frame(tracer, 2, "update", update)
    store = tracer.store
    spans = store.frame_spans()
    empty = frame_pixel_criteria(store, spans[1])
    assert not empty.criteria
    cdi = build_index(store.records())
    inc = slice_trace(store, empty, cdi=cdi, engine="incremental")
    assert not any(inc.flags)
    for span in (spans[0], spans[2]):
        _assert_engines_agree(store, span)
