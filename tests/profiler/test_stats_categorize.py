"""Unit tests for slice statistics and namespace categorization."""

import pytest

from repro.machine import Tracer
from repro.profiler import Profiler, custom_criteria
from repro.profiler.categorize import (
    CATEGORIES,
    categorize_symbol,
    categorize_unnecessary,
)
from repro.profiler.stats import (
    compute_statistics,
    per_function_fractions,
    timeline_series,
    windowed_fraction,
)


def make_trace_two_threads():
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "base::threading::ThreadMain")
    tracer.spawn_thread(2, "Compositor", "base::threading::ThreadMain")
    out = 0x100
    tracer.switch(1)
    with tracer.function("v8::Execute"):
        tracer.op("wasted", writes=(0x200,))
        tracer.op("wasted2", writes=(0x201,))
    with tracer.function("blink::css::Resolve"):
        i_useful = tracer.op("style", writes=(0x300,))
    tracer.switch(2)
    with tracer.function("cc::Composite"):
        i_out = tracer.op("frame", reads=(0x300,), writes=(out,))
    crit = custom_criteria("t", ((i_out + 1, (out,)),))
    return tracer, crit, i_useful, i_out


def test_compute_statistics_per_thread():
    tracer, crit, _, _ = make_trace_two_threads()
    prof = Profiler(tracer.store)
    result = prof.slice(crit)
    stats = compute_statistics(tracer.store, result)
    assert stats.total == len(tracer.store)
    assert stats.in_slice == result.slice_size()
    by_name = {t.name: t for t in stats.threads}
    assert set(by_name) == {"CrRendererMain", "Compositor"}
    assert sum(t.total for t in stats.threads) == stats.total
    assert 0 < by_name["CrRendererMain"].fraction < 1
    assert by_name["Compositor"].fraction > 0


def test_statistics_lookup_helpers():
    tracer, crit, _, _ = make_trace_two_threads()
    prof = Profiler(tracer.store)
    stats = prof.statistics(prof.slice(crit))
    assert stats.thread_by_name("Compositor") is not None
    assert stats.thread_by_name("nope") is None
    assert len(stats.threads_by_prefix("C")) == 2


def test_windowed_fraction():
    tracer, crit, _, _ = make_trace_two_threads()
    prof = Profiler(tracer.store)
    result = prof.slice(crit)
    full = windowed_fraction(result)
    assert full == pytest.approx(result.fraction())
    assert windowed_fraction(result, 0, 0) == 0.0
    # A prefix window containing only the v8 waste has fraction < full
    # trace fraction (the wasted ops sit at the front of the trace).
    prefix = windowed_fraction(result, 0, 4)
    assert prefix <= full


def test_per_function_fractions_sorted():
    tracer, crit, _, _ = make_trace_two_threads()
    prof = Profiler(tracer.store)
    rows = per_function_fractions(tracer.store, prof.slice(crit))
    totals = [total for _, total, _ in rows]
    assert totals == sorted(totals, reverse=True)
    names = [name for name, _, _ in rows]
    assert "v8::Execute" in names


def test_timeline_series_orientation():
    tracer, crit, _, _ = make_trace_two_threads()
    prof = Profiler(tracer.store)
    result = prof.slice(crit, sample_every=2)
    series = timeline_series(result)
    assert series[0][0] <= series[-1][0]
    main_series = timeline_series(result, main=True)
    assert all(0.0 <= y <= 1.0 for _, y in main_series)


def test_categorize_symbol_rules():
    assert categorize_symbol("v8::Parser::Parse") == "JavaScript"
    assert categorize_symbol("base::debug::TraceLog") == "Debugging"
    assert categorize_symbol("ipc::Channel::Send") == "IPC"
    assert categorize_symbol("pthread::MutexLock") == "Multi-threading"
    assert categorize_symbol("cc::TileManager::Run") == "Compositing"
    assert categorize_symbol("skia::Canvas::DrawRect") == "Graphics"
    assert categorize_symbol("blink::css::StyleResolver::Match") == "CSS"
    assert categorize_symbol("blink::layout::BlockFlow") == "CSS"
    assert categorize_symbol("base::message_loop::Pump") == "Other"
    assert categorize_symbol("memcpy") is None
    assert categorize_symbol("ccache_lookup") is None  # no :: -> no namespace


def test_categorize_unknown_namespace_is_uncategorizable():
    # Only hand-mapped namespaces are categorizable, as in the paper.
    assert categorize_symbol("weird::Thing") is None
    assert categorize_symbol("net::URLLoader::Start") is None
    assert categorize_symbol("blink::html::TreeBuilder::ProcessText") is None


def test_categorize_unnecessary_distribution():
    tracer, crit, i_useful, i_out = make_trace_two_threads()
    prof = Profiler(tracer.store)
    result = prof.slice(crit)
    dist = categorize_unnecessary(tracer.store, result)
    assert dist.total_unnecessary == len(tracer.store) - result.slice_size()
    assert dist.counts["JavaScript"] >= 2  # the two wasted v8 ops
    assert dist.categorized + dist.uncategorized == dist.total_unnecessary
    shares = dict(dist.shares())
    assert set(shares) == set(CATEGORIES)
    assert abs(sum(shares.values()) - 1.0) < 1e-9 or dist.categorized == 0
    assert dist.dominant_category() == "JavaScript"


def test_categorized_fraction_bounds():
    tracer, crit, _, _ = make_trace_two_threads()
    prof = Profiler(tracer.store)
    dist = prof.categorize(prof.slice(crit))
    assert 0.0 <= dist.categorized_fraction <= 1.0


def test_categorize_symbol_exact_namespace_matches():
    # A bare namespace name matches its rule without trailing components...
    assert categorize_symbol("v8::Run") == "JavaScript"
    assert categorize_symbol("cc::Schedule") == "Compositing"
    # ...but matching is per ::-component: a *prefix of a component* is not
    # a namespace match.
    assert categorize_symbol("v8ish::Run") is None
    assert categorize_symbol("ccx::Tile::Run") is None


def test_categorize_symbol_nested_namespaces():
    # Deeply nested components under a mapped namespace still match, and
    # the first (most specific) rule wins over later generic ones.
    assert categorize_symbol("base::debug::nested::deep::Probe") == "Debugging"
    assert categorize_symbol("blink::paint::ops::Fill::Run") == "Graphics"
    assert categorize_symbol("base::synchronization::internal::Futex::Wake") == (
        "Multi-threading"
    )
    # "blink::css" must win before any broader "blink" handling could.
    assert categorize_symbol("blink::css::parser::Tokenizer::Next") == "CSS"
    # A mapped namespace nested *under* an unmapped one does not match.
    assert categorize_symbol("net::v8::Helper") is None


def make_trace_with_namespaceless_functions():
    """A trace mixing mapped, unmapped, and namespace-free functions."""
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")  # no namespace
    out = 0x900
    tracer.op("plain", writes=(0x800,))  # in main_loop: uncategorizable
    with tracer.function("memcpy"):  # C-style leaf: uncategorizable
        tracer.op("copy", writes=(0x801,))
    with tracer.function("net::URLLoader::Start"):  # unmapped namespace
        tracer.op("fetch", writes=(0x802,))
    with tracer.function("v8::Execute"):  # mapped
        tracer.op("dead_js", writes=(0x803,))
    i_out = tracer.op("sink", writes=(out,))
    crit = custom_criteria("t", ((i_out + 1, (out,)),))
    return tracer, crit


def test_functions_without_namespace_are_uncategorized():
    tracer, crit = make_trace_with_namespaceless_functions()
    prof = Profiler(tracer.store)
    dist = categorize_unnecessary(tracer.store, prof.slice(crit))
    # plain + memcpy ops and the CALL/RET records of namespace-free or
    # unmapped functions all land in `uncategorized`, never in a category.
    assert dist.uncategorized > 0
    assert dist.counts["JavaScript"] >= 1  # the dead v8 op
    for cat in ("IPC", "CSS", "Compositing", "Graphics"):
        assert dist.counts[cat] == 0


def test_category_counts_sum_to_non_slice_total():
    tracer, crit = make_trace_with_namespaceless_functions()
    prof = Profiler(tracer.store)
    result = prof.slice(crit)
    dist = categorize_unnecessary(tracer.store, result)
    non_slice_total = len(tracer.store) - result.slice_size()
    assert dist.total_unnecessary == non_slice_total
    assert sum(dist.counts.values()) + dist.uncategorized == non_slice_total
    assert sum(dist.counts.values()) == dist.categorized


def test_empty_distribution_degrades_gracefully():
    # Slice everything: no non-slice instructions remain to categorize.
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    i0 = tracer.op("only", writes=(0x10,))
    crit = custom_criteria("all", ((i0 + 1, (0x10,)),))
    prof = Profiler(tracer.store)
    result = prof.slice(crit)
    dist = categorize_unnecessary(tracer.store, result)
    assert dist.total_unnecessary == len(tracer.store) - result.slice_size()
    assert dist.categorized_fraction == 0.0 or dist.total_unnecessary > 0
    assert dist.share("JavaScript") == 0.0
