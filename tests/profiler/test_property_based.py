"""Property-based tests (hypothesis) for the profiler's core algorithms."""

from hypothesis import given, settings, strategies as st

from repro.machine import Tracer
from repro.profiler import (
    Profiler,
    custom_criteria,
)
from repro.profiler.cfg import FunctionCFG, VIRTUAL_EXIT
from repro.profiler.cdg import control_dependences
from repro.profiler.postdom import immediate_postdominators, postdominates
from repro.browser.js.coverage import merge_spans, span_total

# --------------------------------------------------------------------- #
# Random CFGs                                                           #
# --------------------------------------------------------------------- #


@st.composite
def connected_cfgs(draw):
    """A random CFG where every node lies on an entry->exit path."""
    n = draw(st.integers(min_value=2, max_value=12))
    cfg = FunctionCFG(fn=0)
    # A spine guarantees connectivity and exit reachability.
    for i in range(n - 1):
        cfg.add_edge(i, i + 1)
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=12,
        )
    )
    for src, dst in extra:
        if src != dst:
            cfg.add_edge(src, dst)
    cfg.exits.add(n - 1)
    cfg.seal()
    return cfg


@given(connected_cfgs())
@settings(max_examples=80, deadline=None)
def test_every_node_postdominated_by_virtual_exit(cfg):
    ipdom = immediate_postdominators(cfg)
    for node in cfg.nodes():
        assert postdominates(ipdom, VIRTUAL_EXIT, node)


@given(connected_cfgs())
@settings(max_examples=80, deadline=None)
def test_ipdom_is_a_strict_postdominator(cfg):
    ipdom = immediate_postdominators(cfg)
    for node in cfg.nodes():
        parent = ipdom.get(node)
        if parent is None or parent == VIRTUAL_EXIT:
            continue
        assert parent != node
        assert postdominates(ipdom, parent, node)


@given(connected_cfgs())
@settings(max_examples=80, deadline=None)
def test_control_dependence_only_on_real_branches(cfg):
    cd = control_dependences(cfg)
    for node, branches in cd.items():
        for branch in branches:
            assert len(cfg.succs[branch]) >= 2
            # The dependent node must not postdominate the branch.
            ipdom = immediate_postdominators(cfg)
            assert not postdominates(ipdom, node, branch) or node == branch


# --------------------------------------------------------------------- #
# Random straight-line traces                                           #
# --------------------------------------------------------------------- #

_CELLS = list(range(0x1000, 0x1010))


@st.composite
def random_traces(draw):
    """A tracer with a straight-line random dataflow program."""
    tracer = Tracer()
    tracer.spawn_thread(1, "CrRendererMain", "root")
    n = draw(st.integers(min_value=1, max_value=40))
    ops = []
    with tracer.function("f"):
        for i in range(n):
            reads = tuple(
                draw(st.sampled_from(_CELLS))
                for _ in range(draw(st.integers(min_value=0, max_value=2)))
            )
            writes = (draw(st.sampled_from(_CELLS)),)
            index = tracer.op(f"op{i}", reads=reads, writes=writes)
            ops.append((index, reads, writes))
    target = draw(st.sampled_from(_CELLS))
    return tracer, ops, target


@given(random_traces())
@settings(max_examples=60, deadline=None)
def test_slice_is_deterministic(data):
    tracer, ops, target = data
    store = tracer.store
    criteria = custom_criteria("t", ((len(store) - 1, (target,)),))
    first = Profiler(store).slice(criteria)
    second = Profiler(store).slice(criteria)
    assert bytes(first.flags) == bytes(second.flags)


@given(random_traces())
@settings(max_examples=60, deadline=None)
def test_slice_soundness_latest_writer_rule(data):
    """For every sliced op, the latest preceding writer of each of its read
    cells is also in the slice (dynamic data-dependence closure)."""
    tracer, ops, target = data
    store = tracer.store
    criteria = custom_criteria("t", ((len(store) - 1, (target,)),))
    result = Profiler(store).slice(criteria)
    last_writer = {}
    writer_of = {}
    for index, reads, writes in ops:
        for cell in reads:
            if cell in last_writer:
                writer_of[(index, cell)] = last_writer[cell]
        for cell in writes:
            last_writer[cell] = index
    for index, reads, writes in ops:
        if not result.flags[index]:
            continue
        for cell in reads:
            writer = writer_of.get((index, cell))
            if writer is not None:
                assert result.flags[writer], (
                    f"sliced op {index} reads {cell:#x} from unsliced {writer}"
                )


@given(random_traces())
@settings(max_examples=60, deadline=None)
def test_more_criteria_never_shrink_slice(data):
    tracer, ops, target = data
    store = tracer.store
    small = custom_criteria("s", ((len(store) - 1, (target,)),))
    big = custom_criteria(
        "b", ((len(store) - 1, (target, _CELLS[0], _CELLS[1])),)
    )
    prof = Profiler(store)
    small_slice = prof.slice(small)
    big_slice = prof.slice(big)
    for i in range(len(store)):
        if small_slice.flags[i]:
            assert big_slice.flags[i]


@given(random_traces())
@settings(max_examples=40, deadline=None)
def test_windowed_slice_is_subset(data):
    tracer, ops, target = data
    store = tracer.store
    full = custom_criteria("f", ((len(store) - 1, (target,)),))
    prof = Profiler(store)
    full_slice = prof.slice(full)
    windowed = prof.slice(full.windowed(len(store) // 2))
    for i in range(len(store)):
        if windowed.flags[i]:
            assert full_slice.flags[i]


# --------------------------------------------------------------------- #
# Span merging (coverage accounting)                                    #
# --------------------------------------------------------------------- #

spans = st.lists(
    st.tuples(st.integers(0, 500), st.integers(1, 100)).map(
        lambda t: (t[0], t[0] + t[1])
    ),
    max_size=20,
)


@given(spans)
@settings(max_examples=100, deadline=None)
def test_merged_spans_disjoint_and_sorted(span_list):
    merged = merge_spans(span_list)
    for i in range(1, len(merged)):
        assert merged[i - 1][1] < merged[i][0]


@given(spans)
@settings(max_examples=100, deadline=None)
def test_span_total_bounded(span_list):
    total = span_total(span_list)
    naive = sum(end - start for start, end in span_list)
    assert 0 <= total <= naive
    if span_list:
        hull = max(end for _, end in span_list) - min(start for start, _ in span_list)
        assert total <= hull


@given(spans)
@settings(max_examples=100, deadline=None)
def test_span_total_idempotent_under_merge(span_list):
    merged = merge_spans(span_list)
    assert span_total(merged) == span_total(span_list)
