"""Unit tests for the benchmark workloads."""

import pytest

from repro.browser.js.parser import parse_js
from repro.browser.css.parser import parse_stylesheet_source
from repro.workloads import (
    TABLE2_BENCHMARKS,
    benchmark,
    benchmark_names,
)
from repro.workloads.generator import (
    css_framework,
    js_analytics_library,
    js_lazy_widgets,
    js_utility_library,
)


def test_registry_contains_table2_benchmarks():
    names = benchmark_names()
    for name in TABLE2_BENCHMARKS:
        assert name in names


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        benchmark("not-a-site")


@pytest.mark.parametrize("name", list(TABLE2_BENCHMARKS))
def test_pages_build_and_parse(name):
    bench = benchmark(name)
    assert bench.page.html.startswith("<!DOCTYPE html>")
    # Every generated script must be valid mini-JS.
    for url, source in bench.page.scripts.items():
        parse_js(source)
    # Every stylesheet must parse into rules.
    for url, source in bench.page.stylesheets.items():
        sheet = parse_stylesheet_source(url, source)
        assert sheet.rules


def test_benchmarks_deterministic():
    a = benchmark("amazon_desktop")
    b = benchmark("amazon_desktop")
    assert a.page.html == b.page.html
    assert a.page.scripts == b.page.scripts
    assert a.page.stylesheets == b.page.stylesheets


def test_bing_has_paper_browse_session():
    bench = benchmark("bing")
    kinds = [a.kind for a in bench.actions]
    # Two menu clicks, the news roll, and typed characters.
    assert kinds.count("click") >= 3
    assert kinds.count("type") >= 5
    assert bench.late_scripts, "bing downloads more JS while browsing"


def test_load_only_benchmarks_have_no_actions():
    for name in ("amazon_desktop", "amazon_mobile", "google_maps", "bing_load_only"):
        assert benchmark(name).load_only


def test_mobile_viewport_and_low_res():
    bench = benchmark("amazon_mobile")
    assert (bench.config.viewport_width, bench.config.viewport_height) == (360, 640)
    assert bench.config.raster_low_res


def test_desktop_three_rasterizers():
    assert benchmark("amazon_desktop").config.raster_threads == 3
    assert benchmark("bing").config.raster_threads == 2


def test_generated_library_used_split():
    source = js_utility_library("lib", 10, 4, seed=1)
    program = parse_js(source)
    assert "lib_util9" in source
    assert source.count("lib_registry.checksum +=") == 4


def test_analytics_library_beacons():
    source = js_analytics_library("m", beacon_every=2)
    assert "sendBeacon" in source
    parse_js(source)


def test_lazy_widgets_activation_split():
    source = js_lazy_widgets(8, 2)
    assert source.count("widget_register(") >= 8
    assert source.count("widget_activate(") >= 2 + 1  # defs + calls
    parse_js(source)


def test_css_framework_dead_rules():
    sheet_src = css_framework("fw", ["used-a", "used-b"], n_extra_rules=5, seed=3)
    sheet = parse_stylesheet_source("fw.css", sheet_src)
    selectors = [
        sel.source for rule in sheet.rules for sel in rule.selectors
    ]
    assert ".used-a" in selectors
    assert any("fw-dead-" in s for s in selectors)


def test_wiki_workload_builds_and_runs_light():
    bench = benchmark("wiki_article")
    assert bench.load_only
    parse_js(bench.page.scripts["wiki.js"])
    assert "toc" in bench.page.html


def test_registry_includes_auxiliary_benchmarks():
    names = benchmark_names()
    for extra in ("bing_load_only", "amazon_desktop_browse", "google_maps_browse",
                  "wiki_article"):
        assert extra in names
