"""Legacy setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` falls back to this when PEP 660
editable builds are unavailable offline.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
