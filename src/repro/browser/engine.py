"""The browser engine: orchestrates the full rendering pipeline.

Drives the paper's Figure 1 pipeline end to end over the simulated
substrate: navigation IPC -> network fetch (IO thread) -> HTML parse ->
subresource fetches -> CSS parse -> JavaScript execution -> style ->
layout -> paint -> commit -> tile raster (worker threads, with the pixel
criteria markers) -> draw -> frame swap, followed by a scripted browsing
session (scrolls on the compositor fast path; clicks/typing through the
main thread with incremental re-render of the dirtied region).

Rendering is organized as an invalidation-driven frame loop: DOM
mutations mark elements dirty at an invalidation level (see
:mod:`repro.browser.invalidation`); each produced frame — the first full
render ("load"), each re-render ("update"), each compositor scroll redraw
("scroll") — is bracketed by FRAME_BEGIN/FRAME_END trace markers so the
profiler can slice per-frame epochs.  At most one frame is in flight:
work arriving while a frame is open is deferred to the next frame.  With
``EngineConfig.incremental`` (the default) an update frame re-resolves
style, re-lays-out, re-paints, and re-commits only the dirty subtrees;
with it off every update frame rebuilds the whole pipeline (the legacy
behaviour).  Frame 0 is byte-identical between the two modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..machine.tracer import LOAD_COMPLETE_MARKER
from .compositor.host import CompositorHost, RasterTask
from .context import (
    COMPOSITOR_THREAD,
    EngineConfig,
    EngineContext,
    FIRST_RASTER_THREAD,
    IO_THREAD,
    MAIN_THREAD,
)
from .css.cssom import CSSOM
from .css.parser import parse_css
from .html.dom import Document, Element
from .html.parser import parse_html
from .invalidation import (
    NEEDS_LAYOUT,
    NEEDS_STYLE_RESOLVE,
    STYLE,
    DirtySet,
    is_connected,
)
from .ipc.channel import IPCChannel
from .js.interpreter import Interpreter
from .js.runtime import BrowserHooks, JSRuntime
from .js.values import TV
from .layout.boxes import LayoutTree
from .layout.engine import LayoutEngine
from .layout.geometry import Rect
from .net.loader import NetworkStack, Resource
from .paint.display_list import PaintLayer
from .paint.painter import Painter
from .scheduler.loop import Scheduler
from .style.resolver import StyleResolver


@dataclass
class PageSpec:
    """Everything needed to load one synthetic website."""

    url: str
    html: str
    #: external stylesheets: url -> css source (fetched before scripts run)
    stylesheets: Dict[str, str] = field(default_factory=dict)
    #: external scripts: url -> js source (document order = dict order)
    scripts: Dict[str, str] = field(default_factory=dict)
    #: images: url -> byte size
    images: Dict[str, int] = field(default_factory=dict)
    #: per-resource latency in ms (default applies otherwise)
    latencies: Dict[str, float] = field(default_factory=dict)
    default_latency_ms: float = 35.0


@dataclass
class UserAction:
    """One step of a scripted browsing session."""

    kind: str  # "scroll" | "click" | "type" | "wait"
    target_id: Optional[str] = None
    amount: float = 0.0
    text: str = ""
    think_time_ms: float = 300.0


class _EngineHooks(BrowserHooks):
    """JS runtime hooks wired into the engine."""

    def __init__(self, engine: "BrowserEngine") -> None:
        self.engine = engine

    def on_dom_mutated(self, element: Element, level: str = STYLE) -> None:
        self.engine.mark_dirty(element, level)

    def schedule_timeout(self, callback: TV, delay_ms: float) -> None:
        engine = self.engine
        engine.scheduler.post_delayed(
            MAIN_THREAD,
            "TimerFired",
            lambda: engine._run_js_callback(callback, "timeout"),
            delay_ms,
        )

    def request_animation_frame(self, callback: TV) -> None:
        engine = self.engine
        engine.scheduler.post_delayed(
            MAIN_THREAD,
            "AnimationFrame",
            lambda: engine._run_js_callback(callback, "raf"),
            16.0,
        )

    def send_beacon(self, url: str, payload: TV) -> None:
        engine = self.engine
        buffer_cell = engine.channel.serialize(f"Beacon:{url}", (payload.cell,), 2)
        engine.scheduler.post(
            IO_THREAD,
            "SendBeacon",
            lambda: engine.net.send_beacon(url, buffer_cell),
        )

    def viewport(self) -> Tuple[int, int]:
        config = self.engine.ctx.config
        return (config.viewport_width, config.viewport_height)

    def now_ms(self) -> float:
        return self.engine.ctx.clock.now_us / 1000.0


class BrowserEngine:
    """A simulated Chromium tab process."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.ctx = EngineContext(config)
        self.ctx.spawn_threads()
        self.scheduler = Scheduler(self.ctx)
        self.channel = IPCChannel(self.ctx)
        self.net = NetworkStack(self.ctx, self.channel)
        self.compositor = CompositorHost(self.ctx)
        self.painter = Painter(self.ctx)

        self.document: Optional[Document] = None
        self.cssom = CSSOM()
        self.resolver: Optional[StyleResolver] = None
        self.layout: Optional[LayoutEngine] = None
        self.layout_tree: Optional[LayoutTree] = None
        self.paint_layers: List[PaintLayer] = []
        self.interp: Optional[Interpreter] = None
        self.runtime: Optional[JSRuntime] = None

        self.dirty = DirtySet()
        self._last_rects: Dict[int, Rect] = {}
        self._raster_rr = 0
        self._decode_barrier: Optional[int] = None
        self._pending_rasters: Optional[int] = None
        self.page: Optional[PageSpec] = None
        self.loaded = False

        # Frame loop state: at most one frame is open at a time; render
        # and scroll requests arriving mid-frame are deferred to the next.
        self._next_frame_id = 0
        self._open_frame: Optional[int] = None
        self._render_pending = False
        self._scroll_pending = False

    def _pending_rasters_cell(self) -> int:
        if self._pending_rasters is None:
            self._pending_rasters = self.ctx.memory.alloc_cell("cc:pending_rasters")
        return self._pending_rasters

    # ------------------------------------------------------------------ #
    # Page load                                                          #
    # ------------------------------------------------------------------ #

    def load_page(self, page: PageSpec) -> None:
        """Load a page from navigation to the first displayed frame."""
        self.page = page
        tracer = self.ctx.tracer
        scheduler = self.scheduler

        scheduler.post(IO_THREAD, "Navigate", lambda: self._io_navigate(page))
        scheduler.run_until_idle()
        if not self.loaded:
            raise RuntimeError("page load did not reach the first frame")

    def _io_navigate(self, page: PageSpec) -> None:
        # Browser process tells the renderer to commit a navigation.
        self.channel.receive("FrameNavigate", payload_size=2)
        html_res = Resource(
            url=page.url,
            kind="html",
            content=page.html,
            latency_ms=page.latencies.get(page.url, page.default_latency_ms),
        )
        self.net.fetch(html_res)
        self.scheduler.post(
            MAIN_THREAD, "ParseHTML", lambda: self._main_parse_html(html_res)
        )

    def _main_parse_html(self, html_res: Resource) -> None:
        page = self.page
        parser = parse_html(self.ctx, html_res.content, html_res.region)
        self.document = parser.document
        self._inline_scripts = parser.scripts
        self._inline_styles = parser.styles

        # Discover subresources referenced by the document.
        wanted_css = [
            el.get_attribute("href")
            for el in self.document.get_elements_by_tag("link")
            if el.get_attribute("rel") == "stylesheet"
        ]
        wanted_js = [
            el.get_attribute("src")
            for el in self.document.get_elements_by_tag("script")
            if el.get_attribute("src")
        ]
        wanted_img = [
            el.get_attribute("src")
            for el in self.document.get_elements_by_tag("img")
            if el.get_attribute("src")
        ]

        def fetch_all() -> None:
            for url in wanted_css:
                if url in page.stylesheets:
                    self.net.fetch(self._resource(url, "css", page.stylesheets[url]))
            for url in wanted_js:
                if url in page.scripts:
                    self.net.fetch(self._resource(url, "js", page.scripts[url]))
            for url in wanted_img:
                if url in page.images:
                    self.net.fetch(
                        self._resource(url, "img", "", size=page.images[url])
                    )
            self.scheduler.post(MAIN_THREAD, "ResourcesReady", self._main_process_page)

        self.scheduler.post(IO_THREAD, "FetchSubresources", fetch_all)

    def _resource(self, url: str, kind: str, content: str, size: int = 0) -> Resource:
        page = self.page
        return Resource(
            url=url,
            kind=kind,
            content=content,
            size_bytes=size,
            latency_ms=page.latencies.get(url, page.default_latency_ms),
        )

    def _main_process_page(self) -> None:
        """CSS parse + JS execution + first full render."""
        page = self.page
        ctx = self.ctx

        # CSS: external sheets in document order, then inline <style>.
        for url, source in page.stylesheets.items():
            resource = self.net.fetched.get(url)
            if resource is None:
                continue
            sheet = parse_css(ctx, url, source, resource.region)
            self.cssom.add_sheet(sheet)
        for element, source in self._inline_styles:
            if not source.strip():
                continue
            region = element._cells.get("rawtext")
            inline_region = ctx.alloc_bytes(f"inline-style:{element.node_id}", len(source))
            sheet = parse_css(ctx, f"inline:{element.node_id}", source, inline_region)
            self.cssom.add_sheet(sheet)

        # JavaScript: set up the engine and run scripts in document order.
        self.interp = Interpreter(ctx)
        self.runtime = JSRuntime(self.interp, self.document, hooks=_EngineHooks(self))
        script_elements = self.document.get_elements_by_tag("script")
        inline_iter = iter(self._inline_scripts)
        for element in script_elements:
            src = element.get_attribute("src")
            if src:
                resource = self.net.fetched.get(src)
                if resource is not None:
                    self.interp.execute_script(
                        page.scripts[src], src, resource.region
                    )
            else:
                raw = element.attributes.get("__rawtext__", "")
                if raw.strip():
                    region = ctx.alloc_bytes(
                        f"inline-script:{element.node_id}", len(raw)
                    )
                    self.interp.execute_script(
                        raw, f"inline:{element.node_id}", region
                    )

        # Image decode on the thread-pool workers; the painter references
        # the decoded bitmaps, so raster depends on decode which depends on
        # the network bytes.
        self._decode_images()

        self.dirty.clear()  # load-time script mutations render now
        self._full_render(first_frame=True)

    def _decode_images(self) -> None:
        """Decode fetched images on the ThreadPool workers.

        Decoding runs to completion before paint references the bitmaps
        (the engine models a decode barrier rather than placeholder
        repaints).  Each decode reads the compressed resource bytes and
        writes the decoded bitmap cells that raster samples.
        """
        ctx = self.ctx
        tracer = ctx.tracer
        worker_tids = ctx.worker_thread_ids()
        if not worker_tids:
            worker_tids = (MAIN_THREAD,)
        caller_tid = tracer.current_tid
        # Decode barrier: the caller publishes the fetched bytes before any
        # worker starts, each worker publishes its bitmap when done, and
        # the caller imports all of them before paint references the
        # bitmaps.  Without these edges the raw thread switches below would
        # be unsynchronized hand-offs (exactly what repro.tsan flags).
        barrier = self._decode_barrier_cell()
        tracer.sync_release(barrier)
        for i, url in enumerate(self.page.images):
            resource = self.net.fetched.get(url)
            if resource is None or resource.region is None:
                continue
            source = resource.region
            decoded = ctx.memory.alloc(f"bitmap:{url}", max(1, source.size))
            tracer.switch(worker_tids[i % len(worker_tids)])
            tracer.sync_acquire(barrier)
            with tracer.function("blink::ImageDecoder::Decode"):
                for offset in range(source.size):
                    tracer.op(
                        f"decode_row{offset % 64}",
                        reads=(source.cell(offset),),
                        writes=(decoded.cell(offset),),
                    )
                    if offset % 3 == 0:
                        ctx.plain_helper(
                            "png_read_row",
                            reads=(source.cell(offset),),
                            writes=(decoded.cell(offset),),
                        )
                ctx.maybe_debug_event()
            tracer.sync_release(barrier)
            self.painter.image_regions[url] = decoded
        tracer.switch(caller_tid)
        tracer.sync_acquire(barrier)

    def _decode_barrier_cell(self) -> int:
        if self._decode_barrier is None:
            self._decode_barrier = self.ctx.memory.alloc_cell("blink:decode_barrier")
        return self._decode_barrier

    # ------------------------------------------------------------------ #
    # Frame lifecycle                                                    #
    # ------------------------------------------------------------------ #

    def _frame_begin(self, kind: str) -> int:
        """Open a new frame epoch (emits the FRAME_BEGIN marker)."""
        frame_id = self._next_frame_id
        self._next_frame_id += 1
        self._open_frame = frame_id
        self.ctx.tracer.frame_begin(frame_id, kind)
        return frame_id

    def _frame_end(self, frame_id: int) -> None:
        """Close the open frame and start any deferred follow-up frame."""
        self.ctx.tracer.frame_end(frame_id)
        self._open_frame = None
        if self._scroll_pending:
            self._scroll_pending = False
            next_id = self._frame_begin("scroll")
            self._raster_then_draw(first_frame=False, frame_id=next_id)
        elif self._render_pending:
            self._render_pending = False
            self.scheduler.post(MAIN_THREAD, "BeginMainFrame", self._render_if_dirty)

    # ------------------------------------------------------------------ #
    # Rendering pipeline                                                 #
    # ------------------------------------------------------------------ #

    def _full_render(self, first_frame: bool) -> None:
        """style -> layout -> paint -> commit -> raster -> draw."""
        ctx = self.ctx
        frame_id = self._frame_begin("load" if first_frame else "update")
        self.resolver = StyleResolver(ctx, self.cssom)
        self.resolver.resolve_document(self.document)
        self.layout = LayoutEngine(ctx, self.resolver)
        self.layout_tree = self.layout.layout_document(self.document)
        self._remember_rects()
        self.paint_layers = self.painter.paint_document(self.layout_tree)

        def commit_and_raster() -> None:
            self.compositor.commit(self.paint_layers)
            self._raster_then_draw(first_frame=first_frame, frame_id=frame_id)

        self.scheduler.post(COMPOSITOR_THREAD, "Commit", commit_and_raster)

    def _raster_then_draw(
        self, first_frame: bool, frame_id: Optional[int] = None
    ) -> None:
        """Schedule raster tasks; the last one posts the draw."""
        tasks = self.compositor.prepare_raster_tasks()
        if not tasks:
            self.scheduler.post(
                COMPOSITOR_THREAD, "Draw", lambda: self._draw(first_frame, frame_id)
            )
            return
        remaining = {"count": len(tasks)}
        # The completion count is shared by every raster worker; the traced
        # lock chains all workers' histories into the last decrementer, so
        # the draw it posts is ordered after every tile's pixel writes (not
        # just its own).
        pending_lock = self.ctx.lock("cc:lock:pending_rasters")
        pending_cell = self._pending_rasters_cell()

        def run_task(task: RasterTask):
            def runner() -> None:
                self.compositor.raster_tile(task)
                with pending_lock.held():
                    self.ctx.tracer.op(
                        "raster_done", reads=(pending_cell,), writes=(pending_cell,)
                    )
                    remaining["count"] -= 1
                    done = remaining["count"] == 0
                if done:
                    self.scheduler.post(
                        COMPOSITOR_THREAD,
                        "Draw",
                        lambda: self._draw(first_frame, frame_id),
                    )

            return runner

        raster_tids = self.ctx.raster_thread_ids()
        for task in tasks:
            tid = raster_tids[self._raster_rr % len(raster_tids)]
            self._raster_rr += 1
            self.scheduler.post(tid, "RasterTask", run_task(task))

    def _draw(self, first_frame: bool, frame_id: Optional[int] = None) -> None:
        framebuffer_cells = self.compositor.draw_frame()
        # Swap: the frame goes to the display through the GPU channel.
        tracer = self.ctx.tracer
        with tracer.function("cc::Display::SwapBuffers"):
            swap_cell = self.channel.serialize(
                "SwapBuffers", framebuffer_cells[:4], weight=2
            )
            tracer.syscall("write", reads=framebuffer_cells[:16] + (swap_cell,))
        if first_frame and not self.loaded:
            self.loaded = True
            tracer.marker(LOAD_COMPLETE_MARKER)
            self.scheduler.post(MAIN_THREAD, "LoadEvent", self._fire_load_event)
        if frame_id is not None:
            self._frame_end(frame_id)

    def _fire_load_event(self) -> None:
        if self.runtime is not None:
            self.runtime.dispatch_event(None, "load")
            self._render_if_dirty()

    # ------------------------------------------------------------------ #
    # Incremental updates                                                #
    # ------------------------------------------------------------------ #

    def _remember_rects(self) -> None:
        self._last_rects.clear()
        if self.layout_tree is None:
            return
        for box in self.layout_tree.all_boxes():
            if box.element is not None:
                self._last_rects[box.element.node_id] = box.rect

    def mark_dirty(self, element: Element, level: str = STYLE) -> None:
        """Record a DOM invalidation for the next update frame.

        Mutations on detached subtrees are dropped: a node that is not
        connected to the document renders nothing, so invalidating it
        would only schedule unnecessary work.
        """
        if self.document is None or not is_connected(element, self.document):
            return
        self.dirty.mark(element, level)

    def _render_if_dirty(self) -> None:
        if not self.dirty or self.resolver is None:
            return
        if self._open_frame is not None:
            # A frame is already in flight; fold this invalidation into
            # the next frame instead of rendering concurrently.
            self._render_pending = True
            return
        frame_id = self._frame_begin("update")
        if self.ctx.config.incremental:
            self._incremental_update(frame_id)
        else:
            self._legacy_update(frame_id)

    def _dirty_rect_for(self, roots: List, old_rects: List[Rect]) -> Rect:
        dirty_rect = Rect(0, 0, 0, 0)
        for rect in old_rects:
            dirty_rect = dirty_rect.union(rect)
        for element, _level in roots:
            box = self.layout_tree.box_for(element)
            if box is not None:
                dirty_rect = dirty_rect.union(box.document_bounds())
        return dirty_rect

    def _layer_for_element(self, element: Element) -> Optional[PaintLayer]:
        """The paint layer whose display list holds ``element``'s items."""
        by_owner = {
            layer.owner.node_id: layer
            for layer in self.paint_layers
            if layer.owner is not None
        }
        layer = by_owner.get(element.node_id)
        if layer is not None:
            return layer
        for ancestor in element.ancestors():
            layer = by_owner.get(ancestor.node_id)
            if layer is not None:
                return layer
        for layer in self.paint_layers:
            if layer.is_root():
                return layer
        return None

    def _incremental_update(self, frame_id: int) -> None:
        """One invalidation-driven update frame.

        Per dirty root, the invalidation level selects which stages run:
        style recalc (unless layout-only), subtree relayout (unless
        paint-only), then a spliced subtree repaint.  Any stage that
        cannot prove the incremental step sound falls back to the full
        stage (whole-document layout / whole-layer repaint), never to a
        wrong frame.
        """
        ctx = self.ctx
        tracer = ctx.tracer
        roots = self.dirty.roots()
        old_rects = [
            rect
            for element, _level in roots
            if (rect := self._last_rects.get(element.node_id)) is not None
        ]
        self.dirty.clear()

        full_layout = False
        with tracer.function("blink::scheduler::BeginMainFrame"):
            for element, level in roots:
                if NEEDS_STYLE_RESOLVE[level]:
                    self.resolver.mark_invalid(element)
                    self.resolver.resolve_subtree(element)
            for element, level in roots:
                if not NEEDS_LAYOUT[level]:
                    continue
                if self.layout.relayout_subtree(self.layout_tree, element) is None:
                    full_layout = True
                    break
            if full_layout:
                self.layout_tree = self.layout.layout_document(self.document)

        dirty_rect = self._dirty_rect_for(roots, old_rects)
        self._remember_rects()

        promoted = {
            layer.owner.node_id for layer in self.paint_layers if layer.owner is not None
        }
        repainted: List[PaintLayer] = []
        spans: List[Tuple[PaintLayer, Tuple]] = []
        if full_layout:
            # Geometry moved beyond one subtree: repaint affected layers.
            for layer in self.paint_layers:
                if layer.bounds.intersects(dirty_rect) or layer.is_root():
                    self.painter.repaint_layer(layer, self.layout_tree, promoted)
                    repainted.append(layer)
        else:
            for element, _level in roots:
                layer = self._layer_for_element(element)
                if layer is None or layer in repainted:
                    continue
                span = self.painter.repaint_subtree(
                    layer, self.layout_tree, element, promoted
                )
                if span is None:
                    self.painter.repaint_layer(layer, self.layout_tree, promoted)
                    repainted.append(layer)
                else:
                    spans.append((layer, span))

        def compositor_update() -> None:
            for layer in repainted:
                cc_layer = self.compositor.layer_for(layer)
                if cc_layer is not None:
                    self.compositor.recommit_layer(cc_layer)
            for layer, (start, n_removed, added) in spans:
                cc_layer = self.compositor.layer_for(layer)
                if cc_layer is not None:
                    self.compositor.recommit_span(cc_layer, start, n_removed, added)
            self.compositor.invalidate(dirty_rect)
            self._raster_then_draw(first_frame=False, frame_id=frame_id)

        self.scheduler.post(COMPOSITOR_THREAD, "UpdateLayers", compositor_update)

    def _legacy_update(self, frame_id: int) -> None:
        """Full-rebuild update frame (``EngineConfig.incremental`` off)."""
        ctx = self.ctx
        tracer = ctx.tracer
        roots = self.dirty.roots()
        old_rects = [
            rect
            for element, _level in roots
            if (rect := self._last_rects.get(element.node_id)) is not None
        ]
        self.dirty.clear()

        with tracer.function("blink::scheduler::BeginMainFrame"):
            for element, _level in roots:
                self.resolver.resolve_subtree(element)
            self.layout_tree = self.layout.layout_document(self.document)

        dirty_rect = self._dirty_rect_for(roots, old_rects)
        self._remember_rects()

        # Repaint layers whose content intersects the dirty rect.
        promoted = {
            layer.owner.node_id for layer in self.paint_layers if layer.owner is not None
        }
        for layer in self.paint_layers:
            if layer.bounds.intersects(dirty_rect) or layer.is_root():
                self.painter.repaint_layer(layer, self.layout_tree, promoted)

        def compositor_update() -> None:
            for layer in self.paint_layers:
                cc_layer = self.compositor.layer_for(layer)
                if cc_layer is not None and layer.bounds.intersects(dirty_rect):
                    self.compositor.recommit_layer(cc_layer)
            self.compositor.invalidate(dirty_rect)
            self._raster_then_draw(first_frame=False, frame_id=frame_id)

        self.scheduler.post(COMPOSITOR_THREAD, "UpdateLayers", compositor_update)

    def _run_js_callback(self, callback: TV, kind: str) -> None:
        if self.interp is None:
            return
        self.interp.call_function_value(callback.value, None, [], site=f"cb:{kind}")
        self._render_if_dirty()

    # ------------------------------------------------------------------ #
    # User interaction                                                   #
    # ------------------------------------------------------------------ #

    def run_session(self, actions: List[UserAction]) -> None:
        """Run a scripted browsing session after load."""
        for action in actions:
            self.ctx.clock.idle(action.think_time_ms * 1000.0)
            self.perform_action(action)
            self.scheduler.run_until_idle()

    def perform_action(self, action: UserAction) -> None:
        if action.kind == "wait":
            return
        if action.kind == "scroll":
            self.scheduler.post(
                IO_THREAD, "InputEvent", lambda: self._io_input(action)
            )
            return
        self.scheduler.post(IO_THREAD, "InputEvent", lambda: self._io_input(action))

    def _io_input(self, action: UserAction) -> None:
        # The browser process delivers the input event over IPC.
        cells = self.channel.receive(f"InputEvent:{action.kind}", payload_size=2)
        self.scheduler.post(
            COMPOSITOR_THREAD,
            "HandleInput",
            lambda: self._compositor_input(action, cells),
        )

    def _compositor_input(self, action: UserAction, cells) -> None:
        tracer = self.ctx.tracer
        with tracer.function("cc::InputHandler::HandleInputEvent"):
            tracer.compare_and_branch("is_scroll", reads=cells[:1])
            if action.kind == "scroll":
                self.compositor.scroll_by(action.amount)
                if self._open_frame is not None:
                    # The scroll offset is applied; defer the redraw to a
                    # fresh frame once the in-flight one completes.
                    self._scroll_pending = True
                    return
                scroll_frame = self._frame_begin("scroll")
                self._raster_then_draw(first_frame=False, frame_id=scroll_frame)
                return
            # Non-scroll input: forward to the main thread.
            tracer.op("forward_to_main", reads=cells[:1], writes=cells[:1])
        self.scheduler.post(
            MAIN_THREAD, "DispatchInput", lambda: self._main_input(action, cells)
        )

    def _main_input(self, action: UserAction, cells) -> None:
        if self.document is None or self.runtime is None:
            return
        tracer = self.ctx.tracer
        target = (
            self.document.get_element_by_id(action.target_id)
            if action.target_id
            else self.document.body()
        )
        with tracer.function("blink::EventHandler::HitTest"):
            reads = cells[:1]
            if target is not None:
                reads = reads + (target.cell("layout:geom"),)
            tracer.op("hit_test", reads=reads)
            tracer.compare_and_branch("found_target", reads=reads[-1:])
        if target is None:
            return
        if action.kind == "click":
            self.runtime.dispatch_event(target, "click")
        elif action.kind == "type":
            for _ in action.text:
                target.set_attribute("value", (target.get_attribute("value") or "") + "x")
                tracer.op(
                    "update_text_field",
                    reads=cells[:1],
                    writes=(target.cell("attr:value"),),
                )
                self.mark_dirty(target, STYLE)
                self.runtime.dispatch_event(target, "input")
        self._render_if_dirty()

    def pump_animation_frames(self, ticks: int, damage_every: int = 6) -> None:
        """Post ``ticks`` vsync BeginFrame tasks to the compositor thread.

        Every ``damage_every``-th tick, the topmost animated layer is
        damaged (a carousel advance, a spinner frame): its visible tiles
        re-raster and a new frame is drawn.
        """
        for i in range(ticks):
            draw = i % 3 == 0
            priorities = i % 4 == 0
            report_timing = i % 4 == 2
            self.scheduler.post(
                COMPOSITOR_THREAD,
                "BeginImplFrame",
                (lambda d, p, t: lambda: self._begin_frame(d, p, t))(
                    draw, priorities, report_timing
                ),
            )
            if damage_every and i % damage_every == damage_every - 1:
                self.scheduler.post(
                    COMPOSITOR_THREAD, "AnimationDamage", self._animation_damage
                )

    def _begin_frame(self, draw: bool, priorities: bool, report_timing: bool) -> None:
        self.compositor.begin_frame_tick(draw=draw, update_priorities=priorities)
        if draw:
            # Submitted frames are acknowledged by the display compositor.
            ack = self.channel.serialize("SubmitCompositorFrame", weight=3)
            self.scheduler.post(
                IO_THREAD, "FrameAck", lambda: self._io_frame_ack(ack)
            )
        if report_timing:
            timing = self.channel.serialize("FrameTimingReport", weight=4)
            self.scheduler.post(
                IO_THREAD,
                "FlushTiming",
                lambda: self.channel.flush_on_io_thread(timing),
            )

    def _io_frame_ack(self, buffer_cell: int) -> None:
        self.channel.flush_on_io_thread(buffer_cell)
        self.channel.receive("DidReceiveCompositorFrameAck", payload_size=2)

    def _animation_damage(self) -> None:
        """Damage a small region of the topmost composited layer.

        Models a carousel progress indicator / spinner frame: a ~tile-sized
        repaint, re-rastered and redrawn.
        """
        layers = self.compositor.layers
        if not layers:
            return
        top = layers[-1]
        viewport = self.compositor.viewport_rect()
        bounds = top.paint.bounds
        damage = Rect(bounds.x, bounds.y, 256.0, min(256.0, max(bounds.h, 1.0)))
        with self.ctx.tracer.function("cc::LayerTreeHostImpl::SetNeedsRedraw"):
            count = top.invalidate(damage)
            if count:
                self.ctx.tracer.op(
                    "mark_dirty_tiles",
                    reads=(top.property_cell,),
                    writes=(top.property_cell,),
                )
        self._raster_then_draw(first_frame=False)

    def load_additional_script(self, url: str, source: str, latency_ms: float = 35.0) -> None:
        """Fetch and execute a script during the browse phase (lazy JS)."""

        def io_fetch() -> None:
            resource = Resource(url=url, kind="js", content=source, latency_ms=latency_ms)
            self.net.fetch(resource)

            def execute() -> None:
                if self.interp is not None:
                    self.interp.execute_script(source, url, resource.region)
                    self._render_if_dirty()

            self.scheduler.post(MAIN_THREAD, "ExecuteLateScript", execute)

        self.scheduler.post(IO_THREAD, "FetchLateScript", io_fetch)

    # ------------------------------------------------------------------ #
    # Background chatter                                                 #
    # ------------------------------------------------------------------ #

    def emit_metrics_tick(self) -> None:
        """Periodic UMA-metrics style bookkeeping + IPC (never visible)."""
        ctx = self.ctx

        def main_tick() -> None:
            tracer = ctx.tracer
            metrics_cell = ctx.memory.alloc_cell("metrics:sample")
            with tracer.function("base::metrics::HistogramSampler::Sample"):
                for i in range(4):
                    tracer.op(f"sample{i}", reads=(metrics_cell,), writes=(metrics_cell,))
            buffer_cell = self.channel.serialize("MetricsUpdate", (metrics_cell,), 3)
            self.scheduler.post(
                IO_THREAD,
                "FlushMetrics",
                lambda: self.channel.flush_on_io_thread(buffer_cell),
            )

        self.scheduler.post(MAIN_THREAD, "MetricsTick", main_tick)

    # ------------------------------------------------------------------ #
    # Results                                                            #
    # ------------------------------------------------------------------ #

    def trace_store(self):
        return self.ctx.tracer.store

    def frame_digests(self) -> List[str]:
        """Semantic per-frame framebuffer digests, in draw order.

        Two runs rendered identical pixels iff their digest lists are
        equal (see :meth:`CompositorHost.draw_frame`); the optimizer's
        verification harness compares these between the original and the
        transformed run.
        """
        return list(self.compositor.frame_digests)

    def utilization_series(self, tid: int = MAIN_THREAD):
        return self.ctx.clock.utilization_series(tid)
