"""HTML tree builder (the traced parsing stage of the rendering pipeline).

Consumes the token stream of :mod:`.lexer` and builds a
:class:`~repro.browser.html.dom.Document`, emitting instruction records
that read the resource's byte cells and write the new DOM nodes' cells —
the first stage of the paper's Figure 1 pipeline.

The builder auto-creates ``html``/``head``/``body`` when missing, closes
mis-nested ``p``/``li``/``tr``/``td``/``th``/``option`` elements, and treats
void elements as childless, which is enough structure for realistic pages.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...machine.memory import MemRegion
from ..context import EngineContext
from .dom import Document, Element, Node, TextNode, VOID_ELEMENTS
from .lexer import Comment, Doctype, EndTag, RawText, StartTag, Text, tokenize

#: Opening one of these closes an open element of the paired set first.
_AUTO_CLOSE = {
    "p": {"p"},
    "li": {"li"},
    "option": {"option"},
    "tr": {"tr", "td", "th"},
    "td": {"td", "th"},
    "th": {"td", "th"},
}

#: Tags whose content belongs in <head>.
_HEAD_TAGS = frozenset({"title", "meta", "link", "base"})


class HTMLParser:
    """Streaming tree builder over a traced resource buffer."""

    def __init__(self, ctx: EngineContext, source: str, region: MemRegion) -> None:
        self.ctx = ctx
        self.source = source
        self.region = region
        self.document = Document(ctx)
        self._stack: List[Element] = [self.document.root]
        #: (element, raw source text) pairs for <script>; collected so the
        #: engine can hand them to the JavaScript stage in document order.
        self.scripts: List[Tuple[Element, str]] = []
        #: (element, raw source text) pairs for inline <style>.
        self.styles: List[Tuple[Element, str]] = []

    # ------------------------------------------------------------------ #

    def parse(self) -> Document:
        """Run the full parse, emitting trace records as it pumps tokens."""
        ctx = self.ctx
        tracer = ctx.tracer
        with tracer.function("blink::html::HTMLDocumentParser::PumpTokenizer"):
            token_index = 0
            for token in tokenize(self.source):
                src_cells = self._span_cells(token.span)
                token_index += 1
                if token_index % 4 == 0:
                    ctx.plain_helper("memchr", reads=src_cells[:1])
                tracer.compare_and_branch("dispatch", reads=src_cells[:1])
                if isinstance(token, StartTag):
                    self._process_start_tag(token, src_cells)
                elif isinstance(token, EndTag):
                    self._process_end_tag(token, src_cells)
                elif isinstance(token, (Text, RawText)):
                    self._process_text(token, src_cells)
                elif isinstance(token, (Comment, Doctype)):
                    tracer.op("skip_markup", reads=src_cells[:1])
                ctx.maybe_debug_event()
        self.document.reindex()
        return self.document

    # ------------------------------------------------------------------ #

    def _span_cells(self, span: Tuple[int, int]) -> Tuple[int, ...]:
        start, end = span
        first = self.ctx.byte_cell(self.region, start)
        last = self.ctx.byte_cell(self.region, max(start, end - 1))
        return tuple(range(first, last + 1))

    def _current(self) -> Element:
        return self._stack[-1]

    def _process_start_tag(self, token: StartTag, src_cells) -> None:
        tracer = self.ctx.tracer
        name = token.name
        if name == "html":
            # Merge into the pre-created root rather than nesting a second
            # <html> element.
            root = self.document.root
            for attr_name, attr_value in token.attributes.items():
                root.set_attribute(attr_name, attr_value)
            tracer.op("merge_html_root", reads=src_cells[:1], writes=(root.cell("tag"),))
            return

        closes = _AUTO_CLOSE.get(name)
        if closes:
            while len(self._stack) > 1 and self._current().tag in closes:
                self._stack.pop()

        parent = self._pick_parent(name)
        element = Element(self.ctx, name)
        for attr_name, attr_value in token.attributes.items():
            element.set_attribute(attr_name, attr_value)
        parent.append_child(element)
        self.document.register_id(element)

        with tracer.function("blink::html::TreeBuilder::ProcessStartTag"):
            tracer.op(
                "create_element",
                reads=src_cells[:2],
                writes=(element.cell("tag"), element.cell("links")),
            )
            tracer.op(
                "attach",
                reads=(element.cell("links"),),
                writes=(parent.cell("links"),),
            )
            for i, attr_name in enumerate(token.attributes):
                tracer.op(
                    f"attr{i % 8}",
                    reads=src_cells[-1:],
                    writes=(element.cell(f"attr:{attr_name}"),),
                )
        self.ctx.runtime_helper(
            "malloc", reads=(), writes=(element.cell("links"),), weight=1
        )

        if not token.self_closing and name not in VOID_ELEMENTS:
            self._stack.append(element)

    def _pick_parent(self, tag: str) -> Element:
        """Choose the insertion parent, synthesizing head/body as needed."""
        doc = self.document
        current = self._current()
        if current is not doc.root:
            return current
        if tag in ("head", "body", "html"):
            return doc.root
        target = "head" if tag in _HEAD_TAGS else "body"
        section = doc.head() if target == "head" else doc.body()
        if section is None:
            section = Element(self.ctx, target)
            doc.root.append_child(section)
        return section

    def _process_end_tag(self, token: EndTag, src_cells) -> None:
        tracer = self.ctx.tracer
        element = self._pop_to(token.name)
        with tracer.function("blink::html::TreeBuilder::ProcessEndTag"):
            tracer.op("close", reads=src_cells[:1])
        if element is None:
            return
        raw = element.attributes.get("__rawtext__")
        if element.tag == "script":
            self.scripts.append((element, raw if raw is not None else ""))
        elif element.tag == "style":
            self.styles.append((element, raw if raw is not None else ""))

    def _pop_to(self, tag: str) -> Optional[Element]:
        """Pop the stack down through the nearest open ``tag`` element."""
        for depth in range(len(self._stack) - 1, 0, -1):
            if self._stack[depth].tag == tag:
                element = self._stack[depth]
                del self._stack[depth:]
                return element
        return None  # stray end tag: ignored

    def _process_text(self, token, src_cells) -> None:
        tracer = self.ctx.tracer
        current = self._current()
        if isinstance(token, RawText):
            # script/style payload: keep raw text on the element; traced as
            # a bulk copy of the source bytes into the element's buffer.
            current.attributes["__rawtext__"] = token.text
            with tracer.function("blink::html::TreeBuilder::BufferRawText"):
                tracer.op("copy", reads=src_cells, writes=(current.cell("rawtext"),))
            return
        if not token.text.strip():
            return  # inter-tag whitespace produces no node
        if current is self.document.root:
            current = self._pick_parent("span")
        text_node = TextNode(self.ctx, token.text)
        current.append_child(text_node)
        with tracer.function("blink::html::TreeBuilder::ProcessText"):
            tracer.op(
                "append_text",
                reads=src_cells,
                writes=(text_node.cell("text"), current.cell("links")),
            )


def parse_html(ctx: EngineContext, source: str, region: MemRegion) -> HTMLParser:
    """Parse ``source`` (backed by ``region``); returns the parser, whose
    ``document``, ``scripts`` and ``styles`` fields hold the results."""
    parser = HTMLParser(ctx, source, region)
    parser.parse()
    return parser
