"""HTML character-reference decoding (the common named + numeric forms)."""

from __future__ import annotations

import re

_NAMED = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "copy": "©",
    "reg": "®",
    "trade": "™",
    "mdash": "—",
    "ndash": "–",
    "hellip": "…",
    "laquo": "«",
    "raquo": "»",
    "times": "×",
    "middot": "·",
}

_ENTITY_RE = re.compile(r"&(#x?[0-9a-fA-F]+|[a-zA-Z]+);")


def _replace(match: re.Match) -> str:
    body = match.group(1)
    if body.startswith("#"):
        try:
            code = int(body[2:], 16) if body[1] in "xX" else int(body[1:])
        except ValueError:
            return match.group(0)
        if 0 < code <= 0x10FFFF:
            return chr(code)
        return match.group(0)
    return _NAMED.get(body, match.group(0))


def decode_entities(text: str) -> str:
    """Decode character references; unknown ones pass through verbatim."""
    if "&" not in text:
        return text
    return _ENTITY_RE.sub(_replace, text)
