"""HTML tokenizer.

A pragmatic HTML5-flavoured tokenizer: start/end tags with attributes
(double-, single-, and un-quoted values plus bare names), character data,
comments, doctype, and raw-text handling for ``<script>`` and ``<style>``
content.  Each token records its source span so the traced parser can read
the byte cells the token came from.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .entities import decode_entities
from typing import Dict, Iterator, List, Tuple

RAW_TEXT_ELEMENTS = frozenset({"script", "style"})

_TAG_NAME = re.compile(r"[a-zA-Z][a-zA-Z0-9-]*")
_ATTR = re.compile(
    r"""\s*([^\s=/>"']+)(?:\s*=\s*("[^"]*"|'[^']*'|[^\s>]+))?""", re.DOTALL
)


@dataclass(frozen=True)
class Token:
    """Base token; ``span`` is the (start, end) byte range in the source."""

    span: Tuple[int, int]


@dataclass(frozen=True)
class Doctype(Token):
    content: str = ""


@dataclass(frozen=True)
class Comment(Token):
    text: str = ""


@dataclass(frozen=True)
class StartTag(Token):
    name: str = ""
    attributes: Dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


@dataclass(frozen=True)
class EndTag(Token):
    name: str = ""


@dataclass(frozen=True)
class Text(Token):
    text: str = ""


@dataclass(frozen=True)
class RawText(Token):
    """Contents of a script/style element (not further tokenized)."""

    text: str = ""


class HTMLLexError(ValueError):
    """Raised on unrecoverable tokenizer errors (unclosed constructs)."""


def tokenize(source: str) -> Iterator[Token]:
    """Tokenize HTML source into a stream of tokens."""
    pos = 0
    n = len(source)
    while pos < n:
        lt = source.find("<", pos)
        if lt < 0:
            if pos < n:
                yield Text(span=(pos, n), text=decode_entities(source[pos:]))
            return
        if lt > pos:
            yield Text(span=(pos, lt), text=decode_entities(source[pos:lt]))
        pos = lt
        if source.startswith("<!--", pos):
            end = source.find("-->", pos + 4)
            if end < 0:
                raise HTMLLexError(f"unclosed comment at offset {pos}")
            yield Comment(span=(pos, end + 3), text=source[pos + 4 : end])
            pos = end + 3
        elif source.startswith("<!", pos):
            end = source.find(">", pos)
            if end < 0:
                raise HTMLLexError(f"unclosed doctype at offset {pos}")
            yield Doctype(span=(pos, end + 1), content=source[pos + 2 : end])
            pos = end + 1
        elif source.startswith("</", pos):
            match = _TAG_NAME.match(source, pos + 2)
            if match is None:
                # Bogus end tag: emit as text and move on.
                yield Text(span=(pos, pos + 2), text="</")
                pos += 2
                continue
            end = source.find(">", match.end())
            if end < 0:
                raise HTMLLexError(f"unclosed end tag at offset {pos}")
            yield EndTag(span=(pos, end + 1), name=match.group().lower())
            pos = end + 1
        else:
            match = _TAG_NAME.match(source, pos + 1)
            if match is None:
                yield Text(span=(pos, pos + 1), text="<")
                pos += 1
                continue
            name = match.group().lower()
            cursor = match.end()
            attributes: Dict[str, str] = {}
            self_closing = False
            while cursor < n:
                stripped = _skip_space(source, cursor)
                if stripped < n and source[stripped] == ">":
                    cursor = stripped + 1
                    break
                if source.startswith("/>", stripped):
                    self_closing = True
                    cursor = stripped + 2
                    break
                attr_match = _ATTR.match(source, stripped)
                if attr_match is None or attr_match.end() == stripped:
                    cursor = stripped + 1
                    continue
                attr_name = attr_match.group(1).lower()
                raw_value = attr_match.group(2)
                attributes[attr_name] = _unquote(raw_value)
                cursor = attr_match.end()
            else:
                raise HTMLLexError(f"unclosed start tag <{name} at offset {pos}")
            yield StartTag(
                span=(pos, cursor),
                name=name,
                attributes=attributes,
                self_closing=self_closing,
            )
            pos = cursor
            if name in RAW_TEXT_ELEMENTS and not self_closing:
                close = source.find(f"</{name}", pos)
                if close < 0:
                    raise HTMLLexError(f"unclosed <{name}> at offset {pos}")
                if close > pos:
                    yield RawText(span=(pos, close), text=source[pos:close])
                pos = close


def _skip_space(source: str, pos: int) -> int:
    while pos < len(source) and source[pos].isspace():
        pos += 1
    return pos


def _unquote(raw: str) -> str:
    if raw is None:
        return ""
    if len(raw) >= 2 and raw[0] in "\"'" and raw[-1] == raw[0]:
        return decode_entities(raw[1:-1])
    return decode_entities(raw)


def token_list(source: str) -> List[Token]:
    """Eagerly tokenize (convenience for tests)."""
    return list(tokenize(source))
