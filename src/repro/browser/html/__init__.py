"""HTML subsystem: tokenizer, tree builder, and the DOM."""

from .dom import Document, Element, Node, TextNode, VOID_ELEMENTS
from .lexer import (
    Comment,
    Doctype,
    EndTag,
    HTMLLexError,
    RawText,
    StartTag,
    Text,
    Token,
    token_list,
    tokenize,
)
from .parser import HTMLParser, parse_html

__all__ = [
    "Document",
    "Element",
    "Node",
    "TextNode",
    "VOID_ELEMENTS",
    "Token",
    "Doctype",
    "Comment",
    "StartTag",
    "EndTag",
    "Text",
    "RawText",
    "HTMLLexError",
    "tokenize",
    "token_list",
    "HTMLParser",
    "parse_html",
]
