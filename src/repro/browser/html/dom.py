"""Document Object Model.

A real tree of elements and text nodes, each backed by abstract memory
cells so that dataflow through the DOM (parser writes fields, style/layout
read them, JavaScript mutates them) is visible to the slicer.

Cells per node are allocated lazily through :meth:`Node.cell`: ``tag``,
``links`` (tree structure), one cell per attribute, ``text`` for text
nodes, and later stages add ``style:<prop>`` and ``layout:<axis>`` cells.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..context import EngineContext

#: Elements that never have children (HTML void elements).
VOID_ELEMENTS = frozenset(
    "area base br col embed hr img input link meta param source track wbr".split()
)


class Node:
    """Base class for DOM nodes."""

    def __init__(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        self.node_id = ctx.next_node_id()
        self.parent: Optional["Element"] = None
        self._cells: Dict[str, int] = {}

    def cell(self, field: str) -> int:
        """Abstract memory cell backing ``field`` of this node."""
        addr = self._cells.get(field)
        if addr is None:
            addr = self.ctx.memory.alloc_cell(f"dom:{self.node_id}:{field}")
            self._cells[field] = addr
        return addr

    def has_cell(self, field: str) -> bool:
        return field in self._cells

    def ancestors(self) -> Iterator["Element"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent


class TextNode(Node):
    """A run of character data."""

    def __init__(self, ctx: EngineContext, text: str) -> None:
        super().__init__(ctx)
        self.text = text

    def __repr__(self) -> str:
        preview = self.text[:24].replace("\n", " ")
        return f"TextNode({preview!r})"


class Element(Node):
    """An element with a tag name, attributes, and children."""

    def __init__(self, ctx: EngineContext, tag: str) -> None:
        super().__init__(ctx)
        self.tag = tag.lower()
        self.attributes: Dict[str, str] = {}
        self.children: List[Node] = []

    # -- structure ------------------------------------------------------ #

    def append_child(self, child: Node) -> Node:
        if child.parent is not None:
            child.parent.children.remove(child)
        child.parent = self
        self.children.append(child)
        return child

    def insert_before(self, child: Node, reference: Node) -> Node:
        if child.parent is not None:
            child.parent.children.remove(child)
        child.parent = self
        self.children.insert(self.children.index(reference), child)
        return child

    def remove_child(self, child: Node) -> Node:
        self.children.remove(child)
        child.parent = None
        return child

    def child_elements(self) -> List["Element"]:
        return [c for c in self.children if isinstance(c, Element)]

    # -- attributes ------------------------------------------------------ #

    def set_attribute(self, name: str, value: str) -> None:
        self.attributes[name.lower()] = value

    def get_attribute(self, name: str) -> Optional[str]:
        return self.attributes.get(name.lower())

    @property
    def element_id(self) -> Optional[str]:
        return self.attributes.get("id")

    @property
    def classes(self) -> Tuple[str, ...]:
        return tuple(self.attributes.get("class", "").split())

    def has_class(self, name: str) -> bool:
        return name in self.classes

    # -- traversal ------------------------------------------------------- #

    def descendants(self) -> Iterator[Node]:
        """All nodes below this element, depth-first, document order."""
        stack: List[Node] = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Element):
                stack.extend(reversed(node.children))

    def descendant_elements(self) -> Iterator["Element"]:
        for node in self.descendants():
            if isinstance(node, Element):
                yield node

    def text_content(self) -> str:
        parts = []
        for node in self.descendants():
            if isinstance(node, TextNode):
                parts.append(node.text)
        return "".join(parts)

    def __repr__(self) -> str:
        ident = f"#{self.element_id}" if self.element_id else ""
        return f"<{self.tag}{ident} children={len(self.children)}>"


class Document:
    """The document: root element plus lookup indexes."""

    def __init__(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        self.root = Element(ctx, "html")
        self._by_id: Dict[str, Element] = {}

    def register_id(self, element: Element) -> None:
        ident = element.element_id
        if ident:
            self._by_id.setdefault(ident, element)

    def reindex(self) -> None:
        """Rebuild the id index after scripted mutations."""
        self._by_id.clear()
        self.register_id(self.root)
        for element in self.root.descendant_elements():
            self.register_id(element)

    def get_element_by_id(self, ident: str) -> Optional[Element]:
        element = self._by_id.get(ident)
        if element is not None:
            return element
        # Fall back to a scan (mutations may have outdated the index).
        for candidate in self.all_elements():
            if candidate.element_id == ident:
                self._by_id[ident] = candidate
                return candidate
        return None

    def get_elements_by_tag(self, tag: str) -> List[Element]:
        tag = tag.lower()
        return [e for e in self.all_elements() if e.tag == tag]

    def get_elements_by_class(self, name: str) -> List[Element]:
        return [e for e in self.all_elements() if e.has_class(name)]

    def all_elements(self) -> Iterator[Element]:
        yield self.root
        yield from self.root.descendant_elements()

    def element_count(self) -> int:
        return sum(1 for _ in self.all_elements())

    def body(self) -> Optional[Element]:
        for child in self.root.child_elements():
            if child.tag == "body":
                return child
        return None

    def head(self) -> Optional[Element]:
        for child in self.root.child_elements():
            if child.tag == "head":
                return child
        return None
