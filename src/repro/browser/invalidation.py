"""Dirty-bit lattice for the invalidation-driven frame pipeline.

A DOM mutation does not invalidate the whole pipeline: writing
``style.color`` changes painted output but no geometry, while replacing
``textContent`` (same font, same box) changes geometry inputs but not the
computed style of the element itself.  Each mutation therefore carries an
*invalidation level* describing the most expensive pipeline stage it can
affect:

======== ==================== ======================================
level    stages re-run        typical trigger
======== ==================== ======================================
STYLE    style+layout+paint   class/attribute change, structural
                              mutation (append/remove child)
LAYOUT   layout+paint         text content replacement
PAINT    style+paint          paint-only CSS property (color,
                              background-color) via the style proxy
======== ==================== ======================================

``STYLE`` is the top of the lattice; ``LAYOUT`` and ``PAINT`` are
incomparable (one skips style recalc, the other skips layout), so joining
two distinct levels widens to ``STYLE``.  See
docs/incremental-pipeline.md for the full propagation rules.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .html.dom import Document, Element

#: Full invalidation: recompute style, layout, and paint for the subtree.
STYLE = "style"
#: Geometry-only invalidation: keep computed styles, re-run layout+paint.
LAYOUT = "layout"
#: Paint-only invalidation: recompute style (the changed declarations live
#: there) and re-record display items, but keep the layout tree.
PAINT = "paint"

#: All valid levels, for validation.
LEVELS = (STYLE, LAYOUT, PAINT)

#: Which pipeline stages each level dirties.
NEEDS_STYLE_RESOLVE = {STYLE: True, LAYOUT: False, PAINT: True}
NEEDS_LAYOUT = {STYLE: True, LAYOUT: True, PAINT: False}


def join(a: str, b: str) -> str:
    """Least upper bound of two invalidation levels.

    Equal levels join to themselves; any two distinct levels join to
    ``STYLE`` (the top), because LAYOUT and PAINT dirty disjoint stages
    and only the full pipeline covers both.
    """
    if a not in LEVELS or b not in LEVELS:
        raise ValueError(f"unknown invalidation level: {a!r} join {b!r}")
    return a if a == b else STYLE


def is_connected(element: Element, document: Document) -> bool:
    """True if ``element`` is attached to ``document``'s tree.

    Mutations on detached subtrees (removed children still referenced
    from JS) must not dirty the pipeline — their boxes are already gone
    and re-rendering them would be exactly the kind of unnecessary work
    the profiler measures.
    """
    node = element
    while node.parent is not None:
        node = node.parent
    return node is document.root


class DirtySet:
    """Per-frame accumulator of dirty elements with invalidation levels.

    Levels join monotonically (marking an element twice widens, never
    narrows).  ``roots()`` collapses the set so nested dirty elements are
    covered by their closest dirty ancestor — re-rendering an ancestor
    subtree subsumes every descendant's invalidation.
    """

    def __init__(self) -> None:
        self._levels: Dict[Element, str] = {}

    def __len__(self) -> int:
        return len(self._levels)

    def __bool__(self) -> bool:
        return bool(self._levels)

    def __contains__(self, element: Element) -> bool:
        return element in self._levels

    def level_of(self, element: Element) -> str:
        return self._levels[element]

    def mark(self, element: Element, level: str = STYLE) -> None:
        previous = self._levels.get(element)
        self._levels[element] = level if previous is None else join(previous, level)

    def clear(self) -> None:
        self._levels.clear()

    def elements(self) -> Iterable[Element]:
        return self._levels.keys()

    def roots(self) -> List[Tuple[Element, str]]:
        """Minimal covering set of (element, level) pairs.

        An element whose ancestor is also dirty is dropped, after joining
        its level into the ancestor's — the ancestor's re-render covers
        the descendant, but must run the widest pipeline either needs.
        """
        levels = dict(self._levels)
        covered = []
        for element in list(levels):
            ancestor = element.parent
            owner = None
            while ancestor is not None:
                if ancestor in levels:
                    owner = ancestor
                ancestor = ancestor.parent
            if owner is not None:
                covered.append((element, owner))
        for element, owner in covered:
            levels[owner] = join(levels[owner], levels.pop(element))
        return list(levels.items())
