"""Network subsystem: simulated resource loading."""

from .loader import NetworkStack, Resource

__all__ = ["NetworkStack", "Resource"]
