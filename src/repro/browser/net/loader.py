"""Simulated network stack (resource loading on the IO thread).

Fetching a resource models the full path: the renderer asks the browser
process for the resource (IPC), waits out the network latency (virtual
clock idle time — no instructions), then receives the body in MTU-sized
chunks through ``recvfrom`` syscalls that *write the resource's byte
cells*.  Those cells are what the HTML/CSS/JS parsers read, so resource
bytes that end up influencing pixels pull their own network receive path
into the slice — and everything else (unused library bytes) stays out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ...machine.memory import MemRegion
from ..context import BYTES_PER_CELL, EngineContext, IO_THREAD
from ..ipc.channel import IPCChannel

#: simulated bytes delivered per recvfrom
_MTU = 1400

#: cells consumed per recvfrom record (1400 bytes / 64 bytes-per-cell)
_CELLS_PER_CHUNK = max(1, _MTU // BYTES_PER_CELL)


@dataclass
class Resource:
    """One fetched resource."""

    url: str
    kind: str  # "html" | "css" | "js" | "img" | "beacon"
    content: str = ""
    size_bytes: int = 0
    region: Optional[MemRegion] = None
    latency_ms: float = 40.0

    def __post_init__(self) -> None:
        if self.size_bytes == 0:
            self.size_bytes = len(self.content)


class NetworkStack:
    """Resource loading for the tab."""

    def __init__(self, ctx: EngineContext, channel: IPCChannel) -> None:
        self.ctx = ctx
        self.channel = channel
        self.fetched: Dict[str, Resource] = {}
        self.bytes_received = 0

    def fetch(self, resource: Resource) -> Resource:
        """Fetch a resource; must be called with the IO thread current.

        Allocates the resource's byte region, emits the request IPC, idles
        the clock for the latency, and receives the body chunk by chunk.
        """
        ctx = self.ctx
        tracer = ctx.tracer
        if tracer.current_tid != IO_THREAD:
            raise RuntimeError("NetworkStack.fetch must run on the IO thread")

        region = ctx.alloc_bytes(f"res:{resource.url}", resource.size_bytes)
        resource.region = region

        with tracer.function("net::URLLoader::Start"):
            request_cell = self.channel.serialize(
                f"ResourceRequest:{resource.url}", weight=2
            )
            tracer.op("build_request", reads=(request_cell,), writes=(request_cell,))
            tracer.syscall("sendto", reads=(request_cell,))

        ctx.clock.idle(resource.latency_ms * 1000.0)

        ciphertext = ctx.memory.alloc(f"tls:{resource.url}", region.size)
        with tracer.function("net::URLLoader::ReadBody"):
            offset = 0
            chunk_index = 0
            while offset < region.size:
                end = min(offset + _CELLS_PER_CHUNK, region.size)
                wire_cells = ciphertext.cells(offset, end - offset)
                tracer.syscall("recvfrom", writes=wire_cells)
                # TLS record decryption: ciphertext -> plaintext body.
                with tracer.function("net::SSLClientSocket::DoPayloadRead"):
                    for i in range(offset, end, 2):
                        tracer.op(
                            f"decrypt{(i - offset) % 16}",
                            reads=ciphertext.cells(i, min(2, end - i)),
                            writes=region.cells(i, min(2, end - i)),
                        )
                ctx.libc_memcpy(wire_cells[:1] + (region.cell(offset),), (region.cell(offset),), weight=1)
                offset = end
                chunk_index += 1
            self.bytes_received += resource.size_bytes
            ctx.maybe_debug_event()

        self.fetched[resource.url] = resource
        return resource

    def send_beacon(self, url: str, payload_cell: int) -> None:
        """Fire-and-forget analytics beacon (call on the IO thread)."""
        tracer = self.ctx.tracer
        with tracer.function("net::URLLoader::SendBeacon"):
            buffer_cell = self.channel.serialize(f"Beacon:{url}", (payload_cell,), 2)
            tracer.syscall("sendto", reads=(buffer_cell, payload_cell))
