"""IPC channel between the tab (renderer) process and the browser process.

Chromium renderers talk to the single browser process over a message
channel: resource requests, frame swaps, input-event acks, metrics, favicon
updates, ...  Serialization happens on the sending thread; the bytes go out
through a socket on the IO thread (a ``sendto`` on the channel's socket
pair).

Most of this traffic never influences the renderer's own pixels, which is
why IPC ranks high among the paper's unnecessary-computation categories
(the paper leaves cross-process usefulness as future work; so do we, and
faithfully so — the slice is computed for the tab process alone).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..context import EngineContext


class IPCChannel:
    """The renderer side of the browser<->tab message pipe."""

    def __init__(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        self.socket_cell = ctx.memory.alloc_cell("ipc:socket")
        #: synchronization object of the channel: every serialize publishes
        #: the sending thread's history here, every IO-thread flush/receive
        #: imports it (Mojo's message pipe acts as a release/acquire pair).
        self.sync_cell = ctx.memory.alloc_cell("ipc:channel")
        self.sent = 0
        self.received = 0

    def serialize(self, name: str, payload: Tuple[int, ...] = (), weight: int = 3) -> int:
        """Serialize a message on the current thread; returns the buffer cell."""
        tracer = self.ctx.tracer
        buffer_cell = self.ctx.memory.alloc_cell(f"ipc:msg:{name}")
        with tracer.function("ipc::ChannelMojo::Send"):
            tracer.op("header", writes=(buffer_cell,))
            for i in range(weight):
                tracer.op(
                    f"pickle{i % 8}",
                    reads=payload[i % len(payload) : i % len(payload) + 1]
                    if payload
                    else (),
                    writes=(buffer_cell,),
                )
            tracer.sync_release(self.sync_cell, kind="ipc")
        self.sent += 1
        return buffer_cell

    def flush_on_io_thread(self, buffer_cell: int) -> None:
        """Write a serialized message to the socket (call on the IO thread)."""
        tracer = self.ctx.tracer
        with tracer.function("ipc::ChannelMojo::WriteToPipe"):
            tracer.sync_acquire(self.sync_cell, kind="ipc")
            tracer.op("stage", reads=(buffer_cell,), writes=(self.socket_cell,))
            tracer.syscall("sendto", reads=(buffer_cell, self.socket_cell))

    def receive(self, name: str, payload_size: int = 2) -> Tuple[int, ...]:
        """Receive a browser-process message (call on the IO thread).

        Returns the cells holding the deserialized payload.
        """
        tracer = self.ctx.tracer
        cells = tuple(
            self.ctx.memory.alloc_cell(f"ipc:in:{name}:{i}") for i in range(payload_size)
        )
        with tracer.function("ipc::ChannelMojo::OnMessageReceived"):
            tracer.sync_acquire(self.sync_cell, kind="ipc")
            tracer.syscall("recvfrom", writes=cells)
            for i, cell in enumerate(cells):
                tracer.op(f"unpickle{i % 8}", reads=(cell,), writes=(cell,))
        self.received += 1
        return cells

    def send_from(self, name: str, payload: Tuple[int, ...] = (), weight: int = 3) -> int:
        """Serialize on the current thread; engine must flush on IO later."""
        return self.serialize(name, payload, weight)
