"""IPC subsystem: the renderer<->browser process channel."""

from .channel import IPCChannel

__all__ = ["IPCChannel"]
