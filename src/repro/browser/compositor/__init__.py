"""Compositor subsystem: tiles, backing stores, raster, occlusion, draw."""

from .host import CompositorHost, RasterTask
from .tiles import BLOCKS_PER_SIDE, CompositedLayer, Tile

__all__ = [
    "CompositorHost",
    "RasterTask",
    "CompositedLayer",
    "Tile",
    "BLOCKS_PER_SIDE",
]
