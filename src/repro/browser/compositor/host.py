"""The compositor host: commit, tile management, raster, occlusion, draw.

Runs the last stage of the paper's Figure 1 pipeline:

* **commit** (compositor thread) — copies the main thread's display lists
  and layer properties into cc-side structures (the data raster consumes);
* **tile preparation** (compositor thread) — decides which tiles to raster
  (everything in the interest area: viewport + prepaint margin, *including
  occluded layers' backing stores* — Chromium's blind-backing-store
  pitfall) and which of them are actually going to be displayed;
* **raster** (CompositorTileWorker threads) — plays display items back
  into tile pixel buffers; for tiles that will be displayed it emits the
  paper's marker (``xchg %r13w,%r13w`` in
  ``RasterBufferProvider::PlaybackToMemory``) with the tile's pixel cells —
  these are the pixel-slicing criteria;
* **draw** (compositor thread) — reads visible tiles' pixels into the
  framebuffer and hands the frame to the display (an output syscall, so
  syscall-based slicing subsumes pixel-based slicing).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...machine.memory import MemRegion
from ...machine.tracer import TILE_MARKER
from ..context import EngineContext, PIXEL_BLOCK
from ..layout.geometry import Rect
from ..paint.display_list import DisplayItem, PaintLayer
from .tiles import CompositedLayer, Tile


@dataclass
class RasterTask:
    """A unit of work for a rasterizer thread."""

    layer: CompositedLayer
    tile: Tile
    #: the tile's pixels will be put on the display for the pending frame
    presented: bool
    #: low-resolution duplicate raster (never displayed in steady state)
    low_res: bool = False


class CompositorHost:
    """cc::LayerTreeHostImpl equivalent for the tab."""

    def __init__(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        self.layers: List[CompositedLayer] = []
        vw = ctx.config.viewport_width
        vh = ctx.config.viewport_height
        blocks = max(1, (vw // PIXEL_BLOCK) * (vh // PIXEL_BLOCK))
        self.framebuffer: MemRegion = ctx.memory.alloc("framebuffer", blocks)
        self.scroll_y = 0.0
        self.scroll_cell = ctx.memory.alloc_cell("cc:scroll_offset")
        #: animation timeline state (curve evaluation feeds transforms)
        self.animation_cell = ctx.memory.alloc_cell("cc:animation_timeline")
        self.frame_count = 0
        #: one semantic digest per drawn frame (see :meth:`draw_frame`);
        #: value-based (geometry + colors + content, no cell ids), so two
        #: runs draw identical pixels iff their digest lists are equal.
        self.frame_digests: List[str] = []

    # ------------------------------------------------------------------ #
    # Commit (compositor thread)                                         #
    # ------------------------------------------------------------------ #

    def commit(self, paint_layers: List[PaintLayer]) -> None:
        """Adopt a new layer tree from the main thread."""
        tracer = self.ctx.tracer
        self.layers = []
        with tracer.function("cc::LayerTreeHostImpl::CommitComplete"), self.ctx.lock(
            "cc:lock:tree"
        ).held():
            for paint_layer in paint_layers:
                layer = CompositedLayer(self.ctx, paint_layer)
                self.layers.append(layer)
                tracer.op(
                    "update_property_tree",
                    reads=(
                        paint_layer.owner.cell("layer")
                        if paint_layer.owner is not None
                        else self.scroll_cell,
                    ),
                    writes=(layer.property_cell,),
                )
                self._commit_items(layer)
            # cc keeps layers z-sorted for draw order.
            self.layers.sort(key=lambda l: (l.paint.z_index, l.paint.layer_id))
            self.ctx.maybe_debug_event()

    def _commit_items(self, layer: CompositedLayer) -> None:
        tracer = self.ctx.tracer
        layer.cc_items = []
        for i, item in enumerate(layer.paint.items):
            cc_cell = self.ctx.memory.alloc_cell(
                f"cc:item:L{layer.paint.layer_id}:{i}"
            )
            tracer.op(
                f"copy_item{i % 32}",
                reads=item.cells,
                writes=(cc_cell,),
            )
            # Insert into the layer's spatial index (rtree), which raster
            # probes to find the items covering each tile.
            tracer.op(
                f"rtree_insert{i % 32}",
                reads=(cc_cell, layer.index_cell),
                writes=(layer.index_cell,),
            )
            layer.cc_items.append((item, cc_cell))

    def recommit_layer(self, layer: CompositedLayer) -> None:
        """Re-copy one dirty layer's display list after a repaint."""
        with self.ctx.tracer.function("cc::LayerTreeHostImpl::UpdateLayer"), self.ctx.lock(
            "cc:lock:tree"
        ).held():
            self._commit_items(layer)

    def recommit_span(
        self,
        layer: CompositedLayer,
        start: int,
        n_removed: int,
        added: List[DisplayItem],
    ) -> None:
        """Splice one repainted subtree's items into the cc-side list.

        The incremental-commit counterpart of
        ``Painter.repaint_subtree``: only the ``added`` items are copied
        and re-indexed; everything outside the span keeps its committed
        cells, so commit cost scales with the dirty subtree, not the
        layer.
        """
        tracer = self.ctx.tracer
        with tracer.function("cc::LayerTreeHostImpl::UpdateLayer"), self.ctx.lock(
            "cc:lock:tree"
        ).held():
            fresh = []
            for j, item in enumerate(added):
                cc_cell = self.ctx.memory.alloc_cell(
                    f"cc:item:L{layer.paint.layer_id}:{start + j}"
                )
                tracer.op(f"copy_item{j % 32}", reads=item.cells, writes=(cc_cell,))
                tracer.op(
                    f"rtree_insert{j % 32}",
                    reads=(cc_cell, layer.index_cell),
                    writes=(layer.index_cell,),
                )
                fresh.append((item, cc_cell))
            layer.cc_items[start : start + n_removed] = fresh
            self.ctx.maybe_debug_event()

    # ------------------------------------------------------------------ #
    # Tile management (compositor thread)                                #
    # ------------------------------------------------------------------ #

    def viewport_rect(self) -> Rect:
        return Rect(
            0,
            self.scroll_y,
            float(self.ctx.config.viewport_width),
            float(self.ctx.config.viewport_height),
        )

    def _effective_bounds(self, layer: CompositedLayer) -> Rect:
        """Layer bounds in document space (fixed layers track the scroll)."""
        if layer.paint.fixed:
            return layer.paint.bounds.translate(0, self.scroll_y)
        return layer.paint.bounds

    def _effective_tile_rect(self, layer: CompositedLayer, tile: Tile) -> Rect:
        if layer.paint.fixed:
            return tile.rect.translate(0, self.scroll_y)
        return tile.rect

    def occluded(self, layer: CompositedLayer, rect: Rect) -> bool:
        """Is ``rect`` (document space) fully hidden by opaque layers above?"""
        index = self.layers.index(layer)
        for above in self.layers[index + 1 :]:
            if not above.paint.opaque or above.paint.opacity < 1.0:
                continue
            if self._effective_bounds(above).contains_rect(rect):
                return True
        return False

    def prepare_raster_tasks(self) -> List[RasterTask]:
        """Schedule raster work for the pending frame (traced)."""
        tracer = self.ctx.tracer
        tasks: List[RasterTask] = []
        low_res_tasks: List[RasterTask] = []
        viewport = self.viewport_rect()
        margin = float(self.ctx.config.interest_margin)
        interest = Rect(
            viewport.x,
            max(0.0, viewport.y - margin),
            viewport.w,
            viewport.h + 2 * margin,
        )
        with tracer.function("cc::TileManager::PrepareTiles"), self.ctx.lock(
            "cc:lock:tiles"
        ).held():
            for layer in self.layers:
                tracer.op(
                    "layer_priorities",
                    reads=(layer.priority_cell, self.scroll_cell),
                    writes=(layer.priority_cell,),
                )
                # One visibility decision per layer; per-tile bin visits
                # walk the tiling data (priority bookkeeping, no branches —
                # the real TileManager iterates spatial bins).
                tracer.compare_and_branch(
                    "layer_in_interest",
                    reads=(layer.property_cell, self.scroll_cell),
                )
                for tile in layer.tiles.values():
                    effective = self._effective_tile_rect(layer, tile)
                    tracer.op(
                        "visit_tile",
                        reads=(layer.property_cell, self.scroll_cell),
                        writes=(layer.priority_cell,),
                    )
                    if not effective.intersects(interest):
                        continue
                    if not tile.dirty and tile.rastered:
                        continue
                    # A tile is displayed only where it holds layer content
                    # inside the viewport (tile squares overhang the layer
                    # bounds at the edges).
                    content = effective.intersection(self._effective_bounds(layer))
                    visible_part = (
                        content.intersection(viewport) if content is not None else None
                    )
                    presented = visible_part is not None and not self.occluded(
                        layer, visible_part
                    )
                    # Build the RasterTask: the raster source reference the
                    # worker thread will consume.
                    tracer.op(
                        "create_raster_task",
                        reads=(layer.index_cell, layer.property_cell),
                        writes=(tile.source_cell,),
                    )
                    tasks.append(RasterTask(layer=layer, tile=tile, presented=presented))
                    if self.ctx.config.raster_low_res:
                        tracer.op(
                            "create_low_res_task",
                            reads=(layer.index_cell, layer.property_cell),
                            writes=(tile.source_cell,),
                        )
                        low_res_tasks.append(
                            RasterTask(
                                layer=layer, tile=tile, presented=False, low_res=True
                            )
                        )
            self.ctx.maybe_debug_event()
        # Low-res duplicates are scheduled after the required tiles.
        tasks.extend(low_res_tasks)
        return tasks

    # ------------------------------------------------------------------ #
    # Raster (CompositorTileWorker threads)                              #
    # ------------------------------------------------------------------ #

    def raster_tile(self, task: RasterTask) -> None:
        """Play the layer's display list back into the tile's pixels.

        Must be called with the tracer switched to a rasterizer thread.
        The display-list walk probes the layer's spatial index; actual
        pixel work happens per 64x64 block inside skia draw calls, so
        raster cost is proportional to covered area, as on real hardware.
        """
        tracer = self.ctx.tracer
        layer, tile = task.layer, task.tile
        if task.low_res:
            self._raster_low_res(task)
            return
        # Raster reads the committed tree and writes tile state: take the
        # tree lock then the tile-manager lock, in that (canonical) order.
        with tracer.function("cc::RasterBufferProvider::PlaybackToMemory"), self.ctx.lock(
            "cc:lock:tree"
        ).held(), self.ctx.lock("cc:lock:tiles").held():
            tracer.op(
                "setup_playback",
                reads=(tile.source_cell, layer.property_cell, layer.index_cell),
                writes=(tile.pixels.cell(0),),
            )
            for i, (item, cc_cell) in enumerate(layer.items_for_tile(tile)):
                tracer.compare_and_branch(f"clip{i % 32}", reads=(cc_cell,))
                blocks = tile.block_cells_for(item.rect)
                if not blocks:
                    continue
                self._skia_draw(item, cc_cell, blocks)
            tile.rastered = True
            tile.dirty = False
            if task.presented:
                # The paper's slicing criterion: the pixels buffer at the
                # point it holds final displayed values.
                tracer.marker(TILE_MARKER, cells=tile.pixel_cells())
                tile.marked = True
        self.ctx.maybe_debug_event()

    def _raster_low_res(self, task: RasterTask) -> None:
        """Raster the quarter-resolution duplicate of a tile.

        Low-res tiles exist so something can be shown during fast scrolls;
        in a session without one they are never displayed, so this whole
        playback is wasted work (no marker is ever emitted for it).
        """
        tracer = self.ctx.tracer
        layer, tile = task.layer, task.tile
        lowres = tile.lowres_pixels
        with tracer.function("cc::RasterBufferProvider::PlaybackToMemory"), self.ctx.lock(
            "cc:lock:tree"
        ).held(), self.ctx.lock("cc:lock:tiles").held():
            tracer.op(
                "setup_low_res",
                reads=(tile.source_cell, layer.property_cell),
                writes=(lowres.cell(0),),
            )
            for i, (item, cc_cell) in enumerate(layer.items_for_tile(tile)):
                tracer.compare_and_branch(f"clip_lr{i % 32}", reads=(cc_cell,))
                with tracer.function(self._SKIA_FN.get(item.kind, "skia::SkCanvas::drawRect")):
                    for b in range(min(4, lowres.size)):
                        tracer.op(
                            f"fill_lowres{b}",
                            reads=(cc_cell, lowres.cell(b)),
                            writes=(lowres.cell(b),),
                        )
        self.ctx.maybe_debug_event()

    _SKIA_FN = {
        "background": "skia::SkCanvas::drawRect",
        "border": "skia::SkCanvas::drawRect",
        "text": "skia::SkCanvas::drawTextBlob",
        "image": "skia::SkCanvas::drawImageRect",
    }

    def _skia_draw(self, item, cc_cell: int, blocks) -> None:
        """Fill the covered pixel blocks (one record per block).

        Blending reads the block's existing value (anti-aliasing, alpha,
        partial coverage), so earlier draws under later ones stay in the
        dataflow — a text run over a background does not dead-kill the
        background's pixels.
        """
        tracer = self.ctx.tracer
        n_sources = len(item.source_cells)
        with tracer.function(self._SKIA_FN.get(item.kind, "skia::SkCanvas::drawRect")):
            for b, block in enumerate(blocks):
                if n_sources:
                    # Spread the decoded-bitmap reads across the blocks.
                    per = max(1, n_sources // len(blocks))
                    start = (b * per) % n_sources
                    sources = item.source_cells[start : start + per]
                else:
                    sources = ()
                tracer.op(
                    f"fill_block{b % 16}",
                    reads=(cc_cell, block) + tuple(sources),
                    writes=(block,),
                )
                if b % 2 == 0:
                    self.ctx.plain_helper(
                        "S32A_Opaque_BlitRow32", reads=(cc_cell, block), writes=(block,)
                    )
                if b % 4 == 0:
                    # Row copies go through the C runtime (read-modify-write
                    # like every other blend into the block).
                    self.ctx.libc_memcpy((cc_cell, block), (block,), weight=1)

    # ------------------------------------------------------------------ #
    # Draw (compositor thread)                                           #
    # ------------------------------------------------------------------ #

    def draw_frame(self) -> Tuple[int, ...]:
        """Draw visible tiles into the framebuffer; returns its cells."""
        tracer = self.ctx.tracer
        viewport = self.viewport_rect()
        self.frame_count += 1
        snapshot: List[Tuple] = [("scroll", round(self.scroll_y, 3))]
        with tracer.function("cc::LayerTreeHostImpl::DrawLayers"), self.ctx.lock(
            "cc:lock:tree"
        ).held():
            for order, layer in enumerate(self.layers):
                tracer.compare_and_branch(
                    "layer_visible", reads=(layer.property_cell,)
                )
                if not self._effective_bounds(layer).intersects(viewport):
                    continue
                for tile in layer.tiles.values():
                    effective = self._effective_tile_rect(layer, tile)
                    content = effective.intersection(self._effective_bounds(layer))
                    visible_part = (
                        content.intersection(viewport) if content is not None else None
                    )
                    if visible_part is None or not tile.rastered:
                        continue
                    if self.occluded(layer, visible_part):
                        continue
                    if not tile.marked:
                        # A prepainted tile scrolled into view: its pixels
                        # are now going to the display; anchor the
                        # criterion here (equivalent to instrumenting the
                        # draw-quad upload).
                        tracer.marker(TILE_MARKER, cells=tile.pixel_cells())
                        tile.marked = True
                    snapshot.append(self._tile_snapshot(order, layer, tile, visible_part))
                    tracer.op(
                        "draw_quad",
                        reads=tile.pixel_cells()[:8] + (layer.property_cell,),
                        writes=self._fb_cells_for(visible_part, viewport),
                    )
                    # Texture upload to the GPU process: reads pixels,
                    # writes nothing the renderer reads back.
                    if tile.col % 2 == 0:
                        self.ctx.plain_helper(
                            "glTexSubImage2D", reads=tile.pixel_cells()[8:10]
                        )
            self.ctx.maybe_debug_event()
        digest = hashlib.sha256(repr(snapshot).encode()).hexdigest()
        self.frame_digests.append(digest)
        return self.framebuffer.all_cells()

    def _tile_snapshot(
        self, order: int, layer: CompositedLayer, tile: Tile, visible_part: Rect
    ) -> Tuple:
        """A value-based description of what one drawn tile shows.

        Captures draw order, geometry, and the display items' visual
        content (kind, rect, color, opacity, text/src detail) — but no
        abstract cell ids or node ids, which are allocation-order
        artifacts that may legally differ between otherwise
        pixel-identical runs.  Pure bookkeeping: emits no trace records,
        so existing trace goldens are unaffected.
        """

        def _rect(r: Rect) -> Tuple[float, float, float, float]:
            return (round(r.x, 3), round(r.y, 3), round(r.w, 3), round(r.h, 3))

        items = tuple(
            (item.kind, _rect(item.rect), str(item.color), item.opaque,
             round(layer.paint.opacity, 4), item.detail)
            for item, _cc_cell in layer.items_for_tile(tile)
            if item.rect.intersects(visible_part)
        )
        return (
            "tile", order, layer.paint.z_index, layer.paint.fixed,
            tile.col, tile.row, _rect(visible_part), items,
        )

    def _fb_cells_for(self, rect: Rect, viewport: Rect) -> Tuple[int, ...]:
        """Framebuffer block cells covered by a viewport-space rect."""
        local = rect.translate(-viewport.x, -viewport.y)
        cols = max(1, int(viewport.w) // PIXEL_BLOCK)
        rows = max(1, int(viewport.h) // PIXEL_BLOCK)
        cells: List[int] = []
        col0 = max(0, int(local.x // PIXEL_BLOCK))
        row0 = max(0, int(local.y // PIXEL_BLOCK))
        col1 = min(cols - 1, int((local.right - 1) // PIXEL_BLOCK))
        row1 = min(rows - 1, int((local.bottom - 1) // PIXEL_BLOCK))
        for row in range(row0, row1 + 1):
            for col in range(col0, col1 + 1):
                index = row * cols + col
                if index < self.framebuffer.size:
                    cells.append(self.framebuffer.cell(index))
        return tuple(cells)

    # ------------------------------------------------------------------ #
    # BeginFrame ticks (vsync-driven compositor bookkeeping)             #
    # ------------------------------------------------------------------ #

    def begin_frame_tick(self, draw: bool = True, update_priorities: bool = True) -> None:
        """One vsync tick: animations, draw properties, tile priorities.

        This is the compositor thread's steady-state work while anything
        on the page animates: recompute draw properties and tile
        priorities for every layer and backing-store tile — visible or
        not (the blind backing-store upkeep the paper calls out) — then
        redraw.
        """
        tracer = self.ctx.tracer
        with tracer.function("cc::Scheduler::BeginImplFrame"):
            tracer.op(
                "frame_args", reads=(self.scroll_cell,), writes=(self.scroll_cell,)
            )
        self.ctx.debug_event(weight=3)  # per-frame trace events
        self.ctx.plain_helper("__tls_get_addr")
        self.ctx.plain_helper("pthread_getspecific")
        with tracer.function("cc::AnimationHost::TickAnimations"):
            for i in range(3):
                tracer.op(
                    f"evaluate_curve{i}",
                    reads=(self.animation_cell,),
                    writes=(self.animation_cell,),
                )
        with tracer.function("cc::LayerTreeHostImpl::UpdateDrawProperties"), self.ctx.lock(
            "cc:lock:tree"
        ).held():
            for layer in self.layers:
                tracer.op(
                    "update_transforms",
                    reads=(layer.property_cell, self.scroll_cell, self.animation_cell),
                    writes=(layer.property_cell,),
                )
                tracer.compare_and_branch(
                    "layer_animating", reads=(layer.property_cell,)
                )
                if not update_priorities:
                    continue
                n_tiles = len(layer.tiles)
                for j, tile in enumerate(layer.tiles.values()):
                    if j % 2:
                        continue
                    tracer.op(
                        f"tile_priority{j % 64}",
                        reads=(layer.priority_cell, self.scroll_cell),
                        writes=(layer.priority_cell,),
                    )
                # The other half of the walk is stdlib heap maintenance
                # (inlined std::push_heap / PartitionAlloc in the real
                # binary — uncategorizable by namespace analysis).
                if n_tiles > 1:
                    self.ctx.plain_bulk("std_push_heap", weight=n_tiles // 2)
            self.ctx.maybe_debug_event()
        if draw:
            self.draw_frame()

    # ------------------------------------------------------------------ #
    # Scroll (compositor-thread fast path)                               #
    # ------------------------------------------------------------------ #

    def scroll_by(self, delta_y: float) -> None:
        """Compositor-handled scroll: no main-thread involvement."""
        tracer = self.ctx.tracer
        with tracer.function("cc::InputHandler::ScrollBy"):
            self.scroll_y = max(0.0, self.scroll_y + delta_y)
            tracer.op(
                "update_scroll_offset",
                reads=(self.scroll_cell,),
                writes=(self.scroll_cell,),
            )

    # ------------------------------------------------------------------ #
    # Invalidation (after main-thread repaints)                          #
    # ------------------------------------------------------------------ #

    def invalidate(self, rect: Rect) -> int:
        """Dirty all tiles intersecting ``rect``; returns the tile count."""
        total = 0
        with self.ctx.tracer.function("cc::LayerTreeHostImpl::SetNeedsRedraw"), self.ctx.lock(
            "cc:lock:tree"
        ).held():
            for layer in self.layers:
                count = layer.invalidate(rect)
                if count:
                    self.ctx.tracer.op(
                        "mark_dirty_tiles",
                        reads=(layer.property_cell,),
                        writes=(layer.property_cell,),
                    )
                total += count
        return total

    def layer_for(self, paint_layer: PaintLayer) -> Optional[CompositedLayer]:
        for layer in self.layers:
            if layer.paint is paint_layer:
                return layer
        return None

    def total_tiles(self) -> int:
        return sum(layer.tile_count() for layer in self.layers)
