"""Tiles and composited layers (cc's tiling model).

Each composited layer owns a grid of 256x256 tiles covering its bounds;
each tile owns a pixel buffer of 16 abstract cells (one per 64x64 pixel
block).  Backing stores exist for every layer whether or not it is ever
shown — Chromium's compositing design pitfall the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ...machine.memory import MemRegion
from ..context import EngineContext, PIXEL_BLOCK, TILE_SIZE
from ..layout.geometry import Rect
from ..paint.display_list import DisplayItem, PaintLayer

#: pixel cells per tile side (256 / 64 = 4; 16 cells per tile)
BLOCKS_PER_SIDE = TILE_SIZE // PIXEL_BLOCK


class Tile:
    """One 256x256 tile of a layer's backing store."""

    __slots__ = ("layer_id", "col", "row", "rect", "pixels", "rastered", "marked",
                 "dirty", "source_cell", "_ctx", "_lowres")

    def __init__(
        self, ctx: EngineContext, layer_id: int, col: int, row: int, rect: Rect
    ) -> None:
        self.layer_id = layer_id
        self.col = col
        self.row = row
        self.rect = rect
        self.pixels: MemRegion = ctx.memory.alloc(
            f"tilebuf:L{layer_id}:{col},{row}", BLOCKS_PER_SIDE * BLOCKS_PER_SIDE
        )
        #: the RasterSource reference written when the tile is scheduled
        #: (TileManager) and consumed by the raster worker.
        self.source_cell = ctx.memory.alloc_cell(f"cc:rastersrc:L{layer_id}:{col},{row}")
        self.rastered = False
        #: a TILE_MARKER was emitted for this tile's pixels
        self.marked = False
        #: content changed since last raster
        self.dirty = True
        self._ctx = ctx
        self._lowres: Optional[MemRegion] = None

    @property
    def lowres_pixels(self) -> MemRegion:
        """Low-resolution duplicate buffer (allocated on first use)."""
        if self._lowres is None:
            self._lowres = self._ctx.memory.alloc(
                f"tilebuf-lowres:L{self.layer_id}:{self.col},{self.row}", 4
            )
        return self._lowres

    def pixel_cells(self) -> Tuple[int, ...]:
        return self.pixels.all_cells()

    def block_cells_for(self, rect: Rect) -> Tuple[int, ...]:
        """Pixel-block cells covered by ``rect`` (document space)."""
        overlap = self.rect.intersection(rect)
        if overlap is None:
            return ()
        cells: List[int] = []
        for row in range(BLOCKS_PER_SIDE):
            for col in range(BLOCKS_PER_SIDE):
                block = Rect(
                    self.rect.x + col * PIXEL_BLOCK,
                    self.rect.y + row * PIXEL_BLOCK,
                    PIXEL_BLOCK,
                    PIXEL_BLOCK,
                )
                if block.intersects(overlap):
                    cells.append(self.pixels.cell(row * BLOCKS_PER_SIDE + col))
        return tuple(cells)

    def __repr__(self) -> str:
        return f"Tile(L{self.layer_id} {self.col},{self.row} {self.rect})"


class CompositedLayer:
    """cc-side twin of a paint layer, with its backing-store tile grid."""

    def __init__(self, ctx: EngineContext, paint_layer: PaintLayer) -> None:
        self.ctx = ctx
        self.paint = paint_layer
        self.tiles: Dict[Tuple[int, int], Tile] = {}
        #: cc-side copies of the display items (committed from the main
        #: thread); raster reads these, not the blink-side originals.
        self.cc_items: List[Tuple[DisplayItem, int]] = []
        #: cc-side property cells (transform/position), read at raster.
        self.property_cell = ctx.memory.alloc_cell(
            f"cc:props:L{paint_layer.layer_id}"
        )
        #: spatial display-item index built at commit, probed at raster.
        self.index_cell = ctx.memory.alloc_cell(
            f"cc:rtree:L{paint_layer.layer_id}"
        )
        #: tile-priority bookkeeping (scheduling-only state: read by the
        #: tile manager's decisions, never by pixel-producing code).
        self.priority_cell = ctx.memory.alloc_cell(
            f"cc:priority:L{paint_layer.layer_id}"
        )
        self._build_grid()

    def _build_grid(self) -> None:
        bounds = self.paint.bounds
        if bounds.is_empty():
            return
        col0 = int(bounds.x // TILE_SIZE)
        row0 = int(bounds.y // TILE_SIZE)
        col1 = int((bounds.right - 1) // TILE_SIZE)
        row1 = int((bounds.bottom - 1) // TILE_SIZE)
        for row in range(row0, row1 + 1):
            for col in range(col0, col1 + 1):
                rect = Rect(col * TILE_SIZE, row * TILE_SIZE, TILE_SIZE, TILE_SIZE)
                self.tiles[(col, row)] = Tile(
                    self.ctx, self.paint.layer_id, col, row, rect
                )

    def items_for_tile(self, tile: Tile) -> List[Tuple[DisplayItem, int]]:
        """Display items whose rect intersects ``tile`` (spatial query)."""
        return [
            (item, cc_cell)
            for item, cc_cell in self.cc_items
            if item.rect.intersects(tile.rect)
        ]

    def tiles_intersecting(self, rect: Rect) -> Iterator[Tile]:
        for tile in self.tiles.values():
            if tile.rect.intersects(rect):
                yield tile

    def tile_count(self) -> int:
        return len(self.tiles)

    def invalidate(self, rect: Rect) -> int:
        """Mark tiles intersecting ``rect`` dirty; returns how many."""
        count = 0
        # Dirty bits are tile-manager state shared with the raster path.
        with self.ctx.lock("cc:lock:tiles").held():
            for tile in self.tiles_intersecting(rect):
                tile.dirty = True
                count += 1
        return count

    def __repr__(self) -> str:
        return f"CompositedLayer({self.paint!r}, tiles={len(self.tiles)})"
