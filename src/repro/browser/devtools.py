"""DevTools-style inspectors over a loaded engine.

Text dumps of the DOM tree, layer tree, and a DevTools-Coverage-like
combined JS+CSS coverage report — handy when developing workloads and in
examples/tests.
"""

from __future__ import annotations

from typing import List, Optional

from .engine import BrowserEngine
from .html.dom import Element, Node, TextNode


def dump_dom(
    engine: BrowserEngine, max_depth: int = 6, max_text: int = 30
) -> str:
    """Indented DOM tree (elements with id/class, truncated text)."""
    if engine.document is None:
        return "(no document)"
    lines: List[str] = []

    def walk(node: Node, depth: int) -> None:
        indent = "  " * depth
        if isinstance(node, TextNode):
            text = node.text.strip().replace("\n", " ")
            if text:
                shown = text[:max_text] + ("…" if len(text) > max_text else "")
                lines.append(f'{indent}"{shown}"')
            return
        if not isinstance(node, Element):
            return
        ident = f" id={node.element_id}" if node.element_id else ""
        cls = f" class={' '.join(node.classes)}" if node.classes else ""
        lines.append(f"{indent}<{node.tag}{ident}{cls}>")
        if depth < max_depth:
            for child in node.children:
                walk(child, depth + 1)
        elif node.children:
            lines.append(f"{indent}  … ({len(node.children)} children)")

    walk(engine.document.root, 0)
    return "\n".join(lines)


def dump_layers(engine: BrowserEngine) -> str:
    """Layer tree with tile/raster/presentation statistics."""
    lines = ["layer tree (z order, bottom to top):"]
    for layer in engine.compositor.layers:
        paint = layer.paint
        owner = paint.owner.element_id or paint.owner.tag if paint.owner else "(root)"
        tiles = list(layer.tiles.values())
        rastered = sum(1 for t in tiles if t.rastered)
        presented = sum(1 for t in tiles if t.marked)
        lines.append(
            f"  z={paint.z_index:>3d} {owner:<16s} bounds={paint.bounds} "
            f"opaque={paint.opaque} items={len(paint.items)} "
            f"tiles={len(tiles)} rastered={rastered} presented={presented}"
        )
    return "\n".join(lines)


def coverage_report(engine: BrowserEngine) -> str:
    """Combined JS+CSS byte coverage, DevTools-Coverage style."""
    lines = ["coverage (bytes used / total):"]
    if engine.interp is not None:
        for script in engine.interp.coverage.scripts():
            used = script.used_bytes()
            lines.append(
                f"  JS  {script.name:<24s} {used:>8d} / {script.total_bytes:>8d} "
                f"({used / script.total_bytes:>4.0%})" if script.total_bytes else
                f"  JS  {script.name:<24s} (empty)"
            )
    for sheet in engine.cssom.sheets:
        if not sheet.source_bytes:
            continue
        used = sheet.used_bytes()
        lines.append(
            f"  CSS {sheet.name:<24s} {used:>8d} / {sheet.source_bytes:>8d} "
            f"({used / sheet.source_bytes:>4.0%})"
        )
    return "\n".join(lines)
