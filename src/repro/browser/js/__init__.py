"""Mini-JavaScript engine: lexer, parser, interpreter, browser bindings,
and byte-coverage tracking (for Table I)."""

from .coverage import CoverageTracker, ScriptCoverage, collect_functions, merge_spans
from .interpreter import Interpreter
from .lexer import JSLexError, JSToken, tokenize_js
from .parser import JSParseError, JSParser, parse_js
from .runtime import BrowserHooks, JSRuntime
from .values import (
    TV,
    Environment,
    JSArray,
    JSError,
    JSFunction,
    JSObject,
    JSReferenceError,
    JSTypeError,
    NativeFunction,
    js_to_number,
    js_to_string,
    js_truthy,
    js_typeof,
)

__all__ = [
    "tokenize_js",
    "JSToken",
    "JSLexError",
    "parse_js",
    "JSParser",
    "JSParseError",
    "Interpreter",
    "JSRuntime",
    "BrowserHooks",
    "CoverageTracker",
    "ScriptCoverage",
    "collect_functions",
    "merge_spans",
    "TV",
    "Environment",
    "JSObject",
    "JSArray",
    "JSFunction",
    "NativeFunction",
    "JSError",
    "JSReferenceError",
    "JSTypeError",
    "js_truthy",
    "js_to_number",
    "js_to_string",
    "js_typeof",
]
