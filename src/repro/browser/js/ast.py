"""Abstract syntax tree of the mini-JavaScript language.

Every node has a unique ``node_id`` (used as a stable emit-site label by
the traced interpreter, so the same static AST node always executes at the
same pc) and a byte ``span`` (for lazy-compilation cost and byte-coverage
accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

_next_node_id = 0


def _new_id() -> int:
    global _next_node_id
    _next_node_id += 1
    return _next_node_id


@dataclass
class JSNode:
    span: Tuple[int, int]
    node_id: int = field(default_factory=_new_id, init=False)


# --------------------------------------------------------------------- #
# Expressions                                                           #
# --------------------------------------------------------------------- #


@dataclass
class Literal(JSNode):
    value: object = None  # float | str | bool | None


@dataclass
class Identifier(JSNode):
    name: str = ""


@dataclass
class ThisExpr(JSNode):
    pass


@dataclass
class ArrayLiteral(JSNode):
    elements: List[JSNode] = field(default_factory=list)


@dataclass
class ObjectLiteral(JSNode):
    #: (key, value-expression) pairs
    entries: List[Tuple[str, JSNode]] = field(default_factory=list)


@dataclass
class FunctionExpr(JSNode):
    name: Optional[str] = None
    params: List[str] = field(default_factory=list)
    body: List[JSNode] = field(default_factory=list)


@dataclass
class Unary(JSNode):
    op: str = ""
    operand: JSNode = None
    prefix: bool = True


@dataclass
class Binary(JSNode):
    op: str = ""
    left: JSNode = None
    right: JSNode = None


@dataclass
class Logical(JSNode):
    op: str = ""  # "&&" | "||"
    left: JSNode = None
    right: JSNode = None


@dataclass
class Conditional(JSNode):
    test: JSNode = None
    consequent: JSNode = None
    alternate: JSNode = None


@dataclass
class Assignment(JSNode):
    op: str = "="  # "=", "+=", "-=", "*=", "/="
    target: JSNode = None  # Identifier or Member
    value: JSNode = None


@dataclass
class UpdateExpr(JSNode):
    op: str = ""  # "++" | "--"
    target: JSNode = None
    prefix: bool = False


@dataclass
class Member(JSNode):
    obj: JSNode = None
    #: static property name, or None when computed
    prop: Optional[str] = None
    #: computed index expression when ``prop`` is None
    index: Optional[JSNode] = None


@dataclass
class Call(JSNode):
    callee: JSNode = None
    args: List[JSNode] = field(default_factory=list)
    is_new: bool = False


# --------------------------------------------------------------------- #
# Statements                                                            #
# --------------------------------------------------------------------- #


@dataclass
class VarDecl(JSNode):
    kind: str = "var"
    name: str = ""
    init: Optional[JSNode] = None


@dataclass
class FunctionDecl(JSNode):
    func: FunctionExpr = None


@dataclass
class ExpressionStmt(JSNode):
    expr: JSNode = None


@dataclass
class IfStmt(JSNode):
    test: JSNode = None
    consequent: List[JSNode] = field(default_factory=list)
    alternate: List[JSNode] = field(default_factory=list)


@dataclass
class WhileStmt(JSNode):
    test: JSNode = None
    body: List[JSNode] = field(default_factory=list)


@dataclass
class DoWhileStmt(JSNode):
    test: JSNode = None
    body: List[JSNode] = field(default_factory=list)


@dataclass
class ForInStmt(JSNode):
    #: loop variable name (declared with var/let/const or bare)
    name: str = ""
    obj: JSNode = None
    body: List[JSNode] = field(default_factory=list)


@dataclass
class SwitchStmt(JSNode):
    discriminant: JSNode = None
    #: (case test expression or None for default, statements)
    cases: List[Tuple[Optional[JSNode], List[JSNode]]] = field(default_factory=list)


@dataclass
class ForStmt(JSNode):
    init: Optional[JSNode] = None
    test: Optional[JSNode] = None
    update: Optional[JSNode] = None
    body: List[JSNode] = field(default_factory=list)


@dataclass
class ReturnStmt(JSNode):
    value: Optional[JSNode] = None


@dataclass
class BreakStmt(JSNode):
    pass


@dataclass
class ContinueStmt(JSNode):
    pass


@dataclass
class ThrowStmt(JSNode):
    value: JSNode = None


@dataclass
class TryStmt(JSNode):
    block: List[JSNode] = field(default_factory=list)
    #: catch parameter name (None when there is no catch clause)
    param: Optional[str] = None
    handler: List[JSNode] = field(default_factory=list)
    finally_body: List[JSNode] = field(default_factory=list)


@dataclass
class Program(JSNode):
    body: List[JSNode] = field(default_factory=list)
