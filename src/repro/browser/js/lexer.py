"""JavaScript tokenizer (for the mini-JS engine).

Supports the language subset the interpreter executes: identifiers,
keywords, numeric and string literals, punctuation/operators, and line/
block comments.  Tokens carry byte offsets for lazy-compilation spans and
coverage accounting (Table I measures *byte* coverage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = frozenset(
    "var let const function return if else while do for break continue "
    "true false null undefined new typeof this in of delete "
    "switch case default throw try catch finally instanceof void".split()
)

#: Multi-character operators, longest first so matching is greedy.
_OPERATORS = (
    "===", "!==", "<<=", ">>=", "**",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "=>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "?", ":",
    ";", ",", ".", "(", ")", "{", "}", "[", "]", "&", "|", "^", "~",
)


@dataclass(frozen=True)
class JSToken:
    kind: str  # "ident" | "keyword" | "number" | "string" | "punct" | "eof"
    value: str
    start: int
    end: int

    def is_punct(self, value: str) -> bool:
        return self.kind == "punct" and self.value == value

    def is_keyword(self, value: str) -> bool:
        return self.kind == "keyword" and self.value == value


class JSLexError(ValueError):
    """Raised on malformed JavaScript input."""


def tokenize_js(source: str) -> List[JSToken]:
    """Tokenize JavaScript source; appends a final EOF token."""
    tokens: List[JSToken] = []
    pos = 0
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch.isspace():
            pos += 1
            continue
        if source.startswith("//", pos):
            nl = source.find("\n", pos)
            pos = n if nl < 0 else nl + 1
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise JSLexError(f"unclosed block comment at offset {pos}")
            pos = end + 2
            continue
        if ch.isalpha() or ch in "_$":
            start = pos
            while pos < n and (source[pos].isalnum() or source[pos] in "_$"):
                pos += 1
            word = source[start:pos]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(JSToken(kind, word, start, pos))
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < n and source[pos + 1].isdigit()):
            start = pos
            seen_dot = False
            while pos < n and (source[pos].isdigit() or (source[pos] == "." and not seen_dot)):
                if source[pos] == ".":
                    seen_dot = True
                pos += 1
            tokens.append(JSToken("number", source[start:pos], start, pos))
            continue
        if ch in "\"'":
            start = pos
            quote = ch
            pos += 1
            chars: List[str] = []
            while pos < n and source[pos] != quote:
                if source[pos] == "\\" and pos + 1 < n:
                    esc = source[pos + 1]
                    chars.append({"n": "\n", "t": "\t"}.get(esc, esc))
                    pos += 2
                else:
                    chars.append(source[pos])
                    pos += 1
            if pos >= n:
                raise JSLexError(f"unclosed string at offset {start}")
            pos += 1
            tokens.append(JSToken("string", "".join(chars), start, pos))
            continue
        for op in _OPERATORS:
            if source.startswith(op, pos):
                tokens.append(JSToken("punct", op, pos, pos + len(op)))
                pos += len(op)
                break
        else:
            raise JSLexError(f"unexpected character {ch!r} at offset {pos}")
    tokens.append(JSToken("eof", "", n, n))
    return tokens
