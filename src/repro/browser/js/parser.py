"""Recursive-descent parser for the mini-JavaScript language."""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .lexer import JSToken, tokenize_js


class JSParseError(ValueError):
    """Raised on syntax the mini-engine does not accept."""


#: Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "==": 3, "!=": 3, "===": 3, "!==": 3,
    "<": 4, ">": 4, "<=": 4, ">=": 4, "in": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%="})


class JSParser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = tokenize_js(source)
        self.pos = 0

    # -- token plumbing -------------------------------------------------- #

    def peek(self, ahead: int = 0) -> JSToken:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> JSToken:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect_punct(self, value: str) -> JSToken:
        token = self.next()
        if not token.is_punct(value):
            raise JSParseError(
                f"expected {value!r} at offset {token.start}, got {token.value!r}"
            )
        return token

    def accept_punct(self, value: str) -> bool:
        if self.peek().is_punct(value):
            self.next()
            return True
        return False

    def _semicolon(self) -> None:
        self.accept_punct(";")  # ASI: semicolons are optional

    # -- entry ------------------------------------------------------------ #

    def parse_program(self) -> ast.Program:
        body: List[ast.JSNode] = []
        while self.peek().kind != "eof":
            body.append(self.parse_statement())
        return ast.Program(span=(0, len(self.source)), body=body)

    # -- statements -------------------------------------------------------- #

    def parse_statement(self) -> ast.JSNode:
        token = self.peek()
        if token.kind == "keyword":
            handler = {
                "var": self._parse_var,
                "let": self._parse_var,
                "const": self._parse_var,
                "function": self._parse_function_decl,
                "if": self._parse_if,
                "while": self._parse_while,
                "do": self._parse_do_while,
                "for": self._parse_for,
                "switch": self._parse_switch,
                "throw": self._parse_throw,
                "try": self._parse_try,
                "return": self._parse_return,
                "break": self._parse_break,
                "continue": self._parse_continue,
            }.get(token.value)
            if handler is not None:
                return handler()
        if token.is_punct("{"):
            # Standalone block: flatten into an if(true)-like sequence is
            # unnecessary; represent as expression-less If with one arm.
            start = self.next().start
            body = self._parse_block_rest()
            return ast.IfStmt(
                span=(start, self.peek().start),
                test=ast.Literal(span=(start, start), value=True),
                consequent=body,
            )
        expr = self.parse_expression()
        self._semicolon()
        return ast.ExpressionStmt(span=expr.span, expr=expr)

    def _parse_var(self) -> ast.JSNode:
        kw = self.next()
        decls: List[ast.VarDecl] = []
        while True:
            name_tok = self.next()
            if name_tok.kind != "ident":
                raise JSParseError(f"expected identifier at {name_tok.start}")
            init = None
            if self.accept_punct("="):
                init = self.parse_assignment()
            decls.append(
                ast.VarDecl(
                    span=(kw.start, self.peek().start),
                    kind=kw.value,
                    name=name_tok.value,
                    init=init,
                )
            )
            if not self.accept_punct(","):
                break
        self._semicolon()
        if len(decls) == 1:
            return decls[0]
        # Multiple declarators become a synthetic statement list wrapper.
        wrapper = ast.IfStmt(
            span=(kw.start, self.peek().start),
            test=ast.Literal(span=(kw.start, kw.start), value=True),
            consequent=list(decls),
        )
        return wrapper

    def _parse_function_decl(self) -> ast.JSNode:
        start = self.peek().start
        func = self._parse_function_expr()
        return ast.FunctionDecl(span=(start, func.span[1]), func=func)

    def _parse_function_expr(self) -> ast.FunctionExpr:
        kw = self.next()  # 'function'
        name = None
        if self.peek().kind == "ident":
            name = self.next().value
        self.expect_punct("(")
        params: List[str] = []
        while not self.peek().is_punct(")"):
            param = self.next()
            if param.kind != "ident":
                raise JSParseError(f"expected parameter name at {param.start}")
            params.append(param.value)
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        self.expect_punct("{")
        body = self._parse_block_rest()
        end = self.tokens[self.pos - 1].end
        return ast.FunctionExpr(span=(kw.start, end), name=name, params=params, body=body)

    def _parse_block_rest(self) -> List[ast.JSNode]:
        body: List[ast.JSNode] = []
        while not self.peek().is_punct("}"):
            if self.peek().kind == "eof":
                raise JSParseError("unclosed block")
            body.append(self.parse_statement())
        self.next()  # consume '}'
        return body

    def _parse_body_or_statement(self) -> List[ast.JSNode]:
        if self.accept_punct("{"):
            return self._parse_block_rest()
        return [self.parse_statement()]

    def _parse_if(self) -> ast.JSNode:
        kw = self.next()
        self.expect_punct("(")
        test = self.parse_expression()
        self.expect_punct(")")
        consequent = self._parse_body_or_statement()
        alternate: List[ast.JSNode] = []
        if self.peek().is_keyword("else"):
            self.next()
            alternate = self._parse_body_or_statement()
        return ast.IfStmt(
            span=(kw.start, self.peek().start),
            test=test,
            consequent=consequent,
            alternate=alternate,
        )

    def _parse_while(self) -> ast.JSNode:
        kw = self.next()
        self.expect_punct("(")
        test = self.parse_expression()
        self.expect_punct(")")
        body = self._parse_body_or_statement()
        return ast.WhileStmt(span=(kw.start, self.peek().start), test=test, body=body)

    def _parse_do_while(self) -> ast.JSNode:
        kw = self.next()  # 'do'
        body = self._parse_body_or_statement()
        if not self.peek().is_keyword("while"):
            raise JSParseError(f"expected 'while' after do-body at {self.peek().start}")
        self.next()
        self.expect_punct("(")
        test = self.parse_expression()
        self.expect_punct(")")
        self._semicolon()
        return ast.DoWhileStmt(span=(kw.start, self.peek().start), test=test, body=body)

    def _parse_switch(self) -> ast.JSNode:
        kw = self.next()  # 'switch'
        self.expect_punct("(")
        discriminant = self.parse_expression()
        self.expect_punct(")")
        self.expect_punct("{")
        cases = []
        while not self.peek().is_punct("}"):
            token = self.peek()
            if token.is_keyword("case"):
                self.next()
                test = self.parse_expression()
                self.expect_punct(":")
            elif token.is_keyword("default"):
                self.next()
                self.expect_punct(":")
                test = None
            else:
                raise JSParseError(f"expected case/default at {token.start}")
            body = []
            while not (
                self.peek().is_punct("}")
                or self.peek().is_keyword("case")
                or self.peek().is_keyword("default")
            ):
                body.append(self.parse_statement())
            cases.append((test, body))
        close = self.expect_punct("}")
        return ast.SwitchStmt(
            span=(kw.start, close.end), discriminant=discriminant, cases=cases
        )

    def _parse_for(self) -> ast.JSNode:
        kw = self.next()
        self.expect_punct("(")
        init: Optional[ast.JSNode] = None
        # for (var k in obj) / for (k in obj)
        if (
            self.peek().kind == "keyword"
            and self.peek().value in ("var", "let", "const")
            and self.peek(1).kind == "ident"
            and self.peek(2).is_keyword("in")
        ):
            self.next()
            name = self.next().value
            self.next()  # 'in'
            obj = self.parse_expression()
            self.expect_punct(")")
            body = self._parse_body_or_statement()
            return ast.ForInStmt(
                span=(kw.start, self.peek().start), name=name, obj=obj, body=body
            )
        if self.peek().kind == "ident" and self.peek(1).is_keyword("in"):
            name = self.next().value
            self.next()  # 'in'
            obj = self.parse_expression()
            self.expect_punct(")")
            body = self._parse_body_or_statement()
            return ast.ForInStmt(
                span=(kw.start, self.peek().start), name=name, obj=obj, body=body
            )
        if not self.peek().is_punct(";"):
            if self.peek().kind == "keyword" and self.peek().value in ("var", "let", "const"):
                init = self._parse_var_no_semicolon()
            else:
                start_tok = self.peek()
                expr = self.parse_expression()
                init = ast.ExpressionStmt(span=(start_tok.start, expr.span[1]), expr=expr)
        self.expect_punct(";")
        test = None
        if not self.peek().is_punct(";"):
            test = self.parse_expression()
        self.expect_punct(";")
        update = None
        if not self.peek().is_punct(")"):
            update = self.parse_expression()
        self.expect_punct(")")
        body = self._parse_body_or_statement()
        return ast.ForStmt(
            span=(kw.start, self.peek().start),
            init=init,
            test=test,
            update=update,
            body=body,
        )

    def _parse_var_no_semicolon(self) -> ast.JSNode:
        kw = self.next()
        name_tok = self.next()
        if name_tok.kind != "ident":
            raise JSParseError(f"expected identifier at {name_tok.start}")
        init = None
        if self.accept_punct("="):
            init = self.parse_assignment()
        return ast.VarDecl(
            span=(kw.start, self.peek().start),
            kind=kw.value,
            name=name_tok.value,
            init=init,
        )

    def _parse_throw(self) -> ast.JSNode:
        kw = self.next()
        value = self.parse_expression()
        self._semicolon()
        return ast.ThrowStmt(span=(kw.start, value.span[1]), value=value)

    def _parse_try(self) -> ast.JSNode:
        kw = self.next()
        self.expect_punct("{")
        block = self._parse_block_rest()
        param = None
        handler = []
        finally_body = []
        if self.peek().is_keyword("catch"):
            self.next()
            if self.accept_punct("("):
                name_tok = self.next()
                if name_tok.kind != "ident":
                    raise JSParseError(f"expected catch parameter at {name_tok.start}")
                param = name_tok.value
                self.expect_punct(")")
            else:
                param = "__err__"
            self.expect_punct("{")
            handler = self._parse_block_rest()
        if self.peek().is_keyword("finally"):
            self.next()
            self.expect_punct("{")
            finally_body = self._parse_block_rest()
        if not handler and not finally_body:
            raise JSParseError(f"try without catch/finally at {kw.start}")
        return ast.TryStmt(
            span=(kw.start, self.peek().start),
            block=block,
            param=param,
            handler=handler,
            finally_body=finally_body,
        )

    def _parse_return(self) -> ast.JSNode:
        kw = self.next()
        value = None
        if not (self.peek().is_punct(";") or self.peek().is_punct("}") or self.peek().kind == "eof"):
            value = self.parse_expression()
        self._semicolon()
        return ast.ReturnStmt(span=(kw.start, self.peek().start), value=value)

    def _parse_break(self) -> ast.JSNode:
        kw = self.next()
        self._semicolon()
        return ast.BreakStmt(span=(kw.start, kw.end))

    def _parse_continue(self) -> ast.JSNode:
        kw = self.next()
        self._semicolon()
        return ast.ContinueStmt(span=(kw.start, kw.end))

    # -- expressions ------------------------------------------------------- #

    def parse_expression(self) -> ast.JSNode:
        expr = self.parse_assignment()
        while self.accept_punct(","):
            right = self.parse_assignment()
            expr = ast.Binary(span=(expr.span[0], right.span[1]), op=",", left=expr, right=right)
        return expr

    def parse_assignment(self) -> ast.JSNode:
        left = self.parse_conditional()
        token = self.peek()
        if token.kind == "punct" and token.value in _ASSIGN_OPS:
            self.next()
            if not isinstance(left, (ast.Identifier, ast.Member)):
                raise JSParseError(f"invalid assignment target at {token.start}")
            value = self.parse_assignment()
            return ast.Assignment(
                span=(left.span[0], value.span[1]),
                op=token.value,
                target=left,
                value=value,
            )
        return left

    def parse_conditional(self) -> ast.JSNode:
        test = self.parse_logical_or()
        if self.accept_punct("?"):
            consequent = self.parse_assignment()
            self.expect_punct(":")
            alternate = self.parse_assignment()
            return ast.Conditional(
                span=(test.span[0], alternate.span[1]),
                test=test,
                consequent=consequent,
                alternate=alternate,
            )
        return test

    def parse_logical_or(self) -> ast.JSNode:
        left = self.parse_logical_and()
        while self.peek().is_punct("||"):
            self.next()
            right = self.parse_logical_and()
            left = ast.Logical(span=(left.span[0], right.span[1]), op="||", left=left, right=right)
        return left

    def parse_logical_and(self) -> ast.JSNode:
        left = self.parse_binary(0)
        while self.peek().is_punct("&&"):
            self.next()
            right = self.parse_binary(0)
            left = ast.Logical(span=(left.span[0], right.span[1]), op="&&", left=left, right=right)
        return left

    def parse_binary(self, min_precedence: int) -> ast.JSNode:
        left = self.parse_unary()
        while True:
            token = self.peek()
            op = token.value
            if token.kind == "keyword" and op == "in":
                precedence = _BINARY_PRECEDENCE["in"]
            elif token.kind == "punct" and op in _BINARY_PRECEDENCE:
                precedence = _BINARY_PRECEDENCE[op]
            else:
                return left
            if precedence < min_precedence:
                return left
            self.next()
            right = self.parse_binary(precedence + 1)
            left = ast.Binary(span=(left.span[0], right.span[1]), op=op, left=left, right=right)

    def parse_unary(self) -> ast.JSNode:
        token = self.peek()
        if token.kind == "punct" and token.value in ("!", "-", "+", "~"):
            self.next()
            operand = self.parse_unary()
            return ast.Unary(span=(token.start, operand.span[1]), op=token.value, operand=operand)
        if token.kind == "keyword" and token.value in ("typeof", "delete"):
            self.next()
            operand = self.parse_unary()
            return ast.Unary(span=(token.start, operand.span[1]), op=token.value, operand=operand)
        if token.kind == "punct" and token.value in ("++", "--"):
            self.next()
            target = self.parse_unary()
            return ast.UpdateExpr(
                span=(token.start, target.span[1]), op=token.value, target=target, prefix=True
            )
        return self.parse_postfix()

    def parse_postfix(self) -> ast.JSNode:
        expr = self.parse_call_member()
        token = self.peek()
        if token.kind == "punct" and token.value in ("++", "--"):
            self.next()
            return ast.UpdateExpr(
                span=(expr.span[0], token.end), op=token.value, target=expr, prefix=False
            )
        return expr

    def parse_call_member(self) -> ast.JSNode:
        if self.peek().is_keyword("new"):
            kw = self.next()
            callee = self.parse_call_member()
            if isinstance(callee, ast.Call):
                callee.is_new = True
                return callee
            return ast.Call(span=(kw.start, callee.span[1]), callee=callee, args=[], is_new=True)
        expr = self.parse_primary()
        while True:
            if self.accept_punct("."):
                name_tok = self.next()
                if name_tok.kind not in ("ident", "keyword"):
                    raise JSParseError(f"expected property name at {name_tok.start}")
                expr = ast.Member(
                    span=(expr.span[0], name_tok.end), obj=expr, prop=name_tok.value
                )
            elif self.peek().is_punct("["):
                self.next()
                index = self.parse_expression()
                close = self.expect_punct("]")
                expr = ast.Member(span=(expr.span[0], close.end), obj=expr, index=index)
            elif self.peek().is_punct("("):
                self.next()
                args: List[ast.JSNode] = []
                while not self.peek().is_punct(")"):
                    args.append(self.parse_assignment())
                    if not self.accept_punct(","):
                        break
                close = self.expect_punct(")")
                expr = ast.Call(span=(expr.span[0], close.end), callee=expr, args=args)
            else:
                return expr

    def parse_primary(self) -> ast.JSNode:
        token = self.peek()
        if token.kind == "number":
            self.next()
            return ast.Literal(span=(token.start, token.end), value=float(token.value))
        if token.kind == "string":
            self.next()
            return ast.Literal(span=(token.start, token.end), value=token.value)
        if token.kind == "keyword":
            if token.value in ("true", "false"):
                self.next()
                return ast.Literal(span=(token.start, token.end), value=token.value == "true")
            if token.value in ("null", "undefined"):
                self.next()
                return ast.Literal(span=(token.start, token.end), value=None)
            if token.value == "function":
                return self._parse_function_expr()
            if token.value == "this":
                self.next()
                return ast.ThisExpr(span=(token.start, token.end))
        if token.kind == "ident":
            self.next()
            return ast.Identifier(span=(token.start, token.end), name=token.value)
        if token.is_punct("("):
            self.next()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        if token.is_punct("["):
            self.next()
            elements: List[ast.JSNode] = []
            while not self.peek().is_punct("]"):
                elements.append(self.parse_assignment())
                if not self.accept_punct(","):
                    break
            close = self.expect_punct("]")
            return ast.ArrayLiteral(span=(token.start, close.end), elements=elements)
        if token.is_punct("{"):
            self.next()
            entries: List = []
            while not self.peek().is_punct("}"):
                key_tok = self.next()
                if key_tok.kind not in ("ident", "string", "keyword", "number"):
                    raise JSParseError(f"bad object key at {key_tok.start}")
                self.expect_punct(":")
                entries.append((str(key_tok.value), self.parse_assignment()))
                if not self.accept_punct(","):
                    break
            close = self.expect_punct("}")
            return ast.ObjectLiteral(span=(token.start, close.end), entries=entries)
        raise JSParseError(f"unexpected token {token.value!r} at offset {token.start}")


def parse_js(source: str) -> ast.Program:
    """Parse JavaScript source into an AST."""
    return JSParser(source).parse_program()
