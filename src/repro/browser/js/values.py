"""Runtime values of the mini-JavaScript engine.

Every runtime value travels with an abstract memory cell (``TV`` — a traced
value), so the interpreter's instruction records carry real dataflow:
consuming a value reads its cell, producing one writes a fresh cell.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from ..context import EngineContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ast import FunctionExpr
    from .interpreter import Interpreter


class TV:
    """A traced value: a Python-level JS value plus its backing cell."""

    __slots__ = ("value", "cell")

    def __init__(self, value: object, cell: int) -> None:
        self.value = value
        self.cell = cell

    def __repr__(self) -> str:
        return f"TV({self.value!r} @ {self.cell:#x})"


class JSObject:
    """A JavaScript object: string-keyed properties with per-property cells."""

    def __init__(self, ctx: EngineContext, kind: str = "object") -> None:
        self.ctx = ctx
        self.kind = kind
        self.properties: Dict[str, object] = {}
        self._cells: Dict[str, int] = {}

    def prop_cell(self, name: str) -> int:
        addr = self._cells.get(name)
        if addr is None:
            addr = self.ctx.memory.alloc_cell(f"jsheap:{self.kind}:{name}")
            self._cells[name] = addr
        return addr

    def get(self, name: str) -> object:
        return self.properties.get(name)

    def set(self, name: str, value: object) -> None:
        self.properties[name] = value

    def has(self, name: str) -> bool:
        return name in self.properties

    def keys(self) -> List[str]:
        return list(self.properties.keys())

    def __repr__(self) -> str:
        return f"JSObject({self.kind}, {len(self.properties)} props)"


class JSArray(JSObject):
    """A JavaScript array: dense list storage plus bounded index cells."""

    #: index cells are shared modulo this bound, so huge arrays don't
    #: exhaust the (abstract) address space.
    CELL_BOUND = 128

    def __init__(self, ctx: EngineContext) -> None:
        super().__init__(ctx, kind="array")
        self.elements: List[object] = []

    def index_cell(self, index: int) -> int:
        return self.prop_cell(f"[{index % self.CELL_BOUND}]")

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:
        return f"JSArray(len={len(self.elements)})"


class JSFunction:
    """A user-defined function (closure)."""

    def __init__(
        self,
        declaration: "FunctionExpr",
        closure: "Environment",
        script_id: int,
    ) -> None:
        self.declaration = declaration
        self.closure = closure
        self.script_id = script_id
        self.compiled = False
        self.code_cell: Optional[int] = None
        self.call_count = 0

    @property
    def name(self) -> str:
        return self.declaration.name or "anonymous"

    def __repr__(self) -> str:
        return f"JSFunction({self.name})"


class NativeFunction:
    """A built-in implemented in Python.

    ``fn(interp, this, args) -> TV``; the implementation is responsible for
    emitting whatever trace records model its cost.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[["Interpreter", object, List[TV]], TV],
    ) -> None:
        self.name = name
        self.fn = fn

    def __repr__(self) -> str:
        return f"NativeFunction({self.name})"


class Environment:
    """A lexical scope: name -> value, with per-slot cells."""

    def __init__(self, ctx: EngineContext, parent: Optional["Environment"] = None) -> None:
        self.ctx = ctx
        self.parent = parent
        self.slots: Dict[str, object] = {}
        self._cells: Dict[str, int] = {}

    def slot_cell(self, name: str) -> int:
        addr = self._cells.get(name)
        if addr is None:
            addr = self.ctx.memory.alloc_cell(f"jsenv:{name}")
            self._cells[name] = addr
        return addr

    def define(self, name: str, value: object) -> None:
        self.slots[name] = value

    def lookup_env(self, name: str) -> Optional["Environment"]:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.slots:
                return env
            env = env.parent
        return None

    def get(self, name: str) -> object:
        env = self.lookup_env(name)
        if env is None:
            raise JSReferenceError(f"{name} is not defined")
        return env.slots[name]

    def set(self, name: str, value: object) -> "Environment":
        """Assign; creates a global binding for undeclared names (sloppy)."""
        env = self.lookup_env(name)
        if env is None:
            env = self._global()
        env.slots[name] = value
        return env

    def _global(self) -> "Environment":
        env = self
        while env.parent is not None:
            env = env.parent
        return env


class JSError(Exception):
    """Base class for runtime errors raised by guest code."""


class JSReferenceError(JSError):
    pass


class JSTypeError(JSError):
    pass


def js_truthy(value: object) -> bool:
    if value is None or value is False:
        return False
    if value is True:
        return True
    if isinstance(value, float):
        return value != 0.0
    if isinstance(value, str):
        return bool(value)
    return True  # objects, arrays, functions


def js_to_number(value: object) -> float:
    if isinstance(value, float):
        return value
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if value is None:
        return 0.0
    if isinstance(value, str):
        try:
            return float(value) if value.strip() else 0.0
        except ValueError:
            return float("nan")
    return float("nan")


def js_to_string(value: object) -> str:
    if value is None:
        return "undefined"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, str):
        return value
    if isinstance(value, JSArray):
        return ",".join(js_to_string(e) for e in value.elements)
    if isinstance(value, (JSFunction, NativeFunction)):
        return f"function {value.name}() {{ ... }}"
    if isinstance(value, JSObject):
        return "[object Object]"
    return str(value)


def js_typeof(value: object) -> str:
    if value is None:
        return "undefined"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (JSFunction, NativeFunction)):
        return "function"
    return "object"
