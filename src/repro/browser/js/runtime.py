"""Browser bindings for the mini-JS engine: window, document, DOM wrappers.

The runtime wires guest JavaScript to the rest of the simulated browser
through a :class:`BrowserHooks` interface supplied by the engine: DOM
mutations mark elements dirty for the next style/layout/paint pass, timers
post tasks to the main-thread event loop, and beacons go out through the
network stack.

Every binding emits trace records modelling its cost, reading/writing the
DOM cells it really touches, so scripted work that never influences pixels
stays out of the pixel slice organically.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from ..context import EngineContext
from ..html.dom import Document, Element, TextNode
from ..invalidation import LAYOUT, PAINT, STYLE
from .interpreter import Interpreter
from .values import (
    TV,
    JSArray,
    JSObject,
    JSTypeError,
    NativeFunction,
    js_to_number,
    js_to_string,
)


class BrowserHooks:
    """Engine callbacks available to guest JavaScript.

    The default implementations are no-ops so the runtime is usable in
    isolation (unit tests, examples); the real engine overrides them.
    """

    def on_dom_mutated(self, element: Element, level: str = STYLE) -> None:
        """Called after a scripted DOM mutation.

        ``level`` is the invalidation level (see
        :mod:`repro.browser.invalidation`): the widest pipeline stage the
        mutation can affect.
        """

    def schedule_timeout(self, callback: TV, delay_ms: float) -> None:
        """setTimeout: post ``callback`` to the main thread after a delay."""

    def request_animation_frame(self, callback: TV) -> None:
        """requestAnimationFrame: run before the next frame."""

    def send_beacon(self, url: str, payload: TV) -> None:
        """navigator.sendBeacon: fire-and-forget network output."""

    def viewport(self) -> Tuple[int, int]:
        return (1280, 800)

    def now_ms(self) -> float:
        return 0.0


class JSRuntime:
    """Installs and services the global browser environment."""

    def __init__(
        self,
        interp: Interpreter,
        document: Document,
        hooks: Optional[BrowserHooks] = None,
    ) -> None:
        self.interp = interp
        self.ctx: EngineContext = interp.ctx
        self.document = document
        self.hooks = hooks if hooks is not None else BrowserHooks()
        self._wrappers: Dict[int, JSObject] = {}
        #: (element node_id or -1 for window, event type) -> handlers
        self.listeners: Dict[Tuple[int, str], List[TV]] = {}
        self._rng_state = (self.ctx.config.seed * 2654435761 + 1) % (2**31)
        #: ids passed to ``__tripwire(id)`` — the optimizer stubs the body
        #: of every provably-dead function with such a call, so a non-empty
        #: list after a verification run falsifies the static proof.
        self.tripwire_hits: List[float] = []
        self._install_globals()

    # ------------------------------------------------------------------ #
    # Event plumbing (used by the engine)                                #
    # ------------------------------------------------------------------ #

    def dispatch_event(self, element: Optional[Element], event_type: str) -> int:
        """Fire an event; returns the number of handlers run."""
        key = (element.node_id if element is not None else -1, event_type)
        handlers = list(self.listeners.get(key, ()))
        event = JSObject(self.ctx, kind="event")
        event.set("type", event_type)
        if element is not None:
            event.set("target", self.wrap_element(element))
        for handler in handlers:
            self.interp.call_function_value(
                handler.value,
                self.wrap_element(element) if element is not None else None,
                [self.interp.make_tv(event)],
                site=f"dispatch:{event_type}",
            )
        return len(handlers)

    def has_listener(self, element: Optional[Element], event_type: str) -> bool:
        key = (element.node_id if element is not None else -1, event_type)
        return bool(self.listeners.get(key))

    # ------------------------------------------------------------------ #
    # DOM wrappers                                                       #
    # ------------------------------------------------------------------ #

    def wrap_element(self, element: Element) -> JSObject:
        wrapper = self._wrappers.get(element.node_id)
        if wrapper is not None:
            return wrapper
        wrapper = JSObject(self.ctx, kind=f"dom:{element.tag}")
        wrapper.dom_element = element  # type: ignore[attr-defined]
        wrapper.getter_hook = self._element_getter(element, wrapper)  # type: ignore[attr-defined]
        wrapper.setter_hook = self._element_setter(element)  # type: ignore[attr-defined]
        self._wrappers[element.node_id] = wrapper
        return wrapper

    def _element_getter(self, element: Element, wrapper: JSObject):
        interp = self.interp

        def getter(name: str) -> Optional[TV]:
            if name == "id":
                return TV(element.element_id or "", element.cell("attr:id"))
            if name == "tagName":
                return TV(element.tag.upper(), element.cell("tag"))
            if name == "className":
                return TV(
                    element.get_attribute("class") or "", element.cell("attr:class")
                )
            if name == "parentNode":
                if element.parent is None:
                    return TV(None, interp.undefined_cell)
                return TV(self.wrap_element(element.parent), element.cell("links"))
            if name == "children":
                array = JSArray(self.ctx)
                for child in element.child_elements():
                    array.elements.append(self.wrap_element(child))
                return TV(array, element.cell("links"))
            if name == "textContent":
                return TV(element.text_content(), element.cell("links"))
            if name == "style":
                return interp.make_tv(self._style_proxy(element))
            native = _ELEMENT_METHODS.get(name)
            if native is not None:
                return interp.make_tv(
                    NativeFunction(f"Element.{name}", _bind_element(self, element, native))
                )
            return None

        return getter

    def _element_setter(self, element: Element):
        def setter(name: str, value: TV) -> None:
            tracer = self.ctx.tracer
            if name == "textContent" or name == "innerHTML":
                text = js_to_string(value.value)
                only_text_children = all(
                    isinstance(child, TextNode) for child in element.children
                )
                if only_text_children and element.text_content() == text:
                    # No-op write: the binding still runs (and is traced),
                    # but the DOM is unchanged, so nothing is invalidated.
                    tracer.op("dom_set_text", reads=(value.cell,))
                    return
                element.children = []
                node = TextNode(self.ctx, text)
                element.append_child(node)
                tracer.op(
                    "dom_set_text", reads=(value.cell,), writes=(node.cell("text"),)
                )
                # Replacing text re-measures the box but keeps its computed
                # style: geometry-only invalidation.
                self.hooks.on_dom_mutated(element, LAYOUT)
            elif name == "className":
                text = js_to_string(value.value)
                if (element.get_attribute("class") or "") == text:
                    tracer.op("dom_set_class", reads=(value.cell,))
                    return
                element.set_attribute("class", text)
                tracer.op(
                    "dom_set_class",
                    reads=(value.cell,),
                    writes=(element.cell("attr:class"),),
                )
                self.hooks.on_dom_mutated(element, STYLE)

        return setter

    def _style_proxy(self, element: Element) -> JSObject:
        proxy = JSObject(self.ctx, kind="cssdecl")

        def setter(name: str, value: TV) -> None:
            css_name = _camel_to_css(name)
            decl = f"{css_name}:{js_to_string(value.value)}"
            inline = element.get_attribute("style") or ""
            if inline == decl or inline.endswith(f";{decl}"):
                # Writing the value already in effect: traced, no dirty bit.
                self.ctx.tracer.op("dom_set_style", reads=(value.cell,))
                return
            element.set_attribute("style", f"{inline};{decl}")
            self.ctx.tracer.op(
                "dom_set_style",
                reads=(value.cell,),
                writes=(element.cell("attr:style"),),
            )
            # color/background-color change pixels but never geometry.
            level = PAINT if css_name in ("color", "background-color") else STYLE
            self.hooks.on_dom_mutated(element, level)

        proxy.setter_hook = setter  # type: ignore[attr-defined]
        return proxy

    # ------------------------------------------------------------------ #
    # Globals                                                            #
    # ------------------------------------------------------------------ #

    def _install_globals(self) -> None:
        interp = self.interp
        env = interp.global_env

        document = JSObject(self.ctx, kind="document")
        document.getter_hook = self._document_getter(document)  # type: ignore[attr-defined]
        env.define("document", document)

        window = JSObject(self.ctx, kind="window")
        window.getter_hook = self._window_getter(window)  # type: ignore[attr-defined]
        env.define("window", window)

        console = JSObject(self.ctx, kind="console")
        console.set("log", NativeFunction("console.log", self._console_log))
        console.set("warn", NativeFunction("console.warn", self._console_log))
        console.set("error", NativeFunction("console.error", self._console_log))
        env.define("console", console)

        env.define("Math", self._math_object())
        env.define("Date", self._date_object())

        navigator = JSObject(self.ctx, kind="navigator")
        navigator.set("userAgent", "Chromium/58.0 (UCWA reproduction)")
        navigator.set("sendBeacon", NativeFunction("sendBeacon", self._send_beacon))
        env.define("navigator", navigator)

        env.define("setTimeout", NativeFunction("setTimeout", self._set_timeout))
        env.define(
            "requestAnimationFrame",
            NativeFunction("requestAnimationFrame", self._raf),
        )
        json_obj = JSObject(self.ctx, kind="JSON")
        json_obj.set("stringify", NativeFunction("JSON.stringify", _json_stringify))
        env.define("JSON", json_obj)

        object_obj = JSObject(self.ctx, kind="Object")
        object_obj.set("keys", NativeFunction("Object.keys", _object_keys))
        env.define("Object", object_obj)

        env.define("parseInt", NativeFunction("parseInt", _parse_int))
        env.define("parseFloat", NativeFunction("parseFloat", _parse_float))
        env.define("String", NativeFunction("String", _to_string))
        env.define("Number", NativeFunction("Number", _to_number))
        env.define("__tripwire", NativeFunction("__tripwire", self._tripwire))

    def _document_getter(self, document: JSObject):
        interp = self.interp

        def getter(name: str) -> Optional[TV]:
            if name == "body":
                body = self.document.body()
                if body is None:
                    return TV(None, interp.undefined_cell)
                return interp.make_tv(self.wrap_element(body))
            if name == "getElementById":
                return interp.make_tv(
                    NativeFunction("getElementById", self._get_element_by_id)
                )
            if name == "createElement":
                return interp.make_tv(
                    NativeFunction("createElement", self._create_element)
                )
            if name == "createTextNode":
                return interp.make_tv(
                    NativeFunction("createTextNode", self._create_text_node)
                )
            if name == "querySelectorAll":
                return interp.make_tv(
                    NativeFunction("querySelectorAll", self._query_selector_all)
                )
            if name == "addEventListener":
                return interp.make_tv(
                    NativeFunction(
                        "document.addEventListener", self._window_add_listener
                    )
                )
            return None

        return getter

    def _window_getter(self, window: JSObject):
        interp = self.interp

        def getter(name: str) -> Optional[TV]:
            if name == "innerWidth":
                return interp.make_tv(float(self.hooks.viewport()[0]))
            if name == "innerHeight":
                return interp.make_tv(float(self.hooks.viewport()[1]))
            if name == "addEventListener":
                return interp.make_tv(
                    NativeFunction("window.addEventListener", self._window_add_listener)
                )
            if name == "performance":
                perf = JSObject(self.ctx, kind="performance")
                perf.set("now", NativeFunction("performance.now", self._now))
                return interp.make_tv(perf)
            if name == "location":
                location = JSObject(self.ctx, kind="location")
                location.set("href", "https://example.test/")
                return interp.make_tv(location)
            return None

        return getter

    # -- native implementations ----------------------------------------- #

    def _get_element_by_id(self, interp: Interpreter, this, args: List[TV]) -> TV:
        ident = js_to_string(args[0].value) if args else ""
        element = self.document.get_element_by_id(ident)
        tracer = self.ctx.tracer
        with tracer.function("blink::bindings::DocumentGetElementById"):
            tracer.op("hash_lookup", reads=(args[0].cell,) if args else ())
        if element is None:
            return TV(None, interp.undefined_cell)
        result = self.wrap_element(element)
        return TV(result, element.cell("links"))

    def _query_selector_all(self, interp: Interpreter, this, args: List[TV]) -> TV:
        from ..css.selectors import SelectorParseError, parse_selector

        text = js_to_string(args[0].value) if args else "*"
        tracer = self.ctx.tracer
        array = JSArray(self.ctx)
        try:
            selector = parse_selector(text)
        except SelectorParseError:
            return interp.make_tv(array)
        with tracer.function("blink::bindings::QuerySelectorAll"):
            for i, element in enumerate(self.document.all_elements()):
                tracer.compare_and_branch(
                    f"qsa{i % 32}", reads=(element.cell("tag"),)
                )
                if selector.matches(element):
                    array.elements.append(self.wrap_element(element))
        return interp.make_tv(array)

    def _create_element(self, interp: Interpreter, this, args: List[TV]) -> TV:
        tag = js_to_string(args[0].value) if args else "div"
        element = Element(self.ctx, tag)
        self.ctx.tracer.op(
            "dom_create_element",
            reads=(args[0].cell,) if args else (),
            writes=(element.cell("tag"), element.cell("links")),
        )
        return interp.make_tv(self.wrap_element(element))

    def _create_text_node(self, interp: Interpreter, this, args: List[TV]) -> TV:
        text = js_to_string(args[0].value) if args else ""
        node = TextNode(self.ctx, text)
        self.ctx.tracer.op(
            "dom_create_text",
            reads=(args[0].cell,) if args else (),
            writes=(node.cell("text"),),
        )
        wrapper = JSObject(self.ctx, kind="dom:#text")
        wrapper.dom_node = node  # type: ignore[attr-defined]
        return interp.make_tv(wrapper)

    def _console_log(self, interp: Interpreter, this, args: List[TV]) -> TV:
        log_cell = self.ctx.memory.alloc_cell("console:entry")
        self.ctx.tracer.op(
            "console_log", reads=tuple(a.cell for a in args[:4]), writes=(log_cell,)
        )
        return TV(None, interp.undefined_cell)

    def _set_timeout(self, interp: Interpreter, this, args: List[TV]) -> TV:
        if not args:
            return TV(None, interp.undefined_cell)
        delay = js_to_number(args[1].value) if len(args) > 1 else 0.0
        self.hooks.schedule_timeout(args[0], delay)
        return interp.make_tv(0.0)

    def _raf(self, interp: Interpreter, this, args: List[TV]) -> TV:
        if args:
            self.hooks.request_animation_frame(args[0])
        return interp.make_tv(0.0)

    def _tripwire(self, interp: Interpreter, this, args: List[TV]) -> TV:
        """Record that an optimizer-stubbed "dead" function was entered."""
        fid = js_to_number(args[0].value) if args else -1.0
        self.tripwire_hits.append(fid)
        return TV(None, interp.undefined_cell)

    def _send_beacon(self, interp: Interpreter, this, args: List[TV]) -> TV:
        url = js_to_string(args[0].value) if args else ""
        payload = args[1] if len(args) > 1 else interp.make_tv("")
        self.hooks.send_beacon(url, payload)
        return interp.make_tv(True)

    def _now(self, interp: Interpreter, this, args: List[TV]) -> TV:
        return interp.make_tv(self.hooks.now_ms())

    def _math_object(self) -> JSObject:
        obj = JSObject(self.ctx, kind="Math")

        def unary(name: str, fn: Callable[[float], float]) -> None:
            def impl(interp: Interpreter, this, args: List[TV]) -> TV:
                value = js_to_number(args[0].value) if args else float("nan")
                result = interp.make_tv(float(fn(value)))
                interp.ctx.tracer.op(
                    f"math_{name}", reads=(args[0].cell,) if args else (), writes=(result.cell,)
                )
                return result

            obj.set(name, NativeFunction(f"Math.{name}", impl))

        unary("floor", math.floor)
        unary("ceil", math.ceil)
        unary("abs", abs)
        unary("sqrt", lambda v: math.sqrt(v) if v >= 0 else float("nan"))
        unary("round", round)

        def variadic(name: str, fn: Callable[[List[float]], float]) -> None:
            def impl(interp: Interpreter, this, args: List[TV]) -> TV:
                values = [js_to_number(a.value) for a in args]
                return interp.make_tv(float(fn(values)) if values else float("nan"))

            obj.set(name, NativeFunction(f"Math.{name}", impl))

        variadic("max", max)
        variadic("min", min)

        def power(interp: Interpreter, this, args: List[TV]) -> TV:
            base = js_to_number(args[0].value) if args else float("nan")
            exponent = js_to_number(args[1].value) if len(args) > 1 else float("nan")
            return interp.make_tv(float(base**exponent))

        obj.set("pow", NativeFunction("Math.pow", power))

        def random(interp: Interpreter, this, args: List[TV]) -> TV:
            # Deterministic LCG so whole sessions replay identically.
            self._rng_state = (self._rng_state * 1103515245 + 12345) % (2**31)
            return interp.make_tv(self._rng_state / float(2**31))

        obj.set("random", NativeFunction("Math.random", random))
        return obj

    def _date_object(self) -> JSObject:
        obj = JSObject(self.ctx, kind="Date")
        obj.set("now", NativeFunction("Date.now", self._now))
        return obj

    def _window_add_listener(self, interp: Interpreter, this, args: List[TV]) -> TV:
        if len(args) >= 2:
            event_type = js_to_string(args[0].value)
            self.listeners.setdefault((-1, event_type), []).append(args[1])
        return TV(None, interp.undefined_cell)


# --------------------------------------------------------------------- #
# Element methods                                                       #
# --------------------------------------------------------------------- #


def _bind_element(runtime: JSRuntime, element: Element, method):
    def bound(interp: Interpreter, this, args: List[TV]) -> TV:
        return method(runtime, element, interp, args)

    return bound


def _el_set_attribute(runtime: JSRuntime, element: Element, interp, args: List[TV]) -> TV:
    name = js_to_string(args[0].value) if args else ""
    value = js_to_string(args[1].value) if len(args) > 1 else ""
    if element.get_attribute(name) == value:
        # Rewriting the current value: traced, but invalidates nothing.
        interp.ctx.tracer.op("dom_set_attr", reads=tuple(a.cell for a in args[:2]))
        return TV(None, interp.undefined_cell)
    element.set_attribute(name, value)
    interp.ctx.tracer.op(
        "dom_set_attr",
        reads=tuple(a.cell for a in args[:2]),
        writes=(element.cell(f"attr:{name.lower()}"),),
    )
    runtime.hooks.on_dom_mutated(element, STYLE)
    return TV(None, interp.undefined_cell)


def _el_get_attribute(runtime: JSRuntime, element: Element, interp, args: List[TV]) -> TV:
    name = js_to_string(args[0].value) if args else ""
    value = element.get_attribute(name)
    return TV(value, element.cell(f"attr:{name.lower()}"))


def _el_append_child(runtime: JSRuntime, element: Element, interp, args: List[TV]) -> TV:
    if not args:
        raise JSTypeError("appendChild needs an argument")
    child_wrapper = args[0].value
    child = getattr(child_wrapper, "dom_element", None) or getattr(
        child_wrapper, "dom_node", None
    )
    if child is None:
        raise JSTypeError("appendChild argument is not a node")
    element.append_child(child)
    interp.ctx.tracer.op(
        "dom_append_child", reads=(args[0].cell,), writes=(element.cell("links"),)
    )
    runtime.document.reindex()
    runtime.hooks.on_dom_mutated(element, STYLE)
    return args[0]


def _el_remove_child(runtime: JSRuntime, element: Element, interp, args: List[TV]) -> TV:
    child_wrapper = args[0].value if args else None
    child = getattr(child_wrapper, "dom_element", None)
    if child is None or child not in element.children:
        return TV(None, interp.undefined_cell)
    element.remove_child(child)
    interp.ctx.tracer.op(
        "dom_remove_child", reads=(args[0].cell,), writes=(element.cell("links"),)
    )
    runtime.hooks.on_dom_mutated(element, STYLE)
    return args[0]


def _el_add_event_listener(
    runtime: JSRuntime, element: Element, interp, args: List[TV]
) -> TV:
    if len(args) >= 2:
        event_type = js_to_string(args[0].value)
        runtime.listeners.setdefault((element.node_id, event_type), []).append(args[1])
        interp.ctx.tracer.op(
            "dom_add_listener",
            reads=(args[0].cell, args[1].cell),
            writes=(element.cell(f"listeners:{event_type}"),),
        )
    return TV(None, interp.undefined_cell)


def _el_query_selector(
    runtime: JSRuntime, element: Element, interp, args: List[TV]
) -> TV:
    from ..css.selectors import SelectorParseError, parse_selector

    text = js_to_string(args[0].value) if args else "*"
    try:
        selector = parse_selector(text)
    except SelectorParseError:
        return TV(None, interp.undefined_cell)
    for candidate in element.descendant_elements():
        if selector.matches(candidate):
            return interp.make_tv(runtime.wrap_element(candidate))
    return TV(None, interp.undefined_cell)


_ELEMENT_METHODS = {
    "setAttribute": _el_set_attribute,
    "getAttribute": _el_get_attribute,
    "appendChild": _el_append_child,
    "removeChild": _el_remove_child,
    "addEventListener": _el_add_event_listener,
    "querySelector": _el_query_selector,
}


def _camel_to_css(name: str) -> str:
    out = []
    for ch in name:
        if ch.isupper():
            out.append("-")
            out.append(ch.lower())
        else:
            out.append(ch)
    return "".join(out)


def _json_value(value: object) -> str:
    from .values import JSFunction

    if isinstance(value, JSArray):
        return "[" + ",".join(_json_value(v) for v in value.elements) + "]"
    if isinstance(value, (JSFunction, NativeFunction)):
        return "null"
    if isinstance(value, JSObject):
        parts = [f'"{k}":{_json_value(v)}' for k, v in value.properties.items()]
        return "{" + ",".join(parts) + "}"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    return js_to_string(value)


def _json_stringify(interp: Interpreter, this, args: List[TV]) -> TV:
    if not args:
        return interp.make_tv("undefined")
    result = interp.make_tv(_json_value(args[0].value))
    interp.ctx.tracer.op(
        "json_stringify", reads=(args[0].cell,), writes=(result.cell,)
    )
    return result


def _object_keys(interp: Interpreter, this, args: List[TV]) -> TV:
    array = JSArray(interp.ctx)
    if args and isinstance(args[0].value, JSObject):
        array.elements = [k for k in args[0].value.keys()]
    result = interp.make_tv(array)
    interp.ctx.tracer.op(
        "object_keys", reads=(args[0].cell,) if args else (), writes=(result.cell,)
    )
    return result


def _parse_int(interp: Interpreter, this, args: List[TV]) -> TV:
    text = js_to_string(args[0].value) if args else ""
    digits = ""
    for ch in text.strip():
        if ch.isdigit() or (ch == "-" and not digits):
            digits += ch
        else:
            break
    return interp.make_tv(float(int(digits)) if digits and digits != "-" else float("nan"))


def _parse_float(interp: Interpreter, this, args: List[TV]) -> TV:
    return interp.make_tv(js_to_number(args[0].value if args else None))


def _to_string(interp: Interpreter, this, args: List[TV]) -> TV:
    return interp.make_tv(js_to_string(args[0].value if args else None))


def _to_number(interp: Interpreter, this, args: List[TV]) -> TV:
    return interp.make_tv(js_to_number(args[0].value if args else None))
