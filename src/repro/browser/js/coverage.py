"""JavaScript byte-coverage accounting (drives Table I).

Chrome DevTools' Coverage panel counts, per downloaded script, how many
source bytes were ever executed.  We reproduce that: a script's top-level
code counts as executed when the script runs; each function body counts
only when the function is actually called.  Unexecuted nested functions
inside an executed function still count as unused bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from . import ast


def collect_functions(program: ast.Program) -> List[ast.FunctionExpr]:
    """All function expressions/declarations in a program, any depth."""
    found: List[ast.FunctionExpr] = []

    def walk(node: object) -> None:
        if isinstance(node, ast.FunctionExpr):
            found.append(node)
            for stmt in node.body:
                walk(stmt)
            return
        if isinstance(node, ast.JSNode):
            for value in vars(node).values():
                walk(value)
        elif isinstance(node, list):
            for item in node:
                walk(item)
        elif isinstance(node, tuple):
            for item in node:
                walk(item)

    walk(program)
    return found


def merge_spans(spans: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping (start, end) intervals."""
    if not spans:
        return []
    ordered = sorted(spans)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def span_total(spans: List[Tuple[int, int]]) -> int:
    return sum(end - start for start, end in merge_spans(spans))


@dataclass
class ScriptCoverage:
    """Coverage record of one script resource."""

    script_id: int
    name: str
    total_bytes: int
    #: function spans in the script, keyed by AST node id
    function_spans: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    executed_functions: Set[int] = field(default_factory=set)
    top_level_executed: bool = False

    def register_program(self, program: ast.Program) -> None:
        for func in collect_functions(program):
            self.function_spans[func.node_id] = func.span

    def mark_top_level(self) -> None:
        self.top_level_executed = True

    def mark_function(self, node_id: int) -> None:
        self.executed_functions.add(node_id)

    def used_bytes(self) -> int:
        """Executed bytes: whole script minus unexecuted function bodies."""
        if not self.top_level_executed:
            return 0
        unused_spans = [
            span
            for node_id, span in self.function_spans.items()
            if node_id not in self.executed_functions
        ]
        # Executed functions nested inside unexecuted ones cannot run, so a
        # simple merged subtraction is exact.
        executed_inside = [
            span
            for node_id, span in self.function_spans.items()
            if node_id in self.executed_functions
        ]
        unused = span_total(unused_spans)
        # Remove double-subtraction for executed functions fully inside an
        # unexecuted span (possible only with stale marks; keep exact).
        for start, end in merge_spans(unused_spans):
            for estart, eend in executed_inside:
                if start <= estart and eend <= end:
                    unused -= eend - estart
        return max(0, self.total_bytes - unused)

    def unused_bytes(self) -> int:
        return self.total_bytes - self.used_bytes()


class CoverageTracker:
    """Coverage across all scripts of a browsing session."""

    def __init__(self) -> None:
        self._scripts: Dict[int, ScriptCoverage] = {}
        self._next_id = 0

    def register_script(self, name: str, total_bytes: int) -> ScriptCoverage:
        script = ScriptCoverage(
            script_id=self._next_id, name=name, total_bytes=total_bytes
        )
        self._next_id += 1
        self._scripts[script.script_id] = script
        return script

    def script(self, script_id: int) -> ScriptCoverage:
        return self._scripts[script_id]

    def scripts(self) -> List[ScriptCoverage]:
        return list(self._scripts.values())

    def total_bytes(self) -> int:
        return sum(s.total_bytes for s in self._scripts.values())

    def used_bytes(self) -> int:
        return sum(s.used_bytes() for s in self._scripts.values())

    def unused_bytes(self) -> int:
        return self.total_bytes() - self.used_bytes()
