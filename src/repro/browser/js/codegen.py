"""AST -> source serialization for the mini-JavaScript language.

The optimizer rewrites programs at the AST level (stubbing dead function
bodies, pruning constant branches) and then needs runnable *source* back:
the engine's interpreter charges parse/compile cost per source byte, so
transformed programs must be re-emitted as text and re-parsed, giving them
self-consistent spans in the new coordinate space.

Round-trip contract (tested in ``tests/optimize/test_codegen.py``): for
every program the mini-parser accepts, ``parse(generate(parse(src)))``
produces a structurally identical AST.  Two parser artifacts need special
care:

* the parser wraps standalone ``{ ... }`` blocks and multi-declarator
  ``var a = 1, b = 2`` statements in a *synthetic* ``IfStmt`` whose test
  is a ``Literal(True)`` with a zero-width span — those are unwrapped
  back into plain statement sequences (semantically identical: the
  language has function-level scoping only);
* the lexer stores *decoded* string values, so strings are re-escaped on
  the way out, and parenthesization is reconstructed from operator
  precedence (the AST carries no paren nodes).
"""

from __future__ import annotations

from typing import List

from . import ast

#: Internal precedence levels (higher binds tighter).  Mirrors the
#: parser's grammar: sequence < assignment < conditional < `||` < `&&`
#: < equality < relational < additive < multiplicative < unary < postfix.
_SEQUENCE = 1
_ASSIGN = 2
_CONDITIONAL = 3
_LOGICAL_OR = 4
_LOGICAL_AND = 5
_UNARY = 10
_POSTFIX = 11
_PRIMARY = 12

_BINARY_LEVEL = {
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7, "in": 7,
    "+": 8, "-": 8,
    "*": 9, "/": 9, "%": 9,
}


class JSCodegenError(ValueError):
    """Raised on an AST shape the generator cannot serialize."""


def is_synthetic_block(stmt: ast.JSNode) -> bool:
    """True for the parser's ``if (true)`` wrapper around a statement list.

    The wrapper's test is a ``Literal(True)`` with a degenerate
    (zero-width) span; a real ``if (true)`` test spans the 4-byte
    ``true`` token, so the two cannot be confused.
    """
    return (
        isinstance(stmt, ast.IfStmt)
        and not stmt.alternate
        and isinstance(stmt.test, ast.Literal)
        and stmt.test.value is True
        and stmt.test.span[0] == stmt.test.span[1]
    )


def generate(program: ast.Program) -> str:
    """Serialize a parsed program back to JavaScript source."""
    return gen_statements(program.body, indent=0)


def gen_statements(stmts: List[ast.JSNode], indent: int = 0) -> str:
    lines: List[str] = []
    for stmt in stmts:
        lines.append(gen_statement(stmt, indent))
    return "\n".join(lines)


def gen_statement(stmt: ast.JSNode, indent: int = 0) -> str:
    pad = "  " * indent
    if is_synthetic_block(stmt):
        # Unwrap the parser's block/multi-var wrapper into its statements.
        # (An empty block vanishes: the grammar has no empty statement.)
        return gen_statements(stmt.consequent, indent) if stmt.consequent else pad
    if isinstance(stmt, ast.VarDecl):
        init = f" = {_expr(stmt.init, _ASSIGN)}" if stmt.init is not None else ""
        return f"{pad}{stmt.kind} {stmt.name}{init};"
    if isinstance(stmt, ast.FunctionDecl):
        return pad + _function(stmt.func, indent)
    if isinstance(stmt, ast.ExpressionStmt):
        return f"{pad}{_expr(stmt.expr, _SEQUENCE)};"
    if isinstance(stmt, ast.IfStmt):
        out = (
            f"{pad}if ({_expr(stmt.test, _SEQUENCE)}) "
            + _block(stmt.consequent, indent)
        )
        if stmt.alternate:
            out += " else " + _block(stmt.alternate, indent)
        return out
    if isinstance(stmt, ast.WhileStmt):
        return f"{pad}while ({_expr(stmt.test, _SEQUENCE)}) " + _block(stmt.body, indent)
    if isinstance(stmt, ast.DoWhileStmt):
        return (
            f"{pad}do " + _block(stmt.body, indent)
            + f" while ({_expr(stmt.test, _SEQUENCE)});"
        )
    if isinstance(stmt, ast.ForInStmt):
        return (
            f"{pad}for (var {stmt.name} in {_expr(stmt.obj, _SEQUENCE)}) "
            + _block(stmt.body, indent)
        )
    if isinstance(stmt, ast.ForStmt):
        init = ""
        if isinstance(stmt.init, ast.VarDecl):
            tail = (
                f" = {_expr(stmt.init.init, _ASSIGN)}"
                if stmt.init.init is not None else ""
            )
            init = f"{stmt.init.kind} {stmt.init.name}{tail}"
        elif isinstance(stmt.init, ast.ExpressionStmt):
            init = _expr(stmt.init.expr, _SEQUENCE)
        elif stmt.init is not None:
            init = _expr(stmt.init, _SEQUENCE)
        test = _expr(stmt.test, _SEQUENCE) if stmt.test is not None else ""
        update = _expr(stmt.update, _SEQUENCE) if stmt.update is not None else ""
        return f"{pad}for ({init}; {test}; {update}) " + _block(stmt.body, indent)
    if isinstance(stmt, ast.SwitchStmt):
        lines = [f"{pad}switch ({_expr(stmt.discriminant, _SEQUENCE)}) {{"]
        for test, body in stmt.cases:
            label = (
                f"case {_expr(test, _SEQUENCE)}:" if test is not None else "default:"
            )
            lines.append(f"{pad}  {label}")
            for inner in body:
                lines.append(gen_statement(inner, indent + 2))
        lines.append(pad + "}")
        return "\n".join(lines)
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            return pad + "return;"
        return f"{pad}return {_expr(stmt.value, _SEQUENCE)};"
    if isinstance(stmt, ast.BreakStmt):
        return pad + "break;"
    if isinstance(stmt, ast.ContinueStmt):
        return pad + "continue;"
    if isinstance(stmt, ast.ThrowStmt):
        return f"{pad}throw {_expr(stmt.value, _SEQUENCE)};"
    if isinstance(stmt, ast.TryStmt):
        out = f"{pad}try " + _block(stmt.block, indent)
        if stmt.handler or stmt.param is not None:
            out += f" catch ({stmt.param or '__err__'}) " + _block(stmt.handler, indent)
        if stmt.finally_body:
            out += " finally " + _block(stmt.finally_body, indent)
        return out
    raise JSCodegenError(f"unsupported statement node {type(stmt).__name__}")


def _block(stmts: List[ast.JSNode], indent: int) -> str:
    if not stmts:
        return "{ }"
    pad = "  " * indent
    return "{\n" + gen_statements(stmts, indent + 1) + f"\n{pad}}}"


def _function(func: ast.FunctionExpr, indent: int) -> str:
    name = f" {func.name}" if func.name else ""
    params = ", ".join(func.params)
    pad = "  " * indent
    if not func.body:
        return f"function{name}({params}) {{ }}"
    return (
        f"function{name}({params}) {{\n"
        + gen_statements(func.body, indent + 1)
        + f"\n{pad}}}"
    )


# --------------------------------------------------------------------- #
# Expressions                                                           #
# --------------------------------------------------------------------- #


def _expr(node: ast.JSNode, min_level: int) -> str:
    text, level = _render(node)
    if level < min_level:
        return f"({text})"
    return text


def _render(node: ast.JSNode):
    """Return (source text, precedence level) for one expression node."""
    if isinstance(node, ast.Literal):
        return _literal(node), _PRIMARY
    if isinstance(node, ast.Identifier):
        return node.name, _PRIMARY
    if isinstance(node, ast.ThisExpr):
        return "this", _PRIMARY
    if isinstance(node, ast.ArrayLiteral):
        inner = ", ".join(_expr(el, _ASSIGN) for el in node.elements)
        return f"[{inner}]", _PRIMARY
    if isinstance(node, ast.ObjectLiteral):
        inner = ", ".join(
            f"{_object_key(key)}: {_expr(value, _ASSIGN)}"
            for key, value in node.entries
        )
        # Always parenthesized: at statement (or callee) position a bare
        # `{` would re-parse as a block.
        return f"({{{inner}}})", _PRIMARY
    if isinstance(node, ast.FunctionExpr):
        # Always parenthesized: at statement position bare `function`
        # would re-parse as a declaration.  Parens vanish at re-parse.
        return f"({_function(node, 0)})", _PRIMARY
    if isinstance(node, ast.Unary):
        op = node.op
        spacer = " " if op.isalpha() else ""
        operand = _expr(node.operand, _UNARY)
        if not spacer and operand.startswith(op[0]):
            spacer = " "  # avoid `- -x` fusing into `--x`
        return f"{op}{spacer}{operand}", _UNARY
    if isinstance(node, ast.UpdateExpr):
        if node.prefix:
            return f"{node.op}{_expr(node.target, _UNARY)}", _UNARY
        return f"{_expr(node.target, _POSTFIX)}{node.op}", _POSTFIX
    if isinstance(node, ast.Binary):
        if node.op == ",":
            left = _expr(node.left, _SEQUENCE)
            right = _expr(node.right, _ASSIGN)
            return f"{left}, {right}", _SEQUENCE
        level = _BINARY_LEVEL[node.op]
        left = _expr(node.left, level)
        right = _expr(node.right, level + 1)
        return f"{left} {node.op} {right}", level
    if isinstance(node, ast.Logical):
        level = _LOGICAL_AND if node.op == "&&" else _LOGICAL_OR
        left = _expr(node.left, level)
        right = _expr(node.right, level + 1)
        return f"{left} {node.op} {right}", level
    if isinstance(node, ast.Conditional):
        test = _expr(node.test, _LOGICAL_OR)
        consequent = _expr(node.consequent, _ASSIGN)
        alternate = _expr(node.alternate, _ASSIGN)
        return f"{test} ? {consequent} : {alternate}", _CONDITIONAL
    if isinstance(node, ast.Assignment):
        target = _expr(node.target, _POSTFIX)
        value = _expr(node.value, _ASSIGN)
        return f"{target} {node.op} {value}", _ASSIGN
    if isinstance(node, ast.Member):
        obj = _expr(node.obj, _POSTFIX)
        if node.prop is not None:
            return f"{obj}.{node.prop}", _POSTFIX
        return f"{obj}[{_expr(node.index, _SEQUENCE)}]", _POSTFIX
    if isinstance(node, ast.Call):
        callee = _expr(node.callee, _POSTFIX)
        args = ", ".join(_expr(arg, _ASSIGN) for arg in node.args)
        prefix = "new " if node.is_new else ""
        return f"{prefix}{callee}({args})", _POSTFIX
    raise JSCodegenError(f"unsupported expression node {type(node).__name__}")


def _literal(node: ast.Literal) -> str:
    value = node.value
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        text = repr(value)
        if "e" in text or "E" in text:
            # The lexer has no exponent notation; spell it out.
            text = f"{value:.15f}".rstrip("0")
        return text
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, str):
        return _string(value)
    raise JSCodegenError(f"unsupported literal value {value!r}")


def _string(value: str) -> str:
    out = []
    for ch in value:
        if ch == "\\":
            out.append("\\\\")
        elif ch == '"':
            out.append('\\"')
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        else:
            out.append(ch)
    return '"' + "".join(out) + '"'


def _object_key(key: str) -> str:
    from .lexer import KEYWORDS

    if key and (key[0].isalpha() or key[0] in "_$") and all(
        c.isalnum() or c in "_$" for c in key
    ) and key not in KEYWORDS:
        return key
    return _string(key)
