"""The mini-JavaScript interpreter (traced).

Executes the AST directly, emitting one or two instruction records per
node evaluation whose reads/writes mirror the real dataflow: literals read
the function's compiled-code cell, operators read their operands' cells and
write a fresh temporary, assignments write environment-slot or
object-property cells, and control statements emit ``cmp``/``branch``
pairs reading the condition's cell.

Temporaries come from a reused ring of "stack slot" cells (like a real
VM's register file/stack): a write kills the previous liveness, so reuse
is sound for the slicer.

Functions are compiled lazily on first call (as V8 does): the compile step
reads the function body's source-byte cells, so the download+parse of
never-called code is never pulled into a pixel slice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...machine.memory import MemRegion
from ..context import EngineContext
from . import ast
from .coverage import CoverageTracker, ScriptCoverage
from .parser import parse_js
from .values import (
    TV,
    Environment,
    JSArray,
    JSError,
    JSFunction,
    JSObject,
    JSReferenceError,
    JSTypeError,
    NativeFunction,
    js_to_number,
    js_to_string,
    js_truthy,
    js_typeof,
)

#: size of the reused temporary-cell ring
_TEMP_RING = 4096

#: guard against runaway guest loops
_MAX_STEPS = 5_000_000


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: TV) -> None:
        super().__init__("return")
        self.value = value


class GuestThrow(Exception):
    """A JavaScript ``throw`` propagating through guest frames."""

    def __init__(self, value: TV) -> None:
        super().__init__("guest throw")
        self.value = value


class Interpreter:
    """One JavaScript engine instance for a tab."""

    def __init__(self, ctx: EngineContext, coverage: Optional[CoverageTracker] = None) -> None:
        self.ctx = ctx
        self.coverage = coverage if coverage is not None else CoverageTracker()
        self.global_env = Environment(ctx)
        self._temp_region = ctx.memory.alloc("v8:stack", _TEMP_RING)
        self._temp_next = 0
        self._script_regions: Dict[int, MemRegion] = {}
        self._script_ast_cells: Dict[int, int] = {}
        self._steps = 0
        self._concat_count = 0
        self._member_count = 0
        self.undefined_cell = ctx.memory.alloc_cell("v8:undefined")
        self._current_code_cell = self.undefined_cell
        self._current_script: Optional[ScriptCoverage] = None

    # ------------------------------------------------------------------ #
    # Public API                                                         #
    # ------------------------------------------------------------------ #

    def execute_script(self, source: str, name: str, region: MemRegion) -> ScriptCoverage:
        """Parse and run a whole <script> in the global scope (traced)."""
        tracer = self.ctx.tracer
        program = parse_js(source)
        script = self.coverage.register_script(name, len(source))
        script.register_program(program)
        self._script_regions[script.script_id] = region

        # Traced parse: the tokenizer/parser consume every source byte,
        # accumulating into the AST cell so the parse chains backward.
        ast_cell = self.ctx.memory.alloc_cell(f"v8:ast:{name}")
        with tracer.function("v8::Parser::ParseProgram"):
            for i in range(region.size):
                tracer.op(
                    f"tok{i % 64}",
                    reads=(region.cell(i), ast_cell),
                    writes=(ast_cell,),
                )
            self.ctx.maybe_debug_event()
        self._script_ast_cells[script.script_id] = ast_cell

        script.mark_top_level()
        with tracer.function(f"v8::Script::Run"):
            # Top-level code is compiled eagerly.
            code_cell = self._compile_span(name, region, (0, len(source)), "top",
                                           ast_cell=ast_cell)
            self._current_code_cell = code_cell
            self._current_script = script
            self._exec_block(program.body, self.global_env)
        return script

    def call_function_value(
        self, fn: object, this: object, args: List[TV], site: str
    ) -> TV:
        """Invoke a JS or native function value from engine code (events)."""
        return self._invoke(TV(fn, self.undefined_cell), this, args, site)

    # ------------------------------------------------------------------ #
    # Plumbing                                                           #
    # ------------------------------------------------------------------ #

    def temp_cell(self) -> int:
        cell = self._temp_region.cell(self._temp_next)
        self._temp_next = (self._temp_next + 1) % _TEMP_RING
        return cell

    def make_tv(self, value: object) -> TV:
        """Wrap an engine-produced value in a fresh temporary cell."""
        return TV(value, self.temp_cell())

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > _MAX_STEPS:
            raise JSError("script exceeded the interpreter step budget")

    def _compile_span(
        self,
        name: str,
        region: MemRegion,
        span: Tuple[int, int],
        label: str,
        ast_cell: Optional[int] = None,
    ) -> int:
        """Traced lazy compilation of a source span; returns the code cell.

        Compilation accumulates into the code cell (so the whole compile
        joins the slice when the code is ever used) and reads the script's
        AST cell, chaining back through the parse.
        """
        tracer = self.ctx.tracer
        code_cell = self.ctx.memory.alloc_cell(f"v8:code:{name}:{label}")
        first = self.ctx.byte_cell(region, span[0])
        last = self.ctx.byte_cell(region, max(span[0], span[1] - 1))
        with tracer.function("v8::Compiler::CompileFunction"):
            head_reads = (first,) if ast_cell is None else (first, ast_cell)
            tracer.op("begin", reads=head_reads, writes=(code_cell,))
            for i, cell in enumerate(range(first, last + 1)):
                tracer.op(
                    f"emit{i % 64}", reads=(cell, code_cell), writes=(code_cell,)
                )
        return code_cell

    # ------------------------------------------------------------------ #
    # Statements                                                         #
    # ------------------------------------------------------------------ #

    def _exec_block(self, body: List[ast.JSNode], env: Environment) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, node: ast.JSNode, env: Environment) -> None:
        self._tick()
        tracer = self.ctx.tracer
        if isinstance(node, ast.VarDecl):
            if node.init is not None:
                value = self.eval(node.init, env)
            else:
                value = TV(None, self.undefined_cell)
            env.define(node.name, value.value)
            tracer.op(
                f"n{node.node_id}:store",
                reads=(value.cell,),
                writes=(env.slot_cell(node.name),),
            )
        elif isinstance(node, ast.FunctionDecl):
            fn = JSFunction(node.func, env, self._current_script.script_id)
            env.define(node.func.name, fn)
            tracer.op(
                f"n{node.node_id}:fndecl",
                reads=(self._current_code_cell,),
                writes=(env.slot_cell(node.func.name),),
            )
        elif isinstance(node, ast.ExpressionStmt):
            self.eval(node.expr, env)
        elif isinstance(node, ast.IfStmt):
            test = self.eval(node.test, env)
            tracer.compare_and_branch(f"n{node.node_id}:if", reads=(test.cell,))
            if js_truthy(test.value):
                self._exec_block(node.consequent, env)
            else:
                self._exec_block(node.alternate, env)
        elif isinstance(node, ast.WhileStmt):
            while True:
                test = self.eval(node.test, env)
                tracer.compare_and_branch(f"n{node.node_id}:while", reads=(test.cell,))
                if not js_truthy(test.value):
                    break
                try:
                    self._exec_block(node.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(node, ast.DoWhileStmt):
            while True:
                try:
                    self._exec_block(node.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                test = self.eval(node.test, env)
                tracer.compare_and_branch(f"n{node.node_id}:dowhile", reads=(test.cell,))
                if not js_truthy(test.value):
                    break
        elif isinstance(node, ast.ForInStmt):
            obj = self.eval(node.obj, env)
            holder = obj.value
            if isinstance(holder, JSArray):
                keys = [str(i) for i in range(len(holder.elements))]
            elif isinstance(holder, JSObject):
                keys = holder.keys()
            else:
                keys = []
            for key in keys:
                key_tv = self.make_tv(key)
                tracer.op(
                    f"n{node.node_id}:nextkey",
                    reads=(obj.cell,),
                    writes=(key_tv.cell,),
                )
                tracer.compare_and_branch(
                    f"n{node.node_id}:forin", reads=(key_tv.cell,)
                )
                env.define(node.name, key)
                tracer.op(
                    f"n{node.node_id}:bindkey",
                    reads=(key_tv.cell,),
                    writes=(env.slot_cell(node.name),),
                )
                try:
                    self._exec_block(node.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(node, ast.SwitchStmt):
            disc = self.eval(node.discriminant, env)
            matched = False
            try:
                for test_node, body in node.cases:
                    if not matched and test_node is not None:
                        case_value = self.eval(test_node, env)
                        tracer.compare_and_branch(
                            f"n{node.node_id}:case{test_node.node_id % 32}",
                            reads=(disc.cell, case_value.cell),
                        )
                        if not self._js_equals(disc.value, case_value.value):
                            continue
                        matched = True
                    elif not matched and test_node is None:
                        matched = True
                    if matched:
                        self._exec_block(body, env)
            except _BreakSignal:
                pass
        elif isinstance(node, ast.ForStmt):
            if node.init is not None:
                if isinstance(node.init, (ast.VarDecl, ast.ExpressionStmt)):
                    self._exec_stmt(node.init, env)
                else:
                    self.eval(node.init, env)
            while True:
                if node.test is not None:
                    test = self.eval(node.test, env)
                    tracer.compare_and_branch(f"n{node.node_id}:for", reads=(test.cell,))
                    if not js_truthy(test.value):
                        break
                try:
                    self._exec_block(node.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if node.update is not None:
                    self.eval(node.update, env)
        elif isinstance(node, ast.ThrowStmt):
            value = self.eval(node.value, env)
            tracer.op(f"n{node.node_id}:throw", reads=(value.cell,),
                      writes=(self.undefined_cell,))
            raise GuestThrow(value)
        elif isinstance(node, ast.TryStmt):
            try:
                self._exec_block(node.block, env)
            except GuestThrow as thrown:
                if node.param is None and not node.handler:
                    raise  # try/finally without catch: rethrow
                if node.param is not None:
                    env.define(node.param, thrown.value.value)
                    tracer.op(
                        f"n{node.node_id}:catchbind",
                        reads=(thrown.value.cell,),
                        writes=(env.slot_cell(node.param),),
                    )
                self._exec_block(node.handler, env)
            finally:
                if node.finally_body:
                    self._exec_block(node.finally_body, env)
        elif isinstance(node, ast.ReturnStmt):
            if node.value is not None:
                value = self.eval(node.value, env)
            else:
                value = TV(None, self.undefined_cell)
            raise _ReturnSignal(value)
        elif isinstance(node, ast.BreakStmt):
            raise _BreakSignal()
        elif isinstance(node, ast.ContinueStmt):
            raise _ContinueSignal()
        else:
            raise JSError(f"unsupported statement {type(node).__name__}")
        self.ctx.maybe_debug_event()

    # ------------------------------------------------------------------ #
    # Expressions                                                        #
    # ------------------------------------------------------------------ #

    def eval(self, node: ast.JSNode, env: Environment) -> TV:
        self._tick()
        tracer = self.ctx.tracer

        if isinstance(node, ast.Literal):
            out = self.temp_cell()
            tracer.op(
                f"n{node.node_id}:const",
                reads=(self._current_code_cell,),
                writes=(out,),
            )
            return TV(node.value, out)

        if isinstance(node, ast.Identifier):
            value_env = env.lookup_env(node.name)
            if value_env is None:
                raise JSReferenceError(f"{node.name} is not defined")
            # Reading a binding is register-like: the TV aliases the slot
            # cell directly (no record), like a register-allocated load.
            return TV(value_env.slots[node.name], value_env.slot_cell(node.name))

        if isinstance(node, ast.ThisExpr):
            this_env = env.lookup_env("this")
            if this_env is None:
                return TV(None, self.undefined_cell)
            return TV(this_env.slots["this"], this_env.slot_cell("this"))

        if isinstance(node, ast.ArrayLiteral):
            array = JSArray(self.ctx)
            self.ctx.libc_malloc(array.prop_cell("length"))
            for i, element in enumerate(node.elements):
                item = self.eval(element, env)
                array.elements.append(item.value)
                tracer.op(
                    f"n{node.node_id}:el{i % 16}",
                    reads=(item.cell,),
                    writes=(array.index_cell(i),),
                )
            return self.make_tv(array)

        if isinstance(node, ast.ObjectLiteral):
            obj = JSObject(self.ctx)
            self.ctx.libc_malloc(obj.prop_cell("__header__"))
            for i, (key, value_node) in enumerate(node.entries):
                item = self.eval(value_node, env)
                obj.set(key, item.value)
                tracer.op(
                    f"n{node.node_id}:p{i % 16}",
                    reads=(item.cell,),
                    writes=(obj.prop_cell(key),),
                )
            return self.make_tv(obj)

        if isinstance(node, ast.FunctionExpr):
            fn = JSFunction(node, env, self._current_script.script_id)
            out = self.temp_cell()
            tracer.op(
                f"n{node.node_id}:closure",
                reads=(self._current_code_cell,),
                writes=(out,),
            )
            return TV(fn, out)

        if isinstance(node, ast.Unary):
            operand = self.eval(node.operand, env)
            out = self.temp_cell()
            tracer.op(f"n{node.node_id}:unary", reads=(operand.cell,), writes=(out,))
            return TV(self._apply_unary(node.op, operand.value), out)

        if isinstance(node, ast.Binary):
            left = self.eval(node.left, env)
            if node.op == ",":
                return self.eval(node.right, env)
            right = self.eval(node.right, env)
            out = self.temp_cell()
            tracer.op(
                f"n{node.node_id}:binop",
                reads=(left.cell, right.cell),
                writes=(out,),
            )
            result = self._apply_binary(node.op, left.value, right.value)
            if node.op == "+" and isinstance(result, str):
                self._concat_count += 1
                if self._concat_count % 4 == 0:
                    # Rope flattening copies through the C runtime.
                    self.ctx.libc_memcpy((left.cell, right.cell), (out,))
            return TV(result, out)

        if isinstance(node, ast.Logical):
            left = self.eval(node.left, env)
            tracer.compare_and_branch(f"n{node.node_id}:sc", reads=(left.cell,))
            if node.op == "&&":
                if not js_truthy(left.value):
                    return left
                return self.eval(node.right, env)
            if js_truthy(left.value):
                return left
            return self.eval(node.right, env)

        if isinstance(node, ast.Conditional):
            test = self.eval(node.test, env)
            tracer.compare_and_branch(f"n{node.node_id}:cond", reads=(test.cell,))
            if js_truthy(test.value):
                return self.eval(node.consequent, env)
            return self.eval(node.alternate, env)

        if isinstance(node, ast.Assignment):
            return self._eval_assignment(node, env)

        if isinstance(node, ast.UpdateExpr):
            return self._eval_update(node, env)

        if isinstance(node, ast.Member):
            return self._eval_member(node, env)

        if isinstance(node, ast.Call):
            return self._eval_call(node, env)

        raise JSError(f"unsupported expression {type(node).__name__}")

    # ------------------------------------------------------------------ #

    def _eval_assignment(self, node: ast.Assignment, env: Environment) -> TV:
        tracer = self.ctx.tracer
        value = self.eval(node.value, env)
        if node.op != "=":
            current = self.eval(node.target, env)
            combined = self._apply_binary(node.op[:-1], current.value, value.value)
            out = self.temp_cell()
            tracer.op(
                f"n{node.node_id}:combine",
                reads=(current.cell, value.cell),
                writes=(out,),
            )
            value = TV(combined, out)

        if isinstance(node.target, ast.Identifier):
            target_env = env.set(node.target.name, value.value)
            tracer.op(
                f"n{node.node_id}:assign",
                reads=(value.cell,),
                writes=(target_env.slot_cell(node.target.name),),
            )
            return value

        # Member assignment.
        member = node.target
        obj = self.eval(member.obj, env)
        name = self._member_name(member, env)
        holder = obj.value
        if isinstance(holder, JSArray) and name.lstrip("-").isdigit():
            index = int(name)
            while len(holder.elements) <= index:
                holder.elements.append(None)
            holder.elements[index] = value.value
            cell = holder.index_cell(index)
        elif isinstance(holder, JSObject):
            holder.set(name, value.value)
            cell = holder.prop_cell(name)
        else:
            raise JSTypeError(f"cannot set property {name!r} on {js_typeof(holder)}")
        tracer.op(f"n{node.node_id}:setprop", reads=(value.cell,), writes=(cell,))
        hook = getattr(holder, "setter_hook", None)
        if hook is not None:
            hook(name, value)
        return value

    def _eval_update(self, node: ast.UpdateExpr, env: Environment) -> TV:
        tracer = self.ctx.tracer
        current = self.eval(node.target, env)
        delta = 1.0 if node.op == "++" else -1.0
        updated = js_to_number(current.value) + delta
        if isinstance(node.target, ast.Identifier):
            target_env = env.set(node.target.name, updated)
            cell = target_env.slot_cell(node.target.name)
        elif isinstance(node.target, ast.Member):
            obj = self.eval(node.target.obj, env)
            name = self._member_name(node.target, env)
            holder = obj.value
            if not isinstance(holder, JSObject):
                raise JSTypeError("update target is not an object")
            holder.set(name, updated)
            cell = holder.prop_cell(name)
        else:
            raise JSTypeError("invalid update target")
        tracer.op(f"n{node.node_id}:update", reads=(current.cell,), writes=(cell,))
        return TV(updated if node.prefix else js_to_number(current.value), cell)

    def _member_name(self, node: ast.Member, env: Environment) -> str:
        if node.prop is not None:
            return node.prop
        index = self.eval(node.index, env)
        return js_to_string(index.value)

    def _eval_member(self, node: ast.Member, env: Environment) -> TV:
        tracer = self.ctx.tracer
        obj = self.eval(node.obj, env)
        name = self._member_name(node, env)
        value, cell = self.get_property(obj, name)
        out = self.temp_cell()
        tracer.op(f"n{node.node_id}:getprop", reads=(obj.cell, cell), writes=(out,))
        self._member_count += 1
        if self._member_count % 3 == 0:
            self.ctx.plain_helper("HashTableLookup", reads=(obj.cell, cell), writes=(out,))
        return TV(value, out)

    def get_property(self, obj: TV, name: str) -> Tuple[object, int]:
        """Resolve a property; returns (value, backing cell)."""
        holder = obj.value
        if isinstance(holder, str):
            return self._string_property(holder, name), obj.cell
        if isinstance(holder, JSArray):
            if name == "length":
                return float(len(holder.elements)), holder.prop_cell("length")
            if name.lstrip("-").isdigit():
                index = int(name)
                if 0 <= index < len(holder.elements):
                    return holder.elements[index], holder.index_cell(index)
                return None, self.undefined_cell
            method = _ARRAY_METHODS.get(name)
            if method is not None:
                return NativeFunction(f"Array.{name}", method), holder.prop_cell(name)
        if isinstance(holder, JSObject):
            getter = getattr(holder, "getter_hook", None)
            if getter is not None:
                hooked = getter(name)
                if hooked is not None:
                    return hooked.value, hooked.cell
            if holder.has(name):
                return holder.get(name), holder.prop_cell(name)
            return None, self.undefined_cell
        if holder is None:
            raise JSTypeError(f"cannot read property {name!r} of undefined")
        return None, self.undefined_cell

    def _string_property(self, value: str, name: str) -> object:
        if name == "length":
            return float(len(value))
        method = _STRING_METHODS.get(name)
        if method is not None:
            return NativeFunction(f"String.{name}", _bind_string(method, value))
        return None

    def _eval_call(self, node: ast.Call, env: Environment) -> TV:
        # Method call: evaluate the receiver once.
        this: object = None
        if isinstance(node.callee, ast.Member):
            obj = self.eval(node.callee.obj, env)
            name = self._member_name(node.callee, env)
            fn_value, fn_cell = self.get_property(obj, name)
            callee = TV(fn_value, fn_cell)
            this = obj.value
        else:
            callee = self.eval(node.callee, env)
        args = [self.eval(arg, env) for arg in node.args]
        if node.is_new:
            instance = JSObject(self.ctx, kind="instance")
            result = self._invoke(callee, instance, args, f"n{node.node_id}")
            return self.make_tv(instance if result.value is None else result.value)
        return self._invoke(callee, this, args, f"n{node.node_id}")

    def _invoke(self, callee: TV, this: object, args: List[TV], site: str) -> TV:
        tracer = self.ctx.tracer
        fn = callee.value
        if isinstance(fn, NativeFunction):
            return fn.fn(self, this, args)
        if not isinstance(fn, JSFunction):
            raise JSTypeError(f"{js_to_string(fn)} is not a function")

        decl = fn.declaration
        script = self.coverage.script(fn.script_id)
        if not fn.compiled:
            region = self._script_regions[fn.script_id]
            fn.code_cell = self._compile_span(
                script.name,
                region,
                decl.span,
                f"fn{decl.node_id}",
                ast_cell=self._script_ast_cells.get(fn.script_id),
            )
            fn.compiled = True
        script.mark_function(decl.node_id)
        fn.call_count += 1

        call_env = Environment(self.ctx, fn.closure)
        call_env.define("this", this)
        with tracer.function(f"v8::js::{fn.name}", site=f"{site}:call"):
            for i, param in enumerate(decl.params):
                arg = args[i] if i < len(args) else TV(None, self.undefined_cell)
                call_env.define(param, arg.value)
                tracer.op(
                    f"bind{i % 8}",
                    reads=(arg.cell,),
                    writes=(call_env.slot_cell(param),),
                )
            saved_code = self._current_code_cell
            saved_script = self._current_script
            self._current_code_cell = fn.code_cell
            self._current_script = script
            try:
                self._exec_block(decl.body, call_env)
                result: TV = TV(None, self.undefined_cell)
            except _ReturnSignal as signal:
                result = signal.value
            finally:
                self._current_code_cell = saved_code
                self._current_script = saved_script
        return result

    # ------------------------------------------------------------------ #
    # Operators                                                          #
    # ------------------------------------------------------------------ #

    def _apply_unary(self, op: str, value: object) -> object:
        if op == "!":
            return not js_truthy(value)
        if op == "-":
            return -js_to_number(value)
        if op == "+":
            return js_to_number(value)
        if op == "~":
            return float(~int(js_to_number(value)))
        if op == "typeof":
            return js_typeof(value)
        if op == "delete":
            return True
        raise JSError(f"unsupported unary operator {op}")

    def _apply_binary(self, op: str, left: object, right: object) -> object:
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return js_to_string(left) + js_to_string(right)
            return js_to_number(left) + js_to_number(right)
        if op == "-":
            return js_to_number(left) - js_to_number(right)
        if op == "*":
            return js_to_number(left) * js_to_number(right)
        if op == "/":
            denominator = js_to_number(right)
            if denominator == 0:
                return float("inf") if js_to_number(left) > 0 else float("nan")
            return js_to_number(left) / denominator
        if op == "%":
            denominator = js_to_number(right)
            if denominator == 0:
                return float("nan")
            return float(js_to_number(left) % denominator)
        if op in ("==", "==="):
            return self._js_equals(left, right)
        if op in ("!=", "!=="):
            return not self._js_equals(left, right)
        if op in ("<", ">", "<=", ">="):
            if isinstance(left, str) and isinstance(right, str):
                pair = (left, right)
            else:
                pair = (js_to_number(left), js_to_number(right))
            return {
                "<": pair[0] < pair[1],
                ">": pair[0] > pair[1],
                "<=": pair[0] <= pair[1],
                ">=": pair[0] >= pair[1],
            }[op]
        if op == "in":
            if isinstance(right, JSObject):
                return right.has(js_to_string(left))
            return False
        raise JSError(f"unsupported binary operator {op}")

    @staticmethod
    def _js_equals(left: object, right: object) -> bool:
        if isinstance(left, (float, bool)) and isinstance(right, (float, bool)):
            return js_to_number(left) == js_to_number(right)
        return left is right or left == right


# --------------------------------------------------------------------- #
# Built-in methods on strings and arrays                                #
# --------------------------------------------------------------------- #


def _bind_string(method, value: str):
    def bound(interp: Interpreter, this: object, args: List[TV]) -> TV:
        return method(interp, value, args)

    return bound


def _string_index_of(interp, value: str, args):
    needle = js_to_string(args[0].value) if args else ""
    return interp.make_tv(float(value.find(needle)))


def _string_slice(interp, value: str, args):
    start = int(js_to_number(args[0].value)) if args else 0
    end = int(js_to_number(args[1].value)) if len(args) > 1 else len(value)
    return interp.make_tv(value[start:end])


def _string_char_at(interp, value: str, args):
    index = int(js_to_number(args[0].value)) if args else 0
    return interp.make_tv(value[index] if 0 <= index < len(value) else "")


def _string_split(interp, value: str, args):
    sep = js_to_string(args[0].value) if args else ","
    array = JSArray(interp.ctx)
    array.elements = list(value.split(sep)) if sep else list(value)
    return interp.make_tv(array)


def _string_upper(interp, value: str, args):
    return interp.make_tv(value.upper())


def _string_lower(interp, value: str, args):
    return interp.make_tv(value.lower())


def _string_replace(interp, value: str, args):
    old = js_to_string(args[0].value) if args else ""
    new = js_to_string(args[1].value) if len(args) > 1 else ""
    return interp.make_tv(value.replace(old, new, 1))


def _string_substring(interp, value: str, args):
    return _string_slice(interp, value, args)


_STRING_METHODS = {
    "indexOf": _string_index_of,
    "slice": _string_slice,
    "charAt": _string_char_at,
    "split": _string_split,
    "toUpperCase": _string_upper,
    "toLowerCase": _string_lower,
    "replace": _string_replace,
    "substring": _string_substring,
}


def _array_push(interp: Interpreter, this, args):
    if not isinstance(this, JSArray):
        raise JSTypeError("push on non-array")
    for arg in args:
        this.elements.append(arg.value)
        interp.ctx.tracer.op(
            "array_push",
            reads=(arg.cell,),
            writes=(this.index_cell(len(this.elements) - 1),),
        )
    return interp.make_tv(float(len(this.elements)))


def _array_pop(interp: Interpreter, this, args):
    if not isinstance(this, JSArray) or not this.elements:
        return TV(None, interp.undefined_cell)
    value = this.elements.pop()
    return TV(value, this.index_cell(len(this.elements)))


def _array_join(interp: Interpreter, this, args):
    sep = js_to_string(args[0].value) if args else ","
    if not isinstance(this, JSArray):
        raise JSTypeError("join on non-array")
    return interp.make_tv(sep.join(js_to_string(e) for e in this.elements))


def _array_index_of(interp: Interpreter, this, args):
    if not isinstance(this, JSArray):
        raise JSTypeError("indexOf on non-array")
    target = args[0].value if args else None
    for i, element in enumerate(this.elements):
        if element is target or element == target:
            return interp.make_tv(float(i))
    return interp.make_tv(-1.0)


def _array_slice(interp: Interpreter, this, args):
    if not isinstance(this, JSArray):
        raise JSTypeError("slice on non-array")
    start = int(js_to_number(args[0].value)) if args else 0
    end = int(js_to_number(args[1].value)) if len(args) > 1 else len(this.elements)
    out = JSArray(interp.ctx)
    out.elements = list(this.elements[start:end])
    return interp.make_tv(out)


def _array_for_each(interp: Interpreter, this, args):
    if not isinstance(this, JSArray) or not args:
        return TV(None, interp.undefined_cell)
    callback = args[0]
    for i, element in enumerate(this.elements):
        interp._invoke(
            callback,
            None,
            [TV(element, this.index_cell(i)), interp.make_tv(float(i))],
            "forEach",
        )
    return TV(None, interp.undefined_cell)


def _array_map(interp: Interpreter, this, args):
    if not isinstance(this, JSArray) or not args:
        return TV(None, interp.undefined_cell)
    callback = args[0]
    out = JSArray(interp.ctx)
    for i, element in enumerate(this.elements):
        result = interp._invoke(
            callback,
            None,
            [TV(element, this.index_cell(i)), interp.make_tv(float(i))],
            "map",
        )
        out.elements.append(result.value)
        interp.ctx.tracer.op(
            "array_map_store", reads=(result.cell,), writes=(out.index_cell(i),)
        )
    return interp.make_tv(out)


def _array_filter(interp: Interpreter, this, args):
    if not isinstance(this, JSArray) or not args:
        return TV(None, interp.undefined_cell)
    callback = args[0]
    out = JSArray(interp.ctx)
    for i, element in enumerate(this.elements):
        keep = interp._invoke(
            callback,
            None,
            [TV(element, this.index_cell(i)), interp.make_tv(float(i))],
            "filter",
        )
        interp.ctx.tracer.compare_and_branch("filter_keep", reads=(keep.cell,))
        if js_truthy(keep.value):
            out.elements.append(element)
    return interp.make_tv(out)


def _array_concat(interp: Interpreter, this, args):
    if not isinstance(this, JSArray):
        raise JSTypeError("concat on non-array")
    out = JSArray(interp.ctx)
    out.elements = list(this.elements)
    for arg in args:
        if isinstance(arg.value, JSArray):
            out.elements.extend(arg.value.elements)
        else:
            out.elements.append(arg.value)
        interp.ctx.tracer.op(
            "array_concat",
            reads=(arg.cell,),
            writes=(out.index_cell(max(0, len(out.elements) - 1)),),
        )
    return interp.make_tv(out)


def _array_reduce(interp: Interpreter, this, args):
    if not isinstance(this, JSArray) or not args:
        return TV(None, interp.undefined_cell)
    callback = args[0]
    if len(args) > 1:
        acc = args[1]
        start = 0
    elif this.elements:
        acc = TV(this.elements[0], this.index_cell(0))
        start = 1
    else:
        raise JSTypeError("reduce of empty array with no initial value")
    for i in range(start, len(this.elements)):
        acc = interp._invoke(
            callback,
            None,
            [acc, TV(this.elements[i], this.index_cell(i)), interp.make_tv(float(i))],
            "reduce",
        )
    return acc


_ARRAY_METHODS = {
    "push": _array_push,
    "pop": _array_pop,
    "join": _array_join,
    "indexOf": _array_index_of,
    "slice": _array_slice,
    "forEach": _array_for_each,
    "map": _array_map,
    "filter": _array_filter,
    "concat": _array_concat,
    "reduce": _array_reduce,
}
