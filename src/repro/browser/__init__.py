"""Simulated multi-threaded browser engine (the Chromium substitute).

Subpackages implement the rendering pipeline of the paper's Figure 1:
HTML (:mod:`.html`), CSS (:mod:`.css`), JavaScript (:mod:`.js`), style
resolution (:mod:`.style`), layout (:mod:`.layout`), paint (:mod:`.paint`),
compositing + raster (:mod:`.compositor`), plus the network stack
(:mod:`.net`), IPC (:mod:`.ipc`) and thread scheduling (:mod:`.scheduler`).
:class:`BrowserEngine` orchestrates a full page load and browsing session,
emitting the instruction trace the profiler consumes.
"""

from .context import (
    COMPOSITOR_THREAD,
    EngineConfig,
    EngineContext,
    FIRST_RASTER_THREAD,
    IO_THREAD,
    MAIN_THREAD,
)
from .engine import BrowserEngine, PageSpec, UserAction

__all__ = [
    "BrowserEngine",
    "PageSpec",
    "UserAction",
    "EngineConfig",
    "EngineContext",
    "MAIN_THREAD",
    "COMPOSITOR_THREAD",
    "IO_THREAD",
    "FIRST_RASTER_THREAD",
]
