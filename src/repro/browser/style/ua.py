"""User-agent stylesheet: per-tag default property values.

Real engines cascade author rules over a built-in UA sheet; without it a
``div`` would be inline and ``<head>`` would render.  Values here are the
pragmatic subset our property registry supports.
"""

from __future__ import annotations

from typing import Dict

from ..css.values import Color, Length, Value

#: tag -> {property -> value} applied before author rules.
UA_DEFAULTS: Dict[str, Dict[str, Value]] = {
    # Non-rendered elements.
    "head": {"display": "none"},
    "title": {"display": "none"},
    "meta": {"display": "none"},
    "link": {"display": "none"},
    "script": {"display": "none"},
    "style": {"display": "none"},
    "template": {"display": "none"},
    # Block containers.
    "html": {"display": "block"},
    "body": {"display": "block", "margin-top": Length(8), "margin-bottom": Length(8),
             "margin-left": Length(8), "margin-right": Length(8)},
    "div": {"display": "block"},
    "p": {"display": "block", "margin-top": Length(16), "margin-bottom": Length(16)},
    "section": {"display": "block"},
    "article": {"display": "block"},
    "header": {"display": "block"},
    "footer": {"display": "block"},
    "nav": {"display": "block"},
    "aside": {"display": "block"},
    "main": {"display": "block"},
    "ul": {"display": "block", "margin-top": Length(16), "margin-bottom": Length(16),
           "padding-left": Length(40)},
    "ol": {"display": "block", "padding-left": Length(40)},
    "li": {"display": "block"},
    "form": {"display": "block"},
    "table": {"display": "block"},
    "tr": {"display": "block"},
    "td": {"display": "inline"},
    "th": {"display": "inline", "font-weight": "bold"},
    "h1": {"display": "block", "font-size": Length(32), "line-height": Length(38),
           "font-weight": "bold", "margin-top": Length(21), "margin-bottom": Length(21)},
    "h2": {"display": "block", "font-size": Length(24), "line-height": Length(29),
           "font-weight": "bold", "margin-top": Length(20), "margin-bottom": Length(20)},
    "h3": {"display": "block", "font-size": Length(19), "line-height": Length(23),
           "font-weight": "bold", "margin-top": Length(18), "margin-bottom": Length(18)},
    "h4": {"display": "block", "font-weight": "bold"},
    "hr": {"display": "block", "height": Length(1),
           "background-color": Color(128, 128, 128)},
    "pre": {"display": "block"},
    "blockquote": {"display": "block", "margin-left": Length(40)},
    # Inline elements.
    "span": {"display": "inline"},
    "a": {"display": "inline", "color": Color(17, 85, 204)},
    "b": {"display": "inline", "font-weight": "bold"},
    "strong": {"display": "inline", "font-weight": "bold"},
    "i": {"display": "inline"},
    "em": {"display": "inline"},
    "small": {"display": "inline", "font-size": Length(13)},
    "label": {"display": "inline"},
    # Replaced / widget elements: simple fixed-size blocks.
    "img": {"display": "block"},
    "canvas": {"display": "block"},
    "video": {"display": "block"},
    "iframe": {"display": "block"},
    "button": {"display": "block", "width": Length(96), "height": Length(28),
               "background-color": Color(239, 239, 239)},
    "input": {"display": "block", "width": Length(180), "height": Length(24),
              "background-color": Color(255, 255, 255),
              "border-width": Length(1), "border-color": Color(118, 118, 118)},
    "select": {"display": "block", "width": Length(120), "height": Length(24),
               "background-color": Color(255, 255, 255)},
    "textarea": {"display": "block", "width": Length(200), "height": Length(60),
                 "background-color": Color(255, 255, 255)},
}


def ua_defaults_for(tag: str) -> Dict[str, Value]:
    """UA default property values for ``tag`` (empty for unknown tags)."""
    return UA_DEFAULTS.get(tag, {})
