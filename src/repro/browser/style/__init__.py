"""Style subsystem: rule matching, cascade, computed styles."""

from .computed import ComputedStyle
from .matcher import MatchedRule, RuleIndex, match_element
from .resolver import StyleResolver

__all__ = [
    "ComputedStyle",
    "MatchedRule",
    "RuleIndex",
    "match_element",
    "StyleResolver",
]
