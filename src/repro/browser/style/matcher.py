"""Rule matching with Chromium-style rule bucketing.

Real engines never test every rule against every element: rules are
bucketed by the subject compound's id / class / tag, and each element only
probes its relevant buckets.  The traced cost therefore scales the way the
real engine's does.

Rules whose subject key never appears in the document are parsed but never
*tested* — exactly the "unused CSS" the paper's Table I counts.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from ..context import EngineContext
from ..css.cssom import CSSOM, StyleRule
from ..css.selectors import Selector
from ..html.dom import Element


class MatchedRule:
    """A (selector, rule) pair that matched an element.

    ``match_cell`` is the abstract cell holding this entry of the
    element's matched-rules list; the apply stage reads it, so the
    dataflow element-identity -> match entry -> applied property is
    visible to the slicer.
    """

    __slots__ = ("selector", "rule", "match_cell")

    def __init__(self, selector: Selector, rule: StyleRule, match_cell: int) -> None:
        self.selector = selector
        self.rule = rule
        self.match_cell = match_cell

    def sort_key(self) -> Tuple:
        subject = self.selector.specificity()
        return (subject, self.rule.order)


class RuleIndex:
    """Buckets (selector, rule) pairs by subject id/class/tag."""

    def __init__(self, cssom: CSSOM) -> None:
        self.by_id: Dict[str, List[Tuple[Selector, StyleRule]]] = defaultdict(list)
        self.by_class: Dict[str, List[Tuple[Selector, StyleRule]]] = defaultdict(list)
        self.by_tag: Dict[str, List[Tuple[Selector, StyleRule]]] = defaultdict(list)
        self.universal: List[Tuple[Selector, StyleRule]] = []
        for rule in cssom.all_rules():
            for selector in rule.selectors:
                subject = selector.subject()
                if subject.element_id is not None:
                    self.by_id[subject.element_id].append((selector, rule))
                elif subject.classes:
                    self.by_class[subject.classes[0]].append((selector, rule))
                elif subject.tag is not None and subject.tag != "*":
                    self.by_tag[subject.tag].append((selector, rule))
                else:
                    self.universal.append((selector, rule))

    def candidates_for(self, element: Element) -> List[Tuple[Selector, StyleRule]]:
        candidates: List[Tuple[Selector, StyleRule]] = []
        ident = element.element_id
        if ident and ident in self.by_id:
            candidates.extend(self.by_id[ident])
        for cls in element.classes:
            bucket = self.by_class.get(cls)
            if bucket:
                candidates.extend(bucket)
        bucket = self.by_tag.get(element.tag)
        if bucket:
            candidates.extend(bucket)
        candidates.extend(self.universal)
        return candidates


def match_element(
    ctx: EngineContext, index: RuleIndex, element: Element
) -> List[MatchedRule]:
    """Traced rule matching for one element."""
    tracer = ctx.tracer
    matched: List[MatchedRule] = []
    candidates = index.candidates_for(element)
    with tracer.function("blink::css::StyleResolver::MatchRules"):
        tracer.op(
            "probe_buckets",
            reads=(element.cell("tag"),),
            writes=(element.cell("match_state"),),
        )
        for i, (selector, rule) in enumerate(candidates):
            # One compare per candidate, reading the compiled selector and
            # the element identity cells the subject compound tests.
            identity = _identity_cells(element, selector)
            tracer.compare_and_branch(
                f"try{i % 16}",
                reads=(rule.selector_cell,) + identity,
            )
            if i % 6 == 0:
                ctx.plain_helper("memcmp", reads=(rule.selector_cell,) + identity[:1])
            if selector.matches(element):
                rule.ever_matched = True
                match_cell = element.cell(f"match:{len(matched) % 32}")
                matched.append(MatchedRule(selector, rule, match_cell))
                tracer.op(
                    f"collect{i % 16}",
                    reads=(rule.selector_cell,) + identity,
                    writes=(match_cell,),
                )
    matched.sort(key=MatchedRule.sort_key)
    return matched


def _identity_cells(element: Element, selector) -> tuple:
    """Element cells the subject compound of ``selector`` reads."""
    subject = selector.subject()
    cells = [element.cell("tag")]
    if subject.element_id is not None:
        cells.append(element.cell("attr:id"))
    if subject.classes:
        cells.append(element.cell("attr:class"))
    for attr_name, _ in subject.attributes:
        cells.append(element.cell(f"attr:{attr_name}"))
    return tuple(cells)
