"""Computed style: the final value of every property for one element."""

from __future__ import annotations

from typing import Dict, Optional

from ..css.values import Color, Length, PROPERTIES, TRANSPARENT, Value


class ComputedStyle:
    """Resolved property values for one element."""

    __slots__ = ("values",)

    def __init__(self, values: Dict[str, Value]) -> None:
        self.values = values

    @classmethod
    def initial(cls) -> "ComputedStyle":
        return cls({name: spec.initial for name, spec in PROPERTIES.items()})

    def get(self, name: str) -> Value:
        return self.values[name]

    # -- convenience accessors used by layout/paint -------------------- #

    @property
    def display(self) -> str:
        return str(self.values["display"])

    @property
    def position(self) -> str:
        return str(self.values["position"])

    @property
    def visible(self) -> bool:
        return self.values["visibility"] == "visible" and self.opacity > 0.0

    @property
    def opacity(self) -> float:
        value = self.values["opacity"]
        return float(value) if isinstance(value, (int, float)) else 1.0

    @property
    def z_index(self) -> int:
        value = self.values["z-index"]
        if isinstance(value, (int, float)):
            return int(value)
        return 0

    @property
    def has_explicit_z(self) -> bool:
        return isinstance(self.values["z-index"], (int, float))

    @property
    def background_color(self) -> Color:
        value = self.values["background-color"]
        return value if isinstance(value, Color) else TRANSPARENT

    @property
    def color(self) -> Color:
        value = self.values["color"]
        return value if isinstance(value, Color) else Color(0, 0, 0)

    @property
    def font_size(self) -> float:
        value = self.values["font-size"]
        return value.value if isinstance(value, Length) else 16.0

    @property
    def line_height(self) -> float:
        value = self.values["line-height"]
        if isinstance(value, Length):
            return value.value
        return self.font_size * 1.25

    def length_or_auto(self, name: str) -> Optional[Length]:
        value = self.values[name]
        return value if isinstance(value, Length) else None

    def side(self, prefix: str, side: str) -> float:
        value = self.values[f"{prefix}-{side}"]
        return value.value if isinstance(value, Length) and not value.percent else (
            value.value if isinstance(value, Length) else 0.0
        )

    @property
    def creates_layer(self) -> bool:
        """Chromium-style layer promotion heuristics."""
        if self.position == "fixed":
            return True
        if self.values["transform"] != "none":
            return True
        if str(self.values["will-change"]) in ("transform", "opacity", "contents"):
            return True
        if self.opacity < 1.0:
            return True
        if self.position in ("absolute", "relative") and self.has_explicit_z:
            return True
        return False

    @property
    def is_opaque(self) -> bool:
        """The element paints fully opaque pixels over its whole box."""
        return self.background_color.opaque and self.opacity >= 1.0

    def copy(self) -> "ComputedStyle":
        return ComputedStyle(dict(self.values))
