"""Style resolution: cascade + inheritance -> computed styles (traced).

For every element: collect matched rules (bucketed matching), sort by
(importance, specificity, order), apply declarations over the inherited/
initial base, then write the final values into the element's
``style:<property>`` cells.  Inline ``style=""`` attributes apply last
(highest cascade priority short of ``!important``).

The dataflow the slicer sees: matched declaration cells (and the parent's
style cells for inherited properties) flow into each element's style cells,
which layout and paint read downstream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..context import EngineContext
from ..css.cssom import CSSOM, Declaration
from ..css.parser import parse_declarations
from ..html.dom import Document, Element
from ..css.values import PROPERTIES, is_inherited
from .computed import ComputedStyle
from .matcher import MatchedRule, RuleIndex, match_element
from .ua import ua_defaults_for

#: Inherited properties whose propagation is explicitly traced (one record
#: per element each): the ones downstream stages actually consume.
_TRACED_INHERITED = ("color", "font-size", "line-height", "visibility")


class StyleResolver:
    """Resolves computed styles for a whole document."""

    def __init__(self, ctx: EngineContext, cssom: CSSOM) -> None:
        self.ctx = ctx
        self.cssom = cssom
        self.index = RuleIndex(cssom)
        self.computed: Dict[int, ComputedStyle] = {}
        #: node ids whose computed style is stale (must be re-resolved
        #: before layout/paint may consume it).  Nodes never resolved are
        #: implicitly invalid; this set tracks *re*-invalidations.
        self._invalid: Set[int] = set()

    def mark_invalid(self, element: Element) -> None:
        """Invalidate ``element`` and every descendant element's style."""
        self._invalid.add(element.node_id)
        for child in element.descendant_elements():
            self._invalid.add(child.node_id)

    def needs_resolve(self, element: Element) -> bool:
        """True if the element's computed style is missing or stale."""
        return (
            element.node_id not in self.computed
            or element.node_id in self._invalid
        )

    def resolve_document(self, document: Document) -> Dict[int, ComputedStyle]:
        """Resolve every element, parent before child (DOM order)."""
        with self.ctx.tracer.function("blink::css::StyleResolver::ResolveDocument"):
            self._resolve_subtree(document.root, None)
        return self.computed

    def resolve_subtree(self, element: Element) -> None:
        """Re-resolve one subtree after a scripted mutation."""
        parent_style = None
        if element.parent is not None:
            parent_style = self.computed.get(element.parent.node_id)
        with self.ctx.tracer.function("blink::css::StyleResolver::RecalcStyle"):
            self._resolve_subtree(element, parent_style)

    def style_of(self, element: Element) -> ComputedStyle:
        style = self.computed.get(element.node_id)
        if style is None:
            raise KeyError(f"element {element!r} has no computed style")
        return style

    # ------------------------------------------------------------------ #

    def _resolve_subtree(
        self, element: Element, parent_style: Optional[ComputedStyle]
    ) -> None:
        style = self._resolve_element(element, parent_style)
        self.computed[element.node_id] = style
        self._invalid.discard(element.node_id)
        for child in element.child_elements():
            self._resolve_subtree(child, style)

    def _resolve_element(
        self, element: Element, parent_style: Optional[ComputedStyle]
    ) -> ComputedStyle:
        ctx = self.ctx
        tracer = ctx.tracer
        matched = match_element(ctx, self.index, element)

        style = ComputedStyle.initial()
        if parent_style is not None:
            for name, spec in PROPERTIES.items():
                if spec.inherited:
                    style.values[name] = parent_style.values[name]
        # UA stylesheet defaults cascade below author rules.
        style.values.update(ua_defaults_for(element.tag))

        with tracer.function("blink::css::StyleResolver::ApplyMatchedProperties"):
            # Inheritance dataflow (parent style cells -> child style cells).
            if parent_style is not None and element.parent is not None:
                parent_cells = tuple(
                    element.parent.cell(f"style:{name}") for name in _TRACED_INHERITED
                )
                tracer.op(
                    "inherit",
                    reads=parent_cells,
                    writes=tuple(
                        element.cell(f"style:{name}") for name in _TRACED_INHERITED
                    ),
                )
            # Cascade: later (higher-priority) declarations overwrite.
            ordered = self._ordered_declarations(matched, element)
            for i, (decl, provenance_cell) in enumerate(ordered):
                if decl.name not in PROPERTIES:
                    continue
                style.values[decl.name] = decl.value
                reads = [provenance_cell]
                if decl.cell >= 0:
                    reads.insert(0, decl.cell)
                tracer.op(
                    f"apply{i % 16}",
                    reads=tuple(reads),
                    writes=(element.cell(f"style:{decl.name}"),),
                )
            ctx.maybe_debug_event()
        return style

    def _ordered_declarations(
        self, matched: List[MatchedRule], element: Element
    ) -> List[tuple]:
        """(declaration, provenance cell) pairs, lowest priority first.

        The provenance cell is the matched-rules-list entry (or the inline
        ``style=""`` attribute cell) the declaration came from, so applied
        values carry a data dependence on the element's identity cells.
        """
        ordered: List[tuple] = []
        for match in matched:  # already sorted by (specificity, order)
            ordered.extend(
                (d, match.match_cell)
                for d in match.rule.declarations
                if not d.important
            )
        inline = element.get_attribute("style")
        if inline:
            inline_cell = element.cell("attr:style")
            inline_decls = parse_declarations(inline)
            for decl in inline_decls:
                decl.cell = inline_cell
            ordered.extend((d, inline_cell) for d in inline_decls if not d.important)
        for match in matched:
            ordered.extend(
                (d, match.match_cell)
                for d in match.rule.declarations
                if d.important
            )
        return ordered
