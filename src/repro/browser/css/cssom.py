"""CSS Object Model: stylesheets, rules, declarations, with memory cells.

Each rule carries its byte span in the source sheet (for Table I coverage
accounting) and abstract cells for its selector and each declaration, so
the slicer sees style data flowing from parsed rules into computed styles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..context import EngineContext
from .selectors import Selector
from .values import Value, parse_value


@dataclass
class Declaration:
    """One ``property: value`` pair."""

    name: str
    raw_value: str
    value: Value
    important: bool = False
    #: abstract cell holding the parsed value
    cell: int = -1


@dataclass
class StyleRule:
    """One selector-list + declaration-block rule."""

    selectors: List[Selector]
    declarations: List[Declaration]
    #: (start, end) byte range of the full rule in its stylesheet source
    span: Tuple[int, int]
    #: order index within the whole cascade (sheet order then rule order)
    order: int = 0
    #: abstract cell holding the compiled selector
    selector_cell: int = -1
    #: set by the style engine when the rule matched at least one element
    ever_matched: bool = False

    def byte_size(self) -> int:
        return self.span[1] - self.span[0]


@dataclass
class StyleSheet:
    """A parsed stylesheet with its source accounting."""

    name: str
    rules: List[StyleRule] = field(default_factory=list)
    source_bytes: int = 0

    def used_bytes(self) -> int:
        return sum(rule.byte_size() for rule in self.rules if rule.ever_matched)

    def rule_bytes(self) -> int:
        return sum(rule.byte_size() for rule in self.rules)


class CSSOM:
    """All stylesheets of the document, in cascade order."""

    def __init__(self) -> None:
        self.sheets: List[StyleSheet] = []
        self._next_order = 0

    def add_sheet(self, sheet: StyleSheet) -> None:
        for rule in sheet.rules:
            rule.order = self._next_order
            self._next_order += 1
        self.sheets.append(sheet)

    def all_rules(self) -> List[StyleRule]:
        return [rule for sheet in self.sheets for rule in sheet.rules]

    def rule_count(self) -> int:
        return sum(len(sheet.rules) for sheet in self.sheets)

    def total_bytes(self) -> int:
        return sum(sheet.source_bytes for sheet in self.sheets)

    def used_bytes(self) -> int:
        return sum(sheet.used_bytes() for sheet in self.sheets)
