"""CSS parser (traced stylesheet -> CSSOM stage of the pipeline).

Parses rule sets ``selector-list { declarations }``, expanding
margin/padding shorthands, recursing into ``@media`` blocks (the engine
applies all media, matching the benchmarks' single-viewport sessions), and
skipping ``@font-face``/``@keyframes`` bodies while still accounting their
bytes (they parse but match nothing, so they count as unused bytes in the
Table I methodology).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ...machine.memory import MemRegion
from ..context import EngineContext
from .cssom import Declaration, StyleRule, StyleSheet
from .selectors import SelectorParseError, parse_selector_list
from .values import expand_shorthand, parse_value

_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)


class CSSParseError(ValueError):
    """Raised on unrecoverable stylesheet syntax errors."""


def _strip_comments(source: str) -> str:
    """Blank out comments, preserving every byte offset."""
    return _COMMENT_RE.sub(lambda m: " " * (m.end() - m.start()), source)


def _find_block_end(source: str, open_brace: int) -> int:
    """Index of the ``}`` matching the ``{`` at ``open_brace``."""
    depth = 0
    for i in range(open_brace, len(source)):
        if source[i] == "{":
            depth += 1
        elif source[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    raise CSSParseError(f"unbalanced braces at offset {open_brace}")


def parse_declarations(block: str) -> List[Declaration]:
    """Parse the inside of a declaration block."""
    declarations: List[Declaration] = []
    for part in block.split(";"):
        if ":" not in part:
            continue
        name, _, raw_value = part.partition(":")
        name = name.strip().lower()
        raw_value = raw_value.strip()
        if not name or not raw_value:
            continue
        important = raw_value.lower().endswith("!important")
        if important:
            raw_value = raw_value[: -len("!important")].rstrip()
        for long_name, long_value in expand_shorthand(name, raw_value).items():
            declarations.append(
                Declaration(
                    name=long_name,
                    raw_value=long_value,
                    value=parse_value(long_name, long_value),
                    important=important,
                )
            )
    return declarations


def _parse_region(
    source: str, start: int, end: int, rules: List[StyleRule]
) -> None:
    pos = start
    while pos < end:
        brace = source.find("{", pos, end)
        if brace < 0:
            break
        prelude = source[pos:brace].strip()
        block_end = _find_block_end(source, brace)
        rule_span = (pos + _leading_space(source, pos, brace), block_end + 1)
        if prelude.startswith("@media"):
            _parse_region(source, brace + 1, block_end, rules)
        elif prelude.startswith("@"):
            # @font-face / @keyframes / ...: bytes parsed, never matched.
            rules.append(
                StyleRule(selectors=[], declarations=[], span=rule_span)
            )
        elif prelude:
            try:
                selectors = parse_selector_list(prelude)
            except SelectorParseError:
                selectors = []  # engine drops rules it cannot parse
            declarations = parse_declarations(source[brace + 1 : block_end])
            rules.append(
                StyleRule(
                    selectors=selectors, declarations=declarations, span=rule_span
                )
            )
        pos = block_end + 1


def _leading_space(source: str, start: int, end: int) -> int:
    offset = 0
    while start + offset < end and source[start + offset].isspace():
        offset += 1
    return offset


def parse_stylesheet_source(name: str, source: str) -> StyleSheet:
    """Parse CSS text into a (cell-less) :class:`StyleSheet`."""
    clean = _strip_comments(source)
    rules: List[StyleRule] = []
    _parse_region(clean, 0, len(clean), rules)
    return StyleSheet(name=name, rules=rules, source_bytes=len(source))


def parse_css(
    ctx: EngineContext, name: str, source: str, region: MemRegion
) -> StyleSheet:
    """Traced parse: reads the sheet's byte cells, writes rule cells."""
    tracer = ctx.tracer
    sheet = parse_stylesheet_source(name, source)
    with tracer.function("blink::css::CSSParser::ParseSheet"):
        for rule in sheet.rules:
            start_cell = ctx.byte_cell(region, rule.span[0])
            end_cell = ctx.byte_cell(region, max(rule.span[0], rule.span[1] - 1))
            span_cells = tuple(range(start_cell, end_cell + 1))
            rule.selector_cell = ctx.memory.alloc_cell(f"css:{name}:sel")
            tracer.compare_and_branch("rule_kind", reads=span_cells[:1])
            tracer.op(
                "compile_selector", reads=span_cells[:2], writes=(rule.selector_cell,)
            )
            for i, decl in enumerate(rule.declarations):
                decl.cell = ctx.memory.alloc_cell(f"css:{name}:{decl.name}")
                tracer.op(
                    f"parse_decl{i % 8}",
                    reads=span_cells[-1:],
                    writes=(decl.cell,),
                )
            ctx.maybe_debug_event()
    return sheet
