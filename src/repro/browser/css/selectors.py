"""CSS selectors: model, parsing, specificity, and (untraced) matching.

Supported grammar: compound selectors made of ``tag``, ``#id``, ``.class``,
``[attr]``/``[attr=value]`` and ``:pseudo`` parts, combined with descendant
(whitespace) and child (``>``) combinators, in comma-separated lists.

Matching here is the *semantic* operation; the traced style-resolution
stage (:mod:`repro.browser.style.matcher`) wraps it with instruction
emission.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..html.dom import Element

_PART_RE = re.compile(
    r"""
    (?P<tag>\*|[a-zA-Z][a-zA-Z0-9-]*)
    | \#(?P<id>[a-zA-Z0-9_-]+)
    | \.(?P<cls>[a-zA-Z0-9_-]+)
    | \[(?P<attr>[a-zA-Z0-9_-]+)(?:=(?P<aval>"[^"]*"|'[^']*'|[^\]]*))?\]
    | :(?P<pseudo>[a-zA-Z-]+)
    """,
    re.VERBOSE,
)


class SelectorParseError(ValueError):
    """Raised for selector syntax the engine cannot understand."""


@dataclass(frozen=True)
class SimpleSelector:
    """One compound selector: every condition must hold on one element."""

    tag: Optional[str] = None
    element_id: Optional[str] = None
    classes: Tuple[str, ...] = ()
    attributes: Tuple[Tuple[str, Optional[str]], ...] = ()
    pseudos: Tuple[str, ...] = ()

    def matches(self, element: Element) -> bool:
        if self.tag is not None and self.tag != "*" and element.tag != self.tag:
            return False
        if self.element_id is not None and element.element_id != self.element_id:
            return False
        for cls in self.classes:
            if not element.has_class(cls):
                return False
        for name, value in self.attributes:
            actual = element.get_attribute(name)
            if actual is None:
                return False
            if value is not None and actual != value:
                return False
        # Dynamic pseudo-classes (:hover, :focus, ...) never match during
        # load; :first-child is structural and supported.
        for pseudo in self.pseudos:
            if pseudo == "first-child":
                parent = element.parent
                if parent is None or parent.child_elements()[:1] != [element]:
                    return False
            else:
                return False
        return True

    def condition_count(self) -> int:
        """Number of conditions checked (drives traced match cost)."""
        count = len(self.classes) + len(self.attributes) + len(self.pseudos)
        if self.tag is not None and self.tag != "*":
            count += 1
        if self.element_id is not None:
            count += 1
        return max(1, count)


@dataclass(frozen=True)
class Selector:
    """A full complex selector: compounds joined by combinators.

    ``compounds[i]`` is related to ``compounds[i+1]`` by ``combinators[i]``
    (``" "`` for descendant, ``">"`` for child); the last compound is the
    subject.
    """

    compounds: Tuple[SimpleSelector, ...]
    combinators: Tuple[str, ...] = ()
    source: str = ""

    def specificity(self) -> Tuple[int, int, int]:
        ids = classes = tags = 0
        for compound in self.compounds:
            if compound.element_id is not None:
                ids += 1
            classes += len(compound.classes) + len(compound.attributes)
            classes += len(compound.pseudos)
            if compound.tag is not None and compound.tag != "*":
                tags += 1
        return (ids, classes, tags)

    def subject(self) -> SimpleSelector:
        return self.compounds[-1]

    def matches(self, element: Element) -> bool:
        """Right-to-left matching, as real engines do."""
        if not self.subject().matches(element):
            return False
        return self._match_ancestors(element, len(self.compounds) - 2)

    def _match_ancestors(self, element: Element, index: int) -> bool:
        if index < 0:
            return True
        combinator = self.combinators[index]
        compound = self.compounds[index]
        if combinator == ">":
            parent = element.parent
            if parent is None or not compound.matches(parent):
                return False
            return self._match_ancestors(parent, index - 1)
        # Descendant: try every ancestor.
        for ancestor in element.ancestors():
            if compound.matches(ancestor):
                if self._match_ancestors(ancestor, index - 1):
                    return True
        return False

    def __repr__(self) -> str:
        return f"Selector({self.source!r})"


def parse_compound(text: str) -> SimpleSelector:
    tag = None
    element_id = None
    classes: List[str] = []
    attributes: List[Tuple[str, Optional[str]]] = []
    pseudos: List[str] = []
    pos = 0
    while pos < len(text):
        match = _PART_RE.match(text, pos)
        if match is None or match.end() == pos:
            raise SelectorParseError(f"bad selector part at {text[pos:]!r}")
        if match.group("tag"):
            tag = match.group("tag").lower()
        elif match.group("id"):
            element_id = match.group("id")
        elif match.group("cls"):
            classes.append(match.group("cls"))
        elif match.group("attr"):
            value = match.group("aval")
            if value is not None and len(value) >= 2 and value[0] in "\"'":
                value = value[1:-1]
            attributes.append((match.group("attr").lower(), value))
        elif match.group("pseudo"):
            pseudos.append(match.group("pseudo").lower())
        pos = match.end()
    return SimpleSelector(
        tag=tag,
        element_id=element_id,
        classes=tuple(classes),
        attributes=tuple(attributes),
        pseudos=tuple(pseudos),
    )


def parse_selector(text: str) -> Selector:
    """Parse one complex selector (no commas)."""
    tokens = _split_combinators(text.strip())
    if not tokens:
        raise SelectorParseError(f"empty selector: {text!r}")
    compounds = [parse_compound(tokens[0])]
    combinators: List[str] = []
    i = 1
    while i < len(tokens):
        combinators.append(tokens[i])
        compounds.append(parse_compound(tokens[i + 1]))
        i += 2
    return Selector(
        compounds=tuple(compounds), combinators=tuple(combinators), source=text.strip()
    )


def parse_selector_list(text: str) -> List[Selector]:
    """Parse a comma-separated selector list."""
    return [parse_selector(part) for part in text.split(",") if part.strip()]


def _split_combinators(text: str) -> List[str]:
    """Split ``"a > b c"`` into ``["a", ">", "b", " ", "c"]``."""
    tokens: List[str] = []
    buffer = []
    pending: Optional[str] = None
    for ch in text:
        if ch == ">":
            if buffer:
                tokens.append("".join(buffer))
                buffer.clear()
            pending = ">"
        elif ch.isspace():
            if buffer:
                tokens.append("".join(buffer))
                buffer.clear()
            if pending is None:
                pending = " "
        else:
            if pending is not None and tokens:
                tokens.append(pending)
            pending = None
            buffer.append(ch)
    if buffer:
        tokens.append("".join(buffer))
    return tokens
