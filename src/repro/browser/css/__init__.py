"""CSS subsystem: values, selectors, CSSOM, and the traced parser."""

from .cssom import CSSOM, Declaration, StyleRule, StyleSheet
from .parser import CSSParseError, parse_css, parse_declarations, parse_stylesheet_source
from .selectors import (
    Selector,
    SelectorParseError,
    SimpleSelector,
    parse_selector,
    parse_selector_list,
)
from .values import (
    Color,
    Length,
    PROPERTIES,
    TRANSPARENT,
    expand_shorthand,
    initial_value,
    is_inherited,
    parse_value,
)

__all__ = [
    "CSSOM",
    "Declaration",
    "StyleRule",
    "StyleSheet",
    "parse_css",
    "parse_stylesheet_source",
    "parse_declarations",
    "CSSParseError",
    "Selector",
    "SimpleSelector",
    "SelectorParseError",
    "parse_selector",
    "parse_selector_list",
    "Color",
    "Length",
    "PROPERTIES",
    "TRANSPARENT",
    "parse_value",
    "expand_shorthand",
    "initial_value",
    "is_inherited",
]
