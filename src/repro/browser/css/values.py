"""CSS property registry and value parsing.

Defines the property set the engine understands, which properties inherit,
their initial values, and a small value model (keywords, px/percent
lengths, colors).  Style resolution and layout consume these.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union


@dataclass(frozen=True)
class Length:
    """A CSS length: ``value`` in px, or percent when ``percent`` is True."""

    value: float
    percent: bool = False

    def resolve(self, reference: float) -> float:
        """Resolve against a reference length (for percentages)."""
        if self.percent:
            return self.value * reference / 100.0
        return self.value

    def __repr__(self) -> str:
        return f"{self.value:g}{'%' if self.percent else 'px'}"


@dataclass(frozen=True)
class Color:
    r: int
    g: int
    b: int
    a: float = 1.0

    @property
    def opaque(self) -> bool:
        return self.a >= 1.0

    def __repr__(self) -> str:
        return f"rgba({self.r},{self.g},{self.b},{self.a:g})"


TRANSPARENT = Color(0, 0, 0, 0.0)

#: CSS value: keyword string, Length, Color, or bare number.
Value = Union[str, Length, Color, float]


@dataclass(frozen=True)
class PropertySpec:
    name: str
    inherited: bool
    initial: Value


#: The engine's property registry (a realistic, layout-relevant subset).
PROPERTIES: Dict[str, PropertySpec] = {
    spec.name: spec
    for spec in (
        PropertySpec("display", False, "inline"),
        PropertySpec("position", False, "static"),
        PropertySpec("width", False, "auto"),
        PropertySpec("height", False, "auto"),
        PropertySpec("margin-top", False, Length(0)),
        PropertySpec("margin-right", False, Length(0)),
        PropertySpec("margin-bottom", False, Length(0)),
        PropertySpec("margin-left", False, Length(0)),
        PropertySpec("padding-top", False, Length(0)),
        PropertySpec("padding-right", False, Length(0)),
        PropertySpec("padding-bottom", False, Length(0)),
        PropertySpec("padding-left", False, Length(0)),
        PropertySpec("top", False, "auto"),
        PropertySpec("left", False, "auto"),
        PropertySpec("color", True, Color(0, 0, 0)),
        PropertySpec("background-color", False, TRANSPARENT),
        PropertySpec("background-image", False, "none"),
        PropertySpec("font-size", True, Length(16)),
        PropertySpec("line-height", True, Length(20)),
        PropertySpec("font-weight", True, "normal"),
        PropertySpec("text-align", True, "left"),
        PropertySpec("z-index", False, "auto"),
        PropertySpec("opacity", False, 1.0),
        PropertySpec("transform", False, "none"),
        PropertySpec("will-change", False, "auto"),
        PropertySpec("overflow", False, "visible"),
        PropertySpec("visibility", True, "visible"),
        PropertySpec("border-width", False, Length(0)),
        PropertySpec("border-color", False, TRANSPARENT),
    )
}

#: Shorthand properties expanded at parse time.
_SHORTHANDS = {"margin", "padding"}

_NAMED_COLORS = {
    "black": Color(0, 0, 0),
    "white": Color(255, 255, 255),
    "red": Color(230, 30, 30),
    "green": Color(30, 160, 60),
    "blue": Color(40, 80, 220),
    "gray": Color(128, 128, 128),
    "grey": Color(128, 128, 128),
    "orange": Color(255, 153, 0),
    "yellow": Color(245, 215, 60),
    "navy": Color(19, 25, 33),
    "transparent": TRANSPARENT,
}

_LENGTH_RE = re.compile(r"^(-?\d+(?:\.\d+)?)(px|%|em)?$")
_HEX_RE = re.compile(r"^#([0-9a-fA-F]{3}|[0-9a-fA-F]{6})$")
_RGBA_RE = re.compile(r"^rgba?\(([^)]*)\)$")


def parse_value(property_name: str, raw: str) -> Value:
    """Parse a declaration value into the engine's value model.

    Unknown constructs degrade to the raw keyword string, which is how a
    real engine treats unsupported values (they simply never match any
    branch downstream).
    """
    raw = raw.strip()
    lowered = raw.lower()
    hex_match = _HEX_RE.match(lowered)
    if hex_match:
        digits = hex_match.group(1)
        if len(digits) == 3:
            digits = "".join(ch * 2 for ch in digits)
        return Color(int(digits[0:2], 16), int(digits[2:4], 16), int(digits[4:6], 16))
    rgba_match = _RGBA_RE.match(lowered)
    if rgba_match:
        parts = [p.strip() for p in rgba_match.group(1).split(",")]
        if len(parts) in (3, 4):
            try:
                r, g, b = (int(float(p)) for p in parts[:3])
                a = float(parts[3]) if len(parts) == 4 else 1.0
                return Color(r, g, b, a)
            except ValueError:
                return lowered
    if lowered in _NAMED_COLORS and property_name.endswith("color"):
        return _NAMED_COLORS[lowered]
    length_match = _LENGTH_RE.match(lowered)
    if length_match:
        number = float(length_match.group(1))
        unit = length_match.group(2)
        if unit == "%":
            return Length(number, percent=True)
        if unit == "em":
            return Length(number * 16.0)
        if unit == "px":
            return Length(number)
        if property_name in ("opacity", "z-index", "font-weight"):
            return number
        return Length(number)
    return lowered


def expand_shorthand(name: str, raw: str) -> Dict[str, str]:
    """Expand ``margin``/``padding`` shorthands into per-side longhands."""
    if name not in _SHORTHANDS:
        return {name: raw}
    parts = raw.split()
    if not parts:
        return {}
    if len(parts) == 1:
        top = right = bottom = left = parts[0]
    elif len(parts) == 2:
        top, right = parts
        bottom, left = top, right
    elif len(parts) == 3:
        top, right, bottom = parts
        left = right
    else:
        top, right, bottom, left = parts[:4]
    return {
        f"{name}-top": top,
        f"{name}-right": right,
        f"{name}-bottom": bottom,
        f"{name}-left": left,
    }


def initial_value(name: str) -> Optional[Value]:
    spec = PROPERTIES.get(name)
    return spec.initial if spec else None


def is_inherited(name: str) -> bool:
    spec = PROPERTIES.get(name)
    return spec.inherited if spec else False
