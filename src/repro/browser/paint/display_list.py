"""Display lists and paint layers (the Paint stage of the pipeline)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..css.values import Color
from ..html.dom import Element, TextNode
from ..layout.geometry import Rect


@dataclass
class DisplayItem:
    """One paint operation recorded into a layer's display list.

    Attributes:
        kind: "background" | "border" | "text" | "image".
        rect: document-space rectangle the item covers.
        cells: abstract cells holding the recorded item (raster reads them).
        source_cells: extra inputs consumed at raster time (e.g. the image
            resource's byte cells for an "image" item).
        color: paint color (backgrounds/text) for blending realism.
        opaque: True when the item fully covers ``rect`` with alpha 1.
        owner_id: node id of the element the item paints (for text runs,
            the parent element) — the key incremental repaint uses to find
            a dirty subtree's contiguous item span.  -1 when unknown.
        detail: the drawn content itself (a text run's characters, an
            image's src) so frame snapshots compare what the user sees,
            not just geometry.
    """

    kind: str
    rect: Rect
    cells: Tuple[int, ...]
    source_cells: Tuple[int, ...] = ()
    color: Optional[Color] = None
    opaque: bool = False
    owner_id: int = -1
    detail: str = ""


@dataclass
class PaintLayer:
    """A composited layer: its own backing store and display list.

    Mirrors Chromium's composited layers: each gets a backing store (tiles)
    whether or not it ever becomes visible — the design pitfall the paper
    calls out in the compositing algorithm.
    """

    layer_id: int
    bounds: Rect
    z_index: int
    #: True when the layer's content fully covers ``bounds`` opaquely.
    opaque: bool
    #: fixed-position layers don't move with document scroll
    fixed: bool = False
    opacity: float = 1.0
    items: List[DisplayItem] = field(default_factory=list)
    #: element that promoted this layer (None for the root scrolling layer)
    owner: Optional[Element] = None

    def add(self, item: DisplayItem) -> None:
        self.items.append(item)

    def item_count(self) -> int:
        return len(self.items)

    def is_root(self) -> bool:
        return self.owner is None

    def __repr__(self) -> str:
        owner = self.owner.tag if self.owner is not None else "root"
        return (
            f"PaintLayer(#{self.layer_id} {owner} z={self.z_index} "
            f"{self.bounds} items={len(self.items)})"
        )
