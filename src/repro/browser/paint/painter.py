"""The painter: layout tree + computed styles -> layered display lists.

Layer assignment follows Chromium's promotion heuristics (see
:meth:`ComputedStyle.creates_layer`): fixed position, transforms,
``will-change``, sub-unit opacity, and positioned elements with explicit
z-index each get their own composited layer with a private backing store.
Everything else paints into the root scrolling layer.

Each recorded display item emits a trace record reading the box's layout
cells and the style cells that determine its appearance, writing the
item's cells — which the rasterizer threads will read.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...machine.memory import MemRegion
from ..context import EngineContext
from ..css.values import TRANSPARENT
from ..html.dom import Element
from ..layout.boxes import LayoutBox, LayoutTree
from ..layout.geometry import Rect
from .display_list import DisplayItem, PaintLayer


class Painter:
    """Produces paint layers from a laid-out document."""

    def __init__(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._next_layer_id = 0
        #: url -> byte region for image resources (provided by the engine)
        self.image_regions: Dict[str, MemRegion] = {}
        #: node ids of other layers' owners, skipped during repaint
        self._skip_promoted: set = set()

    def paint_document(self, tree: LayoutTree) -> List[PaintLayer]:
        """Paint the whole document into a list of layers (root first)."""
        ctx = self.ctx
        doc_bounds = tree.root.document_bounds()
        root_bounds = Rect(
            0,
            0,
            max(doc_bounds.right, float(ctx.config.viewport_width)),
            max(doc_bounds.bottom, float(ctx.config.viewport_height)),
        )
        with ctx.tracer.function("blink::paint::PaintController::PaintDocument"):
            root = self._new_layer(root_bounds, z_index=0, opaque=True, owner=None)
            layers = [root]
            self._paint_box(tree.root, root, layers)
        layers.sort(key=lambda layer: (layer.z_index, layer.layer_id))
        return layers

    def repaint_layer(
        self,
        layer: PaintLayer,
        tree: LayoutTree,
        promoted_ids: Optional[set] = None,
    ) -> None:
        """Repaint a single (dirty) layer after a mutation.

        ``promoted_ids`` holds node ids of elements that own *other*
        layers; their subtrees are skipped so content is not duplicated
        into this layer.
        """
        with self.ctx.tracer.function("blink::paint::PaintController::RepaintLayer"):
            layer.items.clear()
            owner_box = (
                tree.box_for(layer.owner) if layer.owner is not None else tree.root
            )
            if owner_box is None:
                return
            skip = set(promoted_ids or ())
            if layer.owner is not None:
                skip.discard(layer.owner.node_id)
            self._skip_promoted = skip
            try:
                scratch: List[PaintLayer] = [layer]
                if layer.owner is not None:
                    owner_style_box = owner_box
                    self._record_element(owner_style_box, layer)
                self._paint_into(owner_box, layer, scratch, allow_promotion=False)
            finally:
                self._skip_promoted = set()

    def repaint_subtree(
        self,
        layer: PaintLayer,
        tree: LayoutTree,
        element: Element,
        promoted_ids: Optional[set] = None,
    ) -> Optional[Tuple[int, int, List[DisplayItem]]]:
        """Re-record only ``element``'s subtree items inside ``layer``.

        Paint order is a depth-first walk, so a subtree's items occupy one
        contiguous span of the display list.  The span is located by the
        items' ``owner_id`` tags, widened over adjacent items whose owners
        no longer exist anywhere in the layout tree (stale items of
        removed children), and replaced wholesale by a fresh recording of
        the subtree.

        Returns ``(start, n_removed, new_items)`` for the compositor's
        matching splice, or ``None`` when the span cannot be found (the
        element painted nothing into this layer — e.g. it owns another
        layer, or was invisible) and the caller must fall back to
        :meth:`repaint_layer`.
        """
        box = tree.box_for(element)
        if box is None:
            return None
        ids = {element.node_id}
        for node in element.descendants():
            ids.add(node.node_id)
        positions = [
            i for i, item in enumerate(layer.items) if item.owner_id in ids
        ]
        if not positions:
            return None
        lo, hi = positions[0], positions[-1]
        live = {
            b.element.node_id for b in tree.all_boxes() if b.element is not None
        }
        while lo > 0 and layer.items[lo - 1].owner_id not in live:
            lo -= 1
        while hi + 1 < len(layer.items) and layer.items[hi + 1].owner_id not in live:
            hi += 1
        n_removed = hi - lo + 1

        skip = set(promoted_ids or ())
        skip.discard(element.node_id)
        self._skip_promoted = skip
        saved = layer.items
        layer.items = []
        try:
            with self.ctx.tracer.function(
                "blink::paint::PaintController::RepaintSubtree"
            ):
                self._record_element(box, layer)
                self._paint_into(box, layer, [layer], allow_promotion=False)
        finally:
            fresh = layer.items
            layer.items = saved
            self._skip_promoted = set()
        layer.items[lo : hi + 1] = fresh
        return (lo, n_removed, fresh)

    # ------------------------------------------------------------------ #

    def _new_layer(
        self, bounds: Rect, z_index: int, opaque: bool, owner: Optional[Element],
        fixed: bool = False, opacity: float = 1.0,
    ) -> PaintLayer:
        layer = PaintLayer(
            layer_id=self._next_layer_id,
            bounds=bounds,
            z_index=z_index,
            opaque=opaque,
            fixed=fixed,
            opacity=opacity,
            owner=owner,
        )
        self._next_layer_id += 1
        if owner is not None:
            self.ctx.tracer.op(
                "promote_layer",
                reads=(owner.cell("style:z-index"), owner.cell("layout:geom")),
                writes=(owner.cell("layer"),),
            )
        return layer

    def _paint_box(
        self, box: LayoutBox, layer: PaintLayer, layers: List[PaintLayer]
    ) -> None:
        self._paint_into(box, layer, layers, allow_promotion=True)

    def _paint_into(
        self,
        box: LayoutBox,
        layer: PaintLayer,
        layers: List[PaintLayer],
        allow_promotion: bool,
    ) -> None:
        tracer = self.ctx.tracer
        for child in box.children:
            if child.is_text:
                self._record_text(child, layer)
                continue
            element = child.element
            if (
                element is not None
                and not allow_promotion
                and element.node_id in self._skip_promoted
            ):
                continue
            style = child.style
            target = layer
            if (
                allow_promotion
                and element is not None
                and style.creates_layer
                and not child.rect.is_empty()
            ):
                target = self._new_layer(
                    child.rect,
                    z_index=style.z_index,
                    opaque=style.is_opaque,
                    owner=element,
                    fixed=style.position == "fixed",
                    opacity=style.opacity,
                )
                layers.append(target)
            self._record_element(child, target)
            self._paint_into(child, target, layers, allow_promotion)

    def _record_element(self, box: LayoutBox, layer: PaintLayer) -> None:
        element = box.element
        if element is None or box.rect.is_empty():
            return
        tracer = self.ctx.tracer
        style = box.style
        if not style.visible:
            tracer.compare_and_branch(
                "skip_invisible", reads=(element.cell("style:visibility"),)
            )
            return
        background = style.background_color
        if background != TRANSPARENT:
            cell = self.ctx.memory.alloc_cell(f"paint:bg:{element.node_id}")
            self.ctx.libc_malloc(cell)
            tracer.op(
                "record_background",
                reads=(
                    element.cell("layout:geom"),
                    element.cell("style:background-color"),
                    element.cell("style:opacity"),
                    element.cell("style:border-width"),
                ),
                writes=(cell,),
            )
            layer.add(
                DisplayItem(
                    kind="background",
                    rect=box.rect,
                    cells=(cell,),
                    color=background,
                    opaque=background.opaque and style.opacity >= 1.0,
                    owner_id=element.node_id,
                )
            )
        if element.tag == "img":
            src = element.get_attribute("src") or ""
            region = self.image_regions.get(src)
            source_cells: Tuple[int, ...] = ()
            if region is not None:
                # Raster samples the whole decoded bitmap: displaying an
                # image makes its entire decode useful.
                source_cells = region.all_cells()
            cell = self.ctx.memory.alloc_cell(f"paint:img:{element.node_id}")
            tracer.op(
                "record_image",
                reads=(element.cell("layout:geom"), element.cell("attr:src")),
                writes=(cell,),
            )
            layer.add(
                DisplayItem(
                    kind="image",
                    rect=box.rect,
                    cells=(cell,),
                    source_cells=source_cells,
                    opaque=True,
                    owner_id=element.node_id,
                    detail=src,
                )
            )
        self.ctx.maybe_debug_event()

    def _record_text(self, box: LayoutBox, layer: PaintLayer) -> None:
        node = box.text_node
        if node is None or box.rect.is_empty() or not box.style.visible:
            return
        cell = self.ctx.memory.alloc_cell(f"paint:text:{node.node_id}")
        color_cells = ()
        if node.parent is not None:
            color_cells = (
                node.parent.cell("style:color"),
                node.parent.cell("style:font-weight"),
            )
        self.ctx.tracer.op(
            "record_text_run",
            reads=(node.cell("text"), node.cell("layout:geom")) + color_cells,
            writes=(cell,),
        )
        layer.add(
            DisplayItem(
                kind="text",
                rect=box.rect,
                cells=(cell,),
                color=box.style.color,
                owner_id=node.parent.node_id if node.parent is not None else -1,
                detail=node.text,
            )
        )
