"""Paint subsystem: display lists, paint layers, and the painter."""

from .display_list import DisplayItem, PaintLayer
from .painter import Painter

__all__ = ["DisplayItem", "PaintLayer", "Painter"]
