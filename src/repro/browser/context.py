"""Shared engine context: the "tab process" environment.

Every browser subsystem receives an :class:`EngineContext`, which bundles
the tracer (instruction emission), the address space (abstract memory for
all engine data), the virtual clock, and the thread registry.  The context
also provides small helpers for common instrumentation shapes (chunked
buffers for resource bytes, allocation helper calls through plain-named
runtime functions, debug trace events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..machine import AddressSpace, TracedLock, Tracer, VirtualClock
from ..machine.memory import MemRegion

#: Resource bytes are mirrored into one abstract cell per this many bytes.
BYTES_PER_CELL = 64

#: Raster tiles are squares of this many pixels (as in Chromium).
TILE_SIZE = 256

#: Pixel cells cover square blocks of this many pixels per side; a 256x256
#: tile therefore owns 16 pixel cells.
PIXEL_BLOCK = 64

# Thread ids of the tab process (fixed roles, as in Chromium).
MAIN_THREAD = 1
COMPOSITOR_THREAD = 2
IO_THREAD = 3
FIRST_RASTER_THREAD = 4
#: ThreadPoolForegroundWorker threads (image decode, background parsing)
FIRST_WORKER_THREAD = 20


@dataclass
class EngineConfig:
    """Tunable parameters of the simulated engine."""

    viewport_width: int = 1280
    viewport_height: int = 800
    #: number of CompositorTileWorker (rasterizer) threads
    raster_threads: int = 2
    #: number of ThreadPoolForegroundWorker threads
    worker_threads: int = 2
    #: extra prepaint margin rastered around the viewport, in pixels
    interest_margin: int = 512
    #: device scale factor (mobile emulation uses 1 with a small viewport)
    device_scale: float = 1.0
    #: also rasterize low-resolution duplicate tiles (Chromium's low-res
    #: tiling, prominent in mobile-emulated sessions; the duplicates are
    #: rarely displayed, so this work is usually wasted)
    raster_low_res: bool = False
    #: emit one debug trace-event record every N engine operations
    debug_event_period: int = 9
    #: vsync BeginFrame ticks pumped while the page settles after load
    #: (hero carousels / spinners keep the compositor animating)
    load_animation_ticks: int = 30
    #: BeginFrame ticks pumped after each user action
    action_animation_ticks: int = 6
    #: drive update frames through the invalidation-driven incremental
    #: pipeline (dirty subtree re-style / re-layout / re-paint / re-raster).
    #: False restores the legacy full-rebuild path for every frame; frame 0
    #: (the load frame) is identical either way.
    incremental: bool = True
    #: random seed for workload-level jitter
    seed: int = 1


class EngineContext:
    """Everything a subsystem needs to run and be traced."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config if config is not None else EngineConfig()
        self.clock = VirtualClock()
        self.tracer = Tracer(clock=self.clock)
        self.memory = AddressSpace()
        self._debug_counter_cell: Optional[int] = None
        self._debug_log_cell: Optional[int] = None
        self._ops_since_debug = 0
        self._spawned = False
        self._next_node_id = 0
        self._locks: Dict[str, TracedLock] = {}

    def lock(self, name: str) -> TracedLock:
        """The process-wide lock registry: one TracedLock per name.

        Each lock is backed by a dedicated memory cell so release/acquire
        pairs are visible to the race detector, and lock names are stable
        so the static lock-order analysis can match acquisition sites
        against dynamic traces.
        """
        lock = self._locks.get(name)
        if lock is None:
            lock = TracedLock(self.tracer, self.memory.alloc_cell(name), name)
            self._locks[name] = lock
        return lock

    def next_node_id(self) -> int:
        """Allocate a DOM node id, unique and stable within this context.

        Per-context (not process-global) so that traces are reproducible
        regardless of how many engines ran earlier in the process.
        """
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    # ------------------------------------------------------------------ #
    # Thread setup                                                       #
    # ------------------------------------------------------------------ #

    def spawn_threads(self) -> None:
        """Create the tab process's threads (Chromium roles)."""
        if self._spawned:
            return
        tracer = self.tracer
        tracer.spawn_thread(MAIN_THREAD, "CrRendererMain", "base::threading::ThreadMain")
        tracer.spawn_thread(COMPOSITOR_THREAD, "Compositor", "base::threading::ThreadMain")
        tracer.spawn_thread(IO_THREAD, "ChromeIOThread", "base::threading::ThreadMain")
        for i in range(self.config.raster_threads):
            tracer.spawn_thread(
                FIRST_RASTER_THREAD + i,
                f"CompositorTileWorker{i + 1}",
                "base::threading::ThreadMain",
            )
        for i in range(self.config.worker_threads):
            tracer.spawn_thread(
                FIRST_WORKER_THREAD + i,
                f"ThreadPoolForegroundWorker{i + 1}",
                "base::threading::ThreadMain",
            )
        tracer.switch(MAIN_THREAD)
        self._spawned = True

    def raster_thread_ids(self) -> Tuple[int, ...]:
        return tuple(
            FIRST_RASTER_THREAD + i for i in range(self.config.raster_threads)
        )

    def worker_thread_ids(self) -> Tuple[int, ...]:
        return tuple(
            FIRST_WORKER_THREAD + i for i in range(self.config.worker_threads)
        )

    # ------------------------------------------------------------------ #
    # Buffers                                                            #
    # ------------------------------------------------------------------ #

    def alloc_bytes(self, name: str, nbytes: int) -> MemRegion:
        """Allocate cells mirroring a byte buffer (1 cell / 64 bytes)."""
        ncells = max(1, (nbytes + BYTES_PER_CELL - 1) // BYTES_PER_CELL)
        return self.memory.alloc(name, ncells)

    @staticmethod
    def byte_cell(region: MemRegion, byte_offset: int) -> int:
        """Cell backing a byte offset of a buffer allocated by alloc_bytes."""
        return region.cell(min(byte_offset // BYTES_PER_CELL, region.size - 1))

    # ------------------------------------------------------------------ #
    # Debug bookkeeping (the paper's "Debugging" category)               #
    # ------------------------------------------------------------------ #

    def debug_event(self, weight: int = 1) -> None:
        """Emit built-in trace-event bookkeeping instructions.

        Chromium compiled with debugging off still executes its default
        trace_event machinery; the paper finds this among the top
        unnecessary-computation categories.  The emitted records read and
        write only the debug ring buffer, so they can never join a pixel
        slice.
        """
        if self._debug_counter_cell is None:
            self._debug_counter_cell = self.memory.alloc_cell("debug:counter")
            self._debug_log_cell = self.memory.alloc_cell("debug:ring")
        tracer = self.tracer
        with tracer.function("base::trace_event::TraceLog::AddTraceEvent"):
            # The ring buffer is shared by every thread in the process;
            # real TraceLog serializes appends under its own lock.
            with self.lock("base:lock:trace_event").held():
                for i in range(weight):
                    tracer.op(
                        f"log{i}",
                        reads=(self._debug_counter_cell,),
                        writes=(self._debug_counter_cell, self._debug_log_cell),
                    )

    def maybe_debug_event(self) -> None:
        """Emit a debug event every ``debug_event_period`` calls."""
        self._ops_since_debug += 1
        if self._ops_since_debug >= self.config.debug_event_period:
            self._ops_since_debug = 0
            self.debug_event(weight=1)

    # ------------------------------------------------------------------ #
    # Allocator / libc helpers (uncategorizable by namespace)            #
    # ------------------------------------------------------------------ #

    def libc_malloc(self, result_cell: int) -> None:
        """Allocator bookkeeping: touches only the freelist (plus the
        returned object's header), so it is uncategorizable waste unless
        the object itself matters."""
        cell = self._malloc_freelist_cell()
        tracer = self.tracer
        with tracer.function("malloc"):
            tracer.op("pop_freelist", reads=(cell,), writes=(cell,))
            tracer.op("write_header", reads=(cell,), writes=(result_cell,))

    def libc_memcpy(self, reads, writes, weight: int = 2) -> None:
        """A real data copy: joins the slice whenever its output matters."""
        tracer = self.tracer
        with tracer.function("memcpy"):
            for i in range(weight):
                tracer.op(f"copy{i}", reads=tuple(reads), writes=tuple(writes))

    def _malloc_freelist_cell(self) -> int:
        if not hasattr(self, "_freelist_cell"):
            self._freelist_cell = self.memory.alloc_cell("libc:freelist")
        return self._freelist_cell

    def plain_helper(self, name: str, reads=(), writes=()) -> None:
        """One call into a plain-named (namespace-less) runtime function.

        Real binaries spend a large share of instructions in C-runtime and
        stub functions (blitters, hash lookups, allocators) that the
        paper's namespace analysis cannot categorize — only 53-74% of
        non-slice instructions were categorizable.  The helper's dataflow
        mirrors its caller's, so its usefulness follows the surrounding
        chain.
        """
        tracer = self.tracer
        with tracer.function(name):
            tracer.op("body", reads=tuple(reads), writes=tuple(writes))

    def plain_bulk(self, name: str, weight: int, reads=(), writes=()) -> None:
        """A longer run inside one plain-named function (stdlib loops)."""
        tracer = self.tracer
        with tracer.function(name):
            for i in range(weight):
                tracer.op(f"it{i % 32}", reads=tuple(reads), writes=tuple(writes))

    # ------------------------------------------------------------------ #
    # Plain-named runtime helpers (uncategorizable functions)            #
    # ------------------------------------------------------------------ #

    def runtime_helper(
        self,
        name: str,
        reads: Tuple[int, ...],
        writes: Tuple[int, ...],
        weight: int = 2,
    ) -> None:
        """Run a C-runtime-style helper (``memcpy``, ``malloc``, ...).

        These functions have no ``::`` namespace, so instructions spent in
        them are *uncategorizable* in the Figure 5 methodology — matching
        the paper, where only 53-74% of non-slice instructions could be
        categorized.
        """
        tracer = self.tracer
        with tracer.function(name):
            for i in range(weight):
                tracer.op(f"w{i}", reads=reads, writes=writes)
