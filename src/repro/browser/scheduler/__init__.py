"""Scheduler subsystem: per-thread event loops, sequential execution."""

from .loop import Scheduler, Task

__all__ = ["Scheduler", "Task"]
