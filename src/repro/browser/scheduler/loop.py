"""Per-thread event loops and the sequential cross-thread scheduler.

Every Chromium thread is event-driven: a message loop pops tasks from a
queue.  The benchmarks pin the whole tab process to one core, so the
scheduler here runs threads *sequentially*, switching the tracer's current
thread as it hops between queues — exactly the execution model the paper's
profiler requires (Section III-B).

Each pop emits message-pump overhead records ("Other" category: event
scheduling) and each cross-thread wakeup emits ``futex`` syscalls in
``base::synchronization`` frames (the "Multi-threading" category).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..context import EngineContext


class Task:
    """A unit of work queued on a thread."""

    __slots__ = ("name", "fn", "delay_us")

    def __init__(self, name: str, fn: Callable[[], None], delay_us: float = 0.0) -> None:
        self.name = name
        self.fn = fn
        self.delay_us = delay_us


class Scheduler:
    """Sequential multi-queue task scheduler for the tab process."""

    def __init__(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._queues: Dict[int, Deque[Task]] = {}
        #: (ready time us, seq, tid, task) for delayed tasks
        self._delayed: List[Tuple[float, int, int, Task]] = []
        self._seq = 0
        #: per-thread queue-head cells (the memory a pop actually touches)
        self._queue_cells: Dict[int, int] = {}
        self.tasks_run = 0

    def _queue_cell(self, tid: int) -> int:
        cell = self._queue_cells.get(tid)
        if cell is None:
            cell = self.ctx.memory.alloc_cell(f"sched:queue:{tid}")
            self._queue_cells[tid] = cell
        return cell

    def queue_for(self, tid: int) -> Deque[Task]:
        queue = self._queues.get(tid)
        if queue is None:
            queue = deque()
            self._queues[tid] = queue
        return queue

    def _queue_lock(self, tid: int):
        """Per-queue lock serializing posters against the popping thread.

        Each critical section here happens-before the pop that dequeues the
        task, which in turn happens-before the task body (program order on
        the popped thread) — so everything a poster did before posting is
        visible to the task without further synchronization.
        """
        return self.ctx.lock(f"sched:lock:queue:{tid}")

    def post(self, tid: int, name: str, fn: Callable[[], None]) -> None:
        """Post a task to ``tid``'s queue (wakes the thread)."""
        current = self.ctx.tracer.current_tid
        with self._queue_lock(tid).held():
            if current != tid:
                self._wake(tid)
            self.queue_for(tid).append(Task(name, fn))

    def post_delayed(self, tid: int, name: str, fn: Callable[[], None], delay_ms: float) -> None:
        ready = self.ctx.clock.now_us + delay_ms * 1000.0
        self._seq += 1
        # The lock hand-off happens at post time, not promotion time:
        # _promote_delayed is bookkeeping inside the scheduler loop and
        # runs on whichever thread last executed, so the ordering edge to
        # the eventual task body must be published by the posting thread.
        with self._queue_lock(tid).held():
            self._delayed.append((ready, self._seq, tid, Task(name, fn)))

    def _wake(self, tid: int) -> None:
        """futex wake: the posting thread signals the sleeping target."""
        tracer = self.ctx.tracer
        cell = self._queue_cell(tid)
        with tracer.function("base::synchronization::WaitableEvent::Signal"):
            tracer.op("store_signal", reads=(cell,), writes=(cell,))
            tracer.syscall("futex", reads=(cell,), writes=(cell,))

    def _promote_delayed(self) -> None:
        now = self.ctx.clock.now_us
        remaining: List[Tuple[float, int, int, Task]] = []
        for ready, seq, tid, task in sorted(self._delayed):
            if ready <= now:
                self.queue_for(tid).append(task)
            else:
                remaining.append((ready, seq, tid, task))
        self._delayed = remaining

    def pending(self) -> bool:
        return any(self._queues.values()) or bool(self._delayed)

    def run_until_idle(self, max_tasks: int = 100_000) -> int:
        """Drain all queues (advancing time through delayed tasks).

        Threads are serviced round-robin in tid order, matching the
        single-core sequential execution of the benchmark setup.  Returns
        the number of tasks executed.
        """
        ctx = self.ctx
        tracer = ctx.tracer
        executed = 0
        while executed < max_tasks:
            self._promote_delayed()
            ran_one = False
            for tid in sorted(self._queues):
                queue = self._queues[tid]
                if not queue:
                    continue
                task = queue.popleft()
                tracer.switch(tid)
                cell = self._queue_cell(tid)
                with tracer.function("base::message_loop::MessagePump::Run"):
                    # Dequeue under the queue lock; the task body runs
                    # outside it (as in Chromium's MessagePump), ordered
                    # after the pop by program order on this thread.
                    with self._queue_lock(tid).held():
                        tracer.op("pop_task", reads=(cell,), writes=(cell,))
                        tracer.compare_and_branch("has_work", reads=(cell,))
                    with tracer.function("base::task::TaskAnnotator::RunTask"):
                        task.fn()
                executed += 1
                self.tasks_run += 1
                ran_one = True
            if not ran_one:
                if self._delayed:
                    # Sleep until the earliest delayed task is ready.
                    earliest = min(ready for ready, _, _, _ in self._delayed)
                    idle = max(0.0, earliest - ctx.clock.now_us)
                    ctx.clock.idle(idle)
                    continue
                break
        return executed
