"""Layout box tree."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..html.dom import Element, TextNode
from ..style.computed import ComputedStyle
from .geometry import EMPTY_RECT, Rect


class LayoutBox:
    """One box in the layout tree (border-box geometry, document coords)."""

    __slots__ = (
        "element", "text_node", "style", "rect", "children", "parent", "placement",
    )

    def __init__(
        self,
        style: ComputedStyle,
        element: Optional[Element] = None,
        text_node: Optional[TextNode] = None,
    ) -> None:
        self.element = element
        self.text_node = text_node
        self.style = style
        self.rect: Rect = EMPTY_RECT
        self.children: List["LayoutBox"] = []
        self.parent: Optional["LayoutBox"] = None
        #: (containing rect, block cursor y) captured when this box was
        #: placed as a block child — the inputs incremental relayout needs
        #: to re-place the box without re-running its container.  None for
        #: boxes placed by inline/flex/out-of-flow positioning.
        self.placement: Optional[Tuple[Rect, float]] = None

    @property
    def is_text(self) -> bool:
        return self.text_node is not None

    @property
    def in_flow(self) -> bool:
        return self.style.position not in ("absolute", "fixed")

    def add_child(self, child: "LayoutBox") -> "LayoutBox":
        child.parent = self
        self.children.append(child)
        return child

    def descendants(self) -> List["LayoutBox"]:
        out: List[LayoutBox] = []
        stack = list(reversed(self.children))
        while stack:
            box = stack.pop()
            out.append(box)
            stack.extend(reversed(box.children))
        return out

    def document_bounds(self) -> Rect:
        bounds = self.rect
        for box in self.descendants():
            bounds = bounds.union(box.rect)
        return bounds

    def __repr__(self) -> str:
        what = (
            f"text({self.text_node.text[:12]!r})"
            if self.is_text
            else (self.element.tag if self.element is not None else "anon")
        )
        return f"LayoutBox({what}, {self.rect})"


class LayoutTree:
    """Result of a layout pass."""

    def __init__(self, root: LayoutBox) -> None:
        self.root = root

    def all_boxes(self) -> List[LayoutBox]:
        return [self.root] + self.root.descendants()

    def box_for(self, element: Element) -> Optional[LayoutBox]:
        for box in self.all_boxes():
            if box.element is element:
                return box
        return None

    def document_height(self) -> float:
        return self.root.document_bounds().bottom
