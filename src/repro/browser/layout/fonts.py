"""Font metrics: per-character advance widths for text measurement.

A proportional fixed table (relative to font size) in the spirit of a
real sans-serif metrics table: narrow punctuation and 'i'/'l', wide 'm'/'w'
and capitals.  Layout uses :func:`measure_text` for line breaking, so text
width responds to content, not just character count.
"""

from __future__ import annotations

from typing import Dict

#: advance width as a fraction of the font size
_ADVANCES: Dict[str, float] = {}
for ch in "iljI.,:;'|!":
    _ADVANCES[ch] = 0.28
for ch in "ftr()[]{}-\"":
    _ADVANCES[ch] = 0.35
for ch in "abcdeghknopqsuvxyz":
    _ADVANCES[ch] = 0.52
for ch in "mw":
    _ADVANCES[ch] = 0.82
for ch in "ABCDEFGHJKLNOPQRSTUVXYZ":
    _ADVANCES[ch] = 0.66
for ch in "MW":
    _ADVANCES[ch] = 0.88
for ch in "0123456789":
    _ADVANCES[ch] = 0.55
_ADVANCES[" "] = 0.30

#: fallback for anything not in the table (unicode, symbols)
_DEFAULT_ADVANCE = 0.58


def char_advance(ch: str, font_size: float) -> float:
    """Advance width of one character at ``font_size`` pixels."""
    return _ADVANCES.get(ch, _DEFAULT_ADVANCE) * font_size


def measure_text(text: str, font_size: float) -> float:
    """Total advance width of ``text`` at ``font_size`` pixels."""
    return sum(_ADVANCES.get(ch, _DEFAULT_ADVANCE) for ch in text) * font_size


def line_count(text: str, font_size: float, available_width: float) -> int:
    """Greedy word-wrapping line count for ``text`` in ``available_width``.

    Words longer than a line overflow (taking a full line), as real
    engines do without ``overflow-wrap``.
    """
    text = " ".join(text.split())
    if not text:
        return 0
    if available_width <= 0:
        return 1
    space = char_advance(" ", font_size)
    lines = 1
    cursor = 0.0
    for word in text.split(" "):
        width = measure_text(word, font_size)
        needed = width if cursor == 0.0 else cursor + space + width
        if needed <= available_width:
            cursor = needed
        else:
            lines += 1
            cursor = min(width, available_width)
    return lines
