"""Block/inline layout (the Layout stage of the rendering pipeline).

A simplified but real flow algorithm: in-flow blocks stack vertically
inside their containing block's content box; text (and text-only inline
elements) wraps into line boxes measured with a fixed-advance font model;
``absolute``/``fixed`` boxes are positioned out of flow against their
containing block / the viewport; ``display: none`` subtrees produce no
boxes.

Tracing: every box's geometry computation emits a record reading the
element's relevant ``style:*`` cells and the parent's ``layout:*`` cells
and writing the element's own ``layout:*`` cells, so geometry dataflow
chains parent-to-child exactly as the real engine's does.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..context import EngineContext
from ..css.values import Length
from ..html.dom import Document, Element, TextNode
from ..style.computed import ComputedStyle
from ..style.resolver import StyleResolver
from .boxes import LayoutBox, LayoutTree
from .geometry import Rect

from .fonts import line_count

#: tags that get an intrinsic size from width/height attributes
_REPLACED_TAGS = frozenset({"img", "canvas", "video", "iframe"})


class LayoutEngine:
    """Performs traced layout passes over a styled document."""

    def __init__(self, ctx: EngineContext, resolver: StyleResolver) -> None:
        self.ctx = ctx
        self.resolver = resolver

    def layout_document(self, document: Document) -> LayoutTree:
        """Lay out the whole document against the configured viewport."""
        ctx = self.ctx
        viewport_w = float(ctx.config.viewport_width)
        body = document.body()
        # Layout tree mutation is guarded as in Blink (lifecycle exclusion).
        with ctx.tracer.function("blink::layout::LayoutView::UpdateLayout"), ctx.lock(
            "blink:lock:layout"
        ).held():
            root_style = (
                self.resolver.style_of(body).copy()
                if body is not None
                else ComputedStyle.initial()
            )
            root_style.values["display"] = "block"
            root = LayoutBox(root_style, element=body)
            root.rect = Rect(0, 0, viewport_w, 0)
            if body is not None:
                height = self._layout_block(root, Rect(0, 0, viewport_w, 0))
                root.rect = Rect(0, 0, viewport_w, height)
        return LayoutTree(root)

    def relayout_subtree(
        self, tree: LayoutTree, element: Element
    ) -> Optional[LayoutBox]:
        """Re-lay out one dirty block subtree in place.

        Re-runs block placement for ``element``'s box using the recorded
        placement inputs (containing rect + block cursor), then splices the
        fresh box into the existing tree.  Returns the new box, or ``None``
        when incremental relayout is unsound and the caller must fall back
        to a full :meth:`layout_document` pass:

        - the element has no box (display:none, or never laid out),
        - the box was not placed by plain block flow (no placement record),
        - the element's new style removes it from flow, or
        - the re-laid-out box's border rect changed, which would shift
          later siblings (their cursor positions depend on this height).
        """
        old_box = tree.box_for(element)
        if old_box is None or old_box.parent is None or old_box.placement is None:
            return None
        style = self.resolver.style_of(element)
        if style.display == "none" or style.position in ("absolute", "fixed"):
            return None
        new_box = LayoutBox(style, element=element)
        container, cursor_y = old_box.placement
        ctx = self.ctx
        with ctx.tracer.function(
            "blink::layout::LayoutView::UpdateSubtreeLayout"
        ), ctx.lock("blink:lock:layout").held():
            self._place_block_child(new_box, container, cursor_y)
        if new_box.rect != old_box.rect:
            return None
        parent = old_box.parent
        parent.children[parent.children.index(old_box)] = new_box
        new_box.parent = parent
        old_box.parent = None
        return new_box

    # ------------------------------------------------------------------ #

    def _children_boxes(self, box: LayoutBox) -> None:
        """Create child boxes for the element behind ``box``."""
        element = box.element
        if element is None:
            return
        for child in element.children:
            if isinstance(child, TextNode):
                if child.text.strip():
                    box.add_child(LayoutBox(box.style, text_node=child))
            elif isinstance(child, Element):
                style = self.resolver.style_of(child)
                if style.display == "none":
                    self.ctx.tracer.compare_and_branch(
                        "skip_display_none", reads=(child.cell("style:display"),)
                    )
                    continue
                box.add_child(LayoutBox(style, element=child))

    def _layout_block(self, box: LayoutBox, container: Rect) -> float:
        """Lay out ``box``'s children inside ``container`` (content box).

        Returns the used height of ``box``.
        """
        ctx = self.ctx
        tracer = ctx.tracer
        self._children_boxes(box)

        if box.style.display == "flex":
            return self._layout_flex_row(box, container)

        cursor_y = container.y
        content_w = container.w
        pending_inline: list = []
        pending_iblock: list = []

        def flush_inline() -> None:
            nonlocal cursor_y
            if not pending_inline:
                return
            cursor_y = self._layout_line_group(
                pending_inline, container.x, cursor_y, content_w
            )
            pending_inline.clear()

        def flush_iblock() -> None:
            nonlocal cursor_y
            if not pending_iblock:
                return
            cursor_y = self._layout_inline_block_rows(
                pending_iblock, container, cursor_y
            )
            pending_iblock.clear()

        for child in box.children:
            if child.is_text or (
                child.element is not None
                and child.style.display == "inline"
                and not child.element.child_elements()
            ):
                flush_iblock()
                pending_inline.append(child)
                continue
            if child.in_flow and child.style.display == "inline-block":
                flush_inline()
                pending_iblock.append(child)
                continue
            flush_inline()
            flush_iblock()
            if not child.in_flow:
                self._layout_out_of_flow(child, box)
                continue
            cursor_y = self._place_block_child(child, container, cursor_y)

        flush_inline()
        flush_iblock()

        explicit_h = box.style.length_or_auto("height")
        pad_top = box.style.side("padding", "top")
        pad_bottom = box.style.side("padding", "bottom")
        if explicit_h is not None:
            height = explicit_h.resolve(container.h if container.h else 0.0)
        else:
            height = (cursor_y - container.y) + pad_top + pad_bottom
        return max(height, 0.0)

    def _place_block_child(
        self, child: LayoutBox, container: Rect, cursor_y: float
    ) -> float:
        ctx = self.ctx
        tracer = ctx.tracer
        style = child.style
        child.placement = (container, cursor_y)
        margin_l = style.side("margin", "left")
        margin_r = style.side("margin", "right")
        margin_t = style.side("margin", "top")
        margin_b = style.side("margin", "bottom")
        pad_l = style.side("padding", "left")
        pad_t = style.side("padding", "top")

        explicit_w = style.length_or_auto("width")
        if explicit_w is not None:
            width = explicit_w.resolve(container.w)
        elif child.element is not None and child.element.tag in _REPLACED_TAGS:
            width = _attr_size(child.element, "width", 300.0)
        else:
            width = max(container.w - margin_l - margin_r, 0.0)

        x = container.x + margin_l
        y = cursor_y + margin_t

        if child.element is not None and child.element.tag in _REPLACED_TAGS:
            explicit_h = style.length_or_auto("height")
            height = (
                explicit_h.resolve(0.0)
                if explicit_h is not None
                else _attr_size(child.element, "height", 150.0)
            )
            child.rect = Rect(x, y, width, height)
        else:
            content = Rect(x + pad_l, y + pad_t, max(width - 2 * pad_l, 0.0), 0.0)
            height = self._layout_block(child, content)
            child.rect = Rect(x, y, width, height)

        self._trace_box(child)
        return y + child.rect.h + margin_b

    def _layout_line_group(
        self, boxes: list, x: float, y: float, width: float
    ) -> float:
        """Lay out a run of text/inline boxes; returns the new cursor y."""
        tracer = self.ctx.tracer
        cursor = y
        for box in boxes:
            text = (
                box.text_node.text
                if box.is_text
                else (box.element.text_content() if box.element is not None else "")
            )
            style = box.style
            lines = max(1, line_count(text, style.font_size, width))
            height = lines * style.line_height
            box.rect = Rect(x, cursor, width, height)
            self._trace_box(box)
            if not box.is_text and box.element is not None:
                # Text-only inline element: give its text nodes their own
                # (coincident) boxes so their character data reaches paint.
                for child in box.element.children:
                    if isinstance(child, TextNode) and child.text.strip():
                        text_box = box.add_child(LayoutBox(style, text_node=child))
                        text_box.rect = box.rect
                        self._trace_box(text_box)
            cursor += height
        return cursor

    def _layout_flex_row(self, box: LayoutBox, container: Rect) -> float:
        """flex-direction: row with wrapping (the common grid idiom).

        Children flow horizontally and wrap like inline-blocks; text
        children get line boxes first.  Out-of-flow children position as
        usual.
        """
        cursor_y = container.y
        texts = [c for c in box.children if c.is_text]
        if texts:
            cursor_y = self._layout_line_group(texts, container.x, cursor_y, container.w)
        flow = [c for c in box.children if not c.is_text and c.in_flow]
        if flow:
            cursor_y = self._layout_inline_block_rows(flow, container, cursor_y)
        for child in box.children:
            if not child.is_text and not child.in_flow:
                self._layout_out_of_flow(child, box)
        explicit_h = box.style.length_or_auto("height")
        if explicit_h is not None:
            return max(explicit_h.resolve(container.h if container.h else 0.0), 0.0)
        pad = box.style.side("padding", "top") + box.style.side("padding", "bottom")
        return max(cursor_y - container.y + pad, 0.0)

    def _layout_inline_block_rows(
        self, boxes: list, container: Rect, cursor_y: float
    ) -> float:
        """Lay out inline-block children in wrapping rows (grid flow)."""
        row_x = container.x
        row_y = cursor_y
        row_h = 0.0
        for child in boxes:
            style = child.style
            margin_l = style.side("margin", "left")
            margin_r = style.side("margin", "right")
            margin_t = style.side("margin", "top")
            margin_b = style.side("margin", "bottom")
            explicit_w = style.length_or_auto("width")
            if explicit_w is not None:
                width = explicit_w.resolve(container.w)
            elif child.element is not None and child.element.tag in _REPLACED_TAGS:
                width = _attr_size(child.element, "width", 300.0)
            else:
                width = min(container.w / 2, 240.0)  # shrink-to-fit fallback
            outer_w = width + margin_l + margin_r
            if row_x + outer_w > container.x + container.w and row_x > container.x:
                row_y += row_h
                row_x = container.x
                row_h = 0.0
            x = row_x + margin_l
            y = row_y + margin_t
            explicit_h = style.length_or_auto("height")
            if explicit_h is not None:
                height = explicit_h.resolve(0.0)
                child.rect = Rect(x, y, width, height)
                content = Rect(
                    x + style.side("padding", "left"),
                    y + style.side("padding", "top"),
                    max(width - 2 * style.side("padding", "left"), 0.0),
                    0.0,
                )
                self._layout_block(child, content)
                child.rect = Rect(x, y, width, height)
            else:
                content = Rect(
                    x + style.side("padding", "left"),
                    y + style.side("padding", "top"),
                    max(width - 2 * style.side("padding", "left"), 0.0),
                    0.0,
                )
                height = self._layout_block(child, content)
                child.rect = Rect(x, y, width, height)
            self._trace_box(child)
            row_x += outer_w
            row_h = max(row_h, height + margin_t + margin_b)
        return row_y + row_h

    def _layout_out_of_flow(self, child: LayoutBox, parent: LayoutBox) -> None:
        """absolute/fixed positioning against the viewport/containing box."""
        ctx = self.ctx
        style = child.style
        viewport_w = float(ctx.config.viewport_width)
        viewport_h = float(ctx.config.viewport_height)
        base = (
            Rect(0, 0, viewport_w, viewport_h)
            if style.position == "fixed"
            else parent.rect if not parent.rect.is_empty() else Rect(0, 0, viewport_w, 0)
        )
        top = style.length_or_auto("top")
        left = style.length_or_auto("left")
        explicit_w = style.length_or_auto("width")
        explicit_h = style.length_or_auto("height")
        width = explicit_w.resolve(base.w) if explicit_w is not None else base.w / 2
        x = base.x + (left.resolve(base.w) if left is not None else 0.0)
        y = base.y + (top.resolve(base.h) if top is not None else 0.0)
        if explicit_h is not None:
            height = explicit_h.resolve(base.h)
            child.rect = Rect(x, y, width, height)
            self._children_boxes_positioned(child)
        else:
            content = Rect(x, y, width, 0.0)
            height = self._layout_block(child, content)
            child.rect = Rect(x, y, width, height)
        self._trace_box(child)

    def _children_boxes_positioned(self, box: LayoutBox) -> None:
        """Lay out children of a fixed-size positioned box."""
        content = Rect(box.rect.x, box.rect.y, box.rect.w, 0.0)
        self._layout_block(box, content)

    def _trace_box(self, box: LayoutBox) -> None:
        tracer = self.ctx.tracer
        if box.element is not None:
            element = box.element
            style_cells = tuple(
                element.cell(f"style:{name}")
                for name in (
                    "width", "height", "display", "position",
                    "margin-top", "margin-right", "margin-bottom", "margin-left",
                    "padding-top", "padding-left", "padding-bottom", "padding-right",
                    "top", "left", "font-size", "line-height",
                )
            )
            parent_cells = ()
            if element.parent is not None:
                parent_cells = (element.parent.cell("layout:geom"),)
            # The box tree is built from the DOM structure, so geometry
            # carries a dependence on the element's tree-link cell.
            tracer.op(
                "compute_geometry",
                reads=style_cells + parent_cells + (element.cell("links"),),
                writes=(element.cell("layout:geom"),),
            )
            if element.node_id % 2 == 0:
                self.ctx.plain_helper(
                    "SnapSizeToPixel",
                    reads=(element.cell("layout:geom"),),
                    writes=(element.cell("layout:geom"),),
                )
        elif box.text_node is not None:
            node = box.text_node
            parent_cells = ()
            if node.parent is not None:
                parent_cells = (
                    node.parent.cell("layout:geom"),
                    node.parent.cell("style:font-size"),
                )
            tracer.op(
                "measure_text",
                reads=(node.cell("text"),) + parent_cells,
                writes=(node.cell("layout:geom"),),
            )
        self.ctx.maybe_debug_event()


def _attr_size(element: Element, name: str, default: float) -> float:
    raw = element.get_attribute(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default
