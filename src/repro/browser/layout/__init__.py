"""Layout subsystem: geometry, box tree, and the block/inline engine."""

from .boxes import LayoutBox, LayoutTree
from .engine import LayoutEngine
from .geometry import EMPTY_RECT, Rect

__all__ = ["Rect", "EMPTY_RECT", "LayoutBox", "LayoutTree", "LayoutEngine"]
