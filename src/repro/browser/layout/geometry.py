"""2D geometry primitives used by layout, paint, and compositing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle (document coordinates, y grows downward)."""

    x: float
    y: float
    w: float
    h: float

    @property
    def right(self) -> float:
        return self.x + self.w

    @property
    def bottom(self) -> float:
        return self.y + self.h

    def is_empty(self) -> bool:
        return self.w <= 0 or self.h <= 0

    def area(self) -> float:
        return max(0.0, self.w) * max(0.0, self.h)

    def intersects(self, other: "Rect") -> bool:
        return not (
            self.right <= other.x
            or other.right <= self.x
            or self.bottom <= other.y
            or other.bottom <= self.y
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        right = min(self.right, other.right)
        bottom = min(self.bottom, other.bottom)
        if right <= x or bottom <= y:
            return None
        return Rect(x, y, right - x, bottom - y)

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x <= other.x
            and self.y <= other.y
            and self.right >= other.right
            and self.bottom >= other.bottom
        )

    def contains_point(self, px: float, py: float) -> bool:
        return self.x <= px < self.right and self.y <= py < self.bottom

    def translate(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def union(self, other: "Rect") -> "Rect":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        right = max(self.right, other.right)
        bottom = max(self.bottom, other.bottom)
        return Rect(x, y, right - x, bottom - y)

    def __repr__(self) -> str:
        return f"Rect({self.x:g}, {self.y:g}, {self.w:g}x{self.h:g})"


EMPTY_RECT = Rect(0, 0, 0, 0)
