"""The Bing benchmark: load plus a scripted browsing session.

The paper's only load+browse instruction trace: loading bing.com, then
opening and closing the top-right menu, clicking the button that rolls the
news pane at the bottom of the page, and typing a term into the search bar
(Section IV-B).  Typing drives per-keystroke autocomplete work on the main
thread; the news roll mutates a pane and forces a partial re-render — the
slicing-percentage spikes visible in Figure 4h.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..browser import EngineConfig, PageSpec, UserAction
from .base import Benchmark
from .generator import (
    css_framework,
    footer_links,
    js_analytics_library,
    js_lazy_widgets,
    js_utility_library,
    lorem,
)

_USED_CLASSES = (
    "shell", "hero-image", "search-wrap", "search-input", "search-btn",
    "menu-btn", "menu-panel", "menu-row", "news-pane", "news-card",
    "news-title", "roll-btn", "footer", "footer-col", "footer-link",
    "hero-credit", "below-fold", "trend-section", "trend-row",
)


def _below_fold(rng: random.Random) -> str:
    """Content below the first view: trending strips nobody scrolls to."""
    sections = []
    for s in range(5):
        rows = "".join(
            f'<div class="trend-row">{lorem(rng, 8).title()}</div>' for _ in range(6)
        )
        sections.append(
            f'<div class="trend-section" id="trend{s}">'
            f"<h3>{lorem(rng, 3).title()}</h3>{rows}</div>"
        )
    return "".join(sections)


def _bing_page(seed: int = 41) -> PageSpec:
    rng = random.Random(seed)
    images: Dict[str, int] = {"hero/daily.jpg": 160_000}

    menu_rows = "".join(
        f'<div class="menu-row">{lorem(rng, 2).title()}</div>' for _ in range(10)
    )
    news_placeholder = "".join(
        f'<div class="news-card" id="newscard{i}"><div class="news-title">'
        f"{lorem(rng, 6).title()}</div></div>"
        for i in range(4)
    )

    html = f"""<!DOCTYPE html>
<html>
<head>
<title>Bing</title>
<link rel="stylesheet" href="bing.css">
</head>
<body class="shell">
<img class="hero-image" id="hero" src="hero/daily.jpg" width="1280" height="800"
     style="position:absolute; top:0px; left:0px">
<button class="menu-btn" id="menu-btn"
        style="position:fixed; top:16px; left:1200px; z-index:8">Menu</button>
<div class="menu-panel" id="menu-panel"
     style="display:none; position:fixed; top:56px; left:980px; z-index:9">{menu_rows}</div>
<div class="search-wrap" id="search-wrap"
     style="position:absolute; top:300px; left:340px; z-index:4">
  <input class="search-input" id="search-input" type="text">
  <button class="search-btn" id="search-btn">Search</button>
</div>
<div class="news-pane" id="news-pane"
     style="position:absolute; top:720px; left:0px; width:1280px; z-index:5">
  <button class="roll-btn" id="news-roll">Show news</button>
  <div id="news-content">{news_placeholder}</div>
</div>
<div class="hero-credit" id="hero-credit"
     style="position:absolute; top:760px; left:20px; z-index:6">credit</div>
<div class="below-fold" id="below-fold">
{_below_fold(rng)}
</div>
{footer_links(rng, n_columns=3)}
<script src="bing_ui.js"></script>
<script src="app.js"></script>
<script src="metrics.js"></script>
</body>
</html>"""

    ui_lib = "\n".join(
        (
            js_utility_library("bui", 64, 30, seed=seed + 1),
            js_utility_library("bweb", 44, 18, seed=seed + 3),
            js_lazy_widgets(n_widgets=14, n_activated=3),
        )
    )

    app_js = """
// bing shell bootstrap
bui_init();
bweb_init();
// The daily-wallpaper credit line is rendered client-side from the UI
// library's state.
var credit = document.getElementById('hero-credit');
credit.textContent = 'Photo of the day #' + (bui_registry.checksum % 1000);
var menu_visible = false;
document.getElementById('menu-btn').addEventListener('click', function(e) {
    menu_visible = !menu_visible;
    var panel = document.getElementById('menu-panel');
    panel.style.display = menu_visible ? 'block' : 'none';
    metrics_track('menu');
});
var news_rolled = false;
document.getElementById('news-roll').addEventListener('click', function(e) {
    news_rolled = !news_rolled;
    var pane = document.getElementById('news-pane');
    if (news_rolled) {
        pane.style.top = '420px';
        var content = document.getElementById('news-content');
        for (var i = 0; i < 4; i++) {
            var card = document.getElementById('newscard' + i);
            var blurb = bui_util30(i + 1, 7) + bui_util31(i, 3) + bweb_util20(i, 2);
            card.textContent = 'Story ' + i + ': ' + blurb;
        }
    } else {
        pane.style.top = '720px';
    }
    metrics_track('newsroll');
});
var suggest_cache = [];
function autocomplete(term) {
    var scored = [];
    for (var i = 0; i < 14; i++) {
        var score = 0;
        for (var j = 0; j < term.length; j++) { score += (i * 7 + j * 3) % 13; }
        scored.push(score);
    }
    suggest_cache.push(scored);
    return scored.length;
}
document.getElementById('search-input').addEventListener('input', function(e) {
    var field = document.getElementById('search-input');
    var term = field.getAttribute('value') || '';
    autocomplete(term);
    metrics_track('suggest');
});
"""

    css = "\n".join(
        (
            css_framework(
                "bing",
                list(_USED_CLASSES),
                n_extra_rules=60,
                seed=seed + 2,
                palette=("#ffffff", "#0c8484", "#174ae4", "#f5f5f5"),
            ),
            """
.shell { margin: 0; background-color: #000000; }
.hero-image { width: 1280px; height: 800px; }
.search-input { width: 480px; height: 44px; background-color: #ffffff; }
.search-btn { width: 80px; height: 44px; background-color: #174ae4; }
.menu-btn { width: 64px; height: 36px; background-color: rgba(255,255,255,0.9); }
.menu-panel { width: 280px; height: 420px; background-color: #ffffff; }
.menu-row { height: 40px; font-size: 14px; }
.news-pane { height: 380px; background-color: rgba(10,10,10,0.92); }
.news-card { width: 300px; height: 160px; background-color: #1b1b1b; margin: 8px; }
.news-title { color: #ffffff; font-size: 15px; }
.roll-btn { width: 120px; height: 32px; background-color: #333333; }
.hero-credit { color: #ffffff; font-size: 12px; }
.below-fold { margin-top: 820px; background-color: #f5f5f5; }
.trend-section { margin: 12px; background-color: #ffffff; }
.trend-row { height: 36px; font-size: 14px; }
.bing-unused-rewards { width: 90px; height: 28px; background-color: #ffb900; }
.bing-unused-wallpaper-info { width: 240px; height: 60px; background-color: #222222; }
""",
        )
    )

    return PageSpec(
        url="https://www.bing.com/",
        html=html,
        stylesheets={"bing.css": css},
        scripts={
            "bing_ui.js": ui_lib,
            "app.js": app_js,
            "metrics.js": js_analytics_library("metrics", beacon_every=6),
        },
        images=images,
    )


def bing_actions() -> List[UserAction]:
    """The paper's session: open/close menu, roll the news pane, type."""
    actions: List[UserAction] = [
        UserAction(kind="click", target_id="menu-btn", think_time_ms=1200),
        UserAction(kind="click", target_id="menu-btn", think_time_ms=900),
        UserAction(kind="click", target_id="news-roll", think_time_ms=1400),
    ]
    for ch in "weather":
        actions.append(
            UserAction(kind="type", target_id="search-input", text=ch, think_time_ms=160)
        )
    return actions


def bing() -> Benchmark:
    """Bing: Load + Browse (paper Table II column 4)."""
    late = js_utility_library("bnews", 32, 10, seed=47, loop_scale=16)
    return Benchmark(
        name="bing",
        description="Bing: Load + Browse",
        page=_bing_page(),
        config=EngineConfig(
            viewport_width=1280,
            viewport_height=800,
            raster_threads=2,
            interest_margin=640,
            load_animation_ticks=90,
            action_animation_ticks=8,
            seed=41,
        ),
        actions=bing_actions(),
        late_scripts={2: {"bing_news.js": late + "\nbnews_init();"}},
    )


def bing_load_only() -> Benchmark:
    """Bing without the browse session (the Table I 'Only Load' row)."""
    full = bing()
    return Benchmark(
        name="bing_load_only",
        description="Bing: Load",
        page=full.page,
        config=full.config,
    )
