"""Synthetic web-content generators.

Builds the HTML/CSS/JS of the benchmark sites: JavaScript "libraries" with
a controllable used/unused split (the paper's Table I finds 40-60% of
downloaded JS+CSS bytes unused), CSS frameworks with utility classes the
pages only partially reference, product grids, navigation chrome, and
analytics snippets that execute without ever touching a pixel.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

_WORDS = (
    "alpha bravo canvas delta engine falcon garnet harbor indigo jasper "
    "kernel lumen marble nectar onyx prism quartz russet sierra timber "
    "umber velvet willow xenon yonder zephyr basket cradle dynamo ember"
).split()


def lorem(rng: random.Random, n_words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(n_words))


# --------------------------------------------------------------------- #
# JavaScript generators                                                 #
# --------------------------------------------------------------------- #

_FN_BODIES = (
    # (template, loop-ish cost) — bodies exercise arithmetic, strings,
    # arrays, and branches so executed functions emit realistic traces.
    """
    var acc = 0;
    for (var i = 0; i < {n}; i++) {{
        if (i % 3 === 0) {{ acc += i * seedA; }} else {{ acc += seedB; }}
    }}
    return acc;
    """,
    """
    var parts = [];
    for (var i = 0; i < {n}; i++) {{
        parts.push('' + seedA + '-' + i);
    }}
    return parts.join(',').length + seedB;
    """,
    """
    var table = [];
    for (var i = 0; i < {n}; i++) {{ table.push(i * seedA + seedB); }}
    var total = 0;
    table.forEach(function(v) {{ total += v; }});
    return total;
    """,
    """
    var x = seedA, y = seedB;
    for (var i = 0; i < {n}; i++) {{
        var t = x + y; x = y; y = t % 100003;
    }}
    return y;
    """,
)


def js_utility_library(
    name: str,
    n_functions: int,
    n_used: int,
    seed: int,
    loop_scale: int = 24,
) -> str:
    """A utility library: ``n_functions`` helpers, ``n_used`` called by init.

    The init function runs the used helpers (their results feed a private
    registry object, not the DOM — classic framework warm-up work).
    """
    rng = random.Random(seed)
    lines: List[str] = [f"// {name}: generated utility library"]
    names: List[str] = []
    for i in range(n_functions):
        fn_name = f"{name}_util{i}"
        names.append(fn_name)
        body = rng.choice(_FN_BODIES).format(n=rng.randint(loop_scale // 2, loop_scale))
        lines.append(f"function {fn_name}(seedA, seedB) {{{body}}}")
    lines.append(f"var {name}_registry = {{ ready: false, checksum: 0 }};")
    lines.append(f"function {name}_init() {{")
    for i in range(min(n_used, n_functions)):
        lines.append(
            f"    {name}_registry.checksum += {names[i]}({i + 1}, {seed % 97});"
        )
    lines.append(f"    {name}_registry.ready = true;")
    lines.append(f"    return {name}_registry.checksum;")
    lines.append("}")
    return "\n".join(lines)


def js_analytics_library(name: str = "metrics", beacon_every: int = 1) -> str:
    """Analytics/telemetry: computes session state and sends beacons.

    Everything here is invisible to the user — the paper's canonical
    unnecessary computation (only the beacon bytes reach a syscall, so the
    work shows up in the syscall slice but not the pixel slice... and the
    payload chain is tiny either way).
    """
    return f"""
// {name}: page analytics
var {name}_session = {{ id: 0, events: [], flushed: 0 }};
function {name}_hash(s) {{
    var h = 7;
    for (var i = 0; i < s.length; i++) {{
        h = (h * 31 + i) % 1000000007;
    }}
    return h;
}}
function {name}_start() {{
    {name}_session.id = {name}_hash(navigator.userAgent + window.location.href);
    for (var i = 0; i < 40; i++) {{
        {name}_session.events.push({{ t: i * 16, kind: 'timing', value: i * 3 }});
    }}
}}
function {name}_track(kind) {{
    {name}_session.events.push({{ t: Date.now(), kind: kind, value: 1 }});
    if ({name}_session.events.length % {beacon_every} === 0) {{
        {name}_flush();
    }}
}}
function {name}_flush() {{
    var payload = 'sid=' + {name}_session.id + '&n=' + {name}_session.events.length;
    navigator.sendBeacon('https://telemetry.example/collect', payload);
    {name}_session.flushed += 1;
}}
{name}_start();
{name}_track('pageview');
"""


def js_lazy_widgets(n_widgets: int, n_activated: int) -> str:
    """Widget registry: handlers registered for many widgets, few ever used.

    Handler registration compiles and stores closures (pixel-invisible
    until an event fires), modelling the paper's "compilation of event
    handlers for elements the user never touches".
    """
    lines = ["// widget registry", "var widget_handlers = { count: 0 };"]
    lines.append("function widget_register(id, handler) {")
    lines.append("    widget_handlers[id] = handler;")
    lines.append("    widget_handlers.count += 1;")
    lines.append("}")
    for i in range(n_widgets):
        lines.append(
            f"""widget_register('w{i}', function(ev) {{
    var el = document.getElementById('w{i}');
    if (el) {{ el.setAttribute('data-active', 'on'); }}
    return {i};
}});"""
        )
    lines.append("function widget_activate(id) {")
    lines.append("    var h = widget_handlers[id];")
    lines.append("    if (h) { h(null); }")
    lines.append("}")
    for i in range(min(n_activated, n_widgets)):
        lines.append(f"widget_activate('w{i}');")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# CSS generators                                                        #
# --------------------------------------------------------------------- #


def css_framework(
    name: str,
    used_classes: Sequence[str],
    n_extra_rules: int,
    seed: int,
    palette: Sequence[str] = ("#131921", "#232f3e", "#febd69", "#eaeded", "#ffffff"),
) -> str:
    """A bootstrap-like sheet: rules for ``used_classes`` plus dead rules.

    The extra rules target classes no element carries, so they parse but
    never match — the Table I unused-CSS bytes.
    """
    rng = random.Random(seed)
    lines: List[str] = [f"/* {name}: generated framework sheet */"]
    for cls in used_classes:
        color = rng.choice(palette)
        lines.append(
            f".{cls} {{ background-color: {color}; padding: {rng.randint(2, 12)}px; "
            f"margin: {rng.randint(0, 8)}px; }}"
        )
    for i in range(n_extra_rules):
        cls = f"{name}-dead-{i}"
        lines.append(
            f".{cls} {{ width: {rng.randint(40, 400)}px; height: {rng.randint(20, 200)}px; "
            f"background-color: {rng.choice(palette)}; border-width: {rng.randint(1, 4)}px; "
            f"opacity: 0.{rng.randint(1, 9)}; }}"
        )
    # A couple of at-rules (parsed, never matched).
    lines.append(
        f"@keyframes {name}-spin {{ 0% {{ opacity: 0; }} 100% {{ opacity: 1; }} }}"
    )
    lines.append(
        "@media (max-width: 0px) { ."
        + name
        + "-never { display: none; color: red; } }"
    )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# HTML generators                                                       #
# --------------------------------------------------------------------- #


def product_grid(
    rng: random.Random,
    n_products: int,
    *,
    id_prefix: str = "prod",
    image_prefix: str = "img/product",
    card_class: str = "card",
) -> Tuple[str, Dict[str, int]]:
    """An e-commerce product grid; returns (html, image resources)."""
    cards: List[str] = []
    images: Dict[str, int] = {}
    for i in range(n_products):
        url = f"{image_prefix}{i}.jpg"
        images[url] = rng.randint(9_000, 30_000)
        title = lorem(rng, 4).title()
        cards.append(
            f"""<div class="{card_class}" id="{id_prefix}{i}">
  <img src="{url}" width="180" height="180">
  <div class="card-title">{title}</div>
  <div class="card-price">${rng.randint(5, 900)}.{rng.randint(10, 99)}</div>
  <button id="{id_prefix}{i}-buy" class="buy-btn">Add to Cart</button>
</div>"""
        )
    return "\n".join(cards), images


def nav_menu(n_items: int, rng: random.Random, hidden_submenus: int = 3) -> str:
    """Site chrome: a nav bar with hidden dropdown submenus.

    The submenus are ``display:none`` at load — parsed, styled cheaply,
    never laid out or painted.
    """
    items: List[str] = []
    for i in range(n_items):
        label = lorem(rng, 1).title()
        sub = ""
        if i < hidden_submenus:
            entries = "".join(
                f'<li class="submenu-item">{lorem(rng, 2).title()}</li>'
                for _ in range(6)
            )
            sub = f'<ul class="submenu" id="submenu{i}" style="display:none">{entries}</ul>'
        items.append(f'<li class="nav-item" id="nav{i}">{label}{sub}</li>')
    return '<ul class="nav-list">' + "".join(items) + "</ul>"


def footer_links(rng: random.Random, n_columns: int = 4, per_column: int = 8) -> str:
    """A long link-farm footer (bottom of page: rarely on the first view)."""
    columns = []
    for c in range(n_columns):
        links = "".join(
            f'<li><a class="footer-link">{lorem(rng, 2).title()}</a></li>'
            for _ in range(per_column)
        )
        columns.append(f'<div class="footer-col" id="footcol{c}"><ul>{links}</ul></div>')
    return '<div class="footer" id="footer">' + "".join(columns) + "</div>"
