"""Benchmark definition shared by all workloads."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List

from ..browser import EngineConfig, PageSpec, UserAction


@dataclass
class Benchmark:
    """One paper benchmark: a site, an engine config, and a session."""

    name: str
    description: str
    page: PageSpec
    config: EngineConfig
    #: scripted browsing session (empty for load-only benchmarks)
    actions: List[UserAction] = field(default_factory=list)
    #: scripts fetched lazily during the browse phase:
    #: action index -> {url: source} (models Table I's "more code bytes are
    #: downloaded while browsing")
    late_scripts: Dict[int, Dict[str, str]] = field(default_factory=dict)
    #: scripts pulled out of the load phase by the optimizer: fetched and
    #: executed right after the load frame, before the browse session
    #: (the "To Block or Not to Block"-style deferral)
    deferred_scripts: Dict[str, str] = field(default_factory=dict)

    @property
    def load_only(self) -> bool:
        return not self.actions

    def with_scripts(
        self,
        replacements: Dict[str, str],
        deferred: Iterable[str] = (),
        dropped_images: Iterable[str] = (),
    ) -> "Benchmark":
        """A copy of this benchmark running different JS.

        ``replacements`` maps script URLs to new sources (URLs not listed
        keep their original source; late-fetched scripts are replaced in
        place); URLs in ``deferred`` are removed from the load phase
        entirely and injected after the load frame instead; image URLs in
        ``dropped_images`` are never fetched or decoded.  The page, config,
        and session are shared, so the copy runs the same site with
        transformed resources — the hook the optimizer uses to re-execute
        a workload it has rewritten.
        """
        scripts = dict(self.page.scripts)
        scripts.update(
            {url: src for url, src in replacements.items() if url in scripts}
        )
        deferred_set = set(deferred)
        deferred_scripts = {
            url: scripts.pop(url) for url in list(scripts) if url in deferred_set
        }
        late_scripts = {
            idx: {
                url: replacements.get(url, src) for url, src in batch.items()
            }
            for idx, batch in self.late_scripts.items()
        }
        dropped = set(dropped_images)
        images = {
            url: size
            for url, size in self.page.images.items()
            if url not in dropped
        }
        return replace(
            self,
            page=replace(self.page, scripts=scripts, images=images),
            late_scripts=late_scripts,
            deferred_scripts=deferred_scripts,
        )
