"""Benchmark definition shared by all workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..browser import EngineConfig, PageSpec, UserAction


@dataclass
class Benchmark:
    """One paper benchmark: a site, an engine config, and a session."""

    name: str
    description: str
    page: PageSpec
    config: EngineConfig
    #: scripted browsing session (empty for load-only benchmarks)
    actions: List[UserAction] = field(default_factory=list)
    #: scripts fetched lazily during the browse phase:
    #: action index -> {url: source} (models Table I's "more code bytes are
    #: downloaded while browsing")
    late_scripts: Dict[int, Dict[str, str]] = field(default_factory=dict)

    @property
    def load_only(self) -> bool:
        return not self.actions
