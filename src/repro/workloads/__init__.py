"""The paper's benchmark workloads.

Four instruction-trace benchmarks (Table II): Amazon desktop (load),
Amazon emulated-mobile (load), Google Maps (load), and Bing (load +
browse); plus the load+browse variants of Amazon and Maps used by Table I
and Figure 2.
"""

from typing import Callable, Dict, List

from .amazon import (
    amazon_browse_actions,
    amazon_desktop,
    amazon_desktop_browse,
    amazon_mobile,
)
from .base import Benchmark
from .bing import bing, bing_actions, bing_load_only
from .maps import google_maps, google_maps_browse, maps_browse_actions
from .multiframe import livefeed, scrollseq, scrollseq_actions, ticker
from .wiki import wiki_article, wiki_reading_actions

#: The paper's four Table II benchmarks, in column order.
TABLE2_BENCHMARKS = ("amazon_desktop", "amazon_mobile", "google_maps", "bing")

#: Multi-frame workloads for the incremental pipeline / redundancy study.
MULTIFRAME_BENCHMARKS = ("ticker", "livefeed", "scrollseq")

_REGISTRY: Dict[str, Callable[[], Benchmark]] = {
    "amazon_desktop": amazon_desktop,
    "amazon_mobile": amazon_mobile,
    "google_maps": google_maps,
    "bing": bing,
    "bing_load_only": bing_load_only,
    "amazon_desktop_browse": amazon_desktop_browse,
    "google_maps_browse": google_maps_browse,
    "wiki_article": wiki_article,
    "ticker": ticker,
    "livefeed": livefeed,
    "scrollseq": scrollseq,
}


def benchmark(name: str) -> Benchmark:
    """Instantiate a benchmark by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def benchmark_names() -> List[str]:
    return sorted(_REGISTRY)


def unknown_names(names) -> List[str]:
    """The subset of ``names`` that is not a registered benchmark.

    CLI front ends (harness subcommands, the profiling service's job-spec
    validation) use this to reject bad workload names up front — uniformly
    with exit status 2 — instead of failing midway through a run.
    """
    return [name for name in names if name not in _REGISTRY]


__all__ = [
    "Benchmark",
    "benchmark",
    "benchmark_names",
    "unknown_names",
    "TABLE2_BENCHMARKS",
    "MULTIFRAME_BENCHMARKS",
    "ticker",
    "livefeed",
    "scrollseq",
    "scrollseq_actions",
    "amazon_desktop",
    "amazon_mobile",
    "amazon_desktop_browse",
    "amazon_browse_actions",
    "google_maps",
    "google_maps_browse",
    "maps_browse_actions",
    "bing",
    "bing_actions",
    "bing_load_only",
    "wiki_article",
    "wiki_reading_actions",
]
