"""A fifth, non-paper workload: a wiki-style article page.

Not part of the paper's benchmark set — included to show how to define new
workloads and as a long-form-text counterpoint to the app-like sites: a
huge article body (text-dominated main thread), a table of contents built
client-side from the headings, a hidden edit toolbar, and almost no
framework JS.  Used by examples and generality tests.
"""

from __future__ import annotations

import random
from typing import List

from ..browser import EngineConfig, PageSpec, UserAction
from .base import Benchmark
from .generator import css_framework, js_analytics_library, lorem

_USED_CLASSES = (
    "article", "infobox", "toc", "toc-entry", "section-title", "paragraph",
    "reference", "edit-toolbar",
)


def _wiki_page(n_sections: int = 10, seed: int = 57) -> PageSpec:
    rng = random.Random(seed)
    sections: List[str] = []
    for index in range(n_sections):
        paragraphs = "".join(
            f'<p class="paragraph">{lorem(rng, 60)}</p>' for _ in range(3)
        )
        sections.append(
            f'<h2 class="section-title" id="sec{index}">{lorem(rng, 3).title()}</h2>'
            f"{paragraphs}"
        )
    references = "".join(
        f'<li class="reference">{lorem(rng, 8)}</li>' for _ in range(15)
    )

    html = f"""<!DOCTYPE html>
<html>
<head>
<title>Wiki article</title>
<link rel="stylesheet" href="wiki.css">
</head>
<body>
<div class="infobox" id="infobox">
  <img src="img/lead.jpg" width="220" height="160">
  <p>{lorem(rng, 20)}</p>
</div>
<div class="toc" id="toc"></div>
<div class="article" id="article">
{''.join(sections)}
<ol id="references">{references}</ol>
</div>
<div class="edit-toolbar" id="edit-toolbar" style="display:none">
  <button id="bold-btn">B</button><button id="italic-btn">I</button>
</div>
<script src="wiki.js"></script>
<script src="metrics.js"></script>
</body>
</html>"""

    wiki_js = f"""
// Build the table of contents client-side from the section headings.
var toc = document.getElementById('toc');
var entries = 0;
for (var s = 0; s < {n_sections}; s++) {{
    var heading = document.getElementById('sec' + s);
    if (heading) {{
        var entry = document.createElement('div');
        entry.setAttribute('class', 'toc-entry');
        entry.textContent = (s + 1) + '. ' + heading.textContent;
        toc.appendChild(entry);
        entries++;
    }}
}}
// The edit toolbar is wired up but stays hidden unless editing starts.
function enable_editing() {{
    document.getElementById('edit-toolbar').style.display = 'block';
}}
document.getElementById('article').addEventListener('dblclick', function(e) {{
    enable_editing();
}});
"""

    css = "\n".join(
        (
            css_framework("wiki", list(_USED_CLASSES), n_extra_rules=25, seed=seed + 1,
                          palette=("#ffffff", "#f8f9fa", "#eaecf0", "#202122")),
            """
body { margin: 0; background-color: #ffffff; }
.article { width: 72%; font-size: 14px; line-height: 22px; color: #202122; }
.infobox { width: 260px; background-color: #f8f9fa; border-width: 1px; }
.toc { width: 240px; background-color: #f8f9fa; }
.toc-entry { font-size: 13px; color: #3366cc; }
.section-title { font-size: 24px; }
.reference { font-size: 12px; }
.wiki-unused-talk-tab { width: 80px; height: 30px; background-color: #eaecf0; }
""",
        )
    )

    return PageSpec(
        url="https://wiki.example/article",
        html=html,
        stylesheets={"wiki.css": css},
        scripts={
            "wiki.js": wiki_js,
            "metrics.js": js_analytics_library("metrics", beacon_every=12),
        },
        images={"img/lead.jpg": 18_000},
    )


def wiki_article() -> Benchmark:
    """The wiki workload (generality demo; not one of the paper's four)."""
    return Benchmark(
        name="wiki_article",
        description="Wiki article: Load",
        page=_wiki_page(),
        config=EngineConfig(
            viewport_width=1100,
            viewport_height=800,
            raster_threads=2,
            interest_margin=512,
            load_animation_ticks=20,
            seed=57,
        ),
    )


def wiki_reading_actions() -> List[UserAction]:
    """A reading session: scroll through the article."""
    return [
        UserAction(kind="scroll", amount=600, think_time_ms=2000),
        UserAction(kind="scroll", amount=600, think_time_ms=2500),
        UserAction(kind="scroll", amount=-300, think_time_ms=1500),
    ]
