"""Randomized workload generators for the differential slicer tests.

Two levels of fuzzing, both deterministic given the seed:

* :func:`random_trace` builds an instruction trace directly with
  :class:`~repro.machine.tracer.Tracer` — random multi-threaded
  interleavings of ops, compare-and-branch pairs, nested calls,
  syscalls, and tile markers over a small shared cell pool (small pools
  make dependences dense, which is what stresses the slicers).
* :func:`random_page` assembles a full synthetic website from the
  :mod:`.generator` content pieces plus a randomized browsing session,
  to be run through the real browser engine.

The differential tests slice the resulting traces with the sequential
engine, the parallel engine, and the oracle, and assert identical
sliced-record sets; on mismatch the failing seed reproduces the trace
exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..browser import EngineConfig, PageSpec, UserAction
from ..machine.registers import NUM_REGISTERS
from ..machine.tracer import TILE_MARKER, Tracer
from ..trace.store import TraceStore
from .base import Benchmark
from .generator import (
    css_framework,
    footer_links,
    js_analytics_library,
    js_lazy_widgets,
    js_utility_library,
    lorem,
    nav_menu,
    product_grid,
)

#: syscalls the fuzzer draws from (a mix of memory-reading, -writing and
#: memory-free models from the machine's syscall table)
_SYSCALL_NAMES = ("write", "read", "futex", "clock_gettime", "sched_yield")


def random_trace(
    seed: int,
    target_records: int = 2_000,
    n_threads: int = 3,
    n_cells: int = 96,
    max_depth: int = 5,
) -> TraceStore:
    """A random but well-formed multi-threaded trace.

    Guarantees (the same invariants ``repro.trace.lint`` checks): every
    CALL is matched by a RET (threads are unwound at the end), every
    BRANCH is preceded by its CMP, registers and memory cells are written
    before they are read (per-thread boot ops seed the pools), and at
    least one ``TILE_MARKER`` with pixel cells is emitted on the main
    thread so ``pixel_criteria`` always applies.
    """
    rng = random.Random(seed)
    tracer = Tracer()
    tids = list(range(1, n_threads + 1))
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    for tid in tids[1:]:
        tracer.spawn_thread(tid, f"Worker{tid}", f"worker_loop_{tid}")

    cells = list(range(0x1000, 0x1000 + n_cells))
    regs = list(range(1, NUM_REGISTERS))  # skip FLAGS; branches manage it
    # Small per-function site-label pools so pcs repeat across dynamic
    # instances (repeated pcs are what give the CDG real structure).
    depth: dict = {tid: 0 for tid in tids}
    pixel_cells = tuple(rng.sample(cells, k=min(8, n_cells)))
    markers_emitted = 0

    # Def-before-use bookkeeping: reads are sampled from what has already
    # been written (registers per thread, memory cells globally), so the
    # generated trace passes the sanitizer's use-before-def checks.
    written_regs: dict = {tid: [] for tid in tids}
    written_cells: List[int] = []
    written_cell_set: set = set()

    def some(pool, lo, hi):
        return tuple(rng.sample(pool, k=rng.randint(lo, min(hi, len(pool)))))

    def note_cells(written) -> None:
        for cell in written:
            if cell not in written_cell_set:
                written_cell_set.add(cell)
                written_cells.append(cell)

    def note_regs(tid, written) -> None:
        for reg in written:
            if reg not in written_regs[tid]:
                written_regs[tid].append(reg)

    # Boot each thread: seed its register file and the shared cell pool
    # (the main thread also initializes the pixel buffer).
    for tid in tids:
        tracer.switch(tid)
        cell_writes = pixel_cells if tid == 1 else some(cells, 2, 4)
        reg_writes = some(regs, 2, 4)
        tracer.op("boot", writes=cell_writes, reg_writes=reg_writes)
        note_cells(cell_writes)
        note_regs(tid, reg_writes)

    while len(tracer.store) < target_records:
        tid = rng.choice(tids)
        tracer.switch(tid)
        for _ in range(rng.randint(1, 6)):
            roll = rng.random()
            label = f"s{rng.randrange(8)}"
            if roll < 0.45:
                reg_writes = some(regs, 0, 2)
                cell_writes = some(cells, 0, 2)
                tracer.op(
                    label,
                    reads=some(written_cells, 0, 3),
                    writes=cell_writes,
                    reg_reads=some(written_regs[tid], 0, 2),
                    reg_writes=reg_writes,
                )
                note_cells(cell_writes)
                note_regs(tid, reg_writes)
            elif roll < 0.70:
                tracer.compare_and_branch(
                    f"b{rng.randrange(6)}", some(written_cells, 1, 2)
                )
            elif roll < 0.82 and depth[tid] < max_depth:
                tracer.call(f"fn_{rng.randrange(10)}", site=f"c{rng.randrange(6)}")
                depth[tid] += 1
            elif roll < 0.90 and depth[tid] > 0:
                tracer.ret()
                depth[tid] -= 1
            elif roll < 0.96:
                cell_writes = some(cells, 0, 2)
                tracer.syscall(
                    rng.choice(_SYSCALL_NAMES),
                    reads=some(written_cells, 0, 2),
                    writes=cell_writes,
                )
                note_cells(cell_writes)
            else:
                tracer.marker(TILE_MARKER, some(pixel_cells, 1, 4))
                markers_emitted += 1

    # Make the pixel criteria non-empty even for unlucky rolls, seeding
    # from cells something actually wrote.
    tracer.switch(1)
    if markers_emitted == 0 or rng.random() < 0.5:
        tracer.op("final_paint", writes=pixel_cells[:4])
        tracer.marker(TILE_MARKER, pixel_cells[:4])
    # Unwind every thread so CALL/RET pairing is balanced.
    for tid in tids:
        tracer.switch(tid)
        while depth[tid] > 0:
            tracer.ret()
            depth[tid] -= 1
    return tracer.store


def random_frame_trace(
    seed: int,
    n_frames: int = 4,
    records_per_frame: int = 350,
    n_threads: int = 3,
    n_cells: int = 96,
    max_depth: int = 5,
    empty_frame_at: Optional[int] = None,
) -> TraceStore:
    """A random multi-frame trace (the incremental engine's fuzz input).

    Same well-formedness guarantees as :func:`random_trace`, plus frame
    structure: ``n_frames`` complete ``frame:begin``/``frame:end`` epochs
    (frame 0 is ``load``, the rest ``update``), separated by random gap
    activity, each rastering at least one tile inside its span — so every
    frame yields a non-empty per-frame pixel criterion.  Threads share
    one small cell pool *across* frames, so slices routinely reach back
    through earlier frames (the cross-frame dependences the incremental
    checkpoint must thread exactly).  ``empty_frame_at`` makes that frame
    raster nothing (its pixel criteria set is empty) — the adversarial
    empty-frame case.
    """
    rng = random.Random(seed ^ 0xF7A3E)
    tracer = Tracer()
    tids = list(range(1, n_threads + 1))
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    for tid in tids[1:]:
        tracer.spawn_thread(tid, f"Worker{tid}", f"worker_loop_{tid}")

    cells = list(range(0x1000, 0x1000 + n_cells))
    regs = list(range(1, NUM_REGISTERS))
    depth: dict = {tid: 0 for tid in tids}
    pixel_cells = tuple(rng.sample(cells, k=min(8, n_cells)))

    written_regs: dict = {tid: [] for tid in tids}
    written_cells: List[int] = []
    written_cell_set: set = set()

    def some(pool, lo, hi):
        return tuple(rng.sample(pool, k=rng.randint(lo, min(hi, len(pool)))))

    def note_cells(written) -> None:
        for cell in written:
            if cell not in written_cell_set:
                written_cell_set.add(cell)
                written_cells.append(cell)

    def note_regs(tid, written) -> None:
        for reg in written:
            if reg not in written_regs[tid]:
                written_regs[tid].append(reg)

    for tid in tids:
        tracer.switch(tid)
        cell_writes = pixel_cells if tid == 1 else some(cells, 2, 4)
        reg_writes = some(regs, 2, 4)
        tracer.op("boot", writes=cell_writes, reg_writes=reg_writes)
        note_cells(cell_writes)
        note_regs(tid, reg_writes)

    def burst(allow_markers: bool) -> None:
        tid = rng.choice(tids)
        tracer.switch(tid)
        for _ in range(rng.randint(1, 6)):
            roll = rng.random()
            label = f"s{rng.randrange(8)}"
            if roll < 0.45:
                reg_writes = some(regs, 0, 2)
                cell_writes = some(cells, 0, 2)
                tracer.op(
                    label,
                    reads=some(written_cells, 0, 3),
                    writes=cell_writes,
                    reg_reads=some(written_regs[tid], 0, 2),
                    reg_writes=reg_writes,
                )
                note_cells(cell_writes)
                note_regs(tid, reg_writes)
            elif roll < 0.70:
                tracer.compare_and_branch(
                    f"b{rng.randrange(6)}", some(written_cells, 1, 2)
                )
            elif roll < 0.82 and depth[tid] < max_depth:
                tracer.call(f"fn_{rng.randrange(10)}", site=f"c{rng.randrange(6)}")
                depth[tid] += 1
            elif roll < 0.90 and depth[tid] > 0:
                tracer.ret()
                depth[tid] -= 1
            elif roll < 0.96:
                cell_writes = some(cells, 0, 2)
                tracer.syscall(
                    rng.choice(_SYSCALL_NAMES),
                    reads=some(written_cells, 0, 2),
                    writes=cell_writes,
                )
                note_cells(cell_writes)
            elif allow_markers:
                tracer.marker(TILE_MARKER, some(pixel_cells, 1, 4))

    # Prologue activity before the first frame.
    for _ in range(rng.randint(0, 6)):
        burst(allow_markers=False)

    for frame_id in range(n_frames):
        tracer.switch(rng.choice(tids))
        kind = "load" if frame_id == 0 else "update"
        tracer.frame_begin(frame_id, kind)
        rasters = empty_frame_at is None or frame_id != empty_frame_at
        target = len(tracer.store) + records_per_frame
        while len(tracer.store) < target:
            burst(allow_markers=rasters)
        if rasters:
            # Guarantee a non-empty per-frame pixel criterion, seeded
            # from cells something actually wrote.
            tracer.switch(1)
            tracer.op("final_paint", writes=pixel_cells[:4])
            tracer.marker(TILE_MARKER, pixel_cells[:4])
        tracer.frame_end(frame_id)
        # Gap activity between frames (and after the last).
        for _ in range(rng.randint(0, 4)):
            burst(allow_markers=False)

    for tid in tids:
        tracer.switch(tid)
        while depth[tid] > 0:
            tracer.ret()
            depth[tid] -= 1
    return tracer.store


@dataclass(frozen=True)
class InjectedRace:
    """Ground truth for one deliberately unsynchronized access pair."""

    cell: int
    first_index: int
    second_index: int
    first_tid: int
    second_tid: int


def random_sync_trace(
    seed: int,
    target_records: int = 2_500,
    n_threads: int = 4,
    n_locks: int = 3,
    inject_races: int = 0,
) -> Tuple[TraceStore, List[InjectedRace]]:
    """A *well-synchronized* random trace, with optional injected races.

    Unlike :func:`random_trace` (whose threads deliberately share cells
    without any ordering — dense dependences for the slicer differential
    tests), every cross-thread access here is ordered by a sync edge:

    * each thread owns a private cell pool nobody else touches;
    * shared cells are partitioned into lock-guarded groups, only ever
      accessed inside ``lock:acquire``/``lock:release`` sections;
    * message-passing hand-offs write a transfer cell, release a sync
      token, and the consumer acquires the token before reading.

    With ``inject_races=0`` the trace is race-free by construction (the
    detector's false-positive check).  Each injection performs one
    conflicting cross-thread pair on a lock-guarded cell *without* taking
    the lock, separated by a small burst of ordinary activity; the
    returned descriptors are the ground truth for measuring recall.  An
    injection can still be masked by an incidental release/acquire chain
    between its two halves, so measured recall is honest rather than 1.0
    by definition.
    """
    rng = random.Random(seed ^ 0x5CAB)
    tracer = Tracer()
    tids = list(range(1, n_threads + 1))
    tracer.spawn_thread(1, "CrRendererMain", "main_loop")
    for tid in tids[1:]:
        tracer.spawn_thread(tid, f"Worker{tid}", f"worker_loop_{tid}")

    private = {tid: [0x2000 + tid * 0x100 + i for i in range(8)] for tid in tids}
    lock_cells = [0x9000 + j for j in range(n_locks)]
    guarded = {j: [0x4000 + j * 0x10 + i for i in range(4)] for j in range(n_locks)}
    tokens = [0xA000 + j for j in range(n_threads)]
    depth = {tid: 0 for tid in tids}

    # Boot: every thread seeds its private pool; the main thread seeds the
    # guarded groups under their locks.
    for tid in tids:
        tracer.switch(tid)
        tracer.op("boot", writes=tuple(private[tid]))
    tracer.switch(1)
    for j in range(n_locks):
        tracer.lock_acquire(lock_cells[j])
        tracer.op(f"init_group{j}", writes=tuple(guarded[j]))
        tracer.lock_release(lock_cells[j])

    def private_block(tid: int) -> None:
        pool = private[tid]
        for _ in range(rng.randint(1, 4)):
            roll = rng.random()
            if roll < 0.55:
                tracer.op(
                    f"p{rng.randrange(8)}",
                    reads=tuple(rng.sample(pool, k=rng.randint(0, 2))),
                    writes=tuple(rng.sample(pool, k=rng.randint(1, 2))),
                )
            elif roll < 0.75:
                tracer.compare_and_branch(
                    f"b{rng.randrange(6)}", tuple(rng.sample(pool, k=1))
                )
            elif roll < 0.85 and depth[tid] < 4:
                tracer.call(f"fn_{rng.randrange(8)}", site=f"c{rng.randrange(4)}")
                depth[tid] += 1
            elif roll < 0.92 and depth[tid] > 0:
                tracer.ret()
                depth[tid] -= 1
            else:
                tracer.syscall(
                    rng.choice(_SYSCALL_NAMES),
                    reads=tuple(rng.sample(pool, k=1)),
                    writes=tuple(rng.sample(pool, k=1)),
                )

    def critical_section(tid: int) -> None:
        j = rng.randrange(n_locks)
        tracer.lock_acquire(lock_cells[j])
        for _ in range(rng.randint(1, 3)):
            cell = rng.choice(guarded[j])
            tracer.op(f"cs{rng.randrange(8)}", reads=(cell,), writes=(cell,))
        tracer.lock_release(lock_cells[j])

    transfer_counter = [0]

    def hand_off(producer: int) -> None:
        consumer = rng.choice([t for t in tids if t != producer])
        token = tokens[producer - 1]
        # Fresh cell per hand-off: reusing one would need an ack edge back
        # to the producer before its next write (write-after-read).
        transfer = 0x6000 + transfer_counter[0]
        transfer_counter[0] += 1
        tracer.switch(producer)
        tracer.op("produce", writes=(transfer,))
        tracer.sync_release(token)
        tracer.switch(consumer)
        tracer.sync_acquire(token)
        tracer.op("consume", reads=(transfer,), writes=(transfer,))

    def activity_block() -> None:
        tid = rng.choice(tids)
        tracer.switch(tid)
        roll = rng.random()
        if roll < 0.60:
            private_block(tid)
        elif roll < 0.90:
            critical_section(tid)
        else:
            hand_off(tid)

    injected: List[InjectedRace] = []
    inject_at = sorted(
        rng.sample(range(10, max(11, target_records - 50)), k=inject_races)
    )

    def inject() -> None:
        j = rng.randrange(n_locks)
        cell = rng.choice(guarded[j])
        first, second = rng.sample(tids, k=2)
        tracer.switch(first)
        first_index = tracer.op("racy_write", writes=(cell,))
        # A short burst of unrelated activity keeps the pair apart; an
        # unlucky burst can legitimately mask the race via an incidental
        # release/acquire chain involving both threads.
        for _ in range(rng.randint(0, 2)):
            activity_block()
        tracer.switch(second)
        if rng.random() < 0.5:
            second_index = tracer.op("racy_read", reads=(cell,))
        else:
            second_index = tracer.op("racy_write2", writes=(cell,))
        injected.append(
            InjectedRace(
                cell=cell,
                first_index=first_index,
                second_index=second_index,
                first_tid=first,
                second_tid=second,
            )
        )

    while len(tracer.store) < target_records:
        if inject_at and len(tracer.store) >= inject_at[0]:
            inject_at.pop(0)
            inject()
        else:
            activity_block()
    while inject_at:
        inject_at.pop(0)
        inject()

    for tid in tids:
        tracer.switch(tid)
        while depth[tid] > 0:
            tracer.ret()
            depth[tid] -= 1
    return tracer.store, injected


def random_page(seed: int, n_actions: Optional[int] = None) -> Benchmark:
    """A randomized synthetic website plus browsing session.

    Reuses the deterministic content generators behind the bundled
    benchmarks (utility/analytics/lazy-widget JS, a CSS framework with
    dead rules, product grid, nav chrome) with seed-driven proportions.
    """
    rng = random.Random(seed)
    lib_functions = rng.randint(6, 18)
    lib = js_utility_library(
        "fuzzlib",
        n_functions=lib_functions,
        n_used=rng.randint(1, lib_functions),
        seed=seed,
        loop_scale=rng.randint(8, 24),
    )
    widgets = js_lazy_widgets(
        n_widgets=rng.randint(2, 6), n_activated=rng.randint(0, 2)
    )
    grid, images = product_grid(rng, rng.randint(4, 16))
    nav = nav_menu(rng.randint(3, 8), rng)
    used = ("card", "card-title", "card-price", "buy-btn", "nav-list", "nav-item")
    sheet = css_framework("fuzzcss", used, n_extra_rules=rng.randint(5, 40), seed=seed)

    html = f"""<!DOCTYPE html>
<html><head><title>fuzz {seed}</title>
<link rel="stylesheet" href="fuzz.css">
<script src="fuzzlib.js"></script>
<script src="widgets.js"></script>
<script src="metrics.js"></script>
</head><body onload="fuzzlib_init()">
<header>{nav}</header>
<main><p>{lorem(rng, rng.randint(30, 120))}</p>{grid}</main>
{footer_links(rng)}
</body></html>"""

    page = PageSpec(
        url=f"https://fuzz.example/{seed}",
        html=html,
        stylesheets={"fuzz.css": sheet},
        scripts={
            "fuzzlib.js": lib,
            "widgets.js": widgets,
            "metrics.js": js_analytics_library(),
        },
        images=images,
    )
    config = EngineConfig(
        viewport_width=rng.choice((360, 800, 1280)),
        viewport_height=rng.choice((640, 720, 800)),
        raster_threads=rng.randint(1, 2),
        load_animation_ticks=rng.randint(1, 3),
        seed=seed,
    )
    if n_actions is None:
        n_actions = rng.randint(0, 4)
    actions: List[UserAction] = []
    for _ in range(n_actions):
        if rng.random() < 0.6:
            actions.append(
                UserAction(
                    kind="scroll",
                    amount=rng.choice((-300, 200, 400, 600)),
                    think_time_ms=rng.randint(100, 800),
                )
            )
        else:
            actions.append(
                UserAction(
                    kind="click",
                    target_id=f"nav{rng.randrange(3)}",
                    think_time_ms=rng.randint(100, 800),
                )
            )
    return Benchmark(
        name=f"fuzz_{seed}",
        description=f"randomized differential-test page (seed {seed})",
        page=page,
        config=config,
        actions=actions,
    )
