"""The Google Maps benchmark: a tile-canvas, JavaScript-heavy application.

Maps is the most JS-heavy site in the paper's Table I (3.9 MB of JS+CSS,
about half unused at load).  The page is a viewport-filling grid of map
raster tiles, a search box, zoom controls, and a places side panel that
stays hidden until a search happens — which never does in the load-only
benchmark.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..browser import EngineConfig, PageSpec, UserAction
from .base import Benchmark
from .generator import (
    css_framework,
    js_analytics_library,
    js_utility_library,
    lorem,
)

_USED_CLASSES = (
    "app", "map-canvas", "map-tile", "searchbox", "zoom", "zoom-btn",
    "attribution", "side-panel", "place-row",
)


def _maps_page(seed: int = 29) -> PageSpec:
    rng = random.Random(seed)
    cols, rows = 8, 6
    tiles: List[str] = []
    images: Dict[str, int] = {}
    for row in range(rows):
        for col in range(cols):
            url = f"tiles/15-{col}-{row}.png"
            images[url] = rng.randint(7_000, 22_000)
            # Tiles are positioned by JavaScript (as in the real app),
            # so the projection math is load-bearing for pixels.
            tiles.append(
                f'<img class="map-tile" id="tile-{col}-{row}" src="{url}" '
                f'width="256" height="256">'
            )

    side_panel_rows = "".join(
        f'<div class="place-row">{lorem(rng, 4).title()}</div>' for _ in range(12)
    )

    html = f"""<!DOCTYPE html>
<html>
<head>
<title>Google Maps</title>
<link rel="stylesheet" href="maps.css">
</head>
<body class="app">
<input class="searchbox" id="searchbox" type="text"
       style="position:absolute; top:12px; left:12px; z-index:5">
<div class="map-canvas" id="map" style="position:relative; width:2048px; height:1536px">
{''.join(tiles)}
</div>
<div class="zoom" id="zoom" style="position:fixed; top:300px; left:1220px; z-index:6">
  <button class="zoom-btn" id="zoom-in">+</button>
  <button class="zoom-btn" id="zoom-out">-</button>
</div>
<div class="side-panel" id="side-panel" style="display:none">{side_panel_rows}</div>
<div class="attribution" id="attribution">Map data (c) reproduction</div>
<script src="maps_core.js"></script>
<script src="maps_vector.js"></script>
<script src="maps_places.js"></script>
<script src="app.js"></script>
<script src="metrics.js"></script>
</body>
</html>"""

    maps_core = js_utility_library("gmcore", 80, 30, seed=seed + 1, loop_scale=20)
    maps_vector = js_utility_library("gmvec", 56, 24, seed=seed + 2, loop_scale=16)
    maps_places = js_utility_library("gmplaces", 60, 26, seed=seed + 3, loop_scale=14)

    app_js = f"""
// map bootstrap: project tile coordinates and position the grid
gmcore_init();
gmvec_init();
gmplaces_init();
// Projection calibration derives from the core/vector library warm-up, so
// the rendering genuinely depends on the framework results (Maps is a
// true JavaScript application; its main thread is the most useful in the
// paper's Table II).
var map_state = {{
    zoom: 15, centerX: 0, centerY: 0, tilesPlaced: 0,
    calib: (gmcore_registry.checksum + gmvec_registry.checksum) % 1
}};
function project(col, row) {{
    var worldX = col * 256 + map_state.centerX * 256 + map_state.calib;
    var worldY = row * 256 + map_state.centerY * 256 + map_state.calib;
    return {{ x: worldX, y: worldY }};
}}
function place_tiles() {{
    for (var row = 0; row < {rows}; row++) {{
        for (var col = 0; col < {cols}; col++) {{
            var pt = project(col, row);
            var tile = document.getElementById('tile-' + col + '-' + row);
            if (tile) {{
                tile.style.position = 'absolute';
                tile.style.left = '' + pt.x + 'px';
                tile.style.top = '' + pt.y + 'px';
                map_state.tilesPlaced += 1;
            }}
        }}
    }}
}}
place_tiles();
var attribution = document.getElementById('attribution');
attribution.textContent = 'Map data rendered at zoom ' + map_state.zoom
    + ' (' + map_state.tilesPlaced + ' tiles)';
function pan_to(cx, cy) {{
    map_state.centerX = cx;
    map_state.centerY = cy;
    place_tiles();
}}
document.getElementById('zoom-in').addEventListener('click', function(e) {{
    map_state.zoom += 1;
    var reproj = gmvec_util30 ? 0 : 0;
    gmvec_util25(map_state.zoom, 3);
    gmvec_util26(map_state.zoom, 5);
    gmplaces_util30(map_state.zoom, 2);
    gmplaces_util31(map_state.zoom, 4);
    place_tiles();
    metrics_track('zoom');
}});
document.getElementById('searchbox').addEventListener('input', function(e) {{
    var results = gmplaces_util0(map_state.zoom, 7);
    metrics_track('searchkey');
}});
"""

    css = "\n".join(
        (
            css_framework("gm", list(_USED_CLASSES), n_extra_rules=70, seed=seed + 4,
                          palette=("#ffffff", "#e8eaed", "#1a73e8", "#34a853")),
            """
.app { margin: 0; background-color: #e8eaed; }
.searchbox { width: 360px; height: 44px; background-color: #ffffff; }
.map-tile { width: 256px; height: 256px; }
.zoom-btn { width: 40px; height: 40px; background-color: #ffffff; }
.attribution { font-size: 10px; color: #5f6368; }
.side-panel { width: 380px; background-color: #ffffff; }
.place-row { height: 48px; border-width: 1px; }
.gm-unused-transit { width: 300px; height: 80px; background-color: #ea4335; }
.gm-unused-street-view { width: 64px; height: 64px; background-color: #fbbc04; }
""",
        )
    )

    return PageSpec(
        url="https://maps.google.com/",
        html=html,
        stylesheets={"maps.css": css},
        scripts={
            "maps_core.js": maps_core,
            "maps_vector.js": maps_vector,
            "maps_places.js": maps_places,
            "app.js": app_js,
            "metrics.js": js_analytics_library("metrics", beacon_every=10),
        },
        images=images,
    )


def google_maps() -> Benchmark:
    """Google Maps, load only (paper Table II column 3)."""
    return Benchmark(
        name="google_maps",
        description="Google Maps: Load",
        page=_maps_page(),
        config=EngineConfig(
            viewport_width=1280,
            viewport_height=800,
            raster_threads=2,
            interest_margin=320,
            load_animation_ticks=90,
            seed=29,
        ),
    )


def maps_browse_actions() -> List[UserAction]:
    """A short Maps session for the Table I load+browse row."""
    return [
        UserAction(kind="scroll", amount=250, think_time_ms=800),
        UserAction(kind="click", target_id="zoom-in", think_time_ms=900),
        UserAction(kind="type", target_id="searchbox", text="cafe", think_time_ms=700),
        UserAction(kind="click", target_id="zoom-in", think_time_ms=600),
    ]


def google_maps_browse() -> Benchmark:
    """Google Maps with a browse session; downloads more JS while browsing."""
    base = google_maps()
    late = js_utility_library("gmtraffic", 40, 8, seed=31, loop_scale=18)
    return Benchmark(
        name="google_maps_browse",
        description="Google Maps: Load + Browse",
        page=base.page,
        config=base.config,
        actions=maps_browse_actions(),
        late_scripts={1: {"maps_traffic.js": late + "\ngmtraffic_init();"}},
    )
