"""The Amazon benchmarks: desktop and emulated-mobile views.

Desktop: a content-heavy storefront — navigation chrome with hidden
dropdowns, a three-slide hero carousel whose back slides are opaque,
stacked, and therefore occluded (Chromium still rasterizes their backing
stores), a large product grid with images, deal strips, and a link-farm
footer below the first view.  Three rasterizer threads, as the paper
observed for this site.

Mobile: the same storefront in the 360x640 emulated viewport with a much
simpler first view (the paper notes the mobile trace is less than half the
desktop one, and the rasterizers' work barely shows on the few pixels).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..browser import EngineConfig, PageSpec, UserAction
from .base import Benchmark
from .generator import (
    css_framework,
    footer_links,
    js_analytics_library,
    js_lazy_widgets,
    js_utility_library,
    lorem,
    nav_menu,
    product_grid,
)

_USED_CLASSES = (
    "page", "header", "logo", "searchbar", "nav-list", "nav-item", "hero",
    "slide", "card", "card-title", "card-price", "buy-btn", "deals",
    "deal-item", "footer", "footer-col", "footer-link", "submenu",
    "submenu-item", "content",
)


def _carousel(rng: random.Random, n_slides: int = 3) -> str:
    """Hero carousel: opaque slides stacked with decreasing z-index."""
    slides: List[str] = []
    colors = ("#232f3e", "#37475a", "#131921")
    for i in range(n_slides):
        slides.append(
            f'<div class="slide" id="slide{i}" '
            f'style="position:absolute; top:0px; left:0px; width:100%; height:280px; '
            f'z-index:{n_slides - i}; background-color:{colors[i % len(colors)]}">'
            f"<h2>{lorem(rng, 5).title()}</h2>"
            f"<p>{lorem(rng, 12)}</p></div>"
        )
    return (
        '<div class="hero" id="carousel" style="position:relative; height:280px">'
        + "".join(slides)
        + '<button id="carousel-next" class="buy-btn">Next</button></div>'
    )


def _amazon_page(
    *,
    mobile: bool,
    n_products: int,
    n_nav: int,
    lib_scale: Tuple[int, int],
    seed: int = 11,
) -> PageSpec:
    rng = random.Random(seed)
    grid, images = product_grid(rng, n_products, card_class="card")
    view = "mobile" if mobile else "desktop"

    hidden_modal = (
        '<div id="signin-modal" class="submenu" style="display:none">'
        + "".join(f"<p>{lorem(rng, 10)}</p>" for _ in range(4))
        + "</div>"
    )

    deals = "".join(
        f'<span class="deal-item" id="deal{i}">{lorem(rng, 3).title()}</span>'
        for i in range(4 if mobile else 10)
    )

    html = f"""<!DOCTYPE html>
<html>
<head>
<title>Amazon ({view} view)</title>
<link rel="stylesheet" href="framework.css">
<link rel="stylesheet" href="site.css">
</head>
<body class="page">
<div class="header" id="header">
  <span class="logo" id="logo">amazon</span>
  <input class="searchbar" id="search-input" type="text">
  {nav_menu(n_nav, rng, hidden_submenus=3)}
</div>
{_carousel(rng)}
<div class="deals" id="deals">{deals}</div>
<div class="content" id="grid">
{grid}
</div>
{hidden_modal}
{footer_links(rng, n_columns=2 if mobile else 4)}
<script src="jslib.js"></script>
<script src="app.js"></script>
<script src="metrics.js"></script>
</body>
</html>"""

    n_fns, n_used = lib_scale
    jslib = "\n".join(
        (
            js_utility_library("aui", n_fns, n_used, seed=seed + 1),
            js_utility_library("p13n", n_fns // 2, n_used, seed=seed + 2),
            js_lazy_widgets(n_widgets=6 if mobile else 18, n_activated=2),
        )
    )

    app_js = f"""
// storefront bootstrap
aui_init();
p13n_init();
// Personalized deal strip: rendered client-side, like the real thing.
var deal_count = {4 if mobile else 10};
for (var d = 0; d < deal_count; d++) {{
    var deal = document.getElementById('deal' + d);
    if (deal) {{
        var pct = (d * 7 + aui_registry.checksum + aui_util0(d + 1, 7)) % 40 + 10;
        deal.textContent = 'Deal ' + (d + 1) + ': save ' + pct + '%';
    }}
}}
// Client-side price badges on the first grid row.
for (var b = 0; b < 4; b++) {{
    var badge = document.getElementById('prod' + b);
    if (badge) {{
        badge.setAttribute('data-badge', 'bestseller');
    }}
}}
// Mobile storefront renders card titles client-side.
var grid_size_titles = {n_products};
var render_titles = {'true' if mobile else 'false'};
if (render_titles) {{
    for (var t = 0; t < grid_size_titles; t++) {{
        var card = document.getElementById('prod' + t);
        if (card) {{
            var price = aui_util1(t + 2, 11) % 90 + 9;
            var label = card.querySelector('.card-title');
            if (label) {{
                label.textContent = 'Item ' + (t + 1) + ' - $' + price;
            }}
        }}
    }}
}}
var carousel_state = {{ current: 0, slides: 3 }};
function carousel_show(index) {{
    for (var i = 0; i < carousel_state.slides; i++) {{
        var slide = document.getElementById('slide' + i);
        if (i === index) {{
            slide.style.zIndex = '5';
        }} else {{
            slide.style.zIndex = '' + (carousel_state.slides - i);
        }}
    }}
    carousel_state.current = index;
}}
carousel_show(0);
document.getElementById('carousel-next').addEventListener('click', function(e) {{
    var next = (carousel_state.current + 1) % carousel_state.slides;
    carousel_show(next);
    metrics_track('carousel');
}});
var menu_open = false;
document.getElementById('nav0').addEventListener('click', function(e) {{
    var menu = document.getElementById('submenu0');
    menu_open = !menu_open;
    menu.style.display = menu_open ? 'block' : 'none';
    metrics_track('menu');
}});
// Register buy buttons (handlers compiled, never clicked at load).
var grid_size = {n_products};
for (var p = 0; p < grid_size; p++) {{
    (function(idx) {{
        var btn = document.getElementById('prod' + idx + '-buy');
        if (btn) {{
            btn.addEventListener('click', function(e) {{
                metrics_track('buy' + idx);
            }});
        }}
    }})(p);
}}
"""

    used = list(_USED_CLASSES)
    css = css_framework(
        "aui", used, n_extra_rules=40 if mobile else 110, seed=seed + 3
    )
    site_css = f"""
.page {{ margin: 0; background-color: #ffffff; }}
.header {{ width: 100%; height: {50 if mobile else 60}px; background-color: #131921; color: white; }}
.searchbar {{ width: {180 if mobile else 600}px; height: 36px; background-color: #ffffff; }}
.nav-item {{ display: inline; color: white; padding: 6px; }}
.card {{ display: inline-block; width: {150 if mobile else 220}px;
        height: {210 if mobile else 300}px;
        background-color: #ffffff; margin: 8px; border-width: 1px; }}
.footer-col {{ display: inline-block; width: 220px; }}
.card-title {{ font-size: 14px; color: #0f1111; }}
.card-price {{ font-size: 18px; color: #b12704; font-weight: bold; }}
.deal-item {{ display: inline; background-color: #eaeded; padding: 8px; margin: 4px; }}
.footer {{ background-color: #232f3e; color: white; }}
.footer-link {{ color: #dddddd; font-size: 12px; }}
.unused-promo-banner {{ width: 980px; height: 90px; background-color: #febd69; }}
.unused-prime-badge {{ width: 52px; height: 20px; background-color: #00a8e1; }}
"""

    return PageSpec(
        url=f"https://www.amazon.com/?view={view}",
        html=html,
        stylesheets={"framework.css": css, "site.css": site_css},
        scripts={
            "jslib.js": jslib,
            "app.js": app_js,
            "metrics.js": js_analytics_library("metrics", beacon_every=8),
        },
        images=images,
    )


def amazon_desktop() -> Benchmark:
    """Amazon in desktop view, load only (paper Table II column 1)."""
    return Benchmark(
        name="amazon_desktop",
        description="Amazon (desktop view): Load",
        page=_amazon_page(
            mobile=False, n_products=22, n_nav=10, lib_scale=(84, 32)
        ),
        config=EngineConfig(
            viewport_width=1280,
            viewport_height=800,
            raster_threads=3,
            interest_margin=512,
            load_animation_ticks=110,
            seed=11,
        ),
    )


def amazon_mobile() -> Benchmark:
    """Amazon in emulated mobile view (360x640), load only."""
    return Benchmark(
        name="amazon_mobile",
        description="Amazon (mobile view): Load",
        page=_amazon_page(
            mobile=True, n_products=10, n_nav=5, lib_scale=(44, 24), seed=13
        ),
        config=EngineConfig(
            viewport_width=360,
            viewport_height=640,
            raster_threads=2,
            interest_margin=1600,
            raster_low_res=True,
            load_animation_ticks=70,
            seed=13,
        ),
    )


def amazon_browse_actions() -> List[UserAction]:
    """The Figure 2 session: scroll down/up, two photo-roll clicks, menu."""
    return [
        UserAction(kind="scroll", amount=400, think_time_ms=900),
        UserAction(kind="scroll", amount=300, think_time_ms=600),
        UserAction(kind="scroll", amount=-700, think_time_ms=800),
        UserAction(kind="click", target_id="carousel-next", think_time_ms=1200),
        UserAction(kind="click", target_id="carousel-next", think_time_ms=900),
        UserAction(kind="click", target_id="nav0", think_time_ms=1100),
    ]


def amazon_desktop_browse() -> Benchmark:
    """Amazon desktop with the Figure 2 browsing session (Table I row)."""
    base = amazon_desktop()
    return Benchmark(
        name="amazon_desktop_browse",
        description="Amazon (desktop view): Load + Browse",
        page=base.page,
        config=base.config,
        actions=amazon_browse_actions(),
    )
