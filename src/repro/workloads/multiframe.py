"""Multi-frame workloads for the incremental frame pipeline.

Unlike the paper's four load-centric benchmarks, these pages keep
rendering after the first frame: a JS-timer ticker rewrites one line of
text, a live feed appends and retires story items, and a scroll sequence
pans through a long article.  Each produces a trace with many frame
epochs, which the cross-frame redundancy profiler
(:mod:`repro.profiler.redundancy`) compares frame-by-frame to measure how
much steady-state work merely reproduces the previous frame's values.
"""

from __future__ import annotations

import random
from typing import List

from ..browser import EngineConfig, PageSpec, UserAction
from .base import Benchmark
from .generator import css_framework, lorem

_TICKER_CLASSES = ("masthead", "clock", "story", "footer")


def _ticker_page(n_ticks: int = 8, seed: int = 71) -> PageSpec:
    rng = random.Random(seed)
    stories = "".join(
        f'<p class="story">{lorem(rng, 40)}</p>' for _ in range(20)
    )
    html = f"""<!DOCTYPE html>
<html>
<head>
<title>Ticker</title>
<link rel="stylesheet" href="ticker.css">
</head>
<body>
<div class="masthead" id="masthead">{lorem(rng, 6).title()}</div>
<div class="clock" id="clock">tick -</div>
{stories}
<div class="footer" id="footer">{lorem(rng, 10)}</div>
<script src="ticker.js"></script>
</body>
</html>"""

    ticker_js = f"""
// A clock widget: a setTimeout chain rewrites one line of text.  The
// page around it never changes, so every frame after the first is a
// probe of how much of the pipeline re-runs for a one-element update.
var count = 0;
function tick() {{
    var clock = document.getElementById('clock');
    clock.textContent = 'tick ' + count;
    count = count + 1;
    if (count < {n_ticks}) {{
        setTimeout(tick, 50);
    }}
}}
setTimeout(tick, 50);
"""

    css = "\n".join(
        (
            css_framework("ticker", list(_TICKER_CLASSES), n_extra_rules=12, seed=seed + 1),
            """
body { margin: 0; background-color: #ffffff; }
.masthead { height: 60px; background-color: #1a1a2e; color: #ffffff; font-size: 22px; }
.clock { width: 320px; height: 40px; background-color: #f0f0f4; font-size: 18px; }
.story { font-size: 14px; line-height: 20px; color: #202122; }
.footer { height: 48px; background-color: #e8e8ee; font-size: 12px; }
""",
        )
    )

    return PageSpec(
        url="https://ticker.example/",
        html=html,
        stylesheets={"ticker.css": css},
        scripts={"ticker.js": ticker_js},
    )


def ticker() -> Benchmark:
    """JS-timer ticker: one text line updates every 50 ms."""
    return Benchmark(
        name="ticker",
        description="Ticker: JS-timer text updates",
        page=_ticker_page(),
        config=EngineConfig(
            viewport_width=1024,
            viewport_height=768,
            raster_threads=2,
            load_animation_ticks=6,
            seed=71,
        ),
    )


_FEED_CLASSES = ("feed", "feed-item", "sidebar", "banner", "archive", "archive-item")


def _livefeed_page(n_stories: int = 10, keep: int = 5, seed: int = 73) -> PageSpec:
    rng = random.Random(seed)
    seed_items = "".join(
        f'<div class="feed-item">seeded story: {lorem(rng, 10)}</div>'
        for _ in range(keep)
    )
    archive = "".join(
        f'<p class="archive-item">{lorem(rng, 25)}</p>' for _ in range(8)
    )
    html = f"""<!DOCTYPE html>
<html>
<head>
<title>Live feed</title>
<link rel="stylesheet" href="feed.css">
</head>
<body>
<div class="banner" id="banner">{lorem(rng, 8).title()}</div>
<div class="feed" id="feed">{seed_items}</div>
<div class="sidebar" id="sidebar">{lorem(rng, 30)}</div>
<div class="archive" id="archive">{archive}</div>
<script src="feed.js"></script>
</body>
</html>"""

    feed_js = f"""
// A live feed: each timer tick builds a story off-screen (the detached
// subtree is mutated before insertion), appends it, and retires the
// oldest so {keep} stay showing.
var n = 0;
function feedTick() {{
    var feed = document.getElementById('feed');
    var item = document.createElement('div');
    item.setAttribute('class', 'feed-item');
    item.textContent = 'story ' + n + ': breaking update';
    feed.appendChild(item);
    feed.removeChild(feed.children[0]);
    n = n + 1;
    if (n < {n_stories}) {{
        setTimeout(feedTick, 60);
    }}
}}
setTimeout(feedTick, 60);
"""

    css = "\n".join(
        (
            css_framework("feed", list(_FEED_CLASSES), n_extra_rules=12, seed=seed + 1),
            """
body { margin: 0; background-color: #fafafa; }
.banner { height: 56px; background-color: #b71c1c; color: #ffffff; font-size: 20px; }
.feed { width: 640px; height: 420px; background-color: #ffffff; }
.feed-item { height: 64px; background-color: #f5f5f5; font-size: 14px; }
.sidebar { width: 300px; background-color: #eeeeee; font-size: 13px; }
""",
        )
    )

    return PageSpec(
        url="https://livefeed.example/",
        html=html,
        stylesheets={"feed.css": css},
        scripts={"feed.js": feed_js},
    )


def livefeed() -> Benchmark:
    """DOM-mutating live feed: items appended and retired on a timer."""
    return Benchmark(
        name="livefeed",
        description="Live feed: DOM append/remove updates",
        page=_livefeed_page(),
        config=EngineConfig(
            viewport_width=1024,
            viewport_height=768,
            raster_threads=2,
            load_animation_ticks=6,
            seed=73,
        ),
    )


_SCROLL_CLASSES = ("chapter", "heading", "para")


def _scrollseq_page(n_chapters: int = 12, seed: int = 79) -> PageSpec:
    rng = random.Random(seed)
    chapters: List[str] = []
    for index in range(n_chapters):
        paras = "".join(
            f'<p class="para">{lorem(rng, 50)}</p>' for _ in range(3)
        )
        chapters.append(
            f'<div class="chapter"><h2 class="heading">Chapter {index + 1}</h2>{paras}</div>'
        )
    html = f"""<!DOCTYPE html>
<html>
<head>
<title>Scroll sequence</title>
<link rel="stylesheet" href="scroll.css">
</head>
<body>
{''.join(chapters)}
</body>
</html>"""

    css = "\n".join(
        (
            css_framework("scroll", list(_SCROLL_CLASSES), n_extra_rules=10, seed=seed + 1),
            """
body { margin: 0; background-color: #ffffff; }
.chapter { width: 80%; }
.heading { font-size: 24px; color: #111111; }
.para { font-size: 14px; line-height: 21px; color: #202122; }
""",
        )
    )

    return PageSpec(
        url="https://scrollseq.example/long-read",
        html=html,
        stylesheets={"scroll.css": css},
    )


def scrollseq_actions() -> List[UserAction]:
    """Pan down the article in tile-sized steps, then flick back up."""
    return [
        UserAction(kind="scroll", amount=500, think_time_ms=800),
        UserAction(kind="scroll", amount=500, think_time_ms=700),
        UserAction(kind="scroll", amount=500, think_time_ms=700),
        UserAction(kind="scroll", amount=-800, think_time_ms=900),
    ]


def scrollseq() -> Benchmark:
    """Scroll sequence: compositor-thread frames over a static page."""
    return Benchmark(
        name="scrollseq",
        description="Scroll sequence: compositor pans",
        page=_scrollseq_page(),
        config=EngineConfig(
            viewport_width=1024,
            viewport_height=768,
            raster_threads=2,
            interest_margin=256,
            load_animation_ticks=6,
            action_animation_ticks=2,
            seed=79,
        ),
        actions=scrollseq_actions(),
    )
