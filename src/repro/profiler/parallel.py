"""Parallel epoch-sharded backward slicer.

The sequential backward pass (:mod:`.slicer`) walks the whole trace from
the end to the beginning carrying four pieces of state: the shared live
memory set, per-thread live registers, per-thread pending branches, and
per-thread reconstructed frame stacks.  That state only ever flows
*backward* (from higher record indices to lower ones), which makes the
pass shardable with the standard parallel-dataflow recipe:

1. split the trace into fixed-size **epochs** ``[lo, hi)``;
2. run the liveness/pending-branch pass over every epoch concurrently in
   worker processes, each starting from its current guess of the
   **entry frontier** — the slicer state in force just after record
   ``hi - 1`` (produced by the successor epoch);
3. propagate each epoch's **exit frontier** (state just before ``lo``)
   into its predecessor and iterate until the frontiers stabilize.

Because epoch ``E-1`` (the trace tail) has the true (empty) entry
frontier from round one, stability implies every epoch ran with its
exact frontier, so the fixpoint equals the sequential result — the
equivalence argument is spelled out in ``docs/parallel-slicing.md`` and
enforced by ``tests/profiler/test_differential.py`` against both the
sequential engine and the :mod:`.oracle` reference slicer.

Two ingredients make the iteration converge in close to one parallel
round instead of one round per epoch:

* **Delta pass-through.**  When an epoch's entry frontier only *gains*
  live cells / registers / pending branches that the epoch never writes
  (resp. branches on), its previous run is still valid: the additions
  would simply have flowed through untouched.  The scheduler detects
  this from cheap per-epoch static summaries and augments the recorded
  exit frontier without re-running the epoch.  In real traces most
  convergence traffic is exactly this kind of pass-through (a late
  epoch's live-in cells were written near the trace start).
* **Compact frontiers.**  :class:`SliceFrontier` serializes to a flat
  ``struct``-packed byte string (also used for pickling), so shipping
  frontiers to workers and comparing successive frontiers is cheap.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..trace.records import InstrKind, TraceRecord
from ..trace.store import TraceStore, epoch_bounds
from .cdg import ControlDependenceIndex
from .criteria import SlicingCriteria
from .slicer import (
    DEFAULT_OPTIONS,
    SliceResult,
    SlicerOptions,
    TimelineSample,
)

#: A reconstructed frame in a frontier: (fn, ret_index or -1, needed, is_root).
FrameTuple = Tuple[int, int, int, int]

#: Below this epoch size the scheduling overhead dwarfs the pass itself.
MIN_EPOCH_SIZE = 64

#: Epochs per worker.  More epochs expose more parallelism but lengthen
#: the exactness ripple (the frontier chain is refined one epoch per
#: round when pass-through fails), so total work grows with the epoch
#: count; 2 per worker measured best on the bundled workloads.
EPOCHS_PER_WORKER = 2


# --------------------------------------------------------------------- #
# Frontiers                                                             #
# --------------------------------------------------------------------- #

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_TID_COUNT = struct.Struct("<IH")
_FRAME = struct.Struct("<IqBB")


@dataclass(frozen=True)
class SliceFrontier:
    """Slicer state crossing an epoch boundary (one dataflow fact set).

    All collections are stored in canonical sorted form so that two
    frontiers holding the same facts compare equal and serialize to the
    same bytes.

    Attributes:
        live_mem: live memory cells (shared across threads).
        live_regs: per-thread live architectural registers.
        pending: per-thread pending branch pcs.
        stacks: per-thread reconstructed frame stacks, bottom to top.
            Each frame is ``(fn, ret_index, needed, is_root)`` with
            ``ret_index == -1`` for frames whose RET lies outside the
            trace (truncated or synthetic root frames).
    """

    live_mem: Tuple[int, ...] = ()
    live_regs: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
    pending: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
    stacks: Tuple[Tuple[int, Tuple[FrameTuple, ...]], ...] = ()

    @staticmethod
    def empty() -> "SliceFrontier":
        return _EMPTY_FRONTIER

    @staticmethod
    def from_state(
        live_mem: Set[int],
        live_regs: Dict[int, Set[int]],
        pending: Dict[int, Set[int]],
        stacks: Dict[int, List["_Frame"]],
    ) -> "SliceFrontier":
        """Canonicalize mutable slicer state into a frontier."""
        return SliceFrontier(
            live_mem=tuple(sorted(live_mem)),
            live_regs=tuple(
                (tid, tuple(sorted(regs)))
                for tid, regs in sorted(live_regs.items())
                if regs
            ),
            pending=tuple(
                (tid, tuple(sorted(pcs)))
                for tid, pcs in sorted(pending.items())
                if pcs
            ),
            stacks=tuple(
                (
                    tid,
                    tuple(
                        (
                            f.fn,
                            -1 if f.ret_index is None else f.ret_index,
                            int(f.needed),
                            int(f.is_root),
                        )
                        for f in stack
                    ),
                )
                for tid, stack in sorted(stacks.items())
                if stack
            ),
        )

    # -- compact serialization (also used for pickling) ---------------- #

    def to_bytes(self) -> bytes:
        chunks: List[bytes] = [_U32.pack(len(self.live_mem))]
        chunks.extend(_U64.pack(cell) for cell in self.live_mem)
        for group in (self.live_regs, self.pending):
            chunks.append(_U32.pack(len(group)))
            for tid, values in group:
                chunks.append(_TID_COUNT.pack(tid, len(values)))
                chunks.extend(_U64.pack(v) for v in values)
        chunks.append(_U32.pack(len(self.stacks)))
        for tid, frames in self.stacks:
            chunks.append(_TID_COUNT.pack(tid, len(frames)))
            chunks.extend(_FRAME.pack(*frame) for frame in frames)
        return b"".join(chunks)

    @staticmethod
    def from_bytes(data: bytes) -> "SliceFrontier":
        pos = 0

        def take(st: struct.Struct):
            nonlocal pos
            values = st.unpack_from(data, pos)
            pos += st.size
            return values

        (n_mem,) = take(_U32)
        live_mem = tuple(take(_U64)[0] for _ in range(n_mem))
        groups: List[Tuple[Tuple[int, Tuple[int, ...]], ...]] = []
        for _ in range(2):
            (n_tids,) = take(_U32)
            entries = []
            for _ in range(n_tids):
                tid, count = take(_TID_COUNT)
                entries.append((tid, tuple(take(_U64)[0] for _ in range(count))))
            groups.append(tuple(entries))
        (n_stacks,) = take(_U32)
        stacks = []
        for _ in range(n_stacks):
            tid, depth = take(_TID_COUNT)
            stacks.append((tid, tuple(take(_FRAME) for _ in range(depth))))
        return SliceFrontier(
            live_mem=live_mem,
            live_regs=groups[0],
            pending=groups[1],
            stacks=tuple(stacks),
        )

    def __reduce__(self):
        return (SliceFrontier.from_bytes, (self.to_bytes(),))


_EMPTY_FRONTIER = SliceFrontier()


class _Frame:
    """Mutable frame used while running an epoch (mirrors the sequential
    slicer's ``_BackwardFrame``, plus frontier round-tripping)."""

    __slots__ = ("fn", "ret_index", "needed", "is_root")

    def __init__(
        self,
        fn: int,
        ret_index: Optional[int],
        needed: bool = False,
        is_root: bool = False,
    ) -> None:
        self.fn = fn
        self.ret_index = ret_index
        self.needed = needed
        self.is_root = is_root

    @staticmethod
    def from_tuple(t: FrameTuple) -> "_Frame":
        fn, ret_index, needed, is_root = t
        return _Frame(fn, None if ret_index < 0 else ret_index, bool(needed), bool(is_root))


# --------------------------------------------------------------------- #
# Epoch transfer function                                               #
# --------------------------------------------------------------------- #


@dataclass
class EpochResult:
    """Output of running the backward pass over one epoch."""

    #: flags for records [lo, hi), epoch-relative
    flags: bytes
    #: (ret_index, callee fn) pairs to flag retroactively at indices >= hi
    extra: Tuple[Tuple[int, int], ...]
    #: slicer state just before record ``lo`` (the exit frontier)
    frontier: SliceFrontier
    #: per-tid minimum stack depth reached; frames below this depth
    #: survived the epoch untouched (needed-bit OR pass-through is safe)
    min_depth: Dict[int, int]
    #: join reasons (absolute record indices) when tracking was requested
    reasons: Optional[Dict[int, Tuple[str, int]]] = None


@dataclass
class EpochSummary:
    """Static (frontier-independent) facts about an epoch, used by the
    scheduler's delta pass-through test."""

    mem_written: Set[int] = field(default_factory=set)
    regs_written: Dict[int, Set[int]] = field(default_factory=dict)
    branch_pcs: Dict[int, Set[int]] = field(default_factory=dict)
    tids: Set[int] = field(default_factory=set)


def summarize_epoch(records: Sequence[TraceRecord], lo: int, hi: int) -> EpochSummary:
    """Collect the write/branch footprint of records ``[lo, hi)``.

    RET records are excluded: they never take part in the liveness rule
    (the backward pass skips them before the gen/kill step).
    """
    summary = EpochSummary()
    ret = InstrKind.RET
    branch = InstrKind.BRANCH
    for i in range(lo, hi):
        rec = records[i]
        tid = rec.tid
        summary.tids.add(tid)
        kind = rec.kind
        if kind == ret:
            continue
        if rec.mem_written:
            summary.mem_written.update(rec.mem_written)
        if rec.regs_written:
            summary.regs_written.setdefault(tid, set()).update(rec.regs_written)
        if kind == branch:
            summary.branch_pcs.setdefault(tid, set()).add(rec.pc)
    return summary


def run_epoch(
    records: Sequence[TraceRecord],
    lo: int,
    hi: int,
    frontier: SliceFrontier,
    crit_by_index: Dict[int, "object"],
    include_syscalls: bool,
    window_end: Optional[int],
    deps_of,
    options: SlicerOptions = DEFAULT_OPTIONS,
) -> EpochResult:
    """Run the backward pass over records ``[lo, hi)`` from ``frontier``.

    This is the per-record algorithm of :class:`.slicer.BackwardSlicer`
    restricted to one epoch: identical join rules, identical gen/kill
    order, identical frame reconstruction.  The only differences are the
    seeded entry state and that retroactive RET flags beyond ``hi`` are
    reported in ``extra`` instead of being written directly.
    """
    flags = bytearray(hi - lo)
    extra: List[Tuple[int, int]] = []
    live_mem: Set[int] = set(frontier.live_mem)
    live_regs: Dict[int, Set[int]] = {tid: set(v) for tid, v in frontier.live_regs}
    pending: Dict[int, Set[int]] = {tid: set(v) for tid, v in frontier.pending}
    stacks: Dict[int, List[_Frame]] = {
        tid: [_Frame.from_tuple(f) for f in frames] for tid, frames in frontier.stacks
    }
    min_depth: Dict[int, int] = {tid: len(stack) for tid, stack in stacks.items()}
    reasons: Optional[Dict[int, Tuple[str, int]]] = (
        {} if options.track_reasons else None
    )
    call_site_dependences = options.call_site_dependences

    RET = InstrKind.RET
    CALL = InstrKind.CALL
    BRANCH = InstrKind.BRANCH
    SYSCALL = InstrKind.SYSCALL

    for i in range(hi - 1, lo - 1, -1):
        rec = records[i]
        tid = rec.tid

        crit = crit_by_index.get(i)
        if crit is not None:
            live_mem.update(crit.cells)
            for reg_tid, reg in crit.regs:
                live_regs.setdefault(reg_tid, set()).add(reg)

        stack = stacks.get(tid)
        if stack is None:
            stack = stacks[tid] = []
            min_depth[tid] = 0
        kind = rec.kind
        if kind == RET:
            stack.append(_Frame(rec.fn, ret_index=i))
            continue

        if not stack:
            stack.append(_Frame(rec.fn, ret_index=None, is_root=True))
        elif stack[-1].fn != rec.fn and kind != CALL:
            stack.append(_Frame(rec.fn, ret_index=None, is_root=True))

        frame = stack[-1]
        tregs = live_regs.get(tid)
        tpending = pending.get(tid)

        in_slice = False
        reason: Tuple[str, int] = ("data", -1)

        if kind == CALL:
            callee: Optional[_Frame] = None
            if stack and (not stack[-1].is_root or stack[-1].fn != rec.fn):
                callee = stack.pop()
                if len(stack) < min_depth.get(tid, 0):
                    min_depth[tid] = len(stack)
            if callee is not None and callee.needed and call_site_dependences:
                in_slice = True
                reason = ("call", callee.fn)
                ret_index = callee.ret_index
                if ret_index is not None:
                    if ret_index >= hi:
                        extra.append((ret_index, callee.fn))
                    elif not flags[ret_index - lo]:
                        flags[ret_index - lo] = 1
                        if reasons is not None:
                            reasons[ret_index] = ("call", callee.fn)
            if not stack:
                stack.append(_Frame(rec.fn, ret_index=None, is_root=True))
            frame = stack[-1]
        elif kind == BRANCH:
            if tpending and rec.pc in tpending:
                in_slice = True
                reason = ("control", rec.pc)
                tpending.discard(rec.pc)
        elif kind == SYSCALL:
            if include_syscalls and (window_end is None or i <= window_end):
                in_slice = True
                reason = ("syscall", rec.syscall or 0)

        if not in_slice:
            for addr in rec.mem_written:
                if addr in live_mem:
                    in_slice = True
                    reason = ("data", addr)
                    break
            if not in_slice and tregs:
                for reg in rec.regs_written:
                    if reg in tregs:
                        in_slice = True
                        reason = ("register", reg)
                        break

        if in_slice:
            if rec.mem_written:
                live_mem.difference_update(rec.mem_written)
            if rec.regs_written:
                if tregs is None:
                    tregs = live_regs.setdefault(tid, set())
                tregs.difference_update(rec.regs_written)
            if rec.mem_read:
                live_mem.update(rec.mem_read)
            if rec.regs_read:
                if tregs is None:
                    tregs = live_regs.setdefault(tid, set())
                tregs.update(rec.regs_read)
            cdeps = deps_of(rec.pc)
            if cdeps:
                if tpending is None:
                    tpending = pending.setdefault(tid, set())
                tpending.update(cdeps)
            frame.needed = True
            if reasons is not None:
                reasons[i] = reason
            if not flags[i - lo]:
                flags[i - lo] = 1

    return EpochResult(
        flags=bytes(flags),
        extra=tuple(extra),
        frontier=SliceFrontier.from_state(live_mem, live_regs, pending, stacks),
        min_depth=min_depth,
        reasons=reasons,
    )


# --------------------------------------------------------------------- #
# Delta pass-through                                                    #
# --------------------------------------------------------------------- #


def _as_dict(pairs: Tuple[Tuple[int, Tuple[int, ...]], ...]) -> Dict[int, Set[int]]:
    return {tid: set(values) for tid, values in pairs}


def try_pass_through(
    old_in: SliceFrontier,
    new_in: SliceFrontier,
    result: EpochResult,
    summary: EpochSummary,
) -> Optional[SliceFrontier]:
    """If the epoch's previous run stays valid under ``new_in``, return
    its exit frontier augmented with the pass-through deltas; else None.

    The previous run stays valid when the new entry frontier is a
    superset of the old one and none of the additions interact with the
    epoch: added live cells / registers the epoch never writes, added
    pending branches whose pc the epoch's thread never executes a BRANCH
    for, and frame needed-bits flipped on only for frames the epoch never
    popped.  Such facts would have flowed through the epoch unchanged, so
    the recorded flags stay correct and the exit frontier is simply the
    old exit frontier plus the same additions.
    """
    old_mem = set(old_in.live_mem)
    new_mem = set(new_in.live_mem)
    if not old_mem <= new_mem:
        return None
    delta_mem = new_mem - old_mem
    if delta_mem & summary.mem_written:
        return None

    old_regs = _as_dict(old_in.live_regs)
    new_regs = _as_dict(new_in.live_regs)
    delta_regs: Dict[int, Set[int]] = {}
    for tid, regs in old_regs.items():
        if not regs <= new_regs.get(tid, set()):
            return None
    for tid, regs in new_regs.items():
        delta = regs - old_regs.get(tid, set())
        if delta:
            if delta & summary.regs_written.get(tid, set()):
                return None
            delta_regs[tid] = delta

    old_pending = _as_dict(old_in.pending)
    new_pending = _as_dict(new_in.pending)
    delta_pending: Dict[int, Set[int]] = {}
    for tid, pcs in old_pending.items():
        if not pcs <= new_pending.get(tid, set()):
            return None
    for tid, pcs in new_pending.items():
        delta = pcs - old_pending.get(tid, set())
        if delta:
            if delta & summary.branch_pcs.get(tid, set()):
                return None
            delta_pending[tid] = delta

    old_stacks = dict(old_in.stacks)
    new_stacks = dict(new_in.stacks)
    # needed-bit OR sets, per tid: frame indices to flip on in the output.
    needed_deltas: Dict[int, Set[int]] = {}
    for tid in set(old_stacks) | set(new_stacks):
        old_stack = old_stacks.get(tid, ())
        new_stack = new_stacks.get(tid, ())
        if old_stack == new_stack:
            continue
        if tid not in summary.tids:
            # The epoch never touches this thread: its state (whatever it
            # is) passes through wholesale.  Represent that as replacing
            # the thread's stack in the output below.
            needed_deltas[tid] = {-1}  # sentinel: replace entire stack
            continue
        if len(old_stack) != len(new_stack):
            return None
        depth_ok = result.min_depth.get(tid, len(old_stack))
        for idx, (old_f, new_f) in enumerate(zip(old_stack, new_stack)):
            if old_f[:2] != new_f[:2] or old_f[3] != new_f[3]:
                return None  # structural difference (fn / ret / is_root)
            if old_f[2] != new_f[2]:
                if old_f[2] and not new_f[2]:
                    return None  # needed bit retracted: must re-run
                if idx >= depth_ok:
                    return None  # frame was popped during the epoch
                needed_deltas.setdefault(tid, set()).add(idx)

    # Build the augmented exit frontier.
    out = result.frontier
    aug_mem = tuple(sorted(set(out.live_mem) | delta_mem))
    out_regs = _as_dict(out.live_regs)
    for tid, delta in delta_regs.items():
        out_regs.setdefault(tid, set()).update(delta)
    out_pending = _as_dict(out.pending)
    for tid, delta in delta_pending.items():
        out_pending.setdefault(tid, set()).update(delta)
    out_stacks: Dict[int, Tuple[FrameTuple, ...]] = dict(out.stacks)
    for tid, indices in needed_deltas.items():
        if indices == {-1}:
            # Untouched thread: exit state == entry state.
            new_stack = new_stacks.get(tid, ())
            if new_stack:
                out_stacks[tid] = new_stack
            else:
                out_stacks.pop(tid, None)
            continue
        frames = list(out_stacks.get(tid, ()))
        for idx in indices:
            fn, ret_index, _needed, is_root = frames[idx]
            frames[idx] = (fn, ret_index, 1, is_root)
        out_stacks[tid] = tuple(frames)
    return SliceFrontier(
        live_mem=aug_mem,
        live_regs=tuple(
            (tid, tuple(sorted(regs)))
            for tid, regs in sorted(out_regs.items())
            if regs
        ),
        pending=tuple(
            (tid, tuple(sorted(pcs)))
            for tid, pcs in sorted(out_pending.items())
            if pcs
        ),
        stacks=tuple(sorted(out_stacks.items())),
    )


# --------------------------------------------------------------------- #
# Worker-process plumbing                                               #
# --------------------------------------------------------------------- #


class _EpochView:
    """Absolute-indexed view over one epoch's materialized records.

    :func:`run_epoch` indexes ``records[i]`` by absolute trace index;
    for a columnar trace each epoch materializes only its own ``[lo,
    hi)`` span (one batch column slice), and this adapter re-bases the
    absolute indices onto that span.
    """

    __slots__ = ("lo", "recs")

    def __init__(self, lo: int, recs: List[TraceRecord]) -> None:
        self.lo = lo
        self.recs = recs

    def __getitem__(self, i: int) -> TraceRecord:
        return self.recs[i - self.lo]


class _EpochContext:
    """Everything a worker needs to run any epoch of one slicing job.

    ``source`` is either the full record list (row stores) or the trace
    object itself (columnar stores) — in the latter case each epoch's
    records are materialized on demand from array views, so workers
    forked from this context share the mmap-backed columns and never
    receive pickled record lists.
    """

    def __init__(
        self,
        source,
        bounds: Sequence[Tuple[int, int]],
        crit_by_index: Dict[int, "object"],
        include_syscalls: bool,
        window_end: Optional[int],
        cd_map: Dict[int, Tuple[int, ...]],
        options: SlicerOptions,
    ) -> None:
        self.source = source
        self.lazy_spans = not isinstance(source, list)
        self.bounds = list(bounds)
        self.crit_by_index = crit_by_index
        self.include_syscalls = include_syscalls
        self.window_end = window_end
        self.cd_map = cd_map
        self.options = options

    def run(self, k: int, frontier: SliceFrontier) -> EpochResult:
        lo, hi = self.bounds[k]
        records: Sequence[TraceRecord]
        if self.lazy_spans:
            records = _EpochView(lo, self.source.span(lo, hi))
        else:
            records = self.source
        deps_of = self.cd_map.get
        return run_epoch(
            records,
            lo,
            hi,
            frontier,
            self.crit_by_index,
            self.include_syscalls,
            self.window_end,
            lambda pc: deps_of(pc, ()),
            self.options,
        )


_WORKER_CTX: Optional[_EpochContext] = None


def _set_worker_context(ctx: _EpochContext) -> None:
    global _WORKER_CTX
    _WORKER_CTX = ctx


def _worker_run(task: Tuple[int, bytes]):
    k, frontier_bytes = task
    result = _WORKER_CTX.run(k, SliceFrontier.from_bytes(frontier_bytes))
    return (
        k,
        result.flags,
        result.extra,
        result.frontier.to_bytes(),
        result.min_depth,
        result.reasons,
    )


# --------------------------------------------------------------------- #
# Scheduler                                                             #
# --------------------------------------------------------------------- #


def default_workers() -> int:
    """Worker count from ``REPRO_SLICER_WORKERS`` or the CPU allowance."""
    env = os.environ.get("REPRO_SLICER_WORKERS")
    if env:
        return max(1, int(env))
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


class ParallelSlicer:
    """Epoch-sharded fixpoint driver for the backward pass.

    Produces byte-identical sliced-record sets to
    :class:`.slicer.BackwardSlicer` (enforced by the differential tests).
    After :meth:`run`, the scheduling counters ``rounds``,
    ``epoch_runs``, and ``pass_throughs`` describe how quickly the
    fixpoint converged; they are surfaced in ``SliceResult.engine_stats``
    and the benchmark speedup report.
    """

    def __init__(
        self,
        store: TraceStore,
        cdi: ControlDependenceIndex,
        criteria: SlicingCriteria,
        workers: Optional[int] = None,
        epoch_size: Optional[int] = None,
        sample_every: Optional[int] = None,
        main_tid: Optional[int] = None,
        options: SlicerOptions = DEFAULT_OPTIONS,
    ) -> None:
        self._store = store
        self._cdi = cdi
        self._criteria = criteria
        self._workers = workers if workers is not None else default_workers()
        n = len(store)
        if epoch_size is None:
            epoch_size = max(MIN_EPOCH_SIZE, -(-n // max(1, self._workers * EPOCHS_PER_WORKER)))
        elif epoch_size <= 0:
            raise ValueError(f"epoch_size must be positive, got {epoch_size}")
        self._epoch_size = epoch_size
        self._sample_every = sample_every
        meta_main = store.metadata.main_thread_id()
        self._main_tid = main_tid if main_tid is not None else meta_main
        self._options = options
        # convergence diagnostics, populated by run()
        self.rounds = 0
        self.epoch_runs = 0
        self.pass_throughs = 0
        self.epochs = 0

    # -- epoch execution ------------------------------------------------ #

    def _run_batch(
        self, ctx: _EpochContext, pool, batch: List[int], inputs: List[SliceFrontier]
    ) -> Dict[int, EpochResult]:
        if pool is None or len(batch) == 1:
            return {k: ctx.run(k, inputs[k]) for k in batch}
        tasks = [(k, inputs[k].to_bytes()) for k in batch]
        out: Dict[int, EpochResult] = {}
        for k, flags, extra, frontier_bytes, min_depth, reasons in pool.map(
            _worker_run, tasks, chunksize=1
        ):
            out[k] = EpochResult(
                flags=flags,
                extra=extra,
                frontier=SliceFrontier.from_bytes(frontier_bytes),
                min_depth=min_depth,
                reasons=reasons,
            )
        return out

    def _make_pool(self, ctx: _EpochContext):
        """A process pool whose workers hold ``ctx`` (no per-task pickling
        of the trace).  Prefers ``fork`` so workers inherit the context;
        falls back to a one-time pickled initializer elsewhere."""
        import multiprocessing as mp

        if self._workers <= 1 or self.epochs <= 1:
            return None
        methods = mp.get_all_start_methods()
        if "fork" in methods:
            _set_worker_context(ctx)
            return mp.get_context("fork").Pool(self._workers)
        return mp.get_context().Pool(
            self._workers, initializer=_set_worker_context, initargs=(ctx,)
        )

    # -- the fixpoint ---------------------------------------------------- #

    def run(self) -> SliceResult:
        store = self._store
        n = len(store)
        criteria = self._criteria
        options = self._options
        bounds = epoch_bounds(n, self._epoch_size)
        E = len(bounds)
        self.epochs = E
        self.rounds = 0
        self.epoch_runs = 0
        self.pass_throughs = 0

        cd_map = self._cdi._cd if options.control_dependences else {}
        # Columnar traces shard as array views: epochs materialize their
        # own spans lazily (in the workers, from the shared columns) and
        # the static summaries come straight from column slices.
        columnar = not isinstance(store, TraceStore)
        ctx = _EpochContext(
            source=store if columnar else store.records(),
            bounds=bounds,
            crit_by_index=criteria.by_index(),
            include_syscalls=criteria.include_syscalls,
            window_end=criteria.window_end,
            cd_map=cd_map,
            options=options,
        )
        if columnar:
            from .vectorized import summarize_epoch_columnar

            summaries = [
                summarize_epoch_columnar(store, lo, hi) for lo, hi in bounds
            ]
        else:
            records = store.records()
            summaries = [summarize_epoch(records, lo, hi) for lo, hi in bounds]

        empty = SliceFrontier.empty()
        inputs: List[SliceFrontier] = [empty] * E
        results: List[Optional[EpochResult]] = [None] * E

        pool = self._make_pool(ctx)
        try:
            batch = list(range(E))
            while batch:
                self.rounds += 1
                fresh = self._run_batch(ctx, pool, batch, inputs)
                ran = set(batch)
                for k, res in fresh.items():
                    results[k] = res
                    self.epoch_runs += 1
                # Propagate exit frontiers backward; epochs queued for a
                # re-run have stale outputs and block the chain until the
                # next round.
                rerun: List[int] = []
                rerun_set: Set[int] = set()
                for k in range(E - 1, 0, -1):
                    if results[k] is None or k in rerun_set:
                        continue
                    out_k = results[k].frontier
                    if out_k == inputs[k - 1]:
                        continue
                    old_in = inputs[k - 1]
                    inputs[k - 1] = out_k
                    prev = results[k - 1]
                    aug = (
                        try_pass_through(old_in, out_k, prev, summaries[k - 1])
                        if prev is not None
                        else None
                    )
                    if aug is not None:
                        self.pass_throughs += 1
                        prev.frontier = aug
                    else:
                        rerun.append(k - 1)
                        rerun_set.add(k - 1)
                batch = sorted(rerun, reverse=True)
        finally:
            if pool is not None:
                pool.close()
                pool.join()

        # -- assemble the global result -------------------------------- #
        flags = bytearray(n)
        reasons: Optional[Dict[int, Tuple[str, int]]] = (
            {} if options.track_reasons else None
        )
        for k, (lo, hi) in enumerate(bounds):
            res = results[k]
            flags[lo:hi] = res.flags
            if reasons is not None and res.reasons:
                reasons.update(res.reasons)
        for k in range(E):
            for ret_index, callee_fn in results[k].extra:
                if not flags[ret_index]:
                    flags[ret_index] = 1
                    if reasons is not None:
                        reasons[ret_index] = ("call", callee_fn)

        result = SliceResult(criteria_name=criteria.name, flags=flags)
        result.visited = n
        result.reasons = reasons
        result.engine_stats = {
            "engine": "parallel",
            "workers": self._workers,
            "epochs": E,
            "epoch_size": self._epoch_size,
            "rounds": self.rounds,
            "epoch_runs": self.epoch_runs,
            "pass_throughs": self.pass_throughs,
        }
        if self._sample_every:
            if columnar:
                from .vectorized import reconstruct_timeline_columnar

                result.timeline = reconstruct_timeline_columnar(
                    store, flags, self._sample_every, self._main_tid
                )
            else:
                result.timeline = reconstruct_timeline(
                    records, flags, self._sample_every, self._main_tid
                )
        return result


def reconstruct_timeline(
    records: Sequence[TraceRecord],
    flags: bytearray,
    sample_every: int,
    main_tid: Optional[int],
) -> List[TimelineSample]:
    """Rebuild Figure-4 timeline samples from the final flags.

    The sequential engine counts a retroactively-flagged RET when its
    CALL is processed; this reconstruction counts every record when it
    is visited, so intermediate samples can differ by the number of
    not-yet-paired RETs.  The final sample is identical.  Shared by the
    parallel and incremental engines (row-store path).
    """
    samples: List[TimelineSample] = []
    processed = 0
    in_slice = 0
    processed_main = 0
    in_slice_main = 0
    for i in range(len(records) - 1, -1, -1):
        flag = flags[i]
        processed += 1
        in_slice += flag
        if records[i].tid == main_tid:
            processed_main += 1
            in_slice_main += flag
        if processed % sample_every == 0:
            samples.append(
                TimelineSample(processed, in_slice, processed_main, in_slice_main)
            )
    samples.append(
        TimelineSample(processed, in_slice, processed_main, in_slice_main)
    )
    return samples
