"""Cross-frame redundancy profiling.

The paper's slicing criterion asks "which instructions influenced the
pixels?" for a single page load.  With the incremental frame pipeline a
trace holds many frame epochs (``FrameSpan``), and the interesting
question becomes comparative: of the work a steady-state frame performs,
how much merely reproduces values the previous frame already computed?

For every complete frame this module

1. slices on *that frame's* pixel criterion alone — the tile buffers
   written between its ``frame:begin``/``frame:end`` markers, windowed to
   the frame's last record — and
2. classifies the frame's non-slice instructions as either

   * **redundant** — the same static instruction executed in an earlier
     frame and none of its inputs were written since, so it necessarily
     recomputed an identical value; or
   * **fresh-unnecessary** — new or input-changed work that still never
     reached this frame's pixels (the paper's classic unnecessary
     computation, now measured per frame).

A well-behaved incremental pipeline drives the redundant count toward
zero: work whose inputs did not change should be skipped by dirty
tracking, not re-executed.  The per-frame totals also quantify the
pipeline's savings directly (steady-state frames vs. the load frame).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..trace.records import FrameSpan, InstrKind
from ..trace.store import TraceStore
from .api import Profiler
from .criteria import Criterion, SlicingCriteria


@dataclass(frozen=True)
class FrameRedundancy:
    """Redundancy breakdown of one frame epoch."""

    frame_id: int
    kind: str
    begin: int
    end: int
    total: int
    in_slice: int
    redundant: int
    fresh_unnecessary: int

    @property
    def unnecessary(self) -> int:
        return self.total - self.in_slice

    @property
    def slice_fraction(self) -> float:
        return self.in_slice / self.total if self.total else 0.0

    @property
    def redundant_fraction(self) -> float:
        """Share of the frame's instructions that recomputed old values."""
        return self.redundant / self.total if self.total else 0.0


@dataclass
class RedundancyReport:
    """Per-frame redundancy results for one multi-frame trace."""

    frames: List[FrameRedundancy] = field(default_factory=list)

    def first(self) -> Optional[FrameRedundancy]:
        return self.frames[0] if self.frames else None

    def updates(self) -> List[FrameRedundancy]:
        """Every frame after the initial load frame."""
        return self.frames[1:]

    def steady_state_ratio(self) -> Optional[float]:
        """Mean update-frame size relative to the load frame.

        The headline number for the incremental pipeline: a ratio of 0.1
        means steady-state frames execute 10% of the load frame's
        instructions.  ``None`` when the trace has fewer than two frames.
        """
        updates = self.updates()
        if not updates or not self.frames[0].total:
            return None
        mean = sum(f.total for f in updates) / len(updates)
        return mean / self.frames[0].total


def frame_pixel_criteria(store: TraceStore, span: FrameSpan) -> SlicingCriteria:
    """Pixel criteria restricted to tiles rastered within ``span``.

    Returns an empty criteria set (no points) when the frame rastered
    nothing — e.g. a scroll frame fully served from cached tiles.
    """
    if span.end is None:
        raise ValueError(f"frame {span.frame_id} is incomplete (no frame:end)")
    crits = tuple(
        Criterion(index=index, cells=cells)
        for index, cells in store.metadata.tile_buffers
        if span.begin <= index <= span.end
    )
    return SlicingCriteria(
        name=f"pixels:frame{span.frame_id}",
        criteria=crits,
        window_end=span.end,
    )


def _stability_pass(store: TraceStore) -> Tuple[List[int], bytearray]:
    """One forward pass computing, per record, its previous execution.

    Returns ``(prev_exec, stable)`` where ``prev_exec[i]`` is the record
    index of the previous dynamic execution of the same static instruction
    (same pc reading/writing the same cells) or ``-1``, and ``stable[i]``
    is 1 iff record ``i`` necessarily recomputed the value its previous
    execution produced.

    Stability propagates through *silent writes*: a cell overwritten only
    by stable re-executions still holds its old value, so readers of that
    cell stay stable too.  (A legacy full-relayout pass rewrites every
    geometry cell each frame with unchanged values; without propagation
    the rewrite would mask the redundancy it embodies.)  Concretely, each
    cell tracks its last *changing* write — the last write by a record
    that was not itself stable — and record ``i`` is stable iff a previous
    execution exists and every input cell's last changing write happened
    at or before it.
    """
    last_changing_write: Dict[int, int] = {}
    seen: Dict[Tuple[int, Tuple[int, ...], Tuple[int, ...]], int] = {}
    prev_exec: List[int] = []
    stable = bytearray()
    for i, rec in enumerate(store.forward()):
        key = (rec.pc, rec.mem_read, rec.mem_written)
        prev = seen.get(key, -1)
        prev_exec.append(prev)
        is_stable = prev >= 0 and all(
            last_changing_write.get(cell, -1) <= prev for cell in rec.mem_read
        )
        stable.append(1 if is_stable else 0)
        seen[key] = i
        if not is_stable:
            for cell in rec.mem_written:
                last_changing_write[cell] = i
    return prev_exec, stable


def analyze_frames(
    store: TraceStore,
    sample_every: Optional[int] = None,
    engine: str = "sequential",
) -> RedundancyReport:
    """Per-frame pixel slices plus redundant/fresh classification.

    ``engine="incremental"`` turns the F independent full slices into one
    streaming pass: every per-frame query extends the profiler's shared
    checkpoint, so each seedless region's backward run is paid once and
    later frames reuse it (same flags, byte for byte — the split is
    engine-invariant).  ``sample_every`` is ignored for per-frame slices
    (the classification never reads timelines, and reconstructing F of
    them costs O(F·n)).

    Raises ``ValueError`` when the trace records no complete frame epochs
    (i.e. it predates the incremental pipeline's frame markers).
    """
    del sample_every  # accepted for API compatibility; timelines unused
    spans = [span for span in store.frame_spans() if span.complete]
    if not spans:
        raise ValueError(
            "trace has no complete frame epochs; re-collect it with the "
            "frame-aware engine"
        )
    profiler = Profiler(store)
    prev_exec, stable = _stability_pass(store)
    records = list(store.records())
    report = RedundancyReport()
    for span in spans:
        criteria = frame_pixel_criteria(store, span)
        if criteria.criteria:
            result = profiler.slice(criteria, engine=engine)
            flags = result.flags
        else:
            flags = bytearray(len(records))
        total = span.n_records()
        in_slice = 0
        redundant = 0
        for i in range(span.begin, span.end + 1):  # type: ignore[operator]
            if flags[i]:
                in_slice += 1
                continue
            rec = records[i]
            if (
                rec.kind == InstrKind.OP
                and stable[i]
                and 0 <= prev_exec[i] < span.begin
            ):
                redundant += 1
        report.frames.append(
            FrameRedundancy(
                frame_id=span.frame_id,
                kind=span.kind,
                begin=span.begin,
                end=span.end,  # type: ignore[arg-type]
                total=total,
                in_slice=in_slice,
                redundant=redundant,
                fresh_unnecessary=total - in_slice - redundant,
            )
        )
    return report
