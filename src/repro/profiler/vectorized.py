"""Vectorized backward slicer over columnar (UCWA3) traces.

The sequential pass (:mod:`.slicer`) and the epoch-sharded parallel pass
(:mod:`.parallel`) both stream per-record Python objects.  This engine
reformulates the backward slice the way :mod:`.oracle` does — as a
reachability closure over explicit dependence edges — but computes the
edges with batch array joins over the columnar trace:

* **data / register edges**: writers are sorted by ``(location, index)``
  composite keys; every read resolves its nearest preceding writer with
  one ``np.searchsorted`` per pool instead of one hash probe per operand.
* **control edges**: static control-dependence sets are expanded per
  *unique* pc, then gathered per record; the nearest preceding same-thread
  branch instance is another sorted-key join.
* **call edges**: one forward pass reconstructs dynamic invocations
  (identical attribution to the oracle's), after which every record's
  enclosing CALL is a single array gather.

Every edge points from a record to a strictly *earlier* record, so the
transitive closure needs exactly one pass over the edge stream sorted by
descending source: when the stream reaches source ``s``, every path into
``s`` has already been applied.  The deduplicated, descending-sorted
stream is what a v3 file caches in its ``EDGE`` section — a cold slice
then skips straight to the sweep.

Equivalence with the liveness formulation is argued in
:mod:`.oracle` and enforced by ``tests/profiler/test_vectorized_differential.py``
(byte-identical flags, categories, and join reasons across engines).
Join *reasons* (``track_reasons``) are reproduced by a sparse replay of
the liveness pass that visits only sliced records and criteria points —
the live sets are mutated exclusively by records in the slice, so the
replay's state matches the full sequential walk at every visited index.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..trace.columnar import ColumnarTrace, SliceIndex
from ..trace.records import InstrKind
from ..trace.store import TraceStore
from .cdg import ControlDependenceIndex
from .criteria import SlicingCriteria
from .parallel import EpochSummary
from .slicer import (
    DEFAULT_OPTIONS,
    SliceResult,
    SlicerOptions,
    TimelineSample,
)

_RET = int(InstrKind.RET)
_CALL = int(InstrKind.CALL)
_BRANCH = int(InstrKind.BRANCH)
_SYSCALL = int(InstrKind.SYSCALL)


# --------------------------------------------------------------------- #
# Derived structure: invocations, writer tables, edges                  #
# --------------------------------------------------------------------- #


def build_invocations(
    cols: ColumnarTrace,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Reconstruct dynamic invocations by forward simulation.

    Returns ``(inv_id, inv_call, inv_ret, inv_fn)``: a per-record
    invocation id (RETs carry the invocation they close) and, per
    invocation, its CALL index, RET index, and function symbol (-1 when
    absent).  The attribution rules mirror :class:`.oracle.OracleSlicer`
    exactly: a fn mismatch on a non-CALL record opens a truncated frame,
    a RET on an empty stack re-seeds the thread root.
    """
    n = len(cols)
    inv_id = np.full(n, -1, np.int64)
    call_of: List[int] = []
    ret_of: List[int] = []
    fn_of: List[Optional[int]] = []
    stacks: Dict[int, List[int]] = {}
    kinds = cols.kind.tolist()
    tids = cols.tid.tolist()
    fns = cols.fn.tolist()
    next_inv = 0
    for i in range(n):
        kind = kinds[i]
        stack = stacks.get(tids[i])
        if stack is None:
            stack = stacks[tids[i]] = [next_inv]
            call_of.append(-1)
            ret_of.append(-1)
            fn_of.append(fns[i])
            next_inv += 1
        top = stack[-1]
        if kind == _RET:
            if fn_of[top] is None:
                fn_of[top] = fns[i]
            ret_of[top] = i
            inv_id[i] = top
            stack.pop()
            if not stack:
                stack.append(next_inv)
                call_of.append(-1)
                ret_of.append(-1)
                fn_of.append(None)
                next_inv += 1
            continue
        if fn_of[top] is None:
            fn_of[top] = fns[i]
        elif fn_of[top] != fns[i] and kind != _CALL:
            top = next_inv
            call_of.append(-1)
            ret_of.append(-1)
            fn_of.append(fns[i])
            next_inv += 1
            stack.append(top)
        inv_id[i] = top
        if kind == _CALL:
            stack.append(next_inv)
            call_of.append(i)
            ret_of.append(-1)
            fn_of.append(None)
            next_inv += 1
    return (
        inv_id,
        np.array(call_of, np.int64),
        np.array(ret_of, np.int64),
        np.array([-1 if f is None else f for f in fn_of], np.int64),
    )


def _pool_owners(off: np.ndarray) -> np.ndarray:
    n = len(off) - 1
    return np.repeat(np.arange(n, dtype=np.int64), np.diff(off))


def _mem_writer_table(cols: ColumnarTrace):
    """``(uaddr, sorted (addr,idx) keys, writer indices)`` for non-RET
    memory writes; key = ``dense_addr * (n+1) + index``."""
    table = cols._writer_tables.get("mem")
    if table is None:
        n = len(cols)
        own = _pool_owners(cols.mw_off)
        keep = (cols.kind != _RET)[own]
        widx = own[keep]
        waddr = np.asarray(cols.mw)[keep]
        uaddr = np.unique(waddr)
        dense = np.searchsorted(uaddr, waddr).astype(np.int64)
        key = dense * (n + 1) + widx
        order = np.argsort(key)
        table = (uaddr, key[order], widx[order])
        cols._writer_tables["mem"] = table
    return table


def _reg_writer_table(cols: ColumnarTrace):
    """Same shape for register writes; key = ``(dense_tid*256 + reg)``
    (registers are byte-sized by construction of the trace format)."""
    table = cols._writer_tables.get("reg")
    if table is None:
        n = len(cols)
        utid = np.unique(cols.tid).astype(np.int64)
        own = _pool_owners(cols.rw_off)
        keep = (cols.kind != _RET)[own]
        widx = own[keep]
        wreg = np.asarray(cols.rw)[keep].astype(np.int64)
        wtid = np.searchsorted(utid, cols.tid[widx].astype(np.int64))
        key = (wtid * 256 + wreg) * (n + 1) + widx
        order = np.argsort(key)
        table = (utid, key[order], widx[order])
        cols._writer_tables["reg"] = table
    return table


def _nearest_before(
    sorted_keys: np.ndarray,
    sorted_values: np.ndarray,
    bucket: np.ndarray,
    query_key: np.ndarray,
    span: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """For each query, the value of the largest key < ``query_key`` that
    shares its bucket (``key // span``).  Returns (hit mask, values)."""
    pos = np.searchsorted(sorted_keys, query_key, side="left") - 1
    clamped = np.maximum(pos, 0)
    hit = (pos >= 0) & (sorted_keys[clamped] // span == bucket)
    return hit, sorted_values[clamped]


def build_edges(
    cols: ColumnarTrace,
    inv_id: np.ndarray,
    inv_call: np.ndarray,
    cd_map: Dict[int, Tuple[int, ...]],
    options: SlicerOptions = DEFAULT_OPTIONS,
) -> Tuple[np.ndarray, np.ndarray]:
    """All dependence edges, deduplicated, sorted by descending source.

    Every target is strictly below its source.  ``cd_map`` supplies the
    static control-dependence sets (pass ``{}`` with
    ``options.control_dependences`` off); ablation options prune the
    corresponding edge kinds, matching the sequential engine's switches.
    """
    n = len(cols)
    notret = cols.kind != _RET
    span = n + 1
    srcs: List[np.ndarray] = []
    tgts: List[np.ndarray] = []

    # -- data: each read -> nearest preceding writer of the cell -------- #
    uaddr, wkeys, widx = _mem_writer_table(cols)
    own = _pool_owners(cols.mr_off)
    keep = notret[own]
    ridx = own[keep]
    raddr = np.asarray(cols.mr)[keep]
    dense = np.searchsorted(uaddr, raddr)
    present = dense < len(uaddr)
    present &= uaddr[np.minimum(dense, max(len(uaddr) - 1, 0))] == raddr
    dense = dense[present].astype(np.int64)
    ridx = ridx[present]
    hit, values = _nearest_before(wkeys, widx, dense, dense * span + ridx, span)
    srcs.append(ridx[hit])
    tgts.append(values[hit])

    # -- register: per-thread nearest preceding writer ------------------ #
    utid, rkeys, rwidx = _reg_writer_table(cols)
    own = _pool_owners(cols.rr_off)
    keep = notret[own]
    ridx = own[keep]
    rreg = np.asarray(cols.rr)[keep].astype(np.int64)
    rtid = np.searchsorted(utid, cols.tid[ridx].astype(np.int64))
    bucket = rtid * 256 + rreg
    hit, values = _nearest_before(rkeys, rwidx, bucket, bucket * span + ridx, span)
    srcs.append(ridx[hit])
    tgts.append(values[hit])

    # -- control: nearest preceding same-thread branch instance --------- #
    if options.control_dependences and cd_map:
        upc, pc_inv = np.unique(cols.pc, return_inverse=True)
        deps_per = [cd_map.get(int(p), ()) for p in upc]
        dep_counts = np.array([len(d) for d in deps_per], np.int64)
        if int(dep_counts.sum()):
            rec_counts = dep_counts[pc_inv]
            rec_counts[~notret] = 0
            ctrl_src = np.repeat(np.arange(n, dtype=np.int64), rec_counts)
            if len(ctrl_src):
                flat = np.array(
                    [d for deps in deps_per for d in deps], np.uint64
                )
                upc_off = np.zeros(len(upc) + 1, np.int64)
                np.cumsum(dep_counts, out=upc_off[1:])
                csum = np.zeros(n + 1, np.int64)
                np.cumsum(rec_counts, out=csum[1:])
                within = np.arange(len(ctrl_src)) - np.repeat(
                    csum[:-1], rec_counts
                )
                dep_pc = flat[np.repeat(upc_off[pc_inv], rec_counts) + within]

                br = np.nonzero(cols.kind == _BRANCH)[0]
                ubpc = np.unique(np.asarray(cols.pc)[br])
                nb = max(len(ubpc), 1)
                btid = np.searchsorted(utid, cols.tid[br].astype(np.int64))
                bpc = np.searchsorted(ubpc, np.asarray(cols.pc)[br])
                bkey = (btid * nb + bpc) * span + br
                order = np.argsort(bkey)
                bkey_s = bkey[order]
                br_s = br[order]

                qpc = np.searchsorted(ubpc, dep_pc)
                present = qpc < len(ubpc)
                present &= (
                    ubpc[np.minimum(qpc, max(len(ubpc) - 1, 0))] == dep_pc
                )
                ctrl_src = ctrl_src[present]
                qtid = np.searchsorted(
                    utid, cols.tid[ctrl_src].astype(np.int64)
                )
                bucket = qtid * nb + qpc[present].astype(np.int64)
                hit, values = _nearest_before(
                    bkey_s, br_s, bucket, bucket * span + ctrl_src, span
                )
                srcs.append(ctrl_src[hit])
                tgts.append(values[hit])

    # -- call-site: every record -> its invocation's CALL --------------- #
    if options.call_site_dependences:
        target = np.full(n, -1, np.int64)
        has_inv = (inv_id >= 0) & notret
        target[has_inv] = inv_call[inv_id[has_inv]]
        call_src = np.nonzero(target >= 0)[0]
        srcs.append(call_src)
        tgts.append(target[call_src])

    src = np.concatenate(srcs) if srcs else np.zeros(0, np.int64)
    tgt = np.concatenate(tgts) if tgts else np.zeros(0, np.int64)
    key = np.unique(src.astype(np.int64) * span + tgt)
    src = (key // span)[::-1]
    tgt = (key % span)[::-1]
    return src, tgt


def attach_index(cols: ColumnarTrace) -> SliceIndex:
    """Derive and attach the cacheable slice index (``INVT``/``EDGE``).

    Runs the forward CDG pass when control-dependence sets are needed, so
    this is a convert-time cost; cold slices over a file carrying the
    index skip both the CDG build and the edge joins entirely.
    """
    if cols.index is not None:
        return cols.index
    inv_id, inv_call, inv_ret, inv_fn = build_invocations(cols)
    from .cdg import build_index as build_cdg

    cd_map = build_cdg(cols.forward())._cd
    src, tgt = build_edges(cols, inv_id, inv_call, cd_map, DEFAULT_OPTIONS)
    cols.index = SliceIndex(
        inv_id=inv_id,
        inv_call=inv_call,
        inv_ret=inv_ret,
        inv_fn=inv_fn,
        edge_src=src,
        edge_tgt=tgt,
    )
    return cols.index


# --------------------------------------------------------------------- #
# Seeds, closure, reasons, timeline                                     #
# --------------------------------------------------------------------- #


def _resolve_seeds(
    cols: ColumnarTrace,
    crit_by_index: Dict[int, object],
    include_syscalls: bool,
    window_end: Optional[int],
) -> np.ndarray:
    """Record indices seeding the closure.

    A criterion's cell or register resolves to the latest non-RET writer
    at or *before* the criterion index (inclusive: the streaming pass
    applies criteria before processing the record itself); syscall seeds
    are the SYSCALL records inside the window.
    """
    n = len(cols)
    span = n + 1
    seeds: List[np.ndarray] = []

    cells: List[int] = []
    cell_at: List[int] = []
    regs: List[int] = []
    reg_tid: List[int] = []
    reg_at: List[int] = []
    for i, crit in crit_by_index.items():
        for cell in crit.cells:  # type: ignore[attr-defined]
            cells.append(cell)
            cell_at.append(i)
        for tid, reg in crit.regs:  # type: ignore[attr-defined]
            regs.append(reg)
            reg_tid.append(tid)
            reg_at.append(i)

    if cells:
        carr = np.array(cells, np.uint64)
        cached = cols._writer_tables.get("mem")
        if cached is not None:
            uaddr, wkeys, widx = cached
        else:
            # Build a writer table restricted to the criteria cells: far
            # cheaper than the full table when only seeds are needed (the
            # stored-index cold path never builds the full table).
            ucrit = np.unique(carr)
            own = _pool_owners(cols.mw_off)
            keep = (cols.kind != _RET)[own]
            widx = own[keep]
            waddr = np.asarray(cols.mw)[keep]
            pos = np.searchsorted(ucrit, waddr)
            rel = pos < len(ucrit)
            rel &= ucrit[np.minimum(pos, max(len(ucrit) - 1, 0))] == waddr
            uaddr = ucrit
            widx = widx[rel]
            key = pos[rel].astype(np.int64) * span + widx
            order = np.argsort(key)
            wkeys = key[order]
            widx = widx[order]
        dense = np.searchsorted(uaddr, carr)
        present = dense < len(uaddr)
        present &= uaddr[np.minimum(dense, max(len(uaddr) - 1, 0))] == carr
        dense = dense[present].astype(np.int64)
        at = np.array(cell_at, np.int64)[present]
        hit, values = _nearest_before(
            wkeys, widx, dense, dense * span + at + 1, span
        )
        seeds.append(values[hit])

    if regs:
        utid, rkeys, rwidx = _reg_writer_table(cols)
        tarr = np.array(reg_tid, np.int64)
        dense = np.searchsorted(utid, tarr)
        present = dense < len(utid)
        present &= utid[np.minimum(dense, max(len(utid) - 1, 0))] == tarr
        bucket = dense[present] * 256 + np.array(regs, np.int64)[present]
        at = np.array(reg_at, np.int64)[present]
        hit, values = _nearest_before(
            rkeys, rwidx, bucket, bucket * span + at + 1, span
        )
        seeds.append(values[hit])

    if include_syscalls:
        sys_idx = np.nonzero(cols.kind == _SYSCALL)[0]
        if window_end is not None:
            sys_idx = sys_idx[sys_idx <= window_end]
        seeds.append(sys_idx.astype(np.int64))

    if not seeds:
        return np.zeros(0, np.int64)
    return np.unique(np.concatenate(seeds))


def _closure(
    n: int, seeds: Iterable[int], src: np.ndarray, tgt: np.ndarray
) -> bytearray:
    """Single-pass reachability over the descending-source edge stream.

    Correct because every edge targets a strictly lower index: by the
    time the stream reaches source ``s``, all edges into ``s`` (whose
    sources are > ``s``) have already been applied, so ``flags[s]`` is
    final when its out-edges fire.
    """
    flags = bytearray(n)
    for s in seeds:
        flags[s] = 1
    for s, t in zip(src.tolist(), tgt.tolist()):
        if flags[s]:
            flags[t] = 1
    return flags


def _flag_needed_rets(
    flags: bytearray,
    notret: np.ndarray,
    inv_id: np.ndarray,
    inv_call: np.ndarray,
    inv_ret: np.ndarray,
) -> np.ndarray:
    """Flag the RET of every needed invocation that has a CALL in trace.

    RETs never generate dependences of their own (the streaming pass
    skips them before gen/kill), so this is a pure post-pass.  Returns
    the needed-invocation id array (reused by the reasons replay).
    """
    flagged = np.frombuffer(bytes(flags), np.uint8).astype(bool)
    needed = np.unique(inv_id[np.nonzero(flagged & notret)[0]])
    needed = needed[needed >= 0]
    rets = inv_ret[needed]
    rets = rets[(rets >= 0) & (inv_call[needed] >= 0)]
    for r in rets.tolist():
        flags[r] = 1
    return needed


def _replay_reasons(
    cols: ColumnarTrace,
    flags: bytearray,
    crit_by_index: Dict[int, object],
    include_syscalls: bool,
    window_end: Optional[int],
    deps_of,
    options: SlicerOptions,
    inv_id: np.ndarray,
    inv_call: np.ndarray,
    inv_ret: np.ndarray,
    inv_fn: np.ndarray,
    needed_invs: np.ndarray,
) -> Dict[int, Tuple[str, int]]:
    """Sparse backward replay assigning one join reason per sliced record.

    The full sequential pass mutates its live sets only at records that
    join the slice (plus criteria points), so replaying just those
    indices in descending order reproduces the exact state — and thus the
    exact reason precedence (call > control > syscall > data > register)
    — the sequential engine saw at each sliced record.
    """
    n = len(cols)
    flagged = np.frombuffer(bytes(flags), np.uint8)
    visit = sorted(
        set(np.nonzero(flagged)[0].tolist()) | set(crit_by_index.keys()),
        reverse=True,
    )
    callee_of = np.full(n, -1, np.int64)
    with_call = np.nonzero(inv_call >= 0)[0]
    callee_of[inv_call[with_call]] = with_call
    needed = np.zeros(len(inv_call), bool)
    needed[needed_invs] = True
    fns = cols.fn

    reasons: Dict[int, Tuple[str, int]] = {}
    live_mem: set = set()
    live_regs: Dict[int, set] = {}
    pending: Dict[int, set] = {}
    call_site = options.call_site_dependences

    for i in visit:
        crit = crit_by_index.get(i)
        if crit is not None:
            live_mem.update(crit.cells)  # type: ignore[attr-defined]
            for reg_tid, reg in crit.regs:  # type: ignore[attr-defined]
                live_regs.setdefault(reg_tid, set()).add(reg)
        if not flagged[i]:
            continue
        rec = cols[i]
        if rec.kind == InstrKind.RET:
            # Retroactively flagged with its CALL; carries the frame's fn.
            reasons[i] = ("call", rec.fn)
            continue
        tid = rec.tid
        reason: Optional[Tuple[str, int]] = None
        if rec.kind == InstrKind.CALL and call_site:
            callee = callee_of[i]
            if callee >= 0 and needed[callee]:
                ret = inv_ret[callee]
                fn = int(fns[ret]) if ret >= 0 else int(inv_fn[callee])
                reason = ("call", fn)
        elif rec.kind == InstrKind.BRANCH:
            tpending = pending.get(tid)
            if tpending and rec.pc in tpending:
                reason = ("control", rec.pc)
                tpending.discard(rec.pc)
        elif rec.kind == InstrKind.SYSCALL:
            if include_syscalls and (window_end is None or i <= window_end):
                reason = ("syscall", rec.syscall or 0)
        if reason is None:
            for addr in rec.mem_written:
                if addr in live_mem:
                    reason = ("data", addr)
                    break
        if reason is None:
            tregs = live_regs.get(tid)
            if tregs:
                for reg in rec.regs_written:
                    if reg in tregs:
                        reason = ("register", reg)
                        break
        reasons[i] = reason if reason is not None else ("data", -1)
        # gen/kill + pending, exactly as the sequential in-slice block
        live_mem.difference_update(rec.mem_written)
        tregs = live_regs.get(tid)
        if tregs:
            tregs.difference_update(rec.regs_written)
        live_mem.update(rec.mem_read)
        if rec.regs_read:
            live_regs.setdefault(tid, set()).update(rec.regs_read)
        cdeps = deps_of(rec.pc)
        if cdeps:
            pending.setdefault(tid, set()).update(cdeps)
    return reasons


def reconstruct_timeline_columnar(
    cols: ColumnarTrace,
    flags: bytearray,
    sample_every: int,
    main_tid: Optional[int],
) -> List[TimelineSample]:
    """Figure-4 timeline samples from the final flags, vectorized.

    Matches :meth:`.parallel.ParallelSlicer._reconstruct_timeline`: every
    record counts when visited (backward), so intermediate samples can
    differ from the sequential engine's by not-yet-paired RETs, while the
    final sample is identical.
    """
    n = len(cols)
    if n == 0:
        return [TimelineSample(0, 0, 0, 0)]
    rev_flags = np.frombuffer(bytes(flags), np.uint8)[::-1].astype(np.int64)
    if main_tid is None:
        rev_main = np.zeros(n, np.int64)
    else:
        rev_main = (cols.tid == main_tid)[::-1].astype(np.int64)
    cum_in = np.cumsum(rev_flags)
    cum_pm = np.cumsum(rev_main)
    cum_im = np.cumsum(rev_flags * rev_main)
    samples = [
        TimelineSample(
            p, int(cum_in[p - 1]), int(cum_pm[p - 1]), int(cum_im[p - 1])
        )
        for p in range(sample_every, n + 1, sample_every)
    ]
    samples.append(
        TimelineSample(n, int(cum_in[-1]), int(cum_pm[-1]), int(cum_im[-1]))
    )
    return samples


def summarize_epoch_columnar(
    cols: ColumnarTrace, lo: int, hi: int
) -> EpochSummary:
    """Columnar :func:`.parallel.summarize_epoch`: the epoch's write and
    branch footprint from column slices, no record materialization."""
    summary = EpochSummary()
    kind = cols.kind[lo:hi]
    tid = cols.tid[lo:hi]
    notret = kind != _RET
    summary.tids = set(tid.tolist()) if hi - lo < 64 else set(
        np.unique(tid).tolist()
    )

    off = cols.mw_off[lo : hi + 1]
    own = np.repeat(np.arange(hi - lo, dtype=np.int64), np.diff(off))
    vals = np.asarray(cols.mw)[off[0] : off[-1]]
    summary.mem_written = set(np.unique(vals[notret[own]]).tolist())

    off = cols.rw_off[lo : hi + 1]
    own = np.repeat(np.arange(hi - lo, dtype=np.int64), np.diff(off))
    vals = np.asarray(cols.rw)[off[0] : off[-1]]
    keep = notret[own]
    pair = tid[own[keep]].astype(np.int64) * 256 + vals[keep]
    for key in np.unique(pair).tolist():
        summary.regs_written.setdefault(key // 256, set()).add(key % 256)

    branch = np.nonzero(kind == _BRANCH)[0]
    if len(branch):
        btid = tid[branch]
        bpc = cols.pc[lo:hi][branch]
        for t in np.unique(btid).tolist():
            summary.branch_pcs[t] = set(bpc[btid == t].tolist())
    return summary


# --------------------------------------------------------------------- #
# The engine                                                            #
# --------------------------------------------------------------------- #


class VectorizedSlicer:
    """Array-join backward slicer (engine name ``"vectorized"``).

    Accepts a :class:`ColumnarTrace` directly or converts a row store on
    entry.  ``cdi``/``cdi_provider`` supply the control-dependence index
    lazily: a trace carrying a stored slice index under default options
    never needs it (the cold-path win), while ablations, index-less
    traces, and ``track_reasons`` resolve it on demand.
    """

    def __init__(
        self,
        trace,
        cdi: Optional[ControlDependenceIndex] = None,
        criteria: Optional[SlicingCriteria] = None,
        sample_every: Optional[int] = None,
        main_tid: Optional[int] = None,
        options: SlicerOptions = DEFAULT_OPTIONS,
        cdi_provider=None,
    ) -> None:
        if criteria is None:
            raise ValueError("criteria are required")
        self._cols = (
            trace
            if isinstance(trace, ColumnarTrace)
            else ColumnarTrace.from_store(trace)
        )
        self._cdi = cdi
        self._cdi_provider = cdi_provider
        self._criteria = criteria
        self._sample_every = sample_every
        meta_main = self._cols.metadata.main_thread_id()
        self._main_tid = main_tid if main_tid is not None else meta_main
        self._options = options

    def _cd_map(self) -> Dict[int, Tuple[int, ...]]:
        if self._cdi is None:
            if self._cdi_provider is not None:
                self._cdi = self._cdi_provider()
            else:
                from .cdg import build_index

                self._cdi = build_index(self._cols.forward())
        return self._cdi._cd

    def run(self) -> SliceResult:
        cols = self._cols
        n = len(cols)
        criteria = self._criteria
        options = self._options
        crit_by_index = criteria.by_index()

        # -- dependence structure (stored index or rebuilt) ------------- #
        index = cols.index
        default_edges = (
            options.control_dependences and options.call_site_dependences
        )
        if index is not None:
            inv_id = index.inv_id
            inv_call = index.inv_call
            inv_ret = index.inv_ret
            inv_fn = index.inv_fn
        else:
            inv_id, inv_call, inv_ret, inv_fn = build_invocations(cols)
        if index is not None and default_edges:
            src, tgt = index.edge_src, index.edge_tgt
            stored = True
        else:
            cd_map = self._cd_map() if options.control_dependences else {}
            src, tgt = build_edges(cols, inv_id, inv_call, cd_map, options)
            stored = False

        # -- seeds + closure + RET post-pass ---------------------------- #
        seeds = _resolve_seeds(
            cols, crit_by_index, criteria.include_syscalls, criteria.window_end
        )
        flags = _closure(n, seeds.tolist(), src, tgt)
        notret = cols.kind != _RET
        if options.call_site_dependences:
            needed = _flag_needed_rets(flags, notret, inv_id, inv_call, inv_ret)
        else:
            needed = np.zeros(0, np.int64)

        result = SliceResult(criteria_name=criteria.name, flags=flags)
        result.visited = n
        if options.track_reasons:
            deps_of = (
                (lambda pc, _get=self._cd_map().get: _get(pc, ()))
                if options.control_dependences
                else (lambda pc: ())
            )
            result.reasons = _replay_reasons(
                cols,
                flags,
                crit_by_index,
                criteria.include_syscalls,
                criteria.window_end,
                deps_of,
                options,
                inv_id,
                inv_call,
                inv_ret,
                inv_fn,
                needed,
            )
        if self._sample_every:
            result.timeline = reconstruct_timeline_columnar(
                cols, flags, self._sample_every, self._main_tid
            )
        result.engine_stats = {
            "engine": "vectorized",
            "records": n,
            "edges": int(len(src)),
            "seeds": int(len(seeds)),
            "stored_index": stored,
        }
        return result


def vectorized_slice(
    trace,
    criteria: SlicingCriteria,
    cdi: Optional[ControlDependenceIndex] = None,
    sample_every: Optional[int] = None,
    options: SlicerOptions = DEFAULT_OPTIONS,
) -> SliceResult:
    """One-call convenience mirroring :func:`.slicer.slice_trace`."""
    return VectorizedSlicer(
        trace, cdi, criteria, sample_every=sample_every, options=options
    ).run()
