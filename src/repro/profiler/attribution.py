"""Per-script attribution of slice records.

Maps a pixel slice back onto the *scripts that fed it*.  Every value a
script produces chains through its source-byte cells: the parser reads
the region's byte cells, ``compile`` records copy them into the function's
code cell, and every `const`/`closure`/`fndecl` the interpreter executes
reads the current code cell.  A script therefore contributed to the slice
criterion iff some flagged record touches the script's region cells — the
fact the optimizer's deferral pass uses to prove (dynamically) that a
script is off the load-frame pixel path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from ..trace.store import TraceStore
from .slicer import SliceResult


def script_region_cells(engine: object) -> Dict[str, FrozenSet[int]]:
    """URL -> source-byte cell set for every fetched JS resource."""
    return _resource_cells(engine, "js")


def image_region_cells(engine: object) -> Dict[str, FrozenSet[int]]:
    """URL -> fetched-byte cell set for every fetched image resource."""
    return _resource_cells(engine, "img")


def _resource_cells(engine: object, kind: str) -> Dict[str, FrozenSet[int]]:
    cells: Dict[str, FrozenSet[int]] = {}
    for url, resource in engine.net.fetched.items():  # type: ignore[attr-defined]
        if resource.kind == kind and resource.region is not None:
            cells[url] = frozenset(resource.region.all_cells())
    return cells


def image_attribution(
    store: TraceStore,
    result: SliceResult,
    image_cells: Mapping[str, FrozenSet[int]],
) -> Dict[str, Tuple[int, int]]:
    """URL -> (flagged, total) records touching each image's byte cells.

    ``total`` counts every trace record (fetch, decode, raster) that read
    or wrote the image's cells; ``flagged`` counts those in the pixel
    slice.  ``flagged == 0`` with ``total > 0`` is the optimizer's
    evidence that an image was fetched and decoded but never rastered
    into a drawn tile — the elide-image pass's eligibility test.
    """
    flags = result.flags
    counts: Dict[str, Tuple[int, int]] = {
        url: (0, 0) for url in image_cells
    }
    for i in range(len(store)):
        record = store[i]
        touched = set(record.mem_read) | set(record.mem_written)
        if not touched:
            continue
        for url, cells in image_cells.items():
            if not touched.isdisjoint(cells):
                flagged, total = counts[url]
                counts[url] = (flagged + (1 if flags[i] else 0), total + 1)
    return counts


def script_attribution(
    store: TraceStore,
    result: SliceResult,
    script_cells: Mapping[str, FrozenSet[int]],
    indices: Iterable[int] = None,
) -> Dict[str, int]:
    """Count flagged records touching each script's source-byte cells.

    ``indices`` restricts the scan (e.g. to the load-frame prefix);
    by default every flagged record in the slice is attributed.  A
    record touching two scripts' cells counts for both — attribution
    measures reach, not a partition.
    """
    counts: Dict[str, int] = {url: 0 for url in script_cells}
    flags = result.flags
    if indices is None:
        indices = (i for i in range(len(store)) if flags[i])
    for i in indices:
        if not flags[i]:
            continue
        record = store[i]
        touched = set(record.mem_read) | set(record.mem_written)
        if not touched:
            continue
        for url, cells in script_cells.items():
            if not touched.isdisjoint(cells):
                counts[url] += 1
    return counts
