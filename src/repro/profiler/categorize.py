"""Categorization of potentially unnecessary computations (Figure 5).

The paper examines the function each non-slice instruction belongs to and
uses the *namespace* of the function as the basis for categorization
(Section V-B).  Instructions in functions without a namespace cannot be
categorized — which is why only 53-74% of non-slice instructions are
categorized per benchmark.

Categories (paper order): JavaScript, Debugging, IPC, Multi-threading,
Compositing, Graphics, CSS, Other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..trace.store import TraceStore
from .slicer import SliceResult

#: Paper category names, in the order Figure 5 lists them.
CATEGORIES: Tuple[str, ...] = (
    "JavaScript",
    "Debugging",
    "IPC",
    "Multi-threading",
    "Compositing",
    "Graphics",
    "CSS",
    "Other",
)

#: Ordered (namespace prefix, category) rules.  First match wins, so more
#: specific prefixes come first.  The namespaces mirror Chromium's layout:
#: v8 is the JavaScript engine, cc the compositor, blink::paint/skia the
#: paint/raster graphics stack, blink::css/style/layout the style engine,
#: base::debug/trace_event the built-in debugging machinery, ipc/mojo the
#: inter-process communication layer, and base::synchronization +
#: base::threading the PThread-level multi-threading support.
NAMESPACE_RULES: Tuple[Tuple[str, str], ...] = (
    ("v8", "JavaScript"),
    ("blink::bindings", "JavaScript"),
    ("base::debug", "Debugging"),
    ("base::trace_event", "Debugging"),
    ("ipc", "IPC"),
    ("mojo", "IPC"),
    ("base::synchronization", "Multi-threading"),
    ("base::threading", "Multi-threading"),
    ("pthread", "Multi-threading"),
    ("cc", "Compositing"),
    ("blink::paint", "Graphics"),
    ("skia", "Graphics"),
    ("gfx", "Graphics"),
    ("blink::css", "CSS"),
    ("blink::style", "CSS"),
    ("blink::layout", "CSS"),
    ("base::message_loop", "Other"),
    ("base::task", "Other"),
    ("base::metrics", "Other"),
    ("blink::scheduler", "Other"),
)


def categorize_symbol(qualified_name: str) -> Optional[str]:
    """Category of a function name, or ``None`` when uncategorizable.

    Matching is on ``::``-separated namespace components, so the rule
    ``"cc"`` matches ``cc::TileManager::Run`` but not ``ccache_lookup``.
    As in the paper, only the namespaces hand-mapped to the eight
    categories are categorizable: plain C-style names (``memcpy``) and
    namespaces outside the mapping (``net::``, ``blink::html``) are not —
    which is why the paper could categorize only 53-74% of non-slice
    instructions per benchmark.
    """
    if "::" not in qualified_name:
        return None
    for prefix, category in NAMESPACE_RULES:
        if qualified_name == prefix or qualified_name.startswith(prefix + "::"):
            return category
    return None


@dataclass
class CategoryDistribution:
    """Distribution of non-slice instructions across paper categories."""

    #: category -> number of non-slice instructions
    counts: Dict[str, int]
    #: non-slice instructions whose function has no namespace
    uncategorized: int
    #: total non-slice instructions examined
    total_unnecessary: int

    @property
    def categorized(self) -> int:
        return self.total_unnecessary - self.uncategorized

    @property
    def categorized_fraction(self) -> float:
        """The paper's "results include X% of the benchmark" number."""
        if not self.total_unnecessary:
            return 0.0
        return self.categorized / self.total_unnecessary

    def share(self, category: str) -> float:
        """Share of ``category`` among *categorized* non-slice instructions."""
        if not self.categorized:
            return 0.0
        return self.counts.get(category, 0) / self.categorized

    def shares(self) -> List[Tuple[str, float]]:
        """(category, share) pairs in the paper's category order."""
        return [(cat, self.share(cat)) for cat in CATEGORIES]

    def dominant_category(self) -> str:
        return max(CATEGORIES, key=lambda cat: self.counts.get(cat, 0))


def categorize_unnecessary(
    store: TraceStore, result: SliceResult
) -> CategoryDistribution:
    """Categorize every instruction *outside* the slice by namespace."""
    # Pre-compute category per symbol id (symbols are few, records many).
    sym_category: List[Optional[str]] = [
        categorize_symbol(name) for _, name in store.symbols
    ]
    counts: Dict[str, int] = {cat: 0 for cat in CATEGORIES}
    uncategorized = 0
    total = 0
    flags = result.flags
    for i, rec in enumerate(store.forward()):
        if flags[i]:
            continue
        total += 1
        category = sym_category[rec.fn]
        if category is None:
            uncategorized += 1
        else:
            counts[category] += 1
    return CategoryDistribution(
        counts=counts, uncategorized=uncategorized, total_unnecessary=total
    )
