"""Control dependence graph (forward pass, part 3).

Implements the Ferrante-Ottenstein-Warren construction: node ``n`` is
control dependent on branch ``a`` iff ``a`` has a successor ``b`` such that
``n`` postdominates ``b`` (or ``n == b``) but ``n`` does not postdominate
``a``.  Operationally: for every CFG edge ``(a, b)`` where ``b`` does not
postdominate ``a``, every node on the postdominator-tree path from ``b`` up
to (but excluding) ``ipdom(a)`` is control dependent on ``a``.

The result — a ``pc -> (branch pcs)`` map — is what the backward pass
consults when an instruction joins the slice (paper Section III-B), and it
can be computed once and reused across different slicing criteria (paper
Section III-A notes the CDG may be stored in stable storage).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from .cfg import FunctionCFG, VIRTUAL_EXIT
from .postdom import immediate_postdominators


def control_dependences(cfg: FunctionCFG) -> Dict[int, Tuple[int, ...]]:
    """Compute the control-dependence map for one function CFG."""
    ipdom = immediate_postdominators(cfg)
    cd: Dict[int, set] = {}

    for a in cfg.nodes():
        succs = cfg.succs[a]
        if len(succs) < 2:
            continue  # not a decision point
        stop = ipdom.get(a)
        if stop is None:
            continue  # exit-unreachable branch in a pathological trace
        for b in succs:
            node = b
            # Walk the postdominator tree from b toward the root, marking
            # every node strictly below ipdom(a) as control dependent on a.
            while node != stop and node != VIRTUAL_EXIT:
                cd.setdefault(node, set()).add(a)
                parent = ipdom.get(node)
                if parent is None or parent == node:
                    break
                node = parent

    return {pc: tuple(sorted(branches)) for pc, branches in cd.items()}


class ControlDependenceIndex:
    """Trace-wide control-dependence lookup, built from all function CFGs.

    PCs are globally unique (each function owns a disjoint pc range), so the
    per-function maps merge into one flat dictionary.
    """

    def __init__(self, cfgs: Mapping[int, FunctionCFG]) -> None:
        self._cd: Dict[int, Tuple[int, ...]] = {}
        self._cfgs = dict(cfgs)
        for cfg in cfgs.values():
            self._cd.update(control_dependences(cfg))

    def deps_of(self, pc: int) -> Tuple[int, ...]:
        """Branch pcs that ``pc`` is (intraprocedurally) control dependent on."""
        return self._cd.get(pc, ())

    def cfgs(self) -> Dict[int, FunctionCFG]:
        return self._cfgs

    def __len__(self) -> int:
        return len(self._cd)


def build_index(records: Iterable) -> ControlDependenceIndex:
    """Build the full control-dependence index from a record stream."""
    from .cfg import build_cfgs

    return ControlDependenceIndex(build_cfgs(records))


# --------------------------------------------------------------------- #
# Stable storage                                                        #
# --------------------------------------------------------------------- #

_CDG_HEADER = b"UCWACDG1\n"


def save_index(index: ControlDependenceIndex, path) -> None:
    """Persist the pc -> branch-pcs map (paper Section III-A: the CDG may
    be stored in stable storage and reused across slicing criteria)."""
    import struct
    from pathlib import Path

    chunks = [_CDG_HEADER, struct.pack("<I", len(index._cd))]
    for pc, branches in index._cd.items():
        chunks.append(struct.pack("<QH", pc, len(branches)))
        chunks.append(struct.pack(f"<{len(branches)}Q", *branches))
    Path(path).write_bytes(b"".join(chunks))


def load_index(path) -> ControlDependenceIndex:
    """Load a persisted control-dependence index."""
    import struct
    from pathlib import Path

    data = Path(path).read_bytes()
    if not data.startswith(_CDG_HEADER):
        raise ValueError(f"{path}: not a CDG file")
    pos = len(_CDG_HEADER)
    (count,) = struct.unpack_from("<I", data, pos)
    pos += 4
    cd = {}
    for _ in range(count):
        pc, n = struct.unpack_from("<QH", data, pos)
        pos += 10
        branches = struct.unpack_from(f"<{n}Q", data, pos)
        pos += 8 * n
        cd[pc] = tuple(branches)
    index = ControlDependenceIndex({})
    index._cd = cd
    return index
