"""Call-tree profile: self/total instruction counts with slice splits.

Reconstructs the dynamic call tree from the trace's CALL/RET structure and
aggregates, per call path, how many instructions executed and how many
joined the slice — a flame-graph-style view of where the unnecessary
computation sits, complementary to the flat per-function table in
:func:`repro.profiler.stats.per_function_fractions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..trace.records import InstrKind
from ..trace.store import TraceStore
from .slicer import SliceResult


@dataclass
class CallNode:
    """One function in the aggregated dynamic call tree."""

    fn: int
    name: str
    #: records executed directly in this function (per call path)
    self_records: int = 0
    self_sliced: int = 0
    calls: int = 0
    children: Dict[int, "CallNode"] = field(default_factory=dict)

    def total_records(self) -> int:
        return self.self_records + sum(c.total_records() for c in self.children.values())

    def total_sliced(self) -> int:
        return self.self_sliced + sum(c.total_sliced() for c in self.children.values())

    def child(self, fn: int, name: str) -> "CallNode":
        node = self.children.get(fn)
        if node is None:
            node = CallNode(fn=fn, name=name)
            self.children[fn] = node
        return node


def build_call_tree(
    store: TraceStore, result: Optional[SliceResult] = None
) -> Dict[int, CallNode]:
    """Aggregate the dynamic call tree per thread (tid -> root node).

    Calls are aggregated by function per parent node, so all invocations
    of ``f`` from the same caller share one node; direct self-recursion
    collapses into the recursive function's node (an aggregated-profile
    view, like a collapsed flame graph).
    """
    symbols = store.symbols
    flags = result.flags if result is not None else None
    roots: Dict[int, CallNode] = {}
    stacks: Dict[int, List[CallNode]] = {}

    for i, rec in enumerate(store.forward()):
        stack = stacks.get(rec.tid)
        if stack is None:
            root = CallNode(fn=rec.fn, name=symbols.name(rec.fn))
            roots[rec.tid] = root
            stack = [root]
            stacks[rec.tid] = stack
        node = stack[-1]
        if node.fn != rec.fn:
            # First record of a callee (the preceding record in this thread
            # was its CALL, which carries the caller's fn) or a truncation
            # re-base: descend into/create the child node.
            node = node.child(rec.fn, symbols.name(rec.fn))
            node.calls += 1
            stack.append(node)
        node.self_records += 1
        if flags is not None and flags[i]:
            node.self_sliced += 1
        if rec.kind == InstrKind.RET and len(stack) > 1:
            stack.pop()

    return roots


def render_call_tree(
    node: CallNode,
    max_depth: int = 4,
    min_records: int = 50,
    _depth: int = 0,
) -> List[str]:
    """Indented text rendering, heaviest subtrees first."""
    total = node.total_records()
    sliced = node.total_sliced()
    fraction = sliced / total if total else 0.0
    lines = [
        f"{'  ' * _depth}{node.name}  total={total} self={node.self_records} "
        f"useful={fraction:.0%} calls={node.calls or 1}"
    ]
    if _depth >= max_depth:
        return lines
    ordered = sorted(node.children.values(), key=lambda c: -c.total_records())
    for child in ordered:
        if child.total_records() < min_records:
            continue
        lines.extend(render_call_tree(child, max_depth, min_records, _depth + 1))
    return lines


def hottest_paths(
    roots: Dict[int, CallNode], limit: int = 10
) -> List[Tuple[str, int, int]]:
    """(path, total records, sliced records) for the heaviest leaf paths."""
    results: List[Tuple[str, int, int]] = []

    def walk(node: CallNode, path: str) -> None:
        here = f"{path}/{node.name}" if path else node.name
        results.append((here, node.total_records(), node.total_sliced()))
        for child in node.children.values():
            walk(child, here)

    for root in roots.values():
        walk(root, "")
    results.sort(key=lambda row: -row[1])
    return results[:limit]
