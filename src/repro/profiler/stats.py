"""Slice statistics (drives Table II and Figure 4).

Given a trace and a :class:`~repro.profiler.slicer.SliceResult`, compute the
paper's reported quantities: per-thread slice percentages and instruction
counts, per-function aggregation, windowed statistics (e.g. "how many
load-time instructions are in the full-session slice"), and the
backward-pass timeline series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..trace.store import TraceStore
from .slicer import SliceResult


@dataclass(frozen=True)
class ThreadStat:
    """Slice statistics of one thread."""

    tid: int
    name: str
    total: int
    in_slice: int

    @property
    def fraction(self) -> float:
        return self.in_slice / self.total if self.total else 0.0


@dataclass
class SliceStatistics:
    """Aggregated statistics of one slicing run over one trace."""

    criteria_name: str
    total: int
    in_slice: int
    threads: Tuple[ThreadStat, ...]

    @property
    def fraction(self) -> float:
        return self.in_slice / self.total if self.total else 0.0

    def thread_by_name(self, name: str) -> Optional[ThreadStat]:
        for stat in self.threads:
            if stat.name == name:
                return stat
        return None

    def threads_by_prefix(self, prefix: str) -> List[ThreadStat]:
        return [stat for stat in self.threads if stat.name.startswith(prefix)]


def compute_statistics(store: TraceStore, result: SliceResult) -> SliceStatistics:
    """Per-thread and overall slice statistics.

    Columnar traces expose a vectorized ``thread_slice_counts`` hook (two
    ``bincount`` calls over the tid column); row stores take the record
    walk below.
    """
    flags = result.flags
    fast = getattr(store, "thread_slice_counts", None)
    if fast is not None:
        totals, sliced = fast(flags)
    else:
        totals = {}
        sliced = {}
        for i, rec in enumerate(store.forward()):
            totals[rec.tid] = totals.get(rec.tid, 0) + 1
            if flags[i]:
                sliced[rec.tid] = sliced.get(rec.tid, 0) + 1

    names = store.metadata.thread_names
    threads = tuple(
        ThreadStat(
            tid=tid,
            name=names.get(tid, f"thread-{tid}"),
            total=totals[tid],
            in_slice=sliced.get(tid, 0),
        )
        for tid in sorted(totals)
    )
    return SliceStatistics(
        criteria_name=result.criteria_name,
        total=len(flags),
        in_slice=sum(sliced.values()),
        threads=threads,
    )


def windowed_fraction(
    result: SliceResult, start: int = 0, end: Optional[int] = None
) -> float:
    """Fraction of records in ``[start, end)`` that belong to the slice.

    Used for the paper's Bing experiment: with the full-session slice, what
    fraction of *load-time* instructions (the prefix up to the
    load-complete marker) turned out useful.
    """
    flags = result.flags
    if end is None:
        end = len(flags)
    span = end - start
    if span <= 0:
        return 0.0
    return sum(flags[start:end]) / span


def per_function_fractions(
    store: TraceStore, result: SliceResult, min_records: int = 1
) -> List[Tuple[str, int, int]]:
    """Per-function (name, total, in-slice) triples, descending by total."""
    totals: Dict[int, int] = {}
    sliced: Dict[int, int] = {}
    flags = result.flags
    for i, rec in enumerate(store.forward()):
        totals[rec.fn] = totals.get(rec.fn, 0) + 1
        if flags[i]:
            sliced[rec.fn] = sliced.get(rec.fn, 0) + 1
    rows = [
        (store.symbols.name(fn), count, sliced.get(fn, 0))
        for fn, count in totals.items()
        if count >= min_records
    ]
    rows.sort(key=lambda row: -row[1])
    return rows


def timeline_series(result: SliceResult, main: bool = False) -> List[Tuple[int, float]]:
    """(records processed, cumulative slice fraction) series for Figure 4.

    ``x = 0`` corresponds to the end of the trace (page loaded / browsing
    session done) and the last point to entering the URL — matching the
    paper's x-axis orientation.
    """
    series = []
    for sample in result.timeline:
        x = sample.processed_main if main else sample.processed
        y = sample.fraction_main() if main else sample.fraction_all()
        series.append((x, y))
    return series
