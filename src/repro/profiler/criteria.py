"""Slicing criteria (paper Sections II-C and IV-C).

A slicing criterion is a pair *(program point, set of variables)*.  For the
web-application use case the paper defines two browser-independent criteria
families:

* **Pixels buffer** — at every dynamic point where a finished raster tile is
  written out (the marker inside ``RasterBufferProvider::PlaybackToMemory``),
  the tile's pixel cells become live.  Whatever never influences any
  displayed pixel is outside the slice.
* **System calls** — the values consumed by system calls, i.e. everything a
  process communicates to the outside world (network, display, audio).
  This slice is inclusive of the pixel slice.

Criteria are expressed against *record indices* of a concrete trace, which
is exactly "program point in the dynamic instruction trace".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..machine.syscalls import BY_NUMBER
from ..trace.records import InstrKind
from ..trace.store import TraceStore


@dataclass(frozen=True)
class Criterion:
    """One *(program point, set of variables)* pair.

    Attributes:
        index: record index in the trace (the dynamic program point).
        cells: memory addresses that become live at this point.
        regs: (tid, register) pairs that become live at this point.
    """

    index: int
    cells: Tuple[int, ...] = ()
    regs: Tuple[Tuple[int, int], ...] = ()


@dataclass
class SlicingCriteria:
    """A full criteria set handed to the backward pass.

    Attributes:
        name: human-readable criteria family name.
        criteria: the individual (point, variables) pairs.
        include_syscalls: when True every SYSCALL record is itself treated
            as a slice seed (its inputs become live and the record joins the
            slice) — the paper's syscall-based criteria family.
        window_end: if set, only criteria (and syscall seeds) at record
            indices <= window_end apply.  Used for the Bing partial-slice
            experiment: slice "from the time when the page was completely
            loaded back to the beginning".
    """

    name: str
    criteria: Tuple[Criterion, ...] = ()
    include_syscalls: bool = False
    window_end: Optional[int] = None

    def by_index(self) -> Dict[int, Criterion]:
        """Map record index -> criterion, honouring the window."""
        table: Dict[int, Criterion] = {}
        for crit in self.criteria:
            if self.window_end is not None and crit.index > self.window_end:
                continue
            existing = table.get(crit.index)
            if existing is None:
                table[crit.index] = crit
            else:
                table[crit.index] = Criterion(
                    index=crit.index,
                    cells=existing.cells + crit.cells,
                    regs=existing.regs + crit.regs,
                )
        return table

    def windowed(self, end_index: int) -> "SlicingCriteria":
        """Restrict the criteria to program points at or before ``end_index``."""
        return SlicingCriteria(
            name=f"{self.name}[:{end_index}]",
            criteria=self.criteria,
            include_syscalls=self.include_syscalls,
            window_end=end_index,
        )


def pixel_criteria(store: TraceStore) -> SlicingCriteria:
    """Pixel-buffer criteria from the trace's tile-marker side channel.

    Each entry of ``metadata.tile_buffers`` was logged by the instrumented
    raster stage when a tile's final pixel values had been written — the
    direct analogue of the paper's modified ``PlaybackToMemory`` plus
    external tile-address file.
    """
    crits = tuple(
        Criterion(index=index, cells=cells)
        for index, cells in store.metadata.tile_buffers
    )
    if not crits:
        raise ValueError(
            "trace has no tile markers; was the raster stage instrumented?"
        )
    return SlicingCriteria(name="pixels", criteria=crits)


def syscall_criteria(store: TraceStore) -> SlicingCriteria:
    """Syscall-based criteria: the values used by any system call."""
    return SlicingCriteria(name="syscalls", criteria=(), include_syscalls=True)


def combined_criteria(store: TraceStore) -> SlicingCriteria:
    """Pixel and syscall criteria together (the broadest useful set)."""
    pixels = pixel_criteria(store)
    return SlicingCriteria(
        name="pixels+syscalls", criteria=pixels.criteria, include_syscalls=True
    )


#: Criteria family name -> factory, the names the CLIs and the profiling
#: service accept for ``--criteria`` / the job-spec ``criteria`` field.
CRITERIA_FAMILIES = {
    "pixels": pixel_criteria,
    "syscalls": syscall_criteria,
    "pixels+syscalls": combined_criteria,
}


def criteria_names() -> Tuple[str, ...]:
    """The registered criteria family names, sorted."""
    return tuple(sorted(CRITERIA_FAMILIES))


def criteria_from_name(store: TraceStore, name: str) -> SlicingCriteria:
    """Instantiate a criteria family by name against one trace.

    Raises ``KeyError`` (with the available names in the message) for an
    unregistered family, ``ValueError`` when the family does not apply to
    the trace (e.g. pixels on a trace with no tile markers).
    """
    try:
        factory = CRITERIA_FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown criteria {name!r}; available: {', '.join(criteria_names())}"
        ) from None
    return factory(store)


def custom_criteria(
    name: str, points: Tuple[Tuple[int, Tuple[int, ...]], ...]
) -> SlicingCriteria:
    """Build ad-hoc criteria from (record index, cells) pairs.

    Exposed for library users who want to slice on their own notion of
    "important output" (e.g. a specific DOM subtree's layout cells).
    """
    return SlicingCriteria(
        name=name,
        criteria=tuple(Criterion(index=i, cells=tuple(c)) for i, c in points),
    )


def output_syscall_points(store: TraceStore) -> Tuple[int, ...]:
    """Record indices of output syscalls (sendto/write/...), for reporting."""
    points = []
    for i, rec in enumerate(store.forward()):
        if rec.kind != InstrKind.SYSCALL:
            continue
        model = BY_NUMBER.get(rec.syscall)
        if model is not None and model.is_output:
            points.append(i)
    return tuple(points)
