"""High-level profiler facade.

``Profiler`` bundles the forward pass (dynamic CFGs, postdominators,
control-dependence index — computed once, reused across criteria, as the
paper notes) with backward slicing runs and the derived statistics.

Typical use::

    from repro.profiler import Profiler
    from repro.profiler.criteria import pixel_criteria

    prof = Profiler(trace_store)
    result = prof.slice(pixel_criteria(trace_store), sample_every=10_000)
    stats = prof.statistics(result)
    print(f"pixel slice: {stats.fraction:.0%} of {stats.total} instructions")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from ..trace.store import TraceStore
from .categorize import CategoryDistribution, categorize_unnecessary
from .cdg import ControlDependenceIndex
from .cfg import build_cfgs
from .criteria import (
    SlicingCriteria,
    combined_criteria,
    criteria_from_name,
    pixel_criteria,
    syscall_criteria,
)
from .slicer import BackwardSlicer, SliceResult, SlicerOptions, DEFAULT_OPTIONS
from .stats import SliceStatistics, compute_statistics

if TYPE_CHECKING:
    from .incremental import SliceCheckpoint

#: The slicing-engine registry: every implementation ``Profiler.slice``
#: accepts.  CLIs and the service validate engine names against this one
#: tuple so a new engine lands everywhere at once.
ENGINES = ("sequential", "parallel", "vectorized", "incremental")


class Profiler:
    """Dynamic backward-slicing profiler over one instruction trace."""

    def __init__(self, store: TraceStore) -> None:
        self._store = store
        self._cdi: Optional[ControlDependenceIndex] = None
        self._checkpoint: Optional["SliceCheckpoint"] = None

    def slice_checkpoint(self) -> "SliceCheckpoint":
        """The profiler-lifetime checkpoint the incremental engine extends.

        Shared across every ``engine="incremental"`` slice of this
        profiler, so a sweep of per-frame queries (``analyze_frames``,
        the ``frames`` harness target) pays for each seedless region's
        backward run once instead of once per frame.
        """
        if self._checkpoint is None:
            from .incremental import SliceCheckpoint

            self._checkpoint = SliceCheckpoint()
        return self._checkpoint

    @property
    def store(self) -> TraceStore:
        return self._store

    def control_dependence_index(self) -> ControlDependenceIndex:
        """Run (or reuse) the forward pass: CFGs + postdominators + CDG."""
        if self._cdi is None:
            self._cdi = ControlDependenceIndex(build_cfgs(self._store.forward()))
        return self._cdi

    def slice(
        self,
        criteria: SlicingCriteria,
        sample_every: Optional[int] = None,
        main_tid: Optional[int] = None,
        options: SlicerOptions = DEFAULT_OPTIONS,
        engine: str = "sequential",
        workers: Optional[int] = None,
        epoch_size: Optional[int] = None,
        checkpoint: Optional["SliceCheckpoint"] = None,
    ) -> SliceResult:
        """Run the backward pass for ``criteria``.

        ``engine`` selects the implementation: ``"sequential"`` (default,
        single in-process pass), ``"parallel"`` (epoch-sharded fixpoint
        across ``workers`` processes; see ``docs/parallel-slicing.md``),
        ``"vectorized"`` (array-join closure over a columnar trace;
        converts row stores on entry), or ``"incremental"``
        (frame-region memoization against a checkpoint; see
        ``docs/incremental-slicing.md``).  All produce identical
        sliced-record sets.  ``workers`` defaults to
        ``REPRO_SLICER_WORKERS`` or the CPU allowance; ``epoch_size``
        overrides the automatic trace split (parallel engine only);
        ``checkpoint`` overrides the profiler-lifetime checkpoint
        (incremental engine only).
        """
        if engine == "sequential":
            slicer = BackwardSlicer(
                self._store,
                self.control_dependence_index(),
                criteria,
                sample_every=sample_every,
                main_tid=main_tid,
                options=options,
            )
            return slicer.run()
        if engine == "parallel":
            from .parallel import ParallelSlicer

            return ParallelSlicer(
                self._store,
                self.control_dependence_index(),
                criteria,
                workers=workers,
                epoch_size=epoch_size,
                sample_every=sample_every,
                main_tid=main_tid,
                options=options,
            ).run()
        if engine == "vectorized":
            from .vectorized import VectorizedSlicer

            # The CDI is passed lazily: a columnar trace carrying a stored
            # slice index never needs the forward CDG pass under default
            # options, which is most of the cold-slice win.
            return VectorizedSlicer(
                self._store,
                self._cdi,
                criteria,
                sample_every=sample_every,
                main_tid=main_tid,
                options=options,
                cdi_provider=self.control_dependence_index,
            ).run()
        if engine == "incremental":
            from .incremental import IncrementalSlicer

            return IncrementalSlicer(
                self._store,
                self.control_dependence_index(),
                criteria,
                checkpoint=(
                    checkpoint if checkpoint is not None else self.slice_checkpoint()
                ),
                sample_every=sample_every,
                main_tid=main_tid,
                options=options,
            ).run()
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )

    def pixel_slice(
        self, sample_every: Optional[int] = None, engine: str = "sequential", **kwargs
    ) -> SliceResult:
        """Slice on the pixels-buffer criteria (the paper's headline run)."""
        return self.slice(
            pixel_criteria(self._store),
            sample_every=sample_every,
            engine=engine,
            **kwargs,
        )

    def syscall_slice(
        self, sample_every: Optional[int] = None, engine: str = "sequential", **kwargs
    ) -> SliceResult:
        """Slice on the syscall criteria."""
        return self.slice(
            syscall_criteria(self._store),
            sample_every=sample_every,
            engine=engine,
            **kwargs,
        )

    def combined_slice(
        self, sample_every: Optional[int] = None, engine: str = "sequential", **kwargs
    ) -> SliceResult:
        """Slice on pixels + syscalls together."""
        return self.slice(
            combined_criteria(self._store),
            sample_every=sample_every,
            engine=engine,
            **kwargs,
        )

    def statistics(self, result: SliceResult) -> SliceStatistics:
        """Per-thread and overall statistics of a slice."""
        return compute_statistics(self._store, result)

    def categorize(self, result: SliceResult) -> CategoryDistribution:
        """Namespace categorization of the non-slice instructions."""
        return categorize_unnecessary(self._store, result)


# --------------------------------------------------------------------- #
# Pure job entry points (the profiling service's unit of work)          #
# --------------------------------------------------------------------- #


def job_criteria(
    store: TraceStore, criteria: str = "pixels", frame: Optional[int] = None
) -> SlicingCriteria:
    """Instantiate a named criteria family, optionally scoped to a frame.

    ``frame`` selects one complete frame epoch by position (0 = load
    frame): pixel points are restricted to tiles rastered inside the
    span and the criteria are windowed to the frame's last record, so
    the slice answers "what fed *this* frame's output".  Raises
    ``KeyError`` for an unknown family and ``ValueError`` for an
    out-of-range frame or a criteria family the trace cannot support.
    """
    if frame is None:
        return criteria_from_name(store, criteria)
    spans = store.frame_spans()
    if frame < 0 or frame >= len(spans):
        raise ValueError(
            f"frame {frame} out of range; trace has {len(spans)} complete frames"
        )
    span = spans[frame]
    from .redundancy import frame_pixel_criteria

    if criteria == "pixels":
        return frame_pixel_criteria(store, span)
    base = criteria_from_name(store, criteria)
    in_span = tuple(
        crit for crit in base.criteria if span.begin <= crit.index <= span.end
    )
    return SlicingCriteria(
        name=f"{criteria}:frame{span.frame_id}",
        criteria=in_span,
        include_syscalls=base.include_syscalls,
        window_end=span.end,
    )


def run_slice_job(
    store: TraceStore,
    criteria: str = "pixels",
    engine: str = "sequential",
    workers: Optional[int] = None,
    frame: Optional[int] = None,
    sample_every: Optional[int] = None,
    options: SlicerOptions = DEFAULT_OPTIONS,
    checkpoint: Optional["SliceCheckpoint"] = None,
) -> Tuple[SliceResult, SliceStatistics]:
    """Run one profiling job: slice ``store`` and compute its statistics.

    This is the pure, side-effect-free entry point the profiling service
    executes in its worker processes (and what ``python -m repro.trace
    slice`` drives): everything a job needs arrives as arguments, and the
    full outcome is in the return value, so the call is safe to retry,
    cache, or run in a throwaway process.  ``checkpoint`` carries
    incremental-engine state across jobs of the same trace (the service
    persists it next to its result cache, so successive frame submits of
    one trace digest pay only the per-frame delta).
    """
    profiler = Profiler(store)
    result = profiler.slice(
        job_criteria(store, criteria, frame),
        sample_every=sample_every,
        engine=engine,
        workers=workers,
        options=options,
        checkpoint=checkpoint,
    )
    return result, profiler.statistics(result)
