"""Dynamic backward slicing (the backward pass, paper Section III-B).

The slicer walks the trace from the end to the beginning, maintaining:

* a **live memory set**, shared by all threads (threads of the tab process
  share one address space);
* one **live register set per thread** (each thread has its own
  architectural context);
* one **pending branch set per thread**: when an instruction joins the
  slice, every branch it is control dependent on (CDG lookup) is marked
  pending; the first dynamic instance of a pending branch met while walking
  backward is the nearest preceding instance — it joins the slice and its
  condition becomes live;
* per-thread **frame reconstruction** for dynamic call-site control
  dependence: when any instruction of a function invocation joins the
  slice, the invocation's CALL (and matching RET) join the slice too, so
  the call overhead of useful functions counts as useful and the inclusion
  propagates transitively toward the thread root.

Data dependences are discovered by liveness analysis, exactly as in the
paper: an instruction that writes a live location joins the slice, its
writes are killed and its reads become live.  Because the trace carries
exact addresses, there is no aliasing imprecision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..machine.syscalls import BY_NUMBER
from ..trace.records import InstrKind
from ..trace.store import TraceStore
from .cdg import ControlDependenceIndex
from .criteria import SlicingCriteria


@dataclass
class TimelineSample:
    """One sample of backward-pass progress (drives Figure 4).

    Attributes:
        processed: records processed so far (all threads).
        in_slice: of those, how many joined the slice.
        processed_main: records processed belonging to the main thread.
        in_slice_main: of those, how many joined the slice.
    """

    processed: int
    in_slice: int
    processed_main: int
    in_slice_main: int

    def fraction_all(self) -> float:
        return self.in_slice / self.processed if self.processed else 0.0

    def fraction_main(self) -> float:
        return self.in_slice_main / self.processed_main if self.processed_main else 0.0


@dataclass(frozen=True)
class SlicerOptions:
    """Ablation/diagnostic switches of the backward pass.

    Disabling a mechanism quantifies its contribution to the slice (the
    ablation benches use these); ``track_reasons`` records, for every
    sliced record, why it joined.
    """

    #: follow control dependences (pending-branch mechanism, Section III-B)
    control_dependences: bool = True
    #: include CALL/RET of invocations whose body joined the slice
    call_site_dependences: bool = True
    #: record a (kind, detail) join reason per sliced record
    track_reasons: bool = False


DEFAULT_OPTIONS = SlicerOptions()


@dataclass
class SliceResult:
    """Output of one backward slicing run."""

    criteria_name: str
    flags: bytearray  # flags[i] == 1 iff record i is in the slice
    timeline: List[TimelineSample] = field(default_factory=list)
    #: number of records actually visited (== len(flags) unless windowed)
    visited: int = 0
    #: record index -> (reason kind, detail), when reasons were tracked.
    #: kinds: "data" (a written cell was live), "register", "control"
    #: (pending branch), "call" (needed invocation; both the CALL and its
    #: retroactively-flagged RET carry this kind), "syscall" (criteria).
    #: When tracking is on, every sliced record has exactly one entry, so
    #: the per-kind counts sum to the slice size.
    reasons: Optional[Dict[int, Tuple[str, int]]] = None
    #: engine diagnostics ("engine", and for the parallel engine: workers,
    #: epochs, rounds, epoch_runs, pass_throughs); empty for sequential runs.
    engine_stats: Dict[str, object] = field(default_factory=dict)

    def __contains__(self, index: int) -> bool:
        return bool(self.flags[index])

    def slice_size(self) -> int:
        return sum(self.flags)

    def total(self) -> int:
        return len(self.flags)

    def fraction(self) -> float:
        return self.slice_size() / len(self.flags) if self.flags else 0.0

    def indices(self) -> List[int]:
        """Record indices in the slice, ascending."""
        return [i for i, flag in enumerate(self.flags) if flag]


class _BackwardFrame:
    """A function invocation context reconstructed while walking backward."""

    __slots__ = ("fn", "ret_index", "needed", "is_root")

    def __init__(self, fn: int, ret_index: Optional[int], is_root: bool = False) -> None:
        self.fn = fn
        self.ret_index = ret_index
        self.needed = False
        self.is_root = is_root


class BackwardSlicer:
    """Runs the backward pass for one criteria set over one trace."""

    def __init__(
        self,
        store: TraceStore,
        cdi: ControlDependenceIndex,
        criteria: SlicingCriteria,
        sample_every: Optional[int] = None,
        main_tid: Optional[int] = None,
        options: SlicerOptions = DEFAULT_OPTIONS,
    ) -> None:
        self._store = store
        self._cdi = cdi
        self._criteria = criteria
        self._sample_every = sample_every
        self._options = options
        meta_main = store.metadata.main_thread_id()
        self._main_tid = main_tid if main_tid is not None else meta_main

    def run(self) -> SliceResult:
        store = self._store
        records = store.records()
        n = len(records)
        flags = bytearray(n)
        result = SliceResult(criteria_name=self._criteria.name, flags=flags)

        crit_by_index = self._criteria.by_index()
        include_syscalls = self._criteria.include_syscalls
        window_end = self._criteria.window_end
        options = self._options
        deps_of = self._cdi.deps_of if options.control_dependences else (lambda pc: ())
        reasons: Optional[Dict[int, Tuple[str, int]]] = (
            {} if options.track_reasons else None
        )
        if reasons is not None:
            result.reasons = reasons

        live_mem: Set[int] = set()
        live_regs: Dict[int, Set[int]] = {}
        pending: Dict[int, Set[int]] = {}
        stacks: Dict[int, List[_BackwardFrame]] = {}

        processed = 0
        in_slice_count = 0
        processed_main = 0
        in_slice_main = 0
        main_tid = self._main_tid
        sample_every = self._sample_every

        for i in range(n - 1, -1, -1):
            rec = records[i]
            tid = rec.tid

            # -- criteria seeding -------------------------------------- #
            crit = crit_by_index.get(i)
            if crit is not None:
                live_mem.update(crit.cells)
                for reg_tid, reg in crit.regs:
                    live_regs.setdefault(reg_tid, set()).add(reg)

            # -- backward frame reconstruction ------------------------- #
            stack = stacks.setdefault(tid, [])
            kind = rec.kind
            if kind == InstrKind.RET:
                stack.append(_BackwardFrame(rec.fn, ret_index=i))
                processed += 1
                if tid == main_tid:
                    processed_main += 1
                if sample_every and processed % sample_every == 0:
                    result.timeline.append(
                        TimelineSample(processed, in_slice_count, processed_main, in_slice_main)
                    )
                continue

            if not stack:
                stack.append(_BackwardFrame(rec.fn, ret_index=None, is_root=True))
            elif stack[-1].fn != rec.fn and kind != InstrKind.CALL:
                # Frame entered but never returned before trace truncation.
                stack.append(_BackwardFrame(rec.fn, ret_index=None, is_root=True))

            frame = stack[-1]
            tregs = live_regs.get(tid)
            tpending = pending.get(tid)

            in_slice = False
            reason: Tuple[str, int] = ("data", -1)

            if kind == InstrKind.CALL:
                # Close the callee frame (pushed when its RET was met, or a
                # synthetic root for truncated invocations).
                callee: Optional[_BackwardFrame] = None
                if stack and (not stack[-1].is_root or stack[-1].fn != rec.fn):
                    callee = stack.pop()
                if callee is not None and callee.needed and options.call_site_dependences:
                    in_slice = True
                    reason = ("call", callee.fn)
                    if callee.ret_index is not None and not flags[callee.ret_index]:
                        flags[callee.ret_index] = 1
                        in_slice_count += 1
                        if tid == main_tid:
                            in_slice_main += 1
                        if reasons is not None:
                            # The RET joins retroactively, paired with this
                            # CALL; without a reason entry here the reason
                            # counts would not sum to the slice size.
                            reasons[callee.ret_index] = ("call", callee.fn)
                # The frame the CALL itself belongs to:
                if not stack:
                    stack.append(_BackwardFrame(rec.fn, ret_index=None, is_root=True))
                frame = stack[-1]
            elif kind == InstrKind.BRANCH:
                if tpending and rec.pc in tpending:
                    in_slice = True
                    reason = ("control", rec.pc)
                    tpending.discard(rec.pc)
            elif kind == InstrKind.SYSCALL:
                if include_syscalls and (window_end is None or i <= window_end):
                    in_slice = True
                    reason = ("syscall", rec.syscall or 0)

            # -- liveness rule (data dependences) ---------------------- #
            if not in_slice:
                for addr in rec.mem_written:
                    if addr in live_mem:
                        in_slice = True
                        reason = ("data", addr)
                        break
                if not in_slice and tregs:
                    for reg in rec.regs_written:
                        if reg in tregs:
                            in_slice = True
                            reason = ("register", reg)
                            break

            if in_slice:
                # Kill definitions, gen uses.
                if rec.mem_written:
                    live_mem.difference_update(rec.mem_written)
                if rec.regs_written:
                    if tregs is None:
                        tregs = live_regs.setdefault(tid, set())
                    tregs.difference_update(rec.regs_written)
                if rec.mem_read:
                    live_mem.update(rec.mem_read)
                if rec.regs_read:
                    if tregs is None:
                        tregs = live_regs.setdefault(tid, set())
                    tregs.update(rec.regs_read)
                # Control dependences become pending.
                cdeps = deps_of(rec.pc)
                if cdeps:
                    if tpending is None:
                        tpending = pending.setdefault(tid, set())
                    tpending.update(cdeps)
                # Dynamic call-site dependence: this invocation is useful.
                frame.needed = True
                if reasons is not None:
                    reasons[i] = reason
                if not flags[i]:
                    flags[i] = 1
                    in_slice_count += 1
                    if tid == main_tid:
                        in_slice_main += 1

            processed += 1
            if tid == main_tid:
                processed_main += 1
            if sample_every and processed % sample_every == 0:
                result.timeline.append(
                    TimelineSample(processed, in_slice_count, processed_main, in_slice_main)
                )

        result.visited = processed
        if sample_every:
            result.timeline.append(
                TimelineSample(processed, in_slice_count, processed_main, in_slice_main)
            )
        return result


def slice_trace(
    store: TraceStore,
    criteria: SlicingCriteria,
    cdi: Optional[ControlDependenceIndex] = None,
    sample_every: Optional[int] = None,
    engine: str = "sequential",
    workers: Optional[int] = None,
    epoch_size: Optional[int] = None,
    checkpoint=None,
) -> SliceResult:
    """One-call convenience: forward pass (if needed) + backward pass."""
    if cdi is None:
        from .cdg import build_index

        cdi = build_index(store.forward())
    if engine == "parallel":
        from .parallel import ParallelSlicer

        return ParallelSlicer(
            store,
            cdi,
            criteria,
            workers=workers,
            epoch_size=epoch_size,
            sample_every=sample_every,
        ).run()
    if engine == "vectorized":
        from .vectorized import VectorizedSlicer

        return VectorizedSlicer(
            store, cdi, criteria, sample_every=sample_every
        ).run()
    if engine == "incremental":
        from .incremental import IncrementalSlicer

        return IncrementalSlicer(
            store, cdi, criteria, checkpoint=checkpoint, sample_every=sample_every
        ).run()
    if engine != "sequential":
        raise ValueError(
            f"unknown engine {engine!r}; expected 'sequential', 'parallel', "
            f"'vectorized', or 'incremental'"
        )
    return BackwardSlicer(store, cdi, criteria, sample_every=sample_every).run()
