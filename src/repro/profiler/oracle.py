"""Reference backward slicer: direct transitive closure, no cleverness.

This module exists to *check* the real slicers, not to be fast.  It
formulates the backward slice the textbook way — as a reachability
closure over explicit dependence edges — instead of the streaming
liveness pass used by :mod:`.slicer` and :mod:`.parallel`:

* **data**: a joined record's memory reads depend on the latest earlier
  writer of each cell (any thread); register reads on the latest earlier
  writer in the same thread.  Looked up by binary search over
  precomputed per-cell / per-register writer index lists.
* **control**: a joined record depends on the nearest preceding dynamic
  instance (same thread) of every branch in its static
  control-dependence set.
* **call-site**: when any record of a dynamic invocation joins, the
  invocation's CALL joins as a normal record (so the dependence
  propagates to the caller) and its RET is flagged without generating
  further dependences — mirroring the sequential pass, where RETs skip
  the gen/kill step entirely.

The closure provably matches the liveness formulation: the liveness pass
flags a writer exactly when it is the *latest* writer of a cell that some
later joined record reads (any earlier writer's cell is killed first, and
a later non-joined writer of a live cell is impossible because writing a
live cell forces a join).  The differential tests exercise this
equivalence on randomized traces against both engines.

Dynamic invocations are reconstructed by a simple forward simulation,
which assumes well-formed traces (every CALL eventually matched by its
RET or by end of trace; threads start at their root function).  Traces
produced by :class:`~repro.machine.tracer.Tracer` — including all engine
workloads and the fuzz generators — are well-formed.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..trace.records import InstrKind
from ..trace.store import TraceStore
from .cdg import ControlDependenceIndex
from .criteria import SlicingCriteria
from .slicer import DEFAULT_OPTIONS, SliceResult, SlicerOptions


class _Invocation:
    """One dynamic function invocation (a node of the dynamic call tree)."""

    __slots__ = ("fn", "call_index", "ret_index", "parent", "needed")

    def __init__(self, fn: Optional[int], call_index: Optional[int], parent) -> None:
        self.fn = fn
        self.call_index = call_index
        self.ret_index: Optional[int] = None
        self.parent = parent
        self.needed = False


class OracleSlicer:
    """Transitive-closure reference implementation of the backward pass."""

    def __init__(
        self,
        store: TraceStore,
        cdi: ControlDependenceIndex,
        criteria: SlicingCriteria,
        options: SlicerOptions = DEFAULT_OPTIONS,
    ) -> None:
        self._store = store
        self._cdi = cdi
        self._criteria = criteria
        self._options = options

    # -- dependence indexes -------------------------------------------- #

    def _build_indexes(self):
        """Writer/branch index lists (ascending) and the invocation map."""
        records = self._store.records()
        mem_writers: Dict[int, List[int]] = {}
        reg_writers: Dict[Tuple[int, int], List[int]] = {}
        branches: Dict[Tuple[int, int], List[int]] = {}
        record_inv: List[Optional[_Invocation]] = [None] * len(records)
        stacks: Dict[int, List[_Invocation]] = {}

        RET = InstrKind.RET
        CALL = InstrKind.CALL
        BRANCH = InstrKind.BRANCH

        for i, rec in enumerate(records):
            tid = rec.tid
            stack = stacks.get(tid)
            if stack is None:
                stack = stacks[tid] = [_Invocation(rec.fn, None, None)]
            top = stack[-1]
            kind = rec.kind

            if kind == RET:
                # RETs close the current invocation and take no part in
                # the liveness rule, so they are left out of the writer
                # lists entirely.
                if top.fn is None:
                    top.fn = rec.fn
                top.ret_index = i
                record_inv[i] = top
                stack.pop()
                if not stack:
                    stack.append(_Invocation(None, None, None))
                continue

            if top.fn is None:
                top.fn = rec.fn
            elif top.fn != rec.fn and kind != CALL:
                # Entered before the trace started (truncated frame).
                top = _Invocation(rec.fn, None, top)
                stack.append(top)

            record_inv[i] = top
            if kind == CALL:
                stack.append(_Invocation(None, i, top))
            elif kind == BRANCH:
                branches.setdefault((tid, rec.pc), []).append(i)

            for addr in rec.mem_written:
                mem_writers.setdefault(addr, []).append(i)
            for reg in rec.regs_written:
                reg_writers.setdefault((tid, reg), []).append(i)

        return mem_writers, reg_writers, branches, record_inv

    # -- the closure ---------------------------------------------------- #

    def run(self) -> SliceResult:
        store = self._store
        records = store.records()
        n = len(records)
        criteria = self._criteria
        options = self._options
        mem_writers, reg_writers, branches, record_inv = self._build_indexes()
        deps_of = (
            self._cdi.deps_of if options.control_dependences else (lambda pc: ())
        )

        flags = bytearray(n)
        worklist: deque = deque()

        def join(index: int) -> None:
            if not flags[index]:
                flags[index] = 1
                worklist.append(index)

        def latest(indices: Optional[List[int]], before: int) -> Optional[int]:
            if not indices:
                return None
            pos = bisect_left(indices, before)
            return indices[pos - 1] if pos else None

        # Seeds: criteria cells/registers resolve to their latest writer at
        # or before the criterion index (the criterion is applied before
        # the record itself is processed in the streaming pass, so the
        # criterion's own record counts as a candidate writer).
        for crit in criteria.by_index().values():
            for cell in crit.cells:
                writers = mem_writers.get(cell)
                if writers:
                    pos = bisect_right(writers, crit.index)
                    if pos:
                        join(writers[pos - 1])
            for reg_tid, reg in crit.regs:
                writers = reg_writers.get((reg_tid, reg))
                if writers:
                    pos = bisect_right(writers, crit.index)
                    if pos:
                        join(writers[pos - 1])
        if criteria.include_syscalls:
            window_end = criteria.window_end
            for i, rec in enumerate(records):
                if rec.kind == InstrKind.SYSCALL and (
                    window_end is None or i <= window_end
                ):
                    join(i)

        call_site = options.call_site_dependences
        while worklist:
            i = worklist.popleft()
            rec = records[i]
            tid = rec.tid

            for addr in rec.mem_read:
                writer = latest(mem_writers.get(addr), i)
                if writer is not None:
                    join(writer)
            for reg in rec.regs_read:
                writer = latest(reg_writers.get((tid, reg)), i)
                if writer is not None:
                    join(writer)
            for dep_pc in deps_of(rec.pc):
                branch = latest(branches.get((tid, dep_pc)), i)
                if branch is not None:
                    join(branch)

            inv = record_inv[i]
            if inv is not None and not inv.needed:
                inv.needed = True
                # The CALL/RET pair joins only when a CALL exists in the
                # trace: the streaming pass flags the RET at CALL-pop time,
                # so a frame truncated at the trace start (RET but no CALL)
                # never has its RET flagged.
                if call_site and inv.call_index is not None:
                    join(inv.call_index)
                    if inv.ret_index is not None and not flags[inv.ret_index]:
                        # RETs never generate dependences of their own:
                        # flag without enqueueing.
                        flags[inv.ret_index] = 1

        result = SliceResult(criteria_name=criteria.name, flags=flags)
        result.visited = n
        result.engine_stats = {"engine": "oracle"}
        return result


def oracle_slice(
    store: TraceStore,
    criteria: SlicingCriteria,
    cdi: Optional[ControlDependenceIndex] = None,
    options: SlicerOptions = DEFAULT_OPTIONS,
) -> SliceResult:
    """One-call convenience mirroring :func:`.slicer.slice_trace`."""
    if cdi is None:
        from .cdg import build_index

        cdi = build_index(store.forward())
    return OracleSlicer(store, cdi, criteria, options=options).run()
