"""Postdominator computation (forward pass, part 2).

A node ``n`` postdominates ``m`` iff every directed path from ``m`` to the
exit contains ``n`` (paper Section III-A).  Postdominators of a CFG are the
dominators of the *reverse* CFG rooted at the virtual EXIT node, so we
implement the classic Cooper-Harvey-Kennedy iterative dominator algorithm
("A Simple, Fast Dominance Algorithm") and run it on the reversed graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .cfg import FunctionCFG, VIRTUAL_EXIT


def _postorder(root: int, succs: Dict[int, List[int]]) -> List[int]:
    """Iterative DFS postorder over ``succs`` starting at ``root``."""
    order: List[int] = []
    visited = {root}
    stack: List[tuple] = [(root, iter(succs.get(root, ())))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, iter(succs.get(nxt, ()))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    return order


def immediate_postdominators(cfg: FunctionCFG) -> Dict[int, int]:
    """Compute the immediate postdominator of every reachable node.

    Returns a map ``pc -> immediate postdominator pc`` where the virtual
    exit maps to itself.  Nodes from which the exit is unreachable (possible
    only in pathological truncated traces; ``FunctionCFG.seal`` prevents it
    for builder-produced CFGs) are absent from the result.
    """
    # Reverse graph: edges exit-ward become root-ward.  The root is
    # VIRTUAL_EXIT with edges to every observed exit node.
    rsuccs: Dict[int, List[int]] = {VIRTUAL_EXIT: sorted(cfg.exits)}
    for pc in cfg.nodes():
        rsuccs[pc] = sorted(cfg.preds[pc])

    post = _postorder(VIRTUAL_EXIT, rsuccs)
    rpo = list(reversed(post))  # reverse postorder of the reverse graph
    index = {node: i for i, node in enumerate(rpo)}

    # Predecessors in the reverse graph are successors in the CFG.
    def rpreds(node: int) -> List[int]:
        if node == VIRTUAL_EXIT:
            return []
        preds = list(cfg.succs[node])
        if node in cfg.exits:
            preds.append(VIRTUAL_EXIT)
        # In the reverse graph, an exit node's predecessor set includes
        # VIRTUAL_EXIT only via the edge we added above -- but that edge
        # goes EXIT -> node, so VIRTUAL_EXIT is a *predecessor* of node in
        # the reverse graph. (cfg.succs gives the rest.)
        return preds

    idom: Dict[int, int] = {VIRTUAL_EXIT: VIRTUAL_EXIT}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == VIRTUAL_EXIT:
                continue
            new_idom: Optional[int] = None
            for pred in rpreds(node):
                if pred in idom:
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def postdominates(ipdom: Dict[int, int], a: int, b: int) -> bool:
    """True iff ``a`` postdominates ``b`` (per the ipdom tree), a != b ok."""
    node = b
    while True:
        if node == a:
            return True
        parent = ipdom.get(node)
        if parent is None or parent == node:
            return False
        node = parent
