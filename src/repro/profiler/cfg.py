"""Dynamic control-flow graph construction (forward pass, part 1).

The profiler builds one CFG per function from the trace of dynamically
executed instructions (paper Section III-A).  Function boundaries are
identified by matching CALL and RETURN instructions; building CFGs from the
*dynamic* trace is necessary because the targets of indirect branches cannot
be derived statically.  Every CFG gets a virtual EXIT node fed by all
observed exit points (return sites, plus the last observed pc of frames that
were still live when trace collection stopped).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..trace.records import InstrKind, TraceRecord

#: Virtual exit node id, shared by every function CFG.  Real pcs are
#: positive (pc = (fn + 1) * FN_SPAN + site), so -1 can never collide.
VIRTUAL_EXIT = -1


class FunctionCFG:
    """Aggregated dynamic CFG of one function.

    All invocations of the function contribute nodes and edges; this matches
    how a static CFG would look restricted to the dynamically exercised
    paths, which is the object the paper computes postdominators on.
    """

    __slots__ = ("fn", "succs", "preds", "entries", "exits", "branch_pcs")

    def __init__(self, fn: int) -> None:
        self.fn = fn
        self.succs: Dict[int, Set[int]] = {}
        self.preds: Dict[int, Set[int]] = {}
        self.entries: Set[int] = set()
        self.exits: Set[int] = set()
        self.branch_pcs: Set[int] = set()

    def add_node(self, pc: int) -> None:
        if pc not in self.succs:
            self.succs[pc] = set()
            self.preds[pc] = set()

    def add_edge(self, src: int, dst: int) -> None:
        self.add_node(src)
        self.add_node(dst)
        self.succs[src].add(dst)
        self.preds[dst].add(src)

    def nodes(self) -> Iterable[int]:
        return self.succs.keys()

    def __len__(self) -> int:
        return len(self.succs)

    def seal(self) -> None:
        """Finalize the CFG: ensure every node can reach an exit.

        Nodes without successors are necessarily last-observed pcs of some
        path, so they are exit points.  This guarantees the virtual EXIT
        postdominates everything, which the postdominator analysis relies
        on.
        """
        for pc, succ in self.succs.items():
            if not succ:
                self.exits.add(pc)
        if not self.exits and self.succs:
            # Pure cycle with no observed exit (can only happen on heavily
            # truncated traces): treat every node as a potential exit.
            self.exits.update(self.succs.keys())


class _Frame:
    """One live invocation during forward stack reconstruction."""

    __slots__ = ("fn", "last_pc", "awaiting_callee", "call_pc")

    def __init__(self, fn: int) -> None:
        self.fn = fn
        self.last_pc: Optional[int] = None
        self.awaiting_callee = False
        self.call_pc: Optional[int] = None


class DynamicCFGBuilder:
    """Streams trace records and accumulates per-function CFGs.

    Maintains one call stack per thread; records of different threads may
    interleave arbitrarily (the trace is a single sequential stream of a
    multi-threaded process pinned to one core).
    """

    def __init__(self) -> None:
        self._cfgs: Dict[int, FunctionCFG] = {}
        self._stacks: Dict[int, List[_Frame]] = {}

    def _cfg(self, fn: int) -> FunctionCFG:
        cfg = self._cfgs.get(fn)
        if cfg is None:
            cfg = FunctionCFG(fn)
            self._cfgs[fn] = cfg
        return cfg

    def feed(self, record: TraceRecord) -> None:
        stack = self._stacks.setdefault(record.tid, [])

        if stack and stack[-1].awaiting_callee:
            # Previous record in this thread was a CALL: this record is the
            # first instruction of the callee.
            stack[-1].awaiting_callee = False
            stack.append(_Frame(record.fn))
        elif not stack:
            stack.append(_Frame(record.fn))  # thread root frame
        elif stack[-1].fn != record.fn:
            # Should not happen with balanced CALL/RET; tolerate anomalies
            # (e.g. hand-built traces) by re-basing onto a fresh frame.
            stack.append(_Frame(record.fn))

        frame = stack[-1]
        cfg = self._cfg(frame.fn)
        cfg.add_node(record.pc)
        if frame.last_pc is None:
            cfg.entries.add(record.pc)
        else:
            cfg.add_edge(frame.last_pc, record.pc)
        frame.last_pc = record.pc

        kind = record.kind
        if kind == InstrKind.BRANCH:
            cfg.branch_pcs.add(record.pc)
        elif kind == InstrKind.CALL:
            frame.awaiting_callee = True
        elif kind == InstrKind.RET:
            cfg.exits.add(record.pc)
            stack.pop()

    def finish(self) -> Dict[int, FunctionCFG]:
        """Close truncated frames and seal every CFG."""
        for stack in self._stacks.values():
            for frame in stack:
                if frame.last_pc is not None:
                    self._cfg(frame.fn).exits.add(frame.last_pc)
        for cfg in self._cfgs.values():
            cfg.seal()
        return self._cfgs


def build_cfgs(records: Iterable[TraceRecord]) -> Dict[int, FunctionCFG]:
    """Convenience wrapper: build all function CFGs from a record stream."""
    builder = DynamicCFGBuilder()
    for record in records:
        builder.feed(record)
    return builder.finish()
