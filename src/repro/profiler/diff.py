"""Slice comparison: which computations serve one criterion but not another?

The paper compares the pixel-based and syscall-based slices (Section V:
"almost the same slice") and the load-only vs full-session Bing slices.
``SliceDiff`` formalizes those comparisons for any pair of slices over the
same trace.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..trace.store import TraceStore
from .slicer import SliceResult


@dataclass
class SliceDiff:
    """Set relations between two slices of the same trace."""

    name_a: str
    name_b: str
    total: int
    both: int
    only_a: int
    only_b: int
    neither: int

    @property
    def jaccard(self) -> float:
        union = self.both + self.only_a + self.only_b
        return self.both / union if union else 1.0

    @property
    def a_subset_of_b(self) -> bool:
        return self.only_a == 0

    @property
    def b_subset_of_a(self) -> bool:
        return self.only_b == 0

    def summary(self) -> str:
        return (
            f"{self.name_a} vs {self.name_b}: both={self.both} "
            f"only-{self.name_a}={self.only_a} only-{self.name_b}={self.only_b} "
            f"neither={self.neither} (jaccard {self.jaccard:.3f})"
        )


def diff_slices(a: SliceResult, b: SliceResult) -> SliceDiff:
    """Compare two slices record-by-record."""
    if len(a.flags) != len(b.flags):
        raise ValueError(
            f"slices cover different traces ({len(a.flags)} vs {len(b.flags)} records)"
        )
    both = only_a = only_b = neither = 0
    for fa, fb in zip(a.flags, b.flags):
        if fa and fb:
            both += 1
        elif fa:
            only_a += 1
        elif fb:
            only_b += 1
        else:
            neither += 1
    return SliceDiff(
        name_a=a.criteria_name,
        name_b=b.criteria_name,
        total=len(a.flags),
        both=both,
        only_a=only_a,
        only_b=only_b,
        neither=neither,
    )


def exclusive_functions(
    store: TraceStore, a: SliceResult, b: SliceResult, limit: int = 15
) -> List[Tuple[str, int]]:
    """Functions whose records are in ``b`` but not ``a``, by count.

    For pixel-vs-syscall this lists where the "outputs that are not
    pixels" live (beacons, metrics flushes, frame swaps).
    """
    counts: Counter = Counter()
    for i, rec in enumerate(store.forward()):
        if b.flags[i] and not a.flags[i]:
            counts[store.symbols.name(rec.fn)] += 1
    return counts.most_common(limit)
