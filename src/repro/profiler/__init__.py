"""The paper's contribution: a dynamic backward-slicing profiler.

Forward pass: per-function dynamic CFGs from the instruction trace
(:mod:`.cfg`), postdominators (:mod:`.postdom`), control-dependence graph
(:mod:`.cdg`).  Backward pass: liveness-based slicing with pixel-buffer or
syscall criteria (:mod:`.criteria`, :mod:`.slicer`).  Derived outputs:
per-thread statistics and Figure-4 timelines (:mod:`.stats`), namespace
categorization of unnecessary computations (:mod:`.categorize`).
"""

from .api import Profiler
from .attribution import (
    image_attribution,
    image_region_cells,
    script_attribution,
    script_region_cells,
)
from .categorize import (
    CATEGORIES,
    CategoryDistribution,
    categorize_symbol,
    categorize_unnecessary,
)
from .cdg import ControlDependenceIndex, build_index, control_dependences
from .cfg import VIRTUAL_EXIT, DynamicCFGBuilder, FunctionCFG, build_cfgs
from .criteria import (
    CRITERIA_FAMILIES,
    Criterion,
    SlicingCriteria,
    combined_criteria,
    criteria_from_name,
    criteria_names,
    custom_criteria,
    pixel_criteria,
    syscall_criteria,
)
from .calltree import CallNode, build_call_tree, hottest_paths, render_call_tree
from .diff import SliceDiff, diff_slices, exclusive_functions
from .explain import chain_heads, explain_record, reason_summary
from .incremental import (
    IncrementalCDI,
    IncrementalFrameResult,
    IncrementalSlicer,
    SliceCheckpoint,
    StreamingSliceSession,
)
from .oracle import OracleSlicer, oracle_slice
from .parallel import ParallelSlicer, SliceFrontier, default_workers
from .postdom import immediate_postdominators, postdominates
from .redundancy import (
    FrameRedundancy,
    RedundancyReport,
    analyze_frames,
    frame_pixel_criteria,
)
from .slicer import (
    BackwardSlicer,
    DEFAULT_OPTIONS,
    SliceResult,
    SlicerOptions,
    TimelineSample,
    slice_trace,
)
from .stats import (
    SliceStatistics,
    ThreadStat,
    compute_statistics,
    per_function_fractions,
    timeline_series,
    windowed_fraction,
)

__all__ = [
    "Profiler",
    "script_attribution",
    "script_region_cells",
    "image_attribution",
    "image_region_cells",
    "DynamicCFGBuilder",
    "FunctionCFG",
    "VIRTUAL_EXIT",
    "build_cfgs",
    "immediate_postdominators",
    "postdominates",
    "FrameRedundancy",
    "RedundancyReport",
    "analyze_frames",
    "frame_pixel_criteria",
    "ControlDependenceIndex",
    "control_dependences",
    "build_index",
    "Criterion",
    "SlicingCriteria",
    "CRITERIA_FAMILIES",
    "criteria_from_name",
    "criteria_names",
    "pixel_criteria",
    "syscall_criteria",
    "combined_criteria",
    "custom_criteria",
    "BackwardSlicer",
    "ParallelSlicer",
    "SliceFrontier",
    "default_workers",
    "IncrementalSlicer",
    "IncrementalCDI",
    "IncrementalFrameResult",
    "SliceCheckpoint",
    "StreamingSliceSession",
    "OracleSlicer",
    "oracle_slice",
    "SlicerOptions",
    "DEFAULT_OPTIONS",
    "SliceResult",
    "TimelineSample",
    "slice_trace",
    "SliceStatistics",
    "ThreadStat",
    "compute_statistics",
    "windowed_fraction",
    "per_function_fractions",
    "timeline_series",
    "SliceDiff",
    "diff_slices",
    "exclusive_functions",
    "CallNode",
    "build_call_tree",
    "render_call_tree",
    "hottest_paths",
    "explain_record",
    "reason_summary",
    "chain_heads",
    "CATEGORIES",
    "CategoryDistribution",
    "categorize_symbol",
    "categorize_unnecessary",
]
