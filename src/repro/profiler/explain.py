"""Slice provenance: human-readable explanations of why records joined.

Run the slicer with ``SlicerOptions(track_reasons=True)`` and use
:func:`explain_record` / :func:`reason_summary` to inspect the result —
useful when auditing why a supposedly-wasted computation ended up in the
slice (or vice versa).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..machine.syscalls import BY_NUMBER
from ..trace.store import TraceStore
from .slicer import SliceResult


def explain_record(store: TraceStore, result: SliceResult, index: int) -> str:
    """One-line explanation for record ``index``."""
    rec = store.records()[index]
    fn_name = store.symbols.name(rec.fn)
    if not result.flags[index]:
        return f"record {index} ({fn_name}): not in the slice"
    if result.reasons is None:
        return (
            f"record {index} ({fn_name}): in the slice "
            "(re-run with track_reasons=True for the cause)"
        )
    kind, detail = result.reasons.get(index, ("data", -1))
    if kind == "data":
        return (
            f"record {index} ({fn_name}): wrote live memory cell {detail:#x}"
        )
    if kind == "register":
        return f"record {index} ({fn_name}): wrote live register r{detail}"
    if kind == "control":
        return (
            f"record {index} ({fn_name}): branch at pc {detail:#x} controls a "
            "sliced instruction"
        )
    if kind == "call":
        callee = store.symbols.name(detail) if 0 <= detail < len(store.symbols) else "?"
        return f"record {index} ({fn_name}): call into needed invocation of {callee}"
    if kind == "syscall":
        model = BY_NUMBER.get(detail)
        name = model.name if model else str(detail)
        return f"record {index} ({fn_name}): syscall {name} seeds the criteria"
    return f"record {index} ({fn_name}): in the slice ({kind})"


def reason_summary(result: SliceResult) -> Dict[str, int]:
    """Count sliced records per join-reason kind."""
    if result.reasons is None:
        raise ValueError("slice was not run with track_reasons=True")
    return dict(Counter(kind for kind, _ in result.reasons.values()))


def chain_heads(
    store: TraceStore, result: SliceResult, limit: int = 10
) -> List[Tuple[int, str]]:
    """The earliest sliced records (where the useful dataflow originates)."""
    heads: List[Tuple[int, str]] = []
    for i, flag in enumerate(result.flags):
        if flag:
            heads.append((i, store.symbols.name(store.records()[i].fn)))
            if len(heads) >= limit:
                break
    return heads
