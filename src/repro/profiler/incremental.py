"""Incremental slice engine: checkpointed per-frame dataflow summaries.

The sequential backward pass re-walks the whole trace for every slicing
criteria, even though per-frame queries over a multi-frame trace repeat
almost all of that walk: PR 4's redundancy profiler shows steady-state
frames share 68-92% of their work with the load frame.  This engine
factors the backward pass along the frame-region tiling of
:mod:`repro.trace.stream` and memoizes each region's **transfer
function** in a :class:`SliceCheckpoint`, so slicing frame ``N+1`` from
frame ``N``'s checkpoint pays only for the new frame plus whatever older
regions the new dependence frontier actually disturbs.

Why memoization across *different* frames' slices is sound: a region
that contains no criteria seeds runs the backward pass as a pure
transfer function of its entry frontier — the run depends only on the
region's records and the control-dependence map, not on which frame is
being sliced.  Two reuse tiers apply, strongest first:

1. **exact** — the new entry frontier equals the memoized one: the
   recorded flags and exit frontier are reused verbatim, zero records
   touched;
2. **pass-through** — the new entry frontier is a superset whose
   additions provably cannot interact with the region (checked against
   its static write/branch footprint, exactly the
   :func:`~repro.profiler.parallel.try_pass_through` argument from the
   parallel engine): flags are reused and the additions are threaded
   through to the exit frontier.

Anything else re-runs the region (and refreshes the memo).  Regions
holding criteria seeds — for a frame-windowed pixel slice, just the
frame's own region — always run live.  The concatenation of region runs
with exactly-threaded frontiers *is* the sequential pass, so the engine
is byte-identical to :class:`~repro.profiler.slicer.BackwardSlicer`
(enforced by the fuzz differential suite).

For live streams, :class:`StreamingSliceSession` consumes
:class:`~repro.trace.stream.FrameEpoch` objects in arrival order,
maintains the control-dependence index incrementally
(:class:`IncrementalCDI`), invalidates memos whose functions' control
dependences changed, and emits each complete frame's pixel slice —
byte-identical to running the sequential engine over the stream prefix.
See ``docs/incremental-slicing.md``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..trace.checkpoint import (
    CHECKPOINT_SUFFIX,
    CheckpointImage,
    RegionFactsImage,
    RegionMemoImage,
)
from ..trace.records import InstrKind, TraceRecord
from ..trace.store import TraceStore
from ..trace.stream import EpochStream, FrameEpoch, Region, compute_regions, region_digest
from .cdg import control_dependences
from .cfg import DynamicCFGBuilder, FunctionCFG
from .criteria import Criterion, SlicingCriteria
from .parallel import (
    EpochResult,
    EpochSummary,
    SliceFrontier,
    _EpochView,
    reconstruct_timeline,
    run_epoch,
    summarize_epoch,
    try_pass_through,
)
from .slicer import DEFAULT_OPTIONS, SliceResult, SlicerOptions


def options_key(options: SlicerOptions) -> str:
    """Memo-compatibility fingerprint of the options that change flags."""
    return (
        f"cd={int(options.control_dependences)};"
        f"call={int(options.call_site_dependences)}"
    )


# --------------------------------------------------------------------- #
# Checkpoint (live form)                                                #
# --------------------------------------------------------------------- #


@dataclass
class RegionFacts:
    """Frontier-independent facts about one region (live form)."""

    n_records: int
    digest: str
    has_syscall: bool
    pcs: frozenset
    footprint: EpochSummary


@dataclass
class RegionMemo:
    """The latest memoized seedless run of one region."""

    entry: SliceFrontier
    exit: SliceFrontier
    flags: bytes
    extra: Tuple[Tuple[int, int], ...]
    min_depth: Dict[int, int]


@dataclass
class CheckpointCounters:
    """Cumulative reuse accounting across a checkpoint's lifetime."""

    exact_hits: int = 0
    pass_throughs: int = 0
    region_runs: int = 0
    seeded_runs: int = 0
    records_touched: int = 0
    invalidated: int = 0


class SliceCheckpoint:
    """Per-region dataflow summaries for one trace (one options family).

    The live object the incremental engine reads and extends.  Persists
    via :class:`~repro.trace.checkpoint.CheckpointImage` (``save`` /
    ``load``), which is also what the ``checkpoint-consistency`` lint
    check consumes.
    """

    def __init__(
        self, options_key: str = "", trace_digest: str = ""
    ) -> None:
        self.options_key = options_key
        self.trace_digest = trace_digest
        self.regions: List[Region] = []
        self.facts: Dict[int, RegionFacts] = {}
        self.memos: Dict[int, RegionMemo] = {}
        self.counters = CheckpointCounters()

    # -- layout reconciliation ----------------------------------------- #

    def ensure_layout(self, regions: Sequence[Region], key: str) -> None:
        """Adopt ``regions`` as the current tiling, keeping every memo
        whose region identity (position, extent, role) is unchanged.

        A growing stream only appends regions (and extends the trailing
        gap), so steady-state reconciliation drops at most the old
        trailing-gap memo.  An options-family change drops everything.
        """
        if key != self.options_key:
            self.facts.clear()
            self.memos.clear()
            self.options_key = key
        old = {region.index: region.key() for region in self.regions}
        for region in regions:
            if old.get(region.index) != region.key():
                if self.facts.pop(region.index, None) is not None:
                    self.counters.invalidated += 1
                self.memos.pop(region.index, None)
        for index in list(self.memos):
            if index >= len(regions):
                del self.memos[index]
                self.facts.pop(index, None)
        self.regions = list(regions)

    def invalidate_pcs(self, pcs: Set[int]) -> None:
        """Drop memos of regions that executed any pc in ``pcs`` (their
        cached runs consulted now-stale control dependences there).

        pc granularity matters: a live stream's provisional function
        exits move on every frame, perturbing a few pcs' dependences in
        the main loop — region memos not containing those pcs survive.
        """
        if not pcs:
            return
        for index in list(self.memos):
            facts = self.facts.get(index)
            if facts is not None and facts.pcs & pcs:
                del self.memos[index]
                self.counters.invalidated += 1

    def ensure_facts(
        self, region: Region, records: Sequence[TraceRecord]
    ) -> RegionFacts:
        """Compute (once) the static facts for a freshly-walked region."""
        facts = self.facts.get(region.index)
        if facts is not None:
            return facts
        facts = RegionFacts(
            n_records=len(records),
            digest=region_digest(records),
            has_syscall=any(r.kind == InstrKind.SYSCALL for r in records),
            pcs=frozenset(r.pc for r in records),
            footprint=summarize_epoch(records, 0, len(records)),
        )
        self.facts[region.index] = facts
        return facts

    # -- persistence ---------------------------------------------------- #

    def to_image(self) -> CheckpointImage:
        image = CheckpointImage(
            trace_digest=self.trace_digest, options_key=self.options_key
        )
        image.regions = [region.key() for region in self.regions]
        for index, facts in self.facts.items():
            fp = facts.footprint
            image.facts[index] = RegionFactsImage(
                n_records=facts.n_records,
                digest=facts.digest,
                has_syscall=facts.has_syscall,
                pcs=tuple(sorted(facts.pcs)),
                mem_written=tuple(sorted(fp.mem_written)),
                regs_written=tuple(
                    (tid, tuple(sorted(regs)))
                    for tid, regs in sorted(fp.regs_written.items())
                ),
                branch_pcs=tuple(
                    (tid, tuple(sorted(pcs)))
                    for tid, pcs in sorted(fp.branch_pcs.items())
                ),
                tids=tuple(sorted(fp.tids)),
            )
        for index, memo in self.memos.items():
            image.memos[index] = RegionMemoImage(
                entry=memo.entry.to_bytes(),
                exit=memo.exit.to_bytes(),
                flags=memo.flags,
                extra=memo.extra,
                min_depth=tuple(sorted(memo.min_depth.items())),
            )
        return image

    @staticmethod
    def from_image(image: CheckpointImage) -> "SliceCheckpoint":
        ckpt = SliceCheckpoint(
            options_key=image.options_key, trace_digest=image.trace_digest
        )
        ckpt.regions = [
            Region(index, lo, hi, kind, frame_id)
            for index, (lo, hi, frame_id, kind) in enumerate(image.regions)
        ]
        for index, facts in image.facts.items():
            ckpt.facts[index] = RegionFacts(
                n_records=facts.n_records,
                digest=facts.digest,
                has_syscall=facts.has_syscall,
                pcs=frozenset(facts.pcs),
                footprint=EpochSummary(
                    mem_written=set(facts.mem_written),
                    regs_written={
                        tid: set(regs) for tid, regs in facts.regs_written
                    },
                    branch_pcs={
                        tid: set(pcs) for tid, pcs in facts.branch_pcs
                    },
                    tids=set(facts.tids),
                ),
            )
        for index, memo in image.memos.items():
            ckpt.memos[index] = RegionMemo(
                entry=SliceFrontier.from_bytes(memo.entry),
                exit=SliceFrontier.from_bytes(memo.exit),
                flags=memo.flags,
                extra=memo.extra,
                min_depth=dict(memo.min_depth),
            )
        return ckpt

    def save(self, path: Union[str, Path]) -> None:
        self.to_image().save(path)

    @staticmethod
    def load(path: Union[str, Path]) -> "SliceCheckpoint":
        return SliceCheckpoint.from_image(CheckpointImage.load(path))


# --------------------------------------------------------------------- #
# The engine                                                            #
# --------------------------------------------------------------------- #


class IncrementalSlicer:
    """Backward slicer that runs region-by-region against a checkpoint.

    Drop-in engine for any criteria over any trace source exposing
    ``__len__`` and ``span(lo, hi)``; byte-identical to
    :class:`~repro.profiler.slicer.BackwardSlicer`.  When ``checkpoint``
    is shared across calls (the :class:`~repro.profiler.api.Profiler`
    does this automatically), successive frame-windowed slices of the
    same trace reuse each other's seedless region runs.
    """

    def __init__(
        self,
        store,
        cdi,
        criteria: SlicingCriteria,
        checkpoint: Optional[SliceCheckpoint] = None,
        regions: Optional[Sequence[Region]] = None,
        sample_every: Optional[int] = None,
        main_tid: Optional[int] = None,
        options: SlicerOptions = DEFAULT_OPTIONS,
    ) -> None:
        self._store = store
        self._cdi = cdi
        self._criteria = criteria
        self._options = options
        self._sample_every = sample_every
        self._main_tid = main_tid
        self._n = len(store)
        if regions is None:
            regions = compute_regions(
                store.metadata.complete_frames(), self._n
            )
        self._regions = list(regions)
        self._checkpoint = (
            checkpoint
            if checkpoint is not None
            else SliceCheckpoint(options_key(options))
        )
        self._checkpoint.ensure_layout(self._regions, options_key(options))
        # per-run counters (cumulative twins live on the checkpoint)
        self.exact_hits = 0
        self.pass_throughs = 0
        self.region_runs = 0
        self.seeded_runs = 0
        self.records_touched = 0

    @property
    def checkpoint(self) -> SliceCheckpoint:
        return self._checkpoint

    # -- helpers -------------------------------------------------------- #

    def _fetch(self, region: Region) -> Sequence[TraceRecord]:
        """Absolute-indexed view over one region's records."""
        return _EpochView(
            region.lo, self._store.span(region.lo, region.hi)
        )

    def _is_seeded(self, region: Region, crit_indices: List[int]) -> bool:
        """Does the region contain any criteria seed?

        ``include_syscalls`` seeds every in-window SYSCALL, so any region
        overlapping the window is conservatively treated as seeded (a
        syscall-free one merely forgoes memoization — still correct).
        """
        i = bisect.bisect_left(crit_indices, region.lo)
        if i < len(crit_indices) and crit_indices[i] < region.hi:
            return True
        if self._criteria.include_syscalls:
            window_end = self._criteria.window_end
            if window_end is None or region.lo <= window_end:
                return True
        return False

    # -- the walk ------------------------------------------------------- #

    def run(self) -> SliceResult:
        criteria = self._criteria
        options = self._options
        ckpt = self._checkpoint
        n = self._n
        crit_by_index = criteria.by_index()
        crit_indices = sorted(crit_by_index)
        cd_map: Dict[int, Tuple[int, ...]] = (
            self._cdi._cd if options.control_dependences else {}
        )
        deps_get = cd_map.get
        deps_of = lambda pc: deps_get(pc, ())  # noqa: E731
        # Reasons replay needs every region live (a memoized run records
        # flags but not per-record reasons), so memoization is bypassed.
        memoize = not options.track_reasons

        flags = bytearray(n)
        reasons: Optional[Dict[int, Tuple[str, int]]] = (
            {} if options.track_reasons else None
        )
        extras: List[Tuple[int, int]] = []
        frontier = SliceFrontier.empty()

        for region in reversed(self._regions):
            seeded = self._is_seeded(region, crit_indices)
            if not seeded and memoize:
                memo = ckpt.memos.get(region.index)
                if memo is not None:
                    if memo.entry == frontier:
                        self.exact_hits += 1
                        ckpt.counters.exact_hits += 1
                        flags[region.lo : region.hi] = memo.flags
                        extras.extend(memo.extra)
                        frontier = memo.exit
                        continue
                    facts = ckpt.facts[region.index]
                    aug = try_pass_through(
                        memo.entry,
                        frontier,
                        EpochResult(
                            flags=memo.flags,
                            extra=memo.extra,
                            frontier=memo.exit,
                            min_depth=memo.min_depth,
                        ),
                        facts.footprint,
                    )
                    if aug is not None:
                        self.pass_throughs += 1
                        ckpt.counters.pass_throughs += 1
                        flags[region.lo : region.hi] = memo.flags
                        extras.extend(memo.extra)
                        # Refresh the memo onto the new frontier pair so
                        # the next identical query hits exactly.
                        ckpt.memos[region.index] = RegionMemo(
                            entry=frontier,
                            exit=aug,
                            flags=memo.flags,
                            extra=memo.extra,
                            min_depth=memo.min_depth,
                        )
                        frontier = aug
                        continue

            records = self._fetch(region)
            self.records_touched += region.n_records()
            ckpt.counters.records_touched += region.n_records()
            if memoize:
                ckpt.ensure_facts(region, records.recs)
            entry = frontier
            result = run_epoch(
                records,
                region.lo,
                region.hi,
                entry,
                crit_by_index if seeded else {},
                criteria.include_syscalls if seeded else False,
                criteria.window_end if seeded else None,
                deps_of,
                options,
            )
            flags[region.lo : region.hi] = result.flags
            extras.extend(result.extra)
            if reasons is not None and result.reasons:
                reasons.update(result.reasons)
            if seeded:
                self.seeded_runs += 1
                ckpt.counters.seeded_runs += 1
            else:
                self.region_runs += 1
                ckpt.counters.region_runs += 1
                if memoize:
                    ckpt.memos[region.index] = RegionMemo(
                        entry=entry,
                        exit=result.frontier,
                        flags=result.flags,
                        extra=result.extra,
                        min_depth=dict(result.min_depth),
                    )
            frontier = result.frontier

        for ret_index, callee_fn in extras:
            if not flags[ret_index]:
                flags[ret_index] = 1
                if reasons is not None:
                    reasons[ret_index] = ("call", callee_fn)

        result_out = SliceResult(criteria_name=criteria.name, flags=flags)
        result_out.visited = n
        result_out.reasons = reasons
        result_out.engine_stats = {
            "engine": "incremental",
            "regions": len(self._regions),
            "seeded_runs": self.seeded_runs,
            "region_runs": self.region_runs,
            "memo_exact": self.exact_hits,
            "memo_pass_through": self.pass_throughs,
            "records_touched": self.records_touched,
            "records_total": n,
        }
        if self._sample_every:
            result_out.timeline = self._timeline(flags)
        return result_out

    def _timeline(self, flags: bytearray):
        store = self._store
        main_tid = self._main_tid
        if main_tid is None and hasattr(store, "metadata"):
            main_tid = store.metadata.main_thread_id()
        if isinstance(store, TraceStore):
            return reconstruct_timeline(
                store.records(), flags, self._sample_every, main_tid
            )
        from .vectorized import reconstruct_timeline_columnar

        return reconstruct_timeline_columnar(
            store, flags, self._sample_every, main_tid
        )


# --------------------------------------------------------------------- #
# Incremental control-dependence index                                  #
# --------------------------------------------------------------------- #


class IncrementalCDI:
    """Control-dependence index maintained over a growing record stream.

    Matches :class:`~repro.profiler.cdg.ControlDependenceIndex` built
    over the same prefix exactly: :meth:`snapshot` re-seals *copies* of
    the dirty functions' CFGs (adding the provisional exits
    ``DynamicCFGBuilder.finish`` would add for still-live frames) without
    mutating the builder, so feeding can continue afterwards.  A function
    is dirty iff one of its records arrived since the last snapshot —
    which covers every way its CFG or provisional exits can change.

    ``snapshot`` returns the set of pcs whose dependence tuple actually
    changed; the caller uses it to invalidate checkpoint memos
    (:meth:`SliceCheckpoint.invalidate_pcs`).
    """

    def __init__(self) -> None:
        self._builder = DynamicCFGBuilder()
        self._dirty: Set[int] = set()
        self._per_fn: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        self._cd: Dict[int, Tuple[int, ...]] = {}

    def feed(self, records: Sequence[TraceRecord]) -> None:
        feed = self._builder.feed
        dirty = self._dirty
        for rec in records:
            feed(rec)
            dirty.add(rec.fn)

    def _sealed_copy(self, fn: int) -> FunctionCFG:
        cfg = self._builder._cfgs[fn]
        copy = FunctionCFG(fn)
        copy.succs = cfg.succs  # shared: seal() only writes ``exits``
        copy.preds = cfg.preds
        copy.entries = cfg.entries
        copy.branch_pcs = cfg.branch_pcs
        copy.exits = set(cfg.exits)
        for stack in self._builder._stacks.values():
            for frame in stack:
                if frame.fn == fn and frame.last_pc is not None:
                    copy.exits.add(frame.last_pc)
        copy.seal()
        return copy

    def snapshot(self) -> Set[int]:
        """Refresh dirty functions; return the pcs whose deps changed."""
        changed: Set[int] = set()
        for fn in self._dirty:
            if fn not in self._builder._cfgs:
                continue
            cd = control_dependences(self._sealed_copy(fn))
            old = self._per_fn.get(fn, {})
            if cd == old:
                continue
            for pc in old.keys() | cd.keys():
                if old.get(pc, ()) != cd.get(pc, ()):
                    changed.add(pc)
            for pc in old:
                self._cd.pop(pc, None)
            self._cd.update(cd)
            self._per_fn[fn] = cd
        self._dirty.clear()
        return changed

    def deps_of(self, pc: int) -> Tuple[int, ...]:
        return self._cd.get(pc, ())


# --------------------------------------------------------------------- #
# Streaming session                                                     #
# --------------------------------------------------------------------- #


@dataclass
class IncrementalFrameResult:
    """One frame's pixel slice, produced as its epoch arrived."""

    frame_id: int
    kind: str
    lo: int
    hi: int
    criteria_name: str
    #: slice flags over the whole stream prefix ``[0, hi)``
    flags: bytearray
    #: flagged records inside the frame's own span
    in_slice: int
    engine_stats: Dict[str, object] = field(default_factory=dict)

    def n_records(self) -> int:
        return self.hi - self.lo


class _SessionSource:
    """Trace-source facade over a streaming session's received epochs.

    ``span`` serves region-aligned requests from the resident window
    first and falls back to the stream's re-reader for evicted regions,
    so session memory stays bounded by ``keep_resident`` regions.
    """

    def __init__(self, session: "StreamingSliceSession") -> None:
        self._session = session

    def __len__(self) -> int:
        return self._session.n_seen

    def span(self, lo: int, hi: int) -> List[TraceRecord]:
        session = self._session
        for region in session.regions:
            if region.lo == lo and region.hi == hi:
                resident = session.resident.get(region.index)
                if resident is not None:
                    return resident
                break
        return session.stream.span(lo, hi)


class StreamingSliceSession:
    """Consume frame epochs in arrival order; slice each frame on arrival.

    For every complete frame epoch the session produces that frame's
    pixel slice over the stream prefix, computed from the previous
    frame's checkpoint — the answer is byte-identical to running the
    sequential engine over the prefix, but steady-state frames touch
    only the delta.  Memory stays bounded: at most ``keep_resident``
    regions' records are held (older regions re-materialize through the
    stream on a memo miss), and the checkpoint holds only frontiers,
    flags, and footprints.
    """

    def __init__(
        self,
        stream: EpochStream,
        options: SlicerOptions = DEFAULT_OPTIONS,
        checkpoint: Optional[SliceCheckpoint] = None,
        keep_resident: int = 8,
    ) -> None:
        self.stream = stream
        self._options = options
        self.checkpoint = (
            checkpoint
            if checkpoint is not None
            else SliceCheckpoint(options_key(options))
        )
        self._keep_resident = max(1, keep_resident)
        self._cdi = IncrementalCDI()
        self.regions: List[Region] = []
        self.resident: Dict[int, List[TraceRecord]] = {}
        self.n_seen = 0

    def feed(self, epoch: FrameEpoch) -> Optional[IncrementalFrameResult]:
        """Ingest one epoch; return a slice result for frame regions."""
        region = epoch.region
        if region.lo != self.n_seen:
            raise ValueError(
                f"epoch [{region.lo}, {region.hi}) does not continue the "
                f"stream at {self.n_seen}"
            )
        region = Region(
            len(self.regions), region.lo, region.hi, region.kind,
            region.frame_id,
        )
        self.regions.append(region)
        self.resident[region.index] = epoch.records
        while len(self.resident) > self._keep_resident:
            self.resident.pop(next(iter(self.resident)))
        self._cdi.feed(epoch.records)
        self.n_seen = region.hi
        if not region.is_frame:
            return None

        self.checkpoint.invalidate_pcs(self._cdi.snapshot())
        criteria = SlicingCriteria(
            name=f"pixels:frame{region.frame_id}",
            criteria=tuple(
                Criterion(index=index, cells=cells)
                for index, cells in epoch.tiles
            ),
            window_end=region.hi - 1,
        )
        slicer = IncrementalSlicer(
            _SessionSource(self),
            self._cdi,
            criteria,
            checkpoint=self.checkpoint,
            regions=self.regions,
            options=self._options,
        )
        result = slicer.run()
        in_slice = sum(result.flags[region.lo : region.hi])
        return IncrementalFrameResult(
            frame_id=region.frame_id,
            kind=region.kind,
            lo=region.lo,
            hi=region.hi,
            criteria_name=criteria.name,
            flags=bytearray(result.flags),
            in_slice=in_slice,
            engine_stats=dict(result.engine_stats),
        )

    def results(self) -> Iterator[IncrementalFrameResult]:
        """Drive the whole stream, yielding one result per frame."""
        for epoch in self.stream.epochs():
            result = self.feed(epoch)
            if result is not None:
                yield result


def checkpoint_path_for(digest: str, directory: Union[str, Path]) -> Path:
    """Canonical on-disk checkpoint path for a trace digest.

    One naming rule shared by every checkpoint persister (service jobs,
    fleet streaming uploads, warm-replica handoff), so a checkpoint
    written by one path warms all the others.
    """
    return Path(directory) / f"{digest[:32]}{CHECKPOINT_SUFFIX}"


def stream_slice(
    source: Union[str, Path, TraceStore, object],
    checkpoint: Optional[SliceCheckpoint] = None,
    options: SlicerOptions = DEFAULT_OPTIONS,
    keep_resident: int = 8,
) -> Iterator[IncrementalFrameResult]:
    """Slice every frame of a UCWA source as its epoch arrives.

    Convenience wiring of :func:`~repro.trace.stream.open_epoch_stream`
    into a :class:`StreamingSliceSession`: one bounded-memory pass over
    the source, yielding each complete frame's pixel slice in arrival
    order.  This is the path the fleet's streaming trace upload drives —
    frames slice as the spooled prefix grows, and the (optionally
    persisted) ``checkpoint`` leaves later per-frame submits warm.
    """
    from ..trace.stream import open_epoch_stream

    session = StreamingSliceSession(
        open_epoch_stream(source),
        options=options,
        checkpoint=checkpoint,
        keep_resident=keep_resident,
    )
    return session.results()
