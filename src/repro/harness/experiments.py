"""End-to-end experiment runner: workload -> trace -> profile.

``run_benchmark`` loads a benchmark's page in a fresh engine, executes its
browsing session (injecting lazily-downloaded scripts at the scripted
points, plus periodic metrics chatter), and returns an
:class:`ExperimentResult` bundling the trace with the profiler outputs the
paper's tables and figures are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..browser import BrowserEngine, MAIN_THREAD
from ..profiler import (
    CategoryDistribution,
    Profiler,
    RedundancyReport,
    SliceResult,
    SliceStatistics,
    analyze_frames,
    pixel_criteria,
)
from ..trace.store import TraceStore
from ..workloads.base import Benchmark


@dataclass
class ExperimentResult:
    """Everything measured for one benchmark run."""

    benchmark: Benchmark
    engine: BrowserEngine
    store: TraceStore
    profiler: Profiler
    pixel: SliceResult
    stats: SliceStatistics
    categories: CategoryDistribution

    @property
    def name(self) -> str:
        return self.benchmark.name

    def utilization(self, tid: int = MAIN_THREAD) -> List[Tuple[float, float]]:
        return self.engine.utilization_series(tid)

    def js_coverage(self):
        return self.engine.interp.coverage

    def css_total_bytes(self) -> int:
        return self.engine.cssom.total_bytes()

    def css_used_bytes(self) -> int:
        return self.engine.cssom.used_bytes()

    def code_total_bytes(self) -> int:
        """JS + CSS bytes downloaded (the Table I denominator)."""
        return self.js_coverage().total_bytes() + self.css_total_bytes()

    def code_unused_bytes(self) -> int:
        """JS + CSS bytes never executed/matched (the Table I numerator)."""
        css_unused = self.css_total_bytes() - self.css_used_bytes()
        return self.js_coverage().unused_bytes() + css_unused

    def code_unused_fraction(self) -> float:
        total = self.code_total_bytes()
        return self.code_unused_bytes() / total if total else 0.0


def run_engine(bench: Benchmark, metrics_ticks: int = 4) -> BrowserEngine:
    """Run a benchmark's full session and return the engine."""
    engine = BrowserEngine(bench.config)
    engine.load_page(bench.page)
    if bench.deferred_scripts:
        # Optimizer-deferred scripts run right after the load frame: the
        # load-time pixels are already on screen, so pulling these out of
        # the critical path cannot change them (verified by frame digests).
        for url, source in bench.deferred_scripts.items():
            engine.load_additional_script(url, source)
        engine.scheduler.run_until_idle()
    engine.pump_animation_frames(bench.config.load_animation_ticks)
    for _ in range(metrics_ticks):
        engine.emit_metrics_tick()
    engine.scheduler.run_until_idle()
    for i, action in enumerate(bench.actions):
        late = bench.late_scripts.get(i)
        if late:
            for url, source in late.items():
                engine.load_additional_script(url, source)
            engine.scheduler.run_until_idle()
        engine.ctx.clock.idle(action.think_time_ms * 1000.0)
        engine.perform_action(action)
        engine.pump_animation_frames(bench.config.action_animation_ticks)
        engine.scheduler.run_until_idle()
    return engine


def run_benchmark(
    bench: Benchmark,
    sample_every: Optional[int] = None,
    metrics_ticks: int = 2,
) -> ExperimentResult:
    """Run, trace, and profile one benchmark."""
    engine = run_engine(bench, metrics_ticks=metrics_ticks)
    store = engine.trace_store()
    if sample_every is None:
        sample_every = max(1, len(store) // 200)
    profiler = Profiler(store)
    pixel = profiler.slice(pixel_criteria(store), sample_every=sample_every)
    stats = profiler.statistics(pixel)
    categories = profiler.categorize(pixel)
    return ExperimentResult(
        benchmark=bench,
        engine=engine,
        store=store,
        profiler=profiler,
        pixel=pixel,
        stats=stats,
        categories=categories,
    )


@lru_cache(maxsize=None)
def cached_run(name: str) -> ExperimentResult:
    """Run a registered benchmark once per process (benches share traces)."""
    from ..workloads import benchmark

    return run_benchmark(benchmark(name))


@dataclass
class FrameExperimentResult:
    """A multi-frame benchmark run plus its per-frame redundancy profile."""

    benchmark: Benchmark
    engine: BrowserEngine
    store: TraceStore
    report: RedundancyReport

    @property
    def name(self) -> str:
        return self.benchmark.name


def run_frames(
    bench: Benchmark, slice_engine: str = "sequential"
) -> FrameExperimentResult:
    """Run a multi-frame benchmark and profile each frame epoch.

    Unlike :func:`run_benchmark` this drives the page purely through the
    incremental frame pipeline (timer ticks and scripted actions), then
    slices each frame's own pixel criterion and classifies its non-slice
    work as redundant vs. fresh (see :mod:`repro.profiler.redundancy`).
    ``slice_engine="incremental"`` profiles all frames in one streaming
    checkpointed pass instead of F independent full slices (identical
    report).
    """
    engine = BrowserEngine(bench.config)
    engine.load_page(bench.page)
    engine.run_session(bench.actions)
    store = engine.trace_store()
    report = analyze_frames(store, engine=slice_engine)
    return FrameExperimentResult(
        benchmark=bench, engine=engine, store=store, report=report
    )


@lru_cache(maxsize=None)
def cached_frames(name: str, slice_engine: str = "sequential") -> FrameExperimentResult:
    """Run a registered multi-frame benchmark once per process."""
    from ..workloads import benchmark

    return run_frames(benchmark(name), slice_engine=slice_engine)
