"""Frozen paper-number collection for regression goldens.

:func:`collect_paper_numbers` computes the headline fractions behind
Table I, Table II, and Figure 2 from fresh benchmark runs — the same
quantities the reports print, but as raw floats.  The checked-in golden
(``tests/harness/goldens/paper_numbers.json``) freezes them so slicer
and engine refactors cannot silently shift the reproduced numbers; the
regression test asserts equality within 1e-9.

Regenerate the golden (after an *intentional* change to the measured
numbers) with::

    PYTHONPATH=src python -m repro.harness.goldens tests/harness/goldens/paper_numbers.json
"""

from __future__ import annotations

import json
from typing import Dict

from ..analysis.coverage import coverage_row
from ..analysis.utilization import busy_fraction, find_spikes
from ..browser.context import MAIN_THREAD
from . import paper
from .experiments import cached_run

#: (site label, benchmark name) pairs per Table I condition.
TABLE1_RUNS = {
    "Only Load": (
        ("Amazon", "amazon_desktop"),
        ("Bing", "bing_load_only"),
        ("Google Maps", "google_maps"),
    ),
    "Load and Browse": (
        ("Amazon", "amazon_desktop_browse"),
        ("Bing", "bing"),
        ("Google Maps", "google_maps_browse"),
    ),
}


def collect_paper_numbers() -> Dict:
    """All golden-frozen headline numbers, as plain JSON-able data."""
    numbers: Dict = {"table2": {}, "table1": {}, "figure2": {}}

    for name in paper.TABLE2:
        result = cached_run(name)
        stats = result.stats
        rasters = stats.threads_by_prefix("CompositorTileWorker")
        numbers["table2"][name] = {
            "all_fraction": stats.fraction,
            "main_fraction": stats.thread_by_name("CrRendererMain").fraction,
            "compositor_fraction": stats.thread_by_name("Compositor").fraction,
            "rasterizer_fractions": [t.fraction for t in rasters],
            "total_instructions": stats.total,
        }

    for condition, runs in TABLE1_RUNS.items():
        for site, bench_name in runs:
            row = coverage_row(cached_run(bench_name), site, condition)
            numbers["table1"][f"{site}|{condition}"] = {
                "unused_fraction": row.unused_fraction,
                "unused_bytes": row.unused_bytes,
                "total_bytes": row.total_bytes,
            }

    fig2 = cached_run("amazon_desktop_browse")
    series = fig2.utilization(MAIN_THREAD)
    numbers["figure2"] = {
        "mean_utilization": busy_fraction(series),
        "spike_count": len(find_spikes(series)),
    }
    return numbers


def main(argv) -> int:
    if len(argv) != 1:
        print(__doc__)
        return 2
    path = argv[0]
    numbers = collect_paper_numbers()
    with open(path, "w") as fh:
        json.dump(numbers, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    import sys

    raise SystemExit(main(sys.argv[1:]))
